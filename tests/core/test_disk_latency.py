"""The replica disk-latency model."""

import pytest

from repro import ClusterConfig, FabCluster
from tests.conftest import block_of, stripe_of


def timed_cluster(read_latency=0.0, write_latency=0.0):
    """A cluster whose coordinator windows account for disk time.

    The fast-path grace period must cover the expected disk service
    time (otherwise the quorum of disk-free replies expires the window
    before the block-carrying reply arrives), and retransmission must
    not fire while a replica is merely busy with its disk.
    """
    from repro.core.coordinator import CoordinatorConfig

    slack = 2 * (read_latency + write_latency) + 5.0
    return FabCluster(
        ClusterConfig(
            m=3, n=5, block_size=32,
            disk_read_latency=read_latency,
            disk_write_latency=write_latency,
            coordinator=CoordinatorConfig(
                grace=slack, retransmit_interval=10 * slack
            ),
        )
    )


class TestDiskLatency:
    def test_default_is_free(self):
        cluster = timed_cluster()
        register = cluster.register(0)
        t0 = cluster.env.now
        register.write_stripe(stripe_of(3, 32, tag=1))
        assert cluster.env.now - t0 == pytest.approx(4.0)  # pure 4δ

    def test_write_latency_added_once(self):
        cluster = timed_cluster(write_latency=5.0)
        register = cluster.register(0)
        t0 = cluster.env.now
        register.write_stripe(stripe_of(3, 32, tag=1))
        # Order round (2) + Write round (2 + one block write of 5).
        assert cluster.env.now - t0 == pytest.approx(9.0)

    def test_read_latency_added_once(self):
        cluster = timed_cluster(read_latency=3.0)
        register = cluster.register(0)
        register.write_stripe(stripe_of(3, 32, tag=1))
        t0 = cluster.env.now
        register.read_stripe()
        # One Read round (2) + one log block read (3) at the targets.
        assert cluster.env.now - t0 == pytest.approx(5.0)

    def test_non_target_replies_not_delayed(self):
        """Replicas outside `targets` read no block, so reply at 2δ."""
        cluster = timed_cluster(read_latency=100.0)
        register = cluster.register(0)
        register.write_stripe(stripe_of(3, 32, tag=1))
        t0 = cluster.env.now
        register.read_block(2)
        # p_2 is delayed by its disk read; the other quorum members are
        # not, but the fast path waits for p_2's block.
        assert cluster.env.now - t0 == pytest.approx(102.0)

    def test_block_write_charged_for_parity_read_modify(self):
        cluster = timed_cluster(read_latency=2.0, write_latency=3.0)
        register = cluster.register(0)
        register.write_stripe(stripe_of(3, 32, tag=1))
        t0 = cluster.env.now
        register.write_block(2, block_of(32, tag=2))
        # Order&Read: 2δ + p_j block read (2).  Modify at parity:
        # 2δ + read (2) + write (3).  p_j itself: write only (3).
        # Critical path: 4δ + 2 + 5 = 11.
        assert cluster.env.now - t0 == pytest.approx(11.0)

    def test_disk_counts_unchanged_by_latency(self):
        fast = timed_cluster()
        slow = timed_cluster(read_latency=4.0, write_latency=4.0)
        for cluster in (fast, slow):
            register = cluster.register(0)
            register.write_stripe(stripe_of(3, 32, tag=1))
            register.read_stripe()
        assert (
            fast.metrics.total_disk_reads == slow.metrics.total_disk_reads
        )
        assert (
            fast.metrics.total_disk_writes == slow.metrics.total_disk_writes
        )

    def test_correctness_preserved_with_disk_latency(self):
        cluster = timed_cluster(read_latency=1.5, write_latency=2.5)
        register = cluster.register(0)
        stripe = stripe_of(3, 32, tag=1)
        register.write_stripe(stripe)
        cluster.crash(4)
        assert register.read_stripe() == stripe
