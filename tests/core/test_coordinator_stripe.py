"""Stripe-level coordinator operations (Algorithm 1), end to end."""

import pytest

from repro.types import ABORT
from tests.conftest import make_cluster, stripe_of


class TestWriteReadStripe:
    def test_write_then_read(self, cluster):
        register = cluster.register(0)
        stripe = stripe_of(3, 32, tag=1)
        assert register.write_stripe(stripe) == "OK"
        assert register.read_stripe() == stripe

    def test_read_never_written_returns_nil(self, cluster):
        register = cluster.register(7)
        assert register.read_stripe() is None

    def test_overwrite(self, cluster):
        register = cluster.register(0)
        first = stripe_of(3, 32, tag=1)
        second = stripe_of(3, 32, tag=2)
        register.write_stripe(first)
        register.write_stripe(second)
        assert register.read_stripe() == second

    def test_many_registers_independent(self, cluster):
        a = cluster.register(1)
        b = cluster.register(2)
        stripe_a = stripe_of(3, 32, tag=10)
        stripe_b = stripe_of(3, 32, tag=20)
        a.write_stripe(stripe_a)
        b.write_stripe(stripe_b)
        assert a.read_stripe() == stripe_a
        assert b.read_stripe() == stripe_b

    def test_any_coordinator_can_read(self, cluster):
        writer = cluster.register(0, route=1)
        stripe = stripe_of(3, 32, tag=3)
        writer.write_stripe(stripe)
        for pid in range(2, 6):
            reader = cluster.register(0, route=pid)
            assert reader.read_stripe() == stripe

    def test_alternating_coordinators_write(self, cluster):
        for tag, pid in enumerate([1, 2, 3, 4, 5, 1, 3], start=1):
            register = cluster.register(0, route=pid)
            stripe = stripe_of(3, 32, tag=tag)
            assert register.write_stripe(stripe) == "OK"
            assert cluster.register(0, route=(pid % 5) + 1).read_stripe() == stripe


class TestFaultTolerance:
    def test_read_write_with_f_crashed(self):
        cluster = make_cluster(m=3, n=5)  # f = 1
        register = cluster.register(0)
        stripe = stripe_of(3, 32, tag=1)
        register.write_stripe(stripe)
        cluster.crash(5)
        assert register.read_stripe() == stripe
        new = stripe_of(3, 32, tag=2)
        assert register.write_stripe(new) == "OK"
        assert register.read_stripe() == new

    def test_ec_5_8_tolerates_one_crash_by_default(self):
        cluster = make_cluster(m=5, n=8, block_size=16)  # f = 1
        register = cluster.register(0)
        stripe = stripe_of(5, 16, tag=1)
        register.write_stripe(stripe)
        cluster.crash(2)
        assert register.read_stripe() == stripe

    def test_ec_5_9_tolerates_two_crashes(self):
        cluster = make_cluster(m=5, n=9, block_size=16)  # f = 2
        register = cluster.register(0, route=5)
        stripe = stripe_of(5, 16, tag=1)
        register.write_stripe(stripe)
        cluster.crash(1)
        cluster.crash(9)
        assert register.read_stripe() == stripe

    def test_data_survives_any_single_crash(self):
        for victim in range(1, 6):
            cluster = make_cluster(m=3, n=5)
            register = cluster.register(0, route=2 if victim == 1 else 1)
            stripe = stripe_of(3, 32, tag=victim)
            register.write_stripe(stripe)
            cluster.crash(victim)
            assert register.read_stripe() == stripe, f"victim={victim}"

    def test_recovered_brick_rejoins(self):
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0)
        stripe = stripe_of(3, 32, tag=1)
        register.write_stripe(stripe)
        cluster.crash(4)
        newer = stripe_of(3, 32, tag=2)
        register.write_stripe(newer)
        cluster.recover(4)
        cluster.crash(5)  # now 4 must participate
        assert register.read_stripe() == newer

    def test_whole_cluster_crash_and_recovery(self):
        """The paper: 'can tolerate the simultaneous crash of all
        processes, and makes progress whenever an m-quorum comes back'."""
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0, route=1)
        stripe = stripe_of(3, 32, tag=1)
        register.write_stripe(stripe)
        for pid in range(1, 6):
            cluster.crash(pid)
        for pid in range(1, 6):
            cluster.recover(pid)
        assert register.read_stripe() == stripe


class TestMetricsFastPath:
    def test_fast_read_costs(self):
        """Failure-free read: 2δ latency, 2n messages, m disk reads."""
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0)
        register.write_stripe(stripe_of(3, 32, tag=1))
        register.read_stripe()
        summary = cluster.metrics.summary()
        row = summary["read-stripe/fast"]
        assert row["latency_delta"] == 2
        assert row["messages"] == 10
        assert row["disk_reads"] == 3
        assert row["disk_writes"] == 0

    def test_write_costs(self):
        """Stripe write: 4δ, 4n messages, n disk writes, nB bandwidth."""
        cluster = make_cluster(m=3, n=5, block_size=32)
        register = cluster.register(0)
        register.write_stripe(stripe_of(3, 32, tag=1))
        row = cluster.metrics.summary()["write-stripe/fast"]
        assert row["latency_delta"] == 4
        assert row["messages"] == 20
        assert row["disk_writes"] == 5
        assert row["disk_reads"] == 0
        assert row["bytes"] == 5 * 32


class TestAborts:
    def test_stale_timestamp_write_aborts(self):
        """A coordinator whose clock is far behind gets refused."""
        cluster = make_cluster(m=3, n=5, observe_timestamps=False)
        cluster.env.run(until=100.0)  # give writer 1 a large timestamp
        fast = cluster.register(0, route=1)
        fast.write_stripe(stripe_of(3, 32, tag=1))
        # Manually regress coordinator 2's clock far behind 1's.
        slow_coord = cluster.coordinator(2)
        slow_coord.ts_source._last_time = 0
        slow_coord.ts_source._clock = lambda: -10**6
        result = cluster.register(0, route=2).write_stripe(
            stripe_of(3, 32, tag=2)
        )
        assert result is ABORT

    def test_aborted_write_leaves_old_value(self):
        cluster = make_cluster(m=3, n=5, observe_timestamps=False)
        cluster.env.run(until=100.0)
        register = cluster.register(0)
        stripe = stripe_of(3, 32, tag=1)
        register.write_stripe(stripe)
        slow_coord = cluster.coordinator(2)
        slow_coord.ts_source._clock = lambda: -10**6
        cluster.register(0, route=2).write_stripe(stripe_of(3, 32, tag=2))
        assert register.read_stripe() == stripe

    def test_retry_after_abort_succeeds(self):
        """PROGRESS: observing replies lets the loser catch up."""
        cluster = make_cluster(m=3, n=5)  # observe_timestamps on by default
        cluster.register(0, route=1).write_stripe(stripe_of(3, 32, tag=1))
        loser = cluster.register(0, route=2)
        loser.coordinator.ts_source._clock = lambda: 0.0  # stalled clock
        stripe = stripe_of(3, 32, tag=2)
        result = loser.write_stripe(stripe)
        if result is ABORT:  # first try may lose
            result = loser.write_stripe(stripe)
        assert result == "OK"


class TestMessageLoss:
    def test_operations_complete_under_loss(self):
        cluster = make_cluster(m=2, n=4, drop=0.15, seed=5)
        register = cluster.register(0)
        stripe = stripe_of(2, 32, tag=1)
        assert register.write_stripe(stripe) == "OK"
        assert register.read_stripe() == stripe

    def test_operations_complete_under_heavy_loss(self):
        cluster = make_cluster(m=2, n=4, drop=0.4, seed=9)
        register = cluster.register(0)
        stripe = stripe_of(2, 32, tag=1)
        assert register.write_stripe(stripe) == "OK"
        assert register.read_stripe() == stripe

    def test_sequence_under_loss_and_jitter(self):
        cluster = make_cluster(
            m=3, n=5, drop=0.2, min_latency=0.5, max_latency=3.0, seed=11
        )
        register = cluster.register(0)
        last = None
        for tag in range(5):
            stripe = stripe_of(3, 32, tag=tag)
            if register.write_stripe(stripe) == "OK":
                last = stripe
            value = register.read_stripe()
            assert value == last
