"""Concurrent operations: aborts on conflict, strict linearizability.

The paper allows conflicting concurrent operations to abort (returning
⊥) but never to violate consistency.  These tests run concurrent
coordinators against one register — with jittered networks, message
loss, and crash injection — record the operation history, and feed it
to the Appendix-B checker.
"""

import pytest

from repro.sim.failures import RandomFailures
from repro.types import ABORT, OpKind
from repro.verify import (
    HistoryRecorder,
    brute_force_linearizable,
    check_strict_linearizability,
)
from tests.conftest import make_cluster, stripe_of


def unique_stripe(m, block_size, tag):
    return stripe_of(m, block_size, tag)


class TestConcurrentWrites:
    def test_concurrent_writes_one_winner_or_aborts(self):
        cluster = make_cluster(m=3, n=5)
        s1 = unique_stripe(3, 32, 1)
        s2 = unique_stripe(3, 32, 2)
        p1 = cluster.register(0, route=1).write_stripe_async(s1)
        p2 = cluster.register(0, route=2).write_stripe_async(s2)
        cluster.env.run()
        results = {p1.value, p2.value}
        # At least the final state must be consistent with the outcomes.
        value = cluster.register(0, route=3).read_stripe()
        committed = [s for s, p in ((s1, p1), (s2, p2)) if p.value == "OK"]
        if committed:
            assert value in committed or value in (s1, s2)
        else:
            # Both aborted: the register may hold either value or nil
            # (aborts are non-deterministic), but reads must agree.
            again = cluster.register(0, route=4).read_stripe()
            assert again == value

    def test_sequential_interleaved_coordinators_never_abort(self):
        """Non-overlapping ops from different bricks: no conflicts."""
        cluster = make_cluster(m=3, n=5)
        for tag in range(10):
            pid = (tag % 5) + 1
            register = cluster.register(0, route=pid)
            assert register.write_stripe(unique_stripe(3, 32, tag)) == "OK"
            assert register.read_stripe() == unique_stripe(3, 32, tag)

    def test_concurrent_write_histories_strictly_linearizable(self):
        cluster = make_cluster(m=3, n=5, min_latency=0.5, max_latency=2.0)
        recorder = HistoryRecorder(cluster.env)
        for tag in range(6):
            pid = (tag % 3) + 1
            coordinator = cluster.coordinators[pid]
            stripe = unique_stripe(3, 32, tag)
            process = cluster.nodes[pid].spawn(
                coordinator.write_stripe(0, stripe)
            )
            recorder.track(process, OpKind.WRITE_STRIPE, value=stripe,
                           coordinator=pid)
        cluster.env.run()
        # Follow with reads from every brick.
        for pid in range(1, 6):
            coordinator = cluster.coordinators[pid]
            process = cluster.nodes[pid].spawn(coordinator.read_stripe(0))
            recorder.track(process, OpKind.READ_STRIPE, coordinator=pid)
        cluster.env.run()
        recorder.close()
        for index in (1, 2, 3):
            history = recorder.per_block_history(index)
            result = check_strict_linearizability(history)
            assert result.ok, result.violations


class TestConcurrentReadWrite:
    def test_read_during_write(self):
        cluster = make_cluster(m=3, n=5, min_latency=0.5, max_latency=2.0)
        register = cluster.register(0)
        old = unique_stripe(3, 32, 1)
        register.write_stripe(old)
        new = unique_stripe(3, 32, 2)
        write_process = cluster.register(0, route=1).write_stripe_async(new)
        read_process = cluster.register(0, route=2).read_stripe_async()
        cluster.env.run()
        read_value = read_process.value
        assert read_value in (old, new, ABORT)
        if write_process.value == "OK":
            assert cluster.register(0, route=3).read_stripe() == new

    def test_concurrent_readers_all_agree_eventually(self):
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0)
        stripe = unique_stripe(3, 32, 1)
        register.write_stripe(stripe)
        processes = [
            cluster.register(0, route=pid).read_stripe_async()
            for pid in range(1, 6)
        ]
        cluster.env.run()
        for process in processes:
            assert process.value in (stripe, ABORT)
        assert any(process.value == stripe for process in processes)


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
class TestRandomizedHistories:
    """Randomized concurrent workloads + failures, checked per block."""

    def _run(self, seed, drop=0.0, with_crashes=False):
        cluster = make_cluster(
            m=2, n=4, block_size=16, seed=seed,
            min_latency=0.5, max_latency=3.0, drop=drop,
        )
        import random

        rng = random.Random(seed)
        recorder = HistoryRecorder(cluster.env)
        injector = None
        if with_crashes:
            injector = RandomFailures(
                cluster.env, cluster.nodes, max_down=1,
                crash_probability=0.2, recovery_probability=0.8,
                check_interval=5.0, horizon=400.0, seed=seed,
            )
        tag = 0
        for _round in range(8):
            # Launch 1-3 concurrent ops from random live coordinators.
            for _ in range(rng.randint(1, 3)):
                pid = rng.randint(1, 4)
                if not cluster.nodes[pid].is_up:
                    continue
                coordinator = cluster.coordinators[pid]
                if rng.random() < 0.5:
                    tag += 1
                    if rng.random() < 0.5:
                        stripe = unique_stripe(2, 16, tag)
                        process = cluster.nodes[pid].spawn(
                            coordinator.write_stripe(0, stripe)
                        )
                        recorder.track(
                            process, OpKind.WRITE_STRIPE, value=stripe,
                            coordinator=pid,
                        )
                    else:
                        block = (f"b{tag}-".encode() * 16)[:16]
                        j = rng.randint(1, 2)
                        process = cluster.nodes[pid].spawn(
                            coordinator.write_block(0, j, block)
                        )
                        recorder.track(
                            process, OpKind.WRITE_BLOCK, value=block,
                            block_index=j, coordinator=pid,
                        )
                else:
                    if rng.random() < 0.5:
                        process = cluster.nodes[pid].spawn(
                            coordinator.read_stripe(0)
                        )
                        recorder.track(process, OpKind.READ_STRIPE,
                                       coordinator=pid)
                    else:
                        j = rng.randint(1, 2)
                        process = cluster.nodes[pid].spawn(
                            coordinator.read_block(0, j)
                        )
                        recorder.track(
                            process, OpKind.READ_BLOCK, block_index=j,
                            coordinator=pid,
                        )
            cluster.env.run(until=cluster.env.now + rng.uniform(1.0, 25.0))
        # Ensure everyone is up so pending ops can finish, then drain.
        for pid in range(1, 5):
            cluster.recover(pid)
        cluster.env.run(until=cluster.env.now + 2000.0)
        recorder.close()
        return recorder

    def test_clean_network(self, seed):
        recorder = self._run(seed)
        for index in (1, 2):
            result = check_strict_linearizability(
                recorder.per_block_history(index)
            )
            assert result.ok, (seed, index, result.violations)

    def test_lossy_network(self, seed):
        recorder = self._run(seed, drop=0.1)
        for index in (1, 2):
            result = check_strict_linearizability(
                recorder.per_block_history(index)
            )
            assert result.ok, (seed, index, result.violations)

    def test_with_crash_recovery_churn(self, seed):
        recorder = self._run(seed, drop=0.05, with_crashes=True)
        for index in (1, 2):
            result = check_strict_linearizability(
                recorder.per_block_history(index)
            )
            assert result.ok, (seed, index, result.violations)


class TestCheckerCrossValidation:
    """The graph checker and the brute-force checker agree."""

    def test_small_histories_agree(self):
        cluster = make_cluster(m=2, n=4, block_size=16,
                               min_latency=0.5, max_latency=2.0)
        recorder = HistoryRecorder(cluster.env)
        for tag in range(3):
            pid = tag % 4 + 1
            coordinator = cluster.coordinators[pid]
            stripe = unique_stripe(2, 16, tag)
            process = cluster.nodes[pid].spawn(coordinator.write_stripe(0, stripe))
            recorder.track(process, OpKind.WRITE_STRIPE, value=stripe,
                           coordinator=pid)
        cluster.env.run()
        for pid in (1, 2):
            process = cluster.nodes[pid].spawn(
                cluster.coordinators[pid].read_stripe(0)
            )
            recorder.track(process, OpKind.READ_STRIPE, coordinator=pid)
        cluster.env.run()
        recorder.close()
        history = recorder.per_block_history(1)
        graph_result = check_strict_linearizability(history)
        brute_result = brute_force_linearizable(history)
        assert brute_result is not None
        assert graph_result.ok == brute_result
