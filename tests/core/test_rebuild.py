"""Scrubbing and rebuilding (distributed repair)."""

import pytest

from repro.core.rebuild import Rebuilder, Scrubber
from repro.sim.node import StableStore
from tests.conftest import make_cluster, stripe_of


def cluster_with_stale_brick(victim=4, registers=5):
    """Write data, crash a brick, write newer data, recover the brick."""
    cluster = make_cluster(m=3, n=5)
    for register_id in range(registers):
        cluster.register(register_id).write_stripe(
            stripe_of(3, 32, tag=register_id)
        )
    cluster.crash(victim)
    newer = {}
    for register_id in range(registers):
        stripe = stripe_of(3, 32, tag=100 + register_id)
        cluster.register(register_id).write_stripe(stripe)
        newer[register_id] = stripe
    cluster.recover(victim)
    return cluster, newer


def replace_with_blank_brick(cluster, pid):
    """Swap a brick's stable storage for a factory-fresh one.

    Models hot-spare promotion: the process identity (and network
    address) survives, but the disk arrives empty.
    """
    node = cluster.nodes[pid]
    cluster.crash(pid)
    node.stable = StableStore(
        mode=node.stable.mode, verify_checksums=node.stable.verify_checksums
    )
    cluster.recover(pid)


class TestScrubber:
    def test_detects_stale_brick(self):
        cluster, _newer = cluster_with_stale_brick()
        report = Scrubber(cluster).scrub_register(0)
        assert report.stale == [4]
        assert sorted(report.current) == [1, 2, 3, 5]
        assert not report.fully_redundant
        assert report.redundancy == 4

    def test_detects_down_brick(self):
        cluster, _ = cluster_with_stale_brick()
        cluster.crash(2)
        report = Scrubber(cluster).scrub_register(0)
        assert report.down == [2]

    def test_fully_redundant_cluster(self):
        cluster = make_cluster(m=3, n=5)
        cluster.register(0).write_stripe(stripe_of(3, 32, tag=1))
        report = Scrubber(cluster).scrub_register(0)
        assert report.fully_redundant
        assert report.redundancy == 5

    def test_stale_registers_listing(self):
        cluster, _ = cluster_with_stale_brick(registers=4)
        stale = Scrubber(cluster).stale_registers(range(4))
        assert stale == [0, 1, 2, 3]

    def test_scrub_costs_no_messages(self):
        cluster, _ = cluster_with_stale_brick()
        before = cluster.metrics.total_messages
        Scrubber(cluster).scrub(range(5))
        assert cluster.metrics.total_messages == before

    def test_blank_replacement_brick_classified_empty(self):
        """Regression: a promoted spare with no state must not pass the
        audit as redundant (it holds nothing)."""
        cluster = make_cluster(m=3, n=5)
        cluster.register(0).write_stripe(stripe_of(3, 32, tag=1))
        replace_with_blank_brick(cluster, 4)
        report = Scrubber(cluster).scrub_register(0)
        assert report.empty == [4]
        assert 4 not in report.current and 4 not in report.stale
        assert not report.fully_redundant

    def test_scrub_never_materializes_phantom_state(self):
        """Auditing an empty brick must not fabricate RegisterState on
        it — the scrubber is read-only."""
        cluster = make_cluster(m=3, n=5)
        cluster.register(0).write_stripe(stripe_of(3, 32, tag=1))
        replace_with_blank_brick(cluster, 4)
        Scrubber(cluster).scrub_register(0)
        assert not cluster.replicas[4].has_register(0)
        assert cluster.replicas[4].register_ids() == []

    def test_unwritten_register_everywhere_is_not_flagged(self):
        """A register that exists nowhere has nothing to re-protect."""
        cluster = make_cluster(m=3, n=5)
        report = Scrubber(cluster).scrub_register(7)
        assert report.newest_ts is None
        assert report.fully_redundant


class TestRebuilder:
    def test_rebuild_restores_full_redundancy(self):
        cluster, newer = cluster_with_stale_brick(registers=3)
        rebuilder = Rebuilder(cluster, route=1)
        report = rebuilder.rebuild(range(3))
        assert report.success
        assert report.repaired == 3
        scrubber = Scrubber(cluster)
        for register_id in range(3):
            assert scrubber.scrub_register(register_id).fully_redundant

    def test_rebuild_preserves_data(self):
        cluster, newer = cluster_with_stale_brick(registers=3)
        Rebuilder(cluster).rebuild(range(3))
        for register_id, stripe in newer.items():
            assert cluster.register(register_id).read_stripe() == stripe

    def test_rebuilt_brick_carries_load(self):
        """After rebuild, the repaired brick alone can compensate for
        losing a previously-current brick."""
        cluster, newer = cluster_with_stale_brick(victim=4, registers=2)
        Rebuilder(cluster).rebuild(range(2))
        cluster.crash(5)  # was current; now 4 must fill in
        for register_id, stripe in newer.items():
            assert cluster.register(register_id).read_stripe() == stripe

    def test_current_registers_skipped(self):
        cluster = make_cluster(m=3, n=5)
        cluster.register(0).write_stripe(stripe_of(3, 32, tag=1))
        report = Rebuilder(cluster).rebuild([0])
        assert report.already_current == 1
        assert report.repaired == 0

    def test_blank_replacement_brick_is_reprotected(self):
        """Regression: rebuild on a replaced (blank) brick must repair,
        not return "current" and skip the write-back."""
        cluster = make_cluster(m=3, n=5)
        stripes = {}
        for register_id in range(3):
            stripes[register_id] = stripe_of(3, 32, tag=register_id)
            cluster.register(register_id).write_stripe(stripes[register_id])
        replace_with_blank_brick(cluster, 4)
        rebuilder = Rebuilder(cluster, route=1)
        assert rebuilder.rebuild_register(0) == "repaired"
        report = rebuilder.rebuild(range(1, 3))
        assert report.repaired == 2 and report.already_current == 0
        scrubber = Scrubber(cluster)
        for register_id in range(3):
            audit = scrubber.scrub_register(register_id)
            assert audit.fully_redundant
            assert 4 in audit.current
        # The replacement brick can genuinely carry read load now.
        cluster.crash(1)
        for register_id, stripe in stripes.items():
            assert cluster.register(register_id, route=3).read_stripe() == stripe

    def test_rebuild_brick_convenience(self):
        cluster = make_cluster(m=3, n=5)
        for register_id in range(3):
            cluster.register(register_id).write_stripe(
                stripe_of(3, 32, tag=register_id)
            )
        cluster.crash(3)
        for register_id in range(3):
            cluster.register(register_id).write_stripe(
                stripe_of(3, 32, tag=50 + register_id)
            )
        report = Rebuilder(cluster).rebuild_brick(3, range(3))
        assert report.success
        assert cluster.nodes[3].is_up
        assert Scrubber(cluster).scrub_register(1).fully_redundant

    def test_crash_during_rebuild_still_terminates(self):
        """Regression: a brick crashing mid-rebuild must not hang the
        write-back.

        The old code snapshotted ``len(live_processes())`` before
        spawning and demanded that many replies; a crash between the
        read and store phases made the count unreachable and the phase
        retransmitted forever.  Coverage is now re-resolved per reply.
        """
        cluster, newer = cluster_with_stale_brick(registers=1)
        rebuilder = Rebuilder(cluster, route=1)
        # Fires between the read phase (replies ~t+2) and the store
        # deliveries (~t+3): brick 5 never sees the write-back.
        cluster.transport.set_timer(2.5, lambda: cluster.crash(5))
        outcome = rebuilder.rebuild_register(0)
        assert outcome == "repaired"
        # The rebuild reached every survivor despite the crash: the
        # previously stale brick 4 is current again.
        report = Scrubber(cluster).scrub_register(0)
        assert report.down == [5]
        assert not report.stale and 4 in report.current
        assert cluster.register(0, route=3).read_stripe() == newer[0]

    def test_crash_during_rebuild_batch(self):
        """A crash mid-batch terminates and later registers still repair."""
        cluster, _ = cluster_with_stale_brick(registers=3)
        rebuilder = Rebuilder(cluster, route=1)
        cluster.transport.set_timer(2.5, lambda: cluster.crash(5))
        report = rebuilder.rebuild(range(3))
        assert report.attempted == 3
        assert report.aborted == 0
        scrubber = Scrubber(cluster)
        for register_id in range(3):
            report = scrubber.scrub_register(register_id)
            assert report.down == [5]
            assert not report.stale

    def test_rebuild_is_linearization_safe(self):
        """Rebuild concurrent with client writes never loses data."""
        cluster, _ = cluster_with_stale_brick(registers=1)
        rebuilder = Rebuilder(cluster, route=1)
        # Launch a client write concurrently with the rebuild.
        final = stripe_of(3, 32, tag=999)
        write_process = cluster.register(0, route=2).write_stripe_async(final)
        rebuilder.rebuild([0])
        cluster.env.run()
        value = cluster.register(0, route=3).read_stripe()
        if write_process.value == "OK":
            assert value == final
        else:
            assert value is not None
