"""Scrubbing and rebuilding (distributed repair)."""

import pytest

from repro.core.rebuild import Rebuilder, Scrubber
from tests.conftest import make_cluster, stripe_of


def cluster_with_stale_brick(victim=4, registers=5):
    """Write data, crash a brick, write newer data, recover the brick."""
    cluster = make_cluster(m=3, n=5)
    for register_id in range(registers):
        cluster.register(register_id).write_stripe(
            stripe_of(3, 32, tag=register_id)
        )
    cluster.crash(victim)
    newer = {}
    for register_id in range(registers):
        stripe = stripe_of(3, 32, tag=100 + register_id)
        cluster.register(register_id).write_stripe(stripe)
        newer[register_id] = stripe
    cluster.recover(victim)
    return cluster, newer


class TestScrubber:
    def test_detects_stale_brick(self):
        cluster, _newer = cluster_with_stale_brick()
        report = Scrubber(cluster).scrub_register(0)
        assert report.stale == [4]
        assert sorted(report.current) == [1, 2, 3, 5]
        assert not report.fully_redundant
        assert report.redundancy == 4

    def test_detects_down_brick(self):
        cluster, _ = cluster_with_stale_brick()
        cluster.crash(2)
        report = Scrubber(cluster).scrub_register(0)
        assert report.down == [2]

    def test_fully_redundant_cluster(self):
        cluster = make_cluster(m=3, n=5)
        cluster.register(0).write_stripe(stripe_of(3, 32, tag=1))
        report = Scrubber(cluster).scrub_register(0)
        assert report.fully_redundant
        assert report.redundancy == 5

    def test_stale_registers_listing(self):
        cluster, _ = cluster_with_stale_brick(registers=4)
        stale = Scrubber(cluster).stale_registers(range(4))
        assert stale == [0, 1, 2, 3]

    def test_scrub_costs_no_messages(self):
        cluster, _ = cluster_with_stale_brick()
        before = cluster.metrics.total_messages
        Scrubber(cluster).scrub(range(5))
        assert cluster.metrics.total_messages == before


class TestRebuilder:
    def test_rebuild_restores_full_redundancy(self):
        cluster, newer = cluster_with_stale_brick(registers=3)
        rebuilder = Rebuilder(cluster, route=1)
        report = rebuilder.rebuild(range(3))
        assert report.success
        assert report.repaired == 3
        scrubber = Scrubber(cluster)
        for register_id in range(3):
            assert scrubber.scrub_register(register_id).fully_redundant

    def test_rebuild_preserves_data(self):
        cluster, newer = cluster_with_stale_brick(registers=3)
        Rebuilder(cluster).rebuild(range(3))
        for register_id, stripe in newer.items():
            assert cluster.register(register_id).read_stripe() == stripe

    def test_rebuilt_brick_carries_load(self):
        """After rebuild, the repaired brick alone can compensate for
        losing a previously-current brick."""
        cluster, newer = cluster_with_stale_brick(victim=4, registers=2)
        Rebuilder(cluster).rebuild(range(2))
        cluster.crash(5)  # was current; now 4 must fill in
        for register_id, stripe in newer.items():
            assert cluster.register(register_id).read_stripe() == stripe

    def test_current_registers_skipped(self):
        cluster = make_cluster(m=3, n=5)
        cluster.register(0).write_stripe(stripe_of(3, 32, tag=1))
        report = Rebuilder(cluster).rebuild([0])
        assert report.already_current == 1
        assert report.repaired == 0

    def test_rebuild_brick_convenience(self):
        cluster = make_cluster(m=3, n=5)
        for register_id in range(3):
            cluster.register(register_id).write_stripe(
                stripe_of(3, 32, tag=register_id)
            )
        cluster.crash(3)
        for register_id in range(3):
            cluster.register(register_id).write_stripe(
                stripe_of(3, 32, tag=50 + register_id)
            )
        report = Rebuilder(cluster).rebuild_brick(3, range(3))
        assert report.success
        assert cluster.nodes[3].is_up
        assert Scrubber(cluster).scrub_register(1).fully_redundant

    def test_rebuild_is_linearization_safe(self):
        """Rebuild concurrent with client writes never loses data."""
        cluster, _ = cluster_with_stale_brick(registers=1)
        rebuilder = Rebuilder(cluster, route=1)
        # Launch a client write concurrently with the rebuild.
        final = stripe_of(3, 32, tag=999)
        write_process = cluster.register(0, route=2).write_stripe_async(final)
        rebuilder.rebuild([0])
        cluster.env.run()
        value = cluster.register(0, route=3).read_stripe()
        if write_process.value == "OK":
            assert value == final
        else:
            assert value is not None
