"""The replica log and its three query functions (Section 4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.log import BOTTOM, LogEntry, ReplicaLog
from repro.timestamps import LOW_TS, Timestamp


def ts(time, pid=1):
    return Timestamp(time, pid)


class TestInitialLog:
    def test_initial_contents(self):
        log = ReplicaLog()
        assert len(log) == 1
        assert log.max_ts() == LOW_TS
        assert log.max_block() == (LOW_TS, None)

    def test_initial_max_below(self):
        log = ReplicaLog()
        assert log.max_below(ts(5)) == (LOW_TS, None)
        assert log.max_below(LOW_TS) == (LOW_TS, None)


class TestQueries:
    def test_max_ts_tracks_highest(self):
        log = ReplicaLog()
        log.append(ts(3), b"a")
        log.append(ts(1), b"b")  # out of order arrival
        assert log.max_ts() == ts(3)

    def test_max_ts_includes_bottom_entries(self):
        """ord without value still advances max-ts (partial-write marker)."""
        log = ReplicaLog()
        log.append(ts(2), b"a")
        log.append(ts(7), BOTTOM)
        assert log.max_ts() == ts(7)

    def test_max_block_skips_bottom(self):
        log = ReplicaLog()
        log.append(ts(2), b"a")
        log.append(ts(7), BOTTOM)
        assert log.max_block() == (ts(2), b"a")

    def test_max_block_returns_nil_entry(self):
        log = ReplicaLog()
        log.append(ts(4), None)  # a recovery stored nil
        assert log.max_block() == (ts(4), None)

    def test_max_below_strictly_smaller(self):
        log = ReplicaLog()
        log.append(ts(2), b"a")
        log.append(ts(5), b"b")
        assert log.max_below(ts(5)) == (ts(2), b"a")
        assert log.max_below(ts(6)) == (ts(5), b"b")
        assert log.max_below(ts(2)) == (LOW_TS, None)

    def test_max_below_skips_bottom(self):
        log = ReplicaLog()
        log.append(ts(2), b"a")
        log.append(ts(4), BOTTOM)
        assert log.max_below(ts(9)) == (ts(2), b"a")

    def test_contains_and_entry_at(self):
        log = ReplicaLog()
        log.append(ts(3), b"x")
        assert log.contains_ts(ts(3))
        assert not log.contains_ts(ts(4))
        assert log.entry_at(ts(3)).block == b"x"
        assert log.entry_at(ts(4)) is None


class TestAppend:
    def test_append_keeps_sorted(self):
        log = ReplicaLog()
        for t in [5, 1, 3, 2, 4]:
            log.append(ts(t), bytes([t]))
        timestamps = [entry.ts for entry in log.entries()]
        assert timestamps == sorted(timestamps)

    def test_duplicate_ts_value_wins_over_bottom(self):
        log = ReplicaLog()
        log.append(ts(3), BOTTOM)
        log.append(ts(3), b"v")
        assert log.entry_at(ts(3)).block == b"v"
        assert len(log) == 2  # LowTS + one entry

    def test_duplicate_ts_value_not_replaced(self):
        log = ReplicaLog()
        log.append(ts(3), b"v")
        log.append(ts(3), b"w")  # same timestamp: ignored (set semantics)
        assert log.entry_at(ts(3)).block == b"v"

    def test_duplicate_bottom_ignored(self):
        log = ReplicaLog()
        log.append(ts(3), b"v")
        log.append(ts(3), BOTTOM)
        assert log.entry_at(ts(3)).block == b"v"


class TestTrim:
    def test_trim_below_keeps_entry_at_ts(self):
        log = ReplicaLog()
        for t in [1, 2, 3]:
            log.append(ts(t), bytes([t]))
        removed = log.trim_below(ts(3))
        assert removed == 3  # LowTS, ts1, ts2
        assert log.max_block() == (ts(3), b"\x03")

    def test_trim_preserves_value_when_tail_is_bottom(self):
        """GC must never leave the log without a value entry."""
        log = ReplicaLog()
        log.append(ts(1), b"a")
        log.append(ts(5), BOTTOM)
        removed = log.trim_below(ts(5))
        assert removed == 1  # only LowTS; ts1 kept as the newest value
        assert log.max_block() == (ts(1), b"a")

    def test_trim_nothing_below(self):
        log = ReplicaLog()
        log.append(ts(1), b"a")
        assert log.trim_below(LOW_TS) == 0

    def test_trim_everything_below_keeps_latest_value(self):
        log = ReplicaLog()
        log.append(ts(1), b"a")
        assert log.trim_below(ts(99)) == 1
        assert log.max_block() == (ts(1), b"a")

    def test_max_below_after_trim(self):
        """After GC, max-below falls back to (LowTS, nil)."""
        log = ReplicaLog()
        log.append(ts(1), b"a")
        log.append(ts(2), b"b")
        log.trim_below(ts(2))
        assert log.max_below(ts(2)) == (LOW_TS, None)


class TestPersistenceRoundtrip:
    def test_state_roundtrip(self):
        log = ReplicaLog()
        log.append(ts(1), b"a")
        log.append(ts(2), BOTTOM)
        log.append(ts(3), None)
        restored = ReplicaLog.from_state(log.to_state())
        assert restored.entries() == log.entries()
        assert restored.max_ts() == log.max_ts()

    @settings(deadline=None, max_examples=50)
    @given(st.lists(st.tuples(st.integers(1, 100), st.sampled_from(["v", "bottom", "nil"])), max_size=20))
    def test_roundtrip_random(self, ops):
        log = ReplicaLog()
        for time, kind in ops:
            block = {"v": bytes([time % 256]), "bottom": BOTTOM, "nil": None}[kind]
            log.append(ts(time), block)
        restored = ReplicaLog.from_state(log.to_state())
        assert restored.entries() == log.entries()


class TestInvariantsProperty:
    @settings(deadline=None, max_examples=60)
    @given(
        st.lists(
            st.tuples(st.integers(1, 50), st.booleans()),
            min_size=1, max_size=30,
        ),
        st.integers(1, 50),
    )
    def test_query_functions_agree_with_bruteforce(self, ops, probe):
        log = ReplicaLog()
        for time, has_value in ops:
            log.append(ts(time), bytes([time]) if has_value else BOTTOM)

        entries = log.entries()
        # max_ts
        assert log.max_ts() == max(e.ts for e in entries)
        # max_block
        value_entries = [e for e in entries if e.has_value]
        expected = max(value_entries, key=lambda e: e.ts)
        assert log.max_block() == (expected.ts, expected.block)
        # max_below
        below = [e for e in value_entries if e.ts < ts(probe)]
        if below:
            expected_below = max(below, key=lambda e: e.ts)
            assert log.max_below(ts(probe)) == (
                expected_below.ts, expected_below.block
            )
        else:
            assert log.max_below(ts(probe)) == (LOW_TS, None)
