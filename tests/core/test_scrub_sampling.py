"""Sampling scrub scheduler: math, determinism, coverage, regressions.

Covers the sampling primitives (:mod:`repro.scrub.sampler`) and the two
daemon regressions fixed alongside them:

* the daemon froze its register set at construction, so registers
  created after :meth:`ScrubDaemon.start` were never scrubbed;
* in audit mode (``repair=False``) the first-detection mark map
  ``_detected_at`` only shrank on repair completion, so marks for
  damage repaired behind the daemon's back (by a client's degraded
  read) accumulated forever.
"""

import pytest

from repro.errors import ConfigurationError
from repro.scrub import (
    PairSampler,
    RepairQueue,
    RevisitQueue,
    ScrubConfig,
    ScrubDaemon,
    detection_confidence,
    required_samples,
)
from tests.conftest import stripe_of
from tests.core.test_scrub_daemon import (
    REGISTERS,
    brick_is_clean,
    corrupt_on,
    populated_cluster,
)


class TestConfidenceMath:
    def test_required_samples_hits_target(self):
        # The derived budget actually buys the target confidence.
        for confidence in (0.5, 0.9, 0.95, 0.99):
            for rate in (0.001, 0.01, 0.1):
                samples = required_samples(confidence, rate, 10**9)
                assert detection_confidence(samples, rate) >= confidence
                # ...and is not grossly over-provisioned: one fewer
                # sample would miss the target.
                assert detection_confidence(samples - 1, rate) < confidence

    def test_budget_is_fleet_size_independent(self):
        small = required_samples(0.95, 0.01, 10**4)
        huge = required_samples(0.95, 0.01, 10**9)
        assert small == huge == 299

    def test_clamps_to_pair_space(self):
        # Tiny clusters degenerate into the full sweep.
        assert required_samples(0.95, 0.01, 20) == 20
        assert required_samples(0.95, 0.01, 0) == 0

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ConfigurationError):
            required_samples(1.0, 0.01, 100)
        with pytest.raises(ConfigurationError):
            required_samples(0.95, 0.0, 100)

    def test_confidence_edge_cases(self):
        assert detection_confidence(0, 0.01) == 0.0
        assert detection_confidence(10, 0.0) == 0.0
        assert detection_confidence(1, 1.0) == 1.0


class TestPairSampler:
    PAIRS = [(r, p) for r in range(8) for p in range(1, 6)]

    def test_fixed_seed_is_deterministic(self):
        a = PairSampler(seed=42)
        b = PairSampler(seed=42)
        for _ in range(10):
            assert a.draw(self.PAIRS, 7) == b.draw(self.PAIRS, 7)

    def test_different_seeds_diverge(self):
        a = PairSampler(seed=1)
        b = PairSampler(seed=2)
        sequences = (
            [a.draw(self.PAIRS, 7) for _ in range(5)],
            [b.draw(self.PAIRS, 7) for _ in range(5)],
        )
        assert sequences[0] != sequences[1]

    def test_count_is_an_upper_bound(self):
        sampler = PairSampler(seed=0)
        for _ in range(20):
            drawn = sampler.draw(self.PAIRS, 7)
            assert len(drawn) <= 7
            assert len(set(drawn)) == len(drawn)  # no duplicates
            assert all(pair in self.PAIRS for pair in drawn)

    def test_eventual_coverage_under_aging(self):
        # The coverage bound: with P pairs, budget b, and aging share
        # max(1, int(b * aging_fraction)) per draw, every pair is
        # visited within ceil(P / share) cycles — no matter where the
        # uniform draws land.
        pairs = self.PAIRS  # P = 40
        budget = 8
        sampler = PairSampler(seed=9, aging_fraction=0.25)
        share = max(1, int(budget * 0.25))  # = 2
        bound = -(-len(pairs) // share)  # = 20 cycles
        seen = set()
        for _ in range(bound):
            seen.update(sampler.draw(pairs, budget))
        assert seen == set(pairs)

    def test_zero_aging_disables_cursor(self):
        sampler = PairSampler(seed=0, aging_fraction=0.0)
        drawn = sampler.draw(self.PAIRS, 5)
        assert len(drawn) == 5  # pure uniform draws, no cursor share

    def test_empty_inputs(self):
        sampler = PairSampler(seed=0)
        assert sampler.draw([], 10) == []
        assert sampler.draw(self.PAIRS, 0) == []

    def test_rejects_bad_aging_fraction(self):
        with pytest.raises(ConfigurationError):
            PairSampler(aging_fraction=1.5)


class TestRevisitQueue:
    def test_severity_order_fifo_ties(self):
        queue = RevisitQueue()
        queue.push(1, severity=1.0)
        queue.push(2, severity=3.0)
        queue.push(3, severity=1.0)
        assert queue.pop() == 2  # highest severity first
        assert queue.pop() == 1  # FIFO among equals
        assert queue.pop() == 3
        assert queue.pop() is None

    def test_repush_keeps_max_severity(self):
        queue = RevisitQueue()
        queue.push(1, severity=2.0)
        queue.push(1, severity=1.0)  # lower: no-op
        queue.push(2, severity=1.5)
        assert len(queue) == 2
        assert queue.pop() == 1
        queue.push(3, severity=5.0)
        queue.push(3, severity=6.0)  # higher: supersedes
        queue.push(2, severity=1.0)
        assert queue.pop() == 3


class TestRepairQueue:
    def test_inflight_budget(self):
        repairs = RepairQueue(max_inflight=2)
        for register_id in (1, 2, 3, 4):
            repairs.offer(register_id, severity=float(register_id))
        # Severity order, capped at the budget.
        assert repairs.next_ready() == 4
        assert repairs.next_ready() == 3
        assert repairs.next_ready() is None  # budget spent
        assert repairs.inflight == 2 and repairs.queued == 2
        repairs.finished(4)
        assert repairs.next_ready() == 2  # slot freed -> next admitted

    def test_offer_while_inflight_is_dropped(self):
        repairs = RepairQueue(max_inflight=1)
        repairs.offer(7)
        assert repairs.next_ready() == 7
        repairs.offer(7)  # already being repaired
        assert repairs.queued == 0
        repairs.finished(7)
        assert repairs.next_ready() is None


class TestLiveRegisterResolution:
    """Regression: registers created after start() must get scrubbed."""

    def test_new_register_is_scrubbed_sweep_mode(self):
        cluster, _stripes = populated_cluster()
        daemon = ScrubDaemon(
            cluster, config=ScrubConfig(interval=5.0, bricks_per_step=4)
        )
        daemon.start()
        cluster.run(until=cluster.env.now + 50.0)
        # A register born *after* the daemon started...
        new_id = REGISTERS + 5
        assert cluster.register(new_id).write_stripe(
            stripe_of(3, 32, new_id)
        ) == "OK"
        corrupt_on(cluster, pid=2, register_id=new_id)
        cluster.run(until=cluster.env.now + 600.0)
        daemon.stop()
        # ...was found and repaired by the background scan alone.
        assert any(
            register_id == new_id
            for _t, _pid, register_id in daemon.detections
        )
        assert brick_is_clean(cluster, 2, new_id)

    def test_new_register_is_scrubbed_sample_mode(self):
        cluster, _stripes = populated_cluster()
        daemon = ScrubDaemon(
            cluster,
            config=ScrubConfig(mode="sample", interval=5.0, seed=3),
        )
        daemon.start()
        cluster.run(until=cluster.env.now + 50.0)
        new_id = REGISTERS + 9
        assert cluster.register(new_id).write_stripe(
            stripe_of(3, 32, new_id)
        ) == "OK"
        corrupt_on(cluster, pid=4, register_id=new_id)
        cluster.run(until=cluster.env.now + 600.0)
        daemon.stop()
        assert any(
            register_id == new_id
            for _t, _pid, register_id in daemon.detections
        )
        assert brick_is_clean(cluster, 4, new_id)

    def test_sweep_accounting_survives_growth(self):
        # Adding registers mid-sweep must not wedge the round-robin:
        # passes still complete and count.
        cluster, _stripes = populated_cluster()
        daemon = ScrubDaemon(
            cluster, config=ScrubConfig(interval=5.0, bricks_per_step=3)
        )
        daemon.start()
        for extra in range(3):
            cluster.run(until=cluster.env.now + 60.0)
            new_id = REGISTERS + 20 + extra
            assert cluster.register(new_id).write_stripe(
                stripe_of(3, 32, new_id)
            ) == "OK"
        cluster.run(until=cluster.env.now + 600.0)
        daemon.stop()
        assert daemon.sweeps_completed >= 2
        # The current snapshot covers every live register.
        assert set(daemon.registers) == set(cluster.register_ids())


class TestAuditModeMarks:
    """Regression: ``_detected_at`` must not leak in audit mode."""

    def test_marks_clear_when_scan_verifies_clean(self):
        cluster, stripes = populated_cluster()
        corrupt_on(cluster, pid=2, register_id=1)
        daemon = ScrubDaemon(cluster, config=ScrubConfig(repair=False))
        daemon.sweep_now()
        assert daemon.summary()["tracked_marks"] > 0
        assert daemon.repairs_done == 0  # audit mode: no write-backs
        # A client's degraded read repairs the brick behind the
        # daemon's back...
        assert cluster.register(1).read_stripe() == stripes[1]
        assert brick_is_clean(cluster, 2, 1)
        # ...and the next audit pass, seeing it clean, drops the mark.
        daemon.sweep_now()
        assert daemon.summary()["tracked_marks"] == 0

    def test_mark_map_is_bounded(self):
        cluster, _stripes = populated_cluster()
        daemon = ScrubDaemon(
            cluster,
            config=ScrubConfig(repair=False, detected_limit=3),
        )
        for pid in (1, 2, 3, 4, 5):
            daemon._mark_dirty(pid, 0)
            daemon._mark_dirty(pid, 1)
        assert daemon.summary()["tracked_marks"] <= 3


class TestSampledDaemon:
    def test_sampled_schedule_detects_and_repairs(self):
        cluster, _stripes = populated_cluster()
        corrupt_on(cluster, pid=1, register_id=2)
        daemon = ScrubDaemon(
            cluster,
            config=ScrubConfig(mode="sample", interval=5.0, seed=0),
        )
        daemon.start()
        cluster.run(until=cluster.env.now + 600.0)
        daemon.stop()
        assert daemon.detections
        assert daemon.repairs_done >= 1
        assert brick_is_clean(cluster, 1, 2)
        assert daemon.summary()["mode"] == "sample"

    def test_fixed_seed_scan_order_is_identical(self):
        order = []
        for _run in range(2):
            cluster, _stripes = populated_cluster()
            daemon = ScrubDaemon(
                cluster,
                config=ScrubConfig(
                    mode="sample", interval=5.0, seed=11,
                    samples_per_tick=6,
                ),
            )
            scans = []
            original = daemon._scan_one
            daemon._scan_one = lambda pid, rid: (
                scans.append((pid, rid)), original(pid, rid)
            )[-1]
            daemon.start()
            cluster.run(until=cluster.env.now + 200.0)
            daemon.stop()
            order.append(scans)
        assert order[0] == order[1]
        assert order[0]  # the schedule actually scanned something

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            ScrubConfig(mode="adaptive")
