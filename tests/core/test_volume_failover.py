"""Logical-volume coordinator failover (client multipathing)."""

import pytest

from repro import LogicalVolume
from repro.core.messages import OrderReadReq, WriteReq
from repro.errors import StorageError
from repro.sim.failures import MessageCountTrigger
from tests.conftest import block_of, make_cluster, stripe_of


class TestFailover:
    def test_read_fails_over_when_coordinator_dies_midway(self):
        cluster = make_cluster(m=3, n=5)
        volume = LogicalVolume(cluster, num_stripes=2, coordinator_pid=1)
        data = block_of(32, tag=1)
        volume.write(0, data)
        # Crash coordinator 1 after its next Order&Read fan-out begins.
        MessageCountTrigger(cluster.network, cluster.nodes[1], 2, OrderReadReq)
        # A write via brick 1 dies mid-operation; the volume must retry
        # through another brick and still succeed.
        result = volume.write(0, block_of(32, tag=2))
        assert result == "OK"
        assert not cluster.nodes[1].is_up
        assert volume.read(0) == block_of(32, tag=2)

    def test_preferred_coordinator_down_uses_first_live(self):
        cluster = make_cluster(m=3, n=5)
        volume = LogicalVolume(cluster, num_stripes=2, coordinator_pid=1)
        cluster.crash(1)
        data = block_of(32, tag=3)
        assert volume.write(0, data) == "OK"
        assert volume.read(0) == data

    def test_explicit_pid_down_falls_back(self):
        cluster = make_cluster(m=3, n=5)
        volume = LogicalVolume(cluster, num_stripes=2)
        cluster.crash(4)
        assert volume.write(1, block_of(32, tag=4), route=4) == "OK"

    def test_failover_preserves_strictness(self):
        """The first coordinator's partial write and the retried write
        must not leave mixed state visible."""
        cluster = make_cluster(m=3, n=5)
        volume = LogicalVolume(cluster, num_stripes=1, coordinator_pid=1)
        original = block_of(32, tag=5)
        volume.write(0, original)
        MessageCountTrigger(cluster.network, cluster.nodes[1], 2, WriteReq)
        replacement = block_of(32, tag=6)
        result = volume.write(0, replacement)
        assert result == "OK"
        # Every subsequent read agrees.
        first = volume.read(0)
        assert first == replacement
        for pid in (2, 3, 4, 5):
            assert volume.read(0, route=pid) == first

    def test_gives_up_after_bounded_attempts(self):
        cluster = make_cluster(m=3, n=5, op_timeout=30.0)
        volume = LogicalVolume(cluster, num_stripes=1)
        volume._MAX_FAILOVERS = 2
        for pid in (3, 4, 5):
            cluster.crash(pid)  # below quorum: every attempt aborts...
        # ...but aborts are returned, not retried; kill coordinators so
        # attempts raise Interrupt instead.
        from repro.types import ABORT

        assert volume.read(0) is ABORT  # op_timeout turns it into abort
