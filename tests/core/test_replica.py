"""Replica handlers (Algorithm 2 + Modify), driven directly."""

import pytest

from repro.core.log import BOTTOM
from repro.core.messages import (
    ALL,
    GcReq,
    ModifyReply,
    ModifyReq,
    OrderReadReply,
    OrderReadReq,
    OrderReply,
    OrderReq,
    ReadReply,
    ReadReq,
    WriteReply,
    WriteReq,
)
from repro.core.replica import Replica
from repro.erasure import make_code
from repro.sim.kernel import Environment
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Node
from repro.timestamps import HIGH_TS, LOW_TS, Timestamp


def ts(time, pid=9):
    return Timestamp(time, pid)


class Harness:
    """One replica plus a fake coordinator endpoint capturing replies."""

    def __init__(self, process_index=1, m=2, n=3):
        self.env = Environment()
        self.network = Network(self.env, NetworkConfig())
        self.node = Node(self.env, self.network, process_index)
        self.code = make_code(m, n)
        self.replica = Replica(self.node, self.code, process_index)
        self.replies = []
        self.coordinator = Node(self.env, self.network, 100)
        for reply_type in (
            ReadReply, OrderReply, OrderReadReply, WriteReply, ModifyReply
        ):
            self.coordinator.register_handler(
                reply_type, lambda src, reply: self.replies.append(reply)
            )

    def send(self, request):
        self.coordinator.send(self.node.process_id, request)
        self.env.run()
        return self.replies[-1] if self.replies else None

    def rid(self):
        # unique request ids per send
        self._rid = getattr(self, "_rid", 0) + 1
        return self._rid


class TestReadHandler:
    def test_fresh_register(self):
        h = Harness()
        reply = h.send(ReadReq(register_id=0, request_id=1, targets=frozenset({1})))
        assert reply.status
        assert reply.val_ts == LOW_TS
        assert reply.block is None  # nil

    def test_non_target_returns_no_block(self):
        h = Harness()
        h.send(WriteReq(register_id=0, request_id=1, block=b"v", ts=ts(1)))
        reply = h.send(ReadReq(register_id=0, request_id=2, targets=frozenset({2})))
        assert reply.status
        assert reply.block is None
        assert reply.val_ts == ts(1)

    def test_target_returns_block(self):
        h = Harness()
        h.send(WriteReq(register_id=0, request_id=1, block=b"v", ts=ts(1)))
        reply = h.send(ReadReq(register_id=0, request_id=2, targets=frozenset({1})))
        assert reply.block == b"v"

    def test_pending_write_makes_status_false(self):
        """ord-ts > max-ts(log) signals a write in progress."""
        h = Harness()
        h.send(OrderReq(register_id=0, request_id=1, ts=ts(5)))
        reply = h.send(ReadReq(register_id=0, request_id=2, targets=frozenset({1})))
        assert not reply.status

    def test_read_does_not_modify_state(self):
        h = Harness()
        h.send(ReadReq(register_id=0, request_id=1, targets=frozenset({1})))
        state = h.replica.state(0)
        assert len(state.log) == 1
        assert state.ord_ts == LOW_TS


class TestOrderHandler:
    def test_order_accepts_fresh_ts(self):
        h = Harness()
        reply = h.send(OrderReq(register_id=0, request_id=1, ts=ts(5)))
        assert reply.status
        assert h.replica.state(0).ord_ts == ts(5)

    def test_order_rejects_older_than_ord(self):
        h = Harness()
        h.send(OrderReq(register_id=0, request_id=1, ts=ts(5)))
        reply = h.send(OrderReq(register_id=0, request_id=2, ts=ts(3)))
        assert not reply.status
        assert h.replica.state(0).ord_ts == ts(5)

    def test_order_rejects_not_above_log(self):
        h = Harness()
        h.send(WriteReq(register_id=0, request_id=1, block=b"v", ts=ts(5)))
        reply = h.send(OrderReq(register_id=0, request_id=2, ts=ts(5)))
        assert not reply.status

    def test_order_equal_to_ord_ts_accepted(self):
        """ts >= ord-ts: re-ordering the same timestamp succeeds."""
        h = Harness()
        h.send(OrderReq(register_id=0, request_id=1, ts=ts(5)))
        reply = h.send(OrderReq(register_id=0, request_id=2, ts=ts(5)))
        assert reply.status

    def test_ord_ts_persisted(self):
        h = Harness()
        h.send(OrderReq(register_id=0, request_id=1, ts=ts(5)))
        h.node.crash()
        h.node.recover()
        assert h.replica.state(0).ord_ts == ts(5)


class TestOrderReadHandler:
    def test_orders_and_returns_block(self):
        h = Harness()
        h.send(WriteReq(register_id=0, request_id=1, block=b"v", ts=ts(2)))
        reply = h.send(
            OrderReadReq(register_id=0, request_id=2, j=ALL, max_ts=HIGH_TS, ts=ts(9))
        )
        assert reply.status
        assert reply.lts == ts(2)
        assert reply.block == b"v"
        assert h.replica.state(0).ord_ts == ts(9)

    def test_respects_max_bound(self):
        h = Harness()
        h.send(WriteReq(register_id=0, request_id=1, block=b"old", ts=ts(2)))
        h.send(WriteReq(register_id=0, request_id=2, block=b"new", ts=ts(4)))
        reply = h.send(
            OrderReadReq(register_id=0, request_id=3, j=ALL, max_ts=ts(4), ts=ts(9))
        )
        assert reply.lts == ts(2)
        assert reply.block == b"old"

    def test_j_targeting(self):
        h = Harness(process_index=2)
        h.send(WriteReq(register_id=0, request_id=1, block=b"v", ts=ts(1)))
        mine = h.send(
            OrderReadReq(register_id=0, request_id=2, j=2, max_ts=HIGH_TS, ts=ts(5))
        )
        assert mine.block == b"v"
        other = h.send(
            OrderReadReq(register_id=0, request_id=3, j=1, max_ts=HIGH_TS, ts=ts(6))
        )
        assert other.status
        assert other.block is None

    def test_stale_ts_rejected_without_block(self):
        h = Harness()
        h.send(OrderReq(register_id=0, request_id=1, ts=ts(9)))
        reply = h.send(
            OrderReadReq(register_id=0, request_id=2, j=ALL, max_ts=HIGH_TS, ts=ts(3))
        )
        assert not reply.status
        assert reply.block is None
        assert reply.lts == LOW_TS


class TestWriteHandler:
    def test_write_appends(self):
        h = Harness()
        reply = h.send(WriteReq(register_id=0, request_id=1, block=b"v", ts=ts(1)))
        assert reply.status
        assert h.replica.state(0).log.max_block() == (ts(1), b"v")

    def test_write_stale_rejected(self):
        h = Harness()
        h.send(WriteReq(register_id=0, request_id=1, block=b"new", ts=ts(5)))
        reply = h.send(WriteReq(register_id=0, request_id=2, block=b"old", ts=ts(3)))
        assert not reply.status
        assert h.replica.state(0).log.max_block() == (ts(5), b"new")

    def test_write_below_ord_rejected(self):
        h = Harness()
        h.send(OrderReq(register_id=0, request_id=1, ts=ts(10)))
        reply = h.send(WriteReq(register_id=0, request_id=2, block=b"v", ts=ts(5)))
        assert not reply.status

    def test_write_nil_allowed(self):
        """Recovery may store nil (the rolled-back state)."""
        h = Harness()
        reply = h.send(WriteReq(register_id=0, request_id=1, block=None, ts=ts(2)))
        assert reply.status
        assert h.replica.state(0).log.max_block() == (ts(2), None)

    def test_log_persisted_across_crash(self):
        h = Harness()
        h.send(WriteReq(register_id=0, request_id=1, block=b"v", ts=ts(1)))
        h.node.crash()
        h.node.recover()
        assert h.replica.state(0).log.max_block() == (ts(1), b"v")


class TestModifyHandler:
    def _prime(self, h, block, write_ts):
        h.send(WriteReq(register_id=0, request_id=h.rid() + 50, block=block, ts=write_ts))

    def test_target_process_stores_new_block(self):
        h = Harness(process_index=1, m=2, n=3)
        self._prime(h, b"old", ts(1))
        reply = h.send(
            ModifyReq(
                register_id=0, request_id=99, j=1,
                old_block=b"old", new_block=b"new", ts_j=ts(1), ts=ts(2),
            )
        )
        assert reply.status
        assert h.replica.state(0).log.max_block() == (ts(2), b"new")

    def test_parity_process_recomputes(self):
        h = Harness(process_index=3, m=2, n=3)
        stripe = [b"a", b"b"]
        parity = h.code.encode(stripe)[2]
        self._prime(h, parity, ts(1))
        new_block = b"z"
        reply = h.send(
            ModifyReq(
                register_id=0, request_id=99, j=1,
                old_block=b"a", new_block=new_block, ts_j=ts(1), ts=ts(2),
            )
        )
        assert reply.status
        expected = h.code.encode([b"z", b"b"])[2]
        assert h.replica.state(0).log.max_block() == (ts(2), expected)

    def test_other_data_process_logs_bottom(self):
        h = Harness(process_index=2, m=2, n=3)
        self._prime(h, b"b", ts(1))
        reply = h.send(
            ModifyReq(
                register_id=0, request_id=99, j=1,
                old_block=b"a", new_block=b"z", ts_j=ts(1), ts=ts(2),
            )
        )
        assert reply.status
        entry = h.replica.state(0).log.entry_at(ts(2))
        assert entry.block is BOTTOM
        # max-block still returns the old value
        assert h.replica.state(0).log.max_block() == (ts(1), b"b")

    def test_version_mismatch_rejected(self):
        """ts_j must equal max-ts(log): stale Modify is refused."""
        h = Harness(process_index=1, m=2, n=3)
        self._prime(h, b"v2", ts(2))
        reply = h.send(
            ModifyReq(
                register_id=0, request_id=99, j=1,
                old_block=b"v1", new_block=b"z", ts_j=ts(1), ts=ts(3),
            )
        )
        assert not reply.status

    def test_parity_without_base_value_rejected(self):
        """Modify on a never-written register cannot compute parity."""
        h = Harness(process_index=3, m=2, n=3)
        reply = h.send(
            ModifyReq(
                register_id=0, request_id=99, j=1,
                old_block=None, new_block=b"z", ts_j=LOW_TS, ts=ts(1),
            )
        )
        assert not reply.status


class TestGcHandler:
    def test_gc_trims(self):
        h = Harness()
        for t in (1, 2, 3):
            h.send(WriteReq(register_id=0, request_id=t, block=bytes([t]), ts=ts(t)))
        h.send(GcReq(register_id=0, request_id=50, ts=ts(3)))
        state = h.replica.state(0)
        assert len(state.log) == 1
        assert state.log.max_block() == (ts(3), b"\x03")

    def test_gc_persists(self):
        h = Harness()
        for t in (1, 2):
            h.send(WriteReq(register_id=0, request_id=t, block=bytes([t]), ts=ts(t)))
        h.send(GcReq(register_id=0, request_id=50, ts=ts(2)))
        h.node.crash()
        h.node.recover()
        assert len(h.replica.state(0).log) == 1


class TestJournalByteBudget:
    """GC keeps the persisted journal O(live data), not O(records).

    Regression: count-only compaction (> max(32, 4*len(log)) records)
    let each register's journal retain up to 32 stale delta records —
    full payload blocks included — that GC had already trimmed from the
    live log, quintupling the GC-on stable-storage footprint (the
    ``test_bench_gc`` assertion).  ``Replica._journal_oversized`` adds
    the byte budget: compact once the journal's persisted bytes exceed
    max(_JOURNAL_MIN_BYTES, _JOURNAL_FACTOR * live-state bytes).
    """

    def test_journal_bytes_bounded_by_live_state(self):
        from repro.core.replica import _JOURNAL_FACTOR, _JOURNAL_MIN_BYTES

        h = Harness()
        block = b"x" * 512  # one append record dwarfs the byte budget
        key = h.replica._journal_key(0)
        for t in range(1, 31):
            h.send(WriteReq(
                register_id=0, request_id=t, block=block, ts=ts(t)
            ))
            h.send(GcReq(register_id=0, request_id=100 + t, ts=ts(t)))
            # The live log holds one entry (~one block); the journal
            # must never hold bytes for more than a handful of them,
            # no matter how many writes have flowed.
            assert h.node.stable.size_of(key) <= max(
                _JOURNAL_MIN_BYTES, (_JOURNAL_FACTOR + 1) * (512 + 128)
            )
        # And the compacted journal still recovers the right state.
        h.node.crash()
        h.node.recover()
        state = h.replica.state(0)
        assert len(state.log) == 1
        assert state.log.max_block() == (ts(30), block)

    def test_byte_floor_amortizes_compaction(self):
        # Small journals stay under the byte floor, so compaction is
        # amortized: the journal accumulates several delta records
        # before one compaction rewrite, rather than rewriting on
        # every trim (which would defeat the point of journaling).
        from repro.core.replica import _JOURNAL_MIN_BYTES

        h = Harness()
        key = h.replica._journal_key(0)
        lengths = []
        for t in range(1, 9):
            h.send(WriteReq(
                register_id=0, request_id=t, block=bytes([t]), ts=ts(t)
            ))
            h.send(GcReq(register_id=0, request_id=100 + t, ts=ts(t)))
            lengths.append(h.node.stable.journal_len(key))
        # The journal grew past a single record between compactions...
        assert max(lengths) >= 4
        # ...and its final size respects the byte floor plus at most
        # one uncompacted record's slack.
        assert h.node.stable.size_of(key) <= _JOURNAL_MIN_BYTES + 512
        # A compaction did eventually fire (length dropped).
        assert any(
            later < earlier
            for earlier, later in zip(lengths, lengths[1:])
        )


class TestDuplicateSuppression:
    def test_duplicate_request_gets_cached_reply(self):
        h = Harness()
        request = WriteReq(register_id=0, request_id=7, block=b"v", ts=ts(1))
        first = h.send(request)
        assert first.status
        second = h.send(request)  # retransmission
        assert second.status  # NOT re-executed (would be false)
        assert len(h.replica.state(0).log) == 2  # LowTS + one entry

    def test_cache_cleared_on_crash(self):
        h = Harness()
        request = WriteReq(register_id=0, request_id=7, block=b"v", ts=ts(1))
        h.send(request)
        h.node.crash()
        h.node.recover()
        retry = h.send(request)
        assert not retry.status  # re-executed against the persisted log

    def test_per_register_isolation(self):
        h = Harness()
        h.send(WriteReq(register_id=0, request_id=1, block=b"a", ts=ts(1)))
        h.send(WriteReq(register_id=1, request_id=2, block=b"b", ts=ts(1)))
        assert h.replica.state(0).log.max_block()[1] == b"a"
        assert h.replica.state(1).log.max_block()[1] == b"b"
