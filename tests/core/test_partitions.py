"""Network partitions: the protocol's CP behaviour.

A partition cannot make the register return stale or conflicting data:
operations complete only where an m-quorum is reachable; the minority
side waits (or aborts under op_timeout).  After healing, everything
reconciles through timestamps.
"""

import pytest

from repro.types import ABORT
from tests.conftest import make_cluster, stripe_of


class TestPartitionSemantics:
    def test_majority_side_keeps_serving(self):
        cluster = make_cluster(m=3, n=5)  # quorum = 4
        register = cluster.register(0, route=1)
        stripe = stripe_of(3, 32, tag=1)
        register.write_stripe(stripe)
        cluster.network.partition({5}, {1, 2, 3, 4})
        assert register.read_stripe() == stripe
        newer = stripe_of(3, 32, tag=2)
        assert register.write_stripe(newer) == "OK"
        assert register.read_stripe() == newer

    def test_minority_side_blocks(self):
        cluster = make_cluster(m=3, n=5, op_timeout=40.0)
        register_majority = cluster.register(0, route=1)
        register_majority.write_stripe(stripe_of(3, 32, tag=1))
        cluster.network.partition({4, 5}, {1, 2, 3})
        minority = cluster.register(0, route=4)
        assert minority.read_stripe() is ABORT  # cannot reach a quorum

    def test_no_split_brain_writes(self):
        """With a 2/3 split of five bricks, at most one side can write."""
        cluster = make_cluster(m=3, n=5, op_timeout=40.0)
        cluster.register(0, route=1).write_stripe(
            stripe_of(3, 32, tag=1)
        )
        cluster.network.partition({1, 2}, {3, 4, 5})
        side_a = cluster.register(0, route=1).write_stripe(
            stripe_of(3, 32, tag=2)
        )
        side_b = cluster.register(0, route=3).write_stripe(
            stripe_of(3, 32, tag=3)
        )
        # Neither side has 4 bricks: both abort; no divergence possible.
        assert side_a is ABORT
        assert side_b is ABORT
        cluster.network.heal_partition()
        value = cluster.register(0, route=2).read_stripe()
        # Aborted writes may or may not have taken effect, but all
        # readers agree after healing.
        again = cluster.register(0, route=5).read_stripe()
        assert value == again

    def test_heal_reconciles_stale_minority(self):
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0, route=1)
        register.write_stripe(stripe_of(3, 32, tag=1))
        cluster.network.partition({5}, {1, 2, 3, 4})
        newer = stripe_of(3, 32, tag=2)
        register.write_stripe(newer)
        cluster.network.heal_partition()
        # Brick 5 missed the write; a coordinator ON brick 5 still
        # reads the new value (its quorum overlaps the write quorum).
        assert cluster.register(0, route=5).read_stripe() == newer

    def test_flapping_partition(self):
        """Repeated partition/heal cycles never corrupt data."""
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0, route=1)
        last = None
        for cycle in range(4):
            cluster.network.partition({(cycle % 5) + 1}, set(range(1, 6)) - {(cycle % 5) + 1})
            coordinator_pid = ((cycle + 1) % 5) + 1
            if coordinator_pid == (cycle % 5) + 1:
                coordinator_pid = ((cycle + 2) % 5) + 1
            stripe = stripe_of(3, 32, tag=cycle)
            register_cycle = cluster.register(0, route=coordinator_pid)
            if register_cycle.write_stripe(stripe) == "OK":
                last = stripe
            cluster.network.heal_partition()
        assert cluster.register(0, route=1).read_stripe() == last

    def test_partition_during_write_partial_handled(self):
        """A partition landing mid-write creates a partial write that
        the next read resolves deterministically."""
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0, route=2)
        old = stripe_of(3, 32, tag=1)
        register.write_stripe(old)

        writer = cluster.coordinators[1]
        new = stripe_of(3, 32, tag=2)
        process = cluster.nodes[1].spawn(writer.write_stripe(0, new))
        cluster.env.run(until=cluster.env.now + 2.5)  # Order done
        cluster.network.partition({1, 2}, {3, 4, 5})
        cluster.env.run(until=cluster.env.now + 30)
        assert not process.triggered  # write stuck below quorum
        cluster.nodes[1].crash()  # coordinator dies while partitioned
        cluster.network.heal_partition()
        cluster.env.run()

        value = cluster.register(0, route=3).read_stripe()
        assert value in (old, new)
        assert cluster.register(0, route=4).read_stripe() == value
