"""VolumeSession: pipelining, coalescing, retry, failover, determinism."""

import pytest

from repro import RouteOptions, VolumeSession, open_volume
from repro.core.client import RetryPolicy
from repro.errors import ConfigurationError, CorruptionDetected, StorageError
from repro.types import ABORT


def payloads_for(volume, count, tag=0):
    return [
        bytes([(tag + i) % 255 + 1]) * volume.block_size for i in range(count)
    ]


def readback(volume, blocks):
    """Pipelined read of the given blocks as a dict."""
    with volume.session(max_inflight=8) as session:
        for block in blocks:
            session.submit_read(block)
    return {op.blocks[0]: op.result for op in session.ops}


# -- basic pipelining ---------------------------------------------------------


def test_pipelined_roundtrip():
    volume = open_volume(m=3, n=5, blocks=24, block_size=32, seed=1)
    data = payloads_for(volume, 24)
    with volume.session(max_inflight=8) as session:
        for block, payload in enumerate(data):
            session.submit_write(block, payload)
    assert all(op.ok for op in session.ops)
    assert session.stats.ops_completed == 24
    assert session.stats.peak_inflight > 1
    assert readback(volume, range(24)) == dict(enumerate(data))


def test_unwritten_blocks_read_zeros():
    volume = open_volume(m=3, n=5, blocks=12, block_size=32, seed=2)
    values = readback(volume, range(6))
    assert all(value == bytes(32) for value in values.values())


def test_max_inflight_one_is_serial():
    volume = open_volume(m=3, n=5, blocks=12, block_size=32, seed=3)
    with volume.session(max_inflight=1) as session:
        session.submit_write_range(0, payloads_for(volume, 12))
    assert session.stats.peak_inflight == 1
    assert all(op.ok for op in session.ops)


def test_pipelining_is_faster_than_serial():
    def run(depth):
        volume = open_volume(m=3, n=5, blocks=36, block_size=32, seed=4)
        start = volume.cluster.env.now
        with volume.session(max_inflight=depth) as session:
            for block in range(36):
                session.submit_write(block, bytes([block + 1]) * 32)
        assert all(op.ok for op in session.ops)
        return volume.cluster.env.now - start

    assert run(16) < run(1) / 2


def test_sync_read_write_helpers():
    volume = open_volume(m=3, n=5, blocks=12, block_size=32, seed=5)
    session = volume.session()
    assert session.write(3, b"\x07" * 32) == "OK"
    assert session.read(3) == b"\x07" * 32


def test_result_before_drain_raises():
    volume = open_volume(m=3, n=5, blocks=12, block_size=32, seed=6)
    session = volume.session()
    op = session.submit_write(0, b"\x01" * 32)
    with pytest.raises(StorageError, match="pending"):
        op.result
    session.drain()
    assert op.result == "OK"


def test_constructor_validation():
    volume = open_volume(m=3, n=5, blocks=12, block_size=32, seed=7)
    with pytest.raises(ConfigurationError):
        volume.session(max_inflight=0)
    session = volume.session()
    with pytest.raises(ConfigurationError):
        session.submit_write(0, b"short")


# -- coalescing ---------------------------------------------------------------


def test_write_range_coalesces_full_stripes():
    # stripe_shuffle off: blocks 0..m-1 share stripe 0, etc., so a
    # volume-wide range write coalesces into pure write-stripe ops.
    volume = open_volume(m=3, n=5, stripes=4, block_size=32, seed=8)
    volume.stripe_shuffle = False
    data = payloads_for(volume, volume.num_blocks)
    with volume.session() as session:
        session.submit_write_range(0, data)
    assert [op.kind for op in session.ops] == ["write-stripe"] * 4
    assert session.stats.coalesced_writes == 4 * (3 - 1)
    volume.stripe_shuffle = True  # restore for the readback mapping
    assert all(op.ok for op in session.ops)


def test_write_range_partial_stripe_coalesces_to_write_blocks():
    volume = open_volume(m=3, n=5, stripes=4, block_size=32, seed=9)
    volume.stripe_shuffle = False
    with volume.session() as session:
        ops = session.submit_write_range(0, payloads_for(volume, 2))
    assert [op.kind for op in ops] == ["write-blocks"]
    assert ops[0].units == (1, 2)


def test_write_range_single_blocks_stay_block_writes():
    # With stripe shuffle on, consecutive blocks land on distinct
    # stripes: no coalescing, maximum parallelism.
    volume = open_volume(m=3, n=5, stripes=8, block_size=32, seed=10)
    with volume.session() as session:
        ops = session.submit_write_range(0, payloads_for(volume, 8))
    assert [op.kind for op in ops] == ["write-block"] * 8
    assert session.stats.coalesced_writes == 0


def test_read_range_coalesces_and_orders_values():
    volume = open_volume(m=3, n=5, stripes=4, block_size=32, seed=11)
    volume.stripe_shuffle = False
    data = payloads_for(volume, volume.num_blocks)
    with volume.session() as session:
        session.submit_write_range(0, data)
    with volume.session() as session:
        ops = session.submit_read_range(0, volume.num_blocks)
    assert {op.kind for op in ops} == {"read-blocks"}
    flat = []
    for op in ops:
        flat.extend(op.result)
    assert flat == data


# -- retry under aborts -------------------------------------------------------


def test_retries_forced_aborts_until_success(monkeypatch):
    volume = open_volume(m=3, n=5, blocks=12, block_size=32, seed=12)
    original = VolumeSession._spawn_attempt
    aborts_left = {"n": 3}

    def flaky(self, op, pid):
        if aborts_left["n"] > 0:
            aborts_left["n"] -= 1

            def aborter():
                yield self.env.timeout(1.0)
                return ABORT

            return self.env.process(aborter())
        return original(self, op, pid)

    monkeypatch.setattr(VolumeSession, "_spawn_attempt", flaky)
    with volume.session() as session:
        op = session.submit_write(0, b"\x09" * 32)
    assert op.ok
    assert op.retries == 3
    assert session.stats.retries == 3
    assert session.stats.aborts_exhausted == 0


def test_abort_storm_from_conflicting_sessions():
    # Two pipelined sessions hammer one stripe through different
    # coordinators: genuine write-write conflicts abort (the paper's ⊥)
    # and the sessions' jittered backoff retries them to completion.
    volume = open_volume(m=3, n=5, stripes=1, block_size=32, seed=13)
    a = volume.session(max_inflight=4, seed=1)
    b = volume.session(max_inflight=4, seed=2)
    for i in range(6):
        a.submit_write(0, bytes([10 + i]) * 32)
        b.submit_write(1, bytes([40 + i]) * 32)
    a.drain()
    b.drain()
    ops = a.ops + b.ops
    assert all(op.ok for op in ops)
    assert a.stats.retries + b.stats.retries > 0
    values = readback(volume, [0, 1])
    assert values[0] == bytes([15]) * 32
    assert values[1] == bytes([45]) * 32


def test_exhausted_retries_surface_abort(monkeypatch):
    volume = open_volume(m=3, n=5, blocks=12, block_size=32, seed=14)

    def always_abort(self, op, pid):
        def aborter():
            yield self.env.timeout(1.0)
            return ABORT

        return self.env.process(aborter())

    monkeypatch.setattr(VolumeSession, "_spawn_attempt", always_abort)
    retry = RetryPolicy(attempts=3, backoff=1.0, backoff_growth=1.0)
    with volume.session(retry=retry) as session:
        op = session.submit_write(0, b"\x08" * 32)
    assert op.status == "aborted"
    assert op.result is ABORT
    assert op.attempts == 3
    assert session.stats.aborts_exhausted == 1


def test_deadline_bounds_total_retry_time(monkeypatch):
    volume = open_volume(m=3, n=5, blocks=12, block_size=32, seed=15)

    def always_abort(self, op, pid):
        def aborter():
            yield self.env.timeout(1.0)
            return ABORT

        return self.env.process(aborter())

    monkeypatch.setattr(VolumeSession, "_spawn_attempt", always_abort)
    retry = RetryPolicy(
        attempts=100, backoff=2.0, backoff_growth=1.0, deadline=10.0
    )
    with volume.session(retry=retry) as session:
        op = session.submit_write(0, b"\x06" * 32)
    assert op.status == "timeout"
    assert op.result is ABORT
    assert op.attempts < 100
    assert session.stats.timeouts == 1
    assert op.finished_at - op.submitted_at <= 10.0 + 3.0


# -- failover -----------------------------------------------------------------


def crash_then_recover(cluster, pid, at, down_for=60.0):
    def script(env):
        yield env.timeout(at)
        cluster.crash(pid)
        yield env.timeout(down_for)
        cluster.recover(pid)

    cluster.env.process(script(cluster.env))


def test_failover_mid_batch_hides_coordinator_crash():
    volume = open_volume(m=3, n=5, blocks=60, block_size=32, seed=16)
    crash_then_recover(volume.cluster, 2, at=6.0)
    data = payloads_for(volume, 40)
    with volume.session(
        max_inflight=8, route=RouteOptions(coordinator=2)
    ) as session:
        for block, payload in enumerate(data):
            session.submit_write(block, payload)
    assert all(op.ok for op in session.ops), [
        op.status for op in session.ops if not op.ok
    ]
    assert session.stats.failovers > 0
    assert readback(volume, range(40)) == dict(enumerate(data))


def test_failover_disabled_surfaces_crash():
    volume = open_volume(m=3, n=5, blocks=30, block_size=32, seed=17)
    crash_then_recover(volume.cluster, 3, at=2.0)
    session = volume.session(
        max_inflight=4, route=RouteOptions(coordinator=3, failover=False)
    )
    for block in range(10):
        session.submit_write(block, bytes([block + 1]) * 32)
    session.drain()
    statuses = {op.status for op in session.ops}
    assert "crashed" in statuses
    crashed = next(op for op in session.ops if op.status == "crashed")
    with pytest.raises(StorageError, match="failover is disabled"):
        crashed.result


def test_attempt_timeout_triggers_failover():
    # A crashed pinned coordinator never answers; the attempt timer
    # abandons it and the op completes elsewhere.
    volume = open_volume(m=3, n=5, blocks=12, block_size=32, seed=18)
    crash_then_recover(volume.cluster, 2, at=1.0)
    retry = RetryPolicy(attempts=5, backoff=2.0, attempt_timeout=50.0)
    with volume.session(
        retry=retry, route=RouteOptions(coordinator=2)
    ) as session:
        session.submit_write(0, b"\x05" * 32)
    (op,) = session.ops
    assert op.ok
    assert op.failovers > 0
    assert op.coordinator != 2


# -- determinism --------------------------------------------------------------


def test_identical_seeds_give_identical_histories():
    def run():
        volume = open_volume(
            m=3, n=5, blocks=36, block_size=32, seed=19, drop_probability=0.05
        )
        data = payloads_for(volume, 24)
        with volume.session(max_inflight=16, seed=3) as session:
            session.submit_write_range(0, data)
            session.submit_read_range(0, 24)
        return [
            (op.kind, op.status, op.submitted_at, op.finished_at,
             op.coordinator, op.retries)
            for op in session.ops
        ]

    first, second = run(), run()
    assert first == second


def test_session_stats_aggregate_into_metrics():
    volume = open_volume(m=3, n=5, blocks=12, block_size=32, seed=20)
    with volume.session() as session:
        session.submit_write_range(0, payloads_for(volume, 12))
    summary = volume.cluster.metrics.session_summary()
    assert summary["sessions"] == 1
    assert summary["ops_completed"] == session.stats.ops_completed
    assert summary["peak_inflight"] == session.stats.peak_inflight


# -- corruption ---------------------------------------------------------------


def flaky_corrupt_spawner(real, failures):
    """Wrap ``_spawn_attempt`` to raise CorruptionDetected N times."""

    def spawn(self, op, pid):
        if failures["left"] > 0:
            failures["left"] -= 1

            def quarantined():
                raise CorruptionDetected(
                    f"p{pid}: register {op.register_id} quarantined"
                )
                yield  # pragma: no cover - makes this a process

            return self.env.process(quarantined())
        return real(self, op, pid)

    return spawn


def test_corruption_detected_is_retryable(monkeypatch):
    # A coordinator that trips over its quarantined local state must
    # not fail the op: the session retries on another brick.
    volume = open_volume(m=3, n=5, blocks=12, block_size=32, seed=21)
    session = volume.session(retry=RetryPolicy(attempts=5, backoff=1.0))
    session.write(0, b"\x09" * 32)

    failures = {"left": 2}
    monkeypatch.setattr(
        VolumeSession, "_spawn_attempt",
        flaky_corrupt_spawner(VolumeSession._spawn_attempt, failures),
    )
    op = session.submit_read(0)
    session.drain()
    assert op.ok
    assert op.result == b"\x09" * 32
    assert op.retries == 2
    assert session.stats.retries >= 2


def test_corruption_detected_exhausts_to_abort(monkeypatch):
    # If every coordinator keeps reporting corruption, the op finishes
    # as a clean abort (retryable classification), never as "failed".
    volume = open_volume(m=3, n=5, blocks=12, block_size=32, seed=22)
    session = volume.session(retry=RetryPolicy(attempts=3, backoff=1.0))

    failures = {"left": 10**9}
    monkeypatch.setattr(
        VolumeSession, "_spawn_attempt",
        flaky_corrupt_spawner(VolumeSession._spawn_attempt, failures),
    )
    op = session.submit_read(0)
    session.drain()
    assert op.status == "aborted"
    assert op.value is ABORT
    assert session.stats.aborts_exhausted == 1
