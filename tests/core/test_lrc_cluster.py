"""The FAB protocol over a non-MDS (LRC) stripe code.

Regression suite for the fast-read target bug: the paper's line 6
("pick m random processes") silently assumes an MDS code, where every
``m``-subset decodes.  An LRC has rank-deficient ``m``-subsets (a local
group's data plus its own parity), so the coordinator must redraw until
it holds a decodable target set.
"""

from repro import ClusterConfig, FabCluster
from repro.erasure.lrc import LRCCode
from repro.sim.network import NetworkConfig
from tests.conftest import stripe_of


def lrc_cluster(m=4, n=8, seed=0, **cluster_kwargs):
    return FabCluster(
        ClusterConfig(
            m=m,
            n=n,
            block_size=32,
            seed=seed,
            code_kind="lrc",
            network=NetworkConfig(
                min_latency=1.0, max_latency=1.0, jitter_seed=seed
            ),
            **cluster_kwargs,
        )
    )


class TestLRCCluster:
    def test_cluster_runs_lrc(self):
        cluster = lrc_cluster()
        assert isinstance(cluster.code, LRCCode)
        assert cluster.code.local_group_count == 2
        assert cluster.code.global_parity_count == 2

    def test_repeated_fast_reads_never_hit_a_singular_target_set(self):
        """Before the fix, ~1 in 7 random 4-subsets of this layout was
        rank-deficient and the read crashed with CodingError."""
        cluster = lrc_cluster()
        stripe = stripe_of(4, 32, tag=1)
        assert cluster.register(0).write_stripe(stripe) == "OK"
        for trial in range(60):
            route = 1 + trial % 8
            assert cluster.register(0, route=route).read_stripe() == stripe

    def test_degraded_reads_with_brick_down(self):
        """The recover path feeds *all* survivors to decode; the greedy
        LRC plan must handle whatever subset is live."""
        cluster = lrc_cluster()
        stripes = {}
        for register_id in range(4):
            stripes[register_id] = stripe_of(4, 32, tag=register_id)
            cluster.register(register_id).write_stripe(stripes[register_id])
        cluster.crash(3)
        cluster.crash(6)  # max tolerated: (n - m) // 2 = 2
        for register_id, stripe in stripes.items():
            assert (
                cluster.register(register_id, route=1).read_stripe() == stripe
            )

    def test_writes_after_failures_still_read_back(self):
        cluster = lrc_cluster()
        cluster.crash(2)
        stripe = stripe_of(4, 32, tag=9)
        assert cluster.register(5).write_stripe(stripe) == "OK"
        cluster.recover(2)
        cluster.crash(7)
        assert cluster.register(5, route=4).read_stripe() == stripe
