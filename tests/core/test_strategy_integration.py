"""Quorum selection strategies wired into the coordinator."""

import pytest

from repro.quorum.strategy import (
    ExcludeSuspectedStrategy,
    PreferredQuorumStrategy,
    RandomQuorumStrategy,
)
from tests.conftest import make_cluster, stripe_of


class TestStrategyIntegration:
    def test_default_is_random(self):
        cluster = make_cluster(m=3, n=5)
        assert isinstance(
            cluster.coordinators[1].strategy, RandomQuorumStrategy
        )

    def test_preferred_strategy_targets_data_bricks(self):
        """Preferring the data bricks makes fast reads decode for free
        (systematic code: data blocks need no decoding matrix)."""
        cluster = make_cluster(m=3, n=5)
        coordinator = cluster.coordinators[1]
        coordinator.strategy = PreferredQuorumStrategy([1, 2, 3])
        register = cluster.register(0)
        stripe = stripe_of(3, 32, tag=1)
        register.write_stripe(stripe)
        for _ in range(5):
            assert register.read_stripe() == stripe
        # Only data bricks served blocks: 3 disk reads per read, and
        # every block-serving read hit processes 1..3.
        summary = cluster.metrics.summary()
        assert summary["read-stripe/fast"]["disk_reads"] == 3

    def test_suspicion_demotes_a_slow_brick(self):
        """Suspecting a crashed brick steers the fast path around it,
        avoiding recovery."""
        cluster = make_cluster(m=3, n=5)
        coordinator = cluster.coordinators[1]
        strategy = ExcludeSuspectedStrategy(PreferredQuorumStrategy([1, 2, 3]))
        coordinator.strategy = strategy
        register = cluster.register(0)
        stripe = stripe_of(3, 32, tag=1)
        register.write_stripe(stripe)

        cluster.crash(2)
        strategy.suspect(2)
        for _ in range(3):
            assert register.read_stripe() == stripe
        # With brick 2 demoted, the fast path picks {1, 3, 4}: no slow
        # reads at all.
        assert "read-stripe/slow" not in cluster.metrics.summary()

    def test_without_suspicion_crashed_target_forces_recovery(self):
        cluster = make_cluster(m=3, n=5)
        coordinator = cluster.coordinators[1]
        coordinator.strategy = PreferredQuorumStrategy([1, 2, 3])
        register = cluster.register(0)
        stripe = stripe_of(3, 32, tag=1)
        register.write_stripe(stripe)
        cluster.crash(2)  # a preferred target, not suspected
        assert register.read_stripe() == stripe
        assert cluster.metrics.summary()["read-stripe/slow"]["count"] >= 1

    def test_wrong_suspicion_costs_nothing_but_placement(self):
        """Suspecting a healthy brick never blocks progress (advisory)."""
        cluster = make_cluster(m=3, n=5)
        coordinator = cluster.coordinators[1]
        strategy = ExcludeSuspectedStrategy(PreferredQuorumStrategy([1, 2, 3]))
        coordinator.strategy = strategy
        strategy.suspect(1)
        strategy.suspect(2)
        strategy.suspect(3)  # suspect every data brick, all healthy
        register = cluster.register(0)
        stripe = stripe_of(3, 32, tag=1)
        assert register.write_stripe(stripe) == "OK"
        assert register.read_stripe() == stripe
