"""Crash-recovery behaviour of replicas and whole clusters."""

import pytest

from repro.types import ABORT
from tests.conftest import make_cluster, stripe_of


class TestReplicaRecovery:
    def test_replica_state_reloaded_from_stable(self):
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0)
        stripe = stripe_of(3, 32, tag=1)
        register.write_stripe(stripe)
        before = cluster.replicas[2].state(0).log.entries()
        cluster.crash(2)
        cluster.recover(2)
        after = cluster.replicas[2].state(0).log.entries()
        assert after == before

    def test_stale_recovered_replica_catches_up_via_writes(self):
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0)
        register.write_stripe(stripe_of(3, 32, tag=1))
        cluster.crash(2)
        newer = stripe_of(3, 32, tag=2)
        register.write_stripe(newer)  # quorum without 2
        cluster.recover(2)
        newest = stripe_of(3, 32, tag=3)
        register.write_stripe(newest)  # 2 participates again
        entry = cluster.replicas[2].state(0).log.max_block()
        assert entry[1] == newest[1]

    def test_read_with_mixed_staleness(self):
        """Quorums spanning fresh and stale replicas still read correctly."""
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0)
        values = []
        for tag in range(4):
            victim = (tag % 5) + 1
            if victim != 1:
                cluster.crash(victim)
            stripe = stripe_of(3, 32, tag)
            if register.write_stripe(stripe) == "OK":
                values.append(stripe)
            if victim != 1:
                cluster.recover(victim)
        assert register.read_stripe() == values[-1]


class TestQuorumLoss:
    def test_operation_blocks_without_quorum(self):
        """With more than f failures, operations cannot complete —
        they wait (the paper's model) rather than return wrong data."""
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0)
        stripe = stripe_of(3, 32, tag=1)
        register.write_stripe(stripe)
        cluster.crash(4)
        cluster.crash(5)  # 3 live < quorum size 4
        process = register.read_stripe_async()
        cluster.env.run(until=cluster.env.now + 500)
        assert not process.triggered  # still waiting, no wrong answer

    def test_operation_completes_when_quorum_returns(self):
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0)
        stripe = stripe_of(3, 32, tag=1)
        register.write_stripe(stripe)
        cluster.crash(4)
        cluster.crash(5)
        process = register.read_stripe_async()
        cluster.env.run(until=cluster.env.now + 100)
        assert not process.triggered
        cluster.recover(4)  # quorum restored
        cluster.env.run(until=cluster.env.now + 200)
        assert process.triggered
        assert process.value == stripe

    def test_op_timeout_aborts_instead_of_hanging(self):
        cluster = make_cluster(m=3, n=5, op_timeout=50.0)
        register = cluster.register(0)
        register.write_stripe(stripe_of(3, 32, tag=1))
        cluster.crash(4)
        cluster.crash(5)
        result = register.read_stripe()
        assert result is ABORT


class TestColdRestart:
    def test_full_cluster_power_cycle_preserves_everything(self):
        cluster = make_cluster(m=3, n=5)
        volumes = {}
        for register_id in range(5):
            stripe = stripe_of(3, 32, tag=register_id)
            cluster.register(register_id).write_stripe(stripe)
            volumes[register_id] = stripe
        for pid in range(1, 6):
            cluster.crash(pid)
        for pid in range(1, 6):
            cluster.recover(pid)
        for register_id, stripe in volumes.items():
            assert cluster.register(register_id).read_stripe() == stripe

    def test_progress_with_exactly_a_quorum(self):
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0)
        stripe = stripe_of(3, 32, tag=1)
        register.write_stripe(stripe)
        for pid in range(1, 6):
            cluster.crash(pid)
        # Bring back exactly a quorum (4 of 5), coordinator included.
        for pid in (1, 2, 3, 4):
            cluster.recover(pid)
        assert register.read_stripe() == stripe
        assert register.write_stripe(stripe_of(3, 32, tag=2)) == "OK"

    def test_repeated_power_cycles(self):
        cluster = make_cluster(m=2, n=4, block_size=16)
        register = cluster.register(0)
        last = None
        for cycle in range(5):
            stripe = stripe_of(2, 16, tag=cycle)
            assert register.write_stripe(stripe) == "OK"
            last = stripe
            for pid in range(1, 5):
                cluster.crash(pid)
            for pid in range(1, 5):
                cluster.recover(pid)
            assert register.read_stripe() == last
