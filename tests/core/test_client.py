"""The abort-retrying client."""

import pytest

from repro.core.client import RetryingClient, RetryPolicy
from repro.errors import ConfigurationError
from repro.types import ABORT
from tests.conftest import block_of, make_cluster, stripe_of


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_growth=0.5)


class TestRetryingClient:
    def test_passthrough_on_success(self):
        cluster = make_cluster(m=3, n=5)
        client = RetryingClient(cluster.register(0))
        stripe = stripe_of(3, 32, tag=1)
        assert client.write_stripe(stripe) == "OK"
        assert client.read_stripe() == stripe
        assert client.stats["retries"] == 0

    def test_block_operations(self):
        cluster = make_cluster(m=3, n=5)
        client = RetryingClient(cluster.register(0))
        client.write_stripe(stripe_of(3, 32, tag=1))
        block = block_of(32, tag=2)
        assert client.write_block(2, block) == "OK"
        assert client.read_block(2) == block
        assert client.read_blocks([1, 2])[2] == block
        updates = {1: block_of(32, tag=3)}
        assert client.write_blocks(updates) == "OK"

    def test_retry_wins_after_conflict_abort(self):
        """A write that loses a timestamp race succeeds on retry.

        Coordinator 2's clock is stalled far behind coordinator 1's, so
        its first proposal is refused; the rejection carries the
        replicas' highest seen timestamp (``max_seen``), the stalled
        clock adopts it, and the retry wins.
        """
        cluster = make_cluster(m=3, n=5)  # observe_timestamps on
        cluster.env.run(until=100.0)
        cluster.register(0, route=1).write_stripe(
            stripe_of(3, 32, tag=1)
        )
        loser = cluster.coordinators[2]
        loser.ts_source._clock = lambda: 0.0  # stalled physical clock
        client = RetryingClient(
            cluster.register(0, route=2),
            RetryPolicy(attempts=5, backoff=10.0),
        )
        stripe = stripe_of(3, 32, tag=2)
        assert client.write_stripe(stripe) == "OK"
        assert client.stats["retries"] >= 1
        assert client.stats["exhausted"] == 0
        assert cluster.register(0, route=3).read_stripe() == stripe

    def test_exhaustion_returns_abort(self):
        cluster = make_cluster(m=3, n=5, op_timeout=20.0)
        cluster.register(0).write_stripe(stripe_of(3, 32, tag=1))
        cluster.crash(4)
        cluster.crash(5)  # below quorum: everything aborts
        client = RetryingClient(
            cluster.register(0), RetryPolicy(attempts=2, backoff=1.0)
        )
        assert client.read_stripe() is ABORT
        assert client.stats["exhausted"] == 1
        assert client.stats["retries"] == 1

    def test_backoff_advances_simulated_time(self):
        cluster = make_cluster(m=3, n=5, op_timeout=10.0)
        cluster.crash(4)
        cluster.crash(5)
        client = RetryingClient(
            cluster.register(0), RetryPolicy(attempts=3, backoff=7.0)
        )
        before = cluster.env.now
        client.read_stripe()
        # Two backoffs (7 then 14) plus three timed-out attempts.
        assert cluster.env.now >= before + 21.0
