"""Model-based stateful testing of the storage register (hypothesis).

A rule-based state machine drives a live cluster with sequential
operations — stripe/block/multi-block reads and writes from rotating
coordinators — interleaved with crashes and recoveries that never
exceed the fault bound.

The model implements the paper's actual contract: an operation that
returns OK definitely took effect; an operation that returns ⊥ (abort)
is *non-deterministic* — it may or may not have taken effect (its fate
is decided by the next read).  So the model tracks a SET of possible
register values: OK writes collapse it to the new value, aborted writes
add their outcome to it, and every successful read must return a member
of the set — after which the set collapses to the observed value
(strict linearizability: once read, the decision is permanent).
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.types import ABORT
from tests.conftest import make_cluster

M, N, BLOCK = 2, 4, 16
REGISTERS = 3
ZERO = bytes(BLOCK)


def payload(tag: int) -> bytes:
    return (f"p{tag}-".encode() * BLOCK)[:BLOCK]


class PossibilityModel:
    """Per-register sets of possible stripe values.

    A stripe value is a tuple of ``m`` blocks; the never-written state
    is the all-zero tuple (the protocol's nil materializes as zeros at
    block granularity).
    """

    def __init__(self) -> None:
        self.possible = {}

    def _states(self, register_id):
        return self.possible.setdefault(register_id, {(ZERO,) * M})

    @staticmethod
    def _normalize_stripe(value):
        if value is None:
            return (ZERO,) * M
        return tuple(value)

    # -- writes ------------------------------------------------------------

    def committed_stripe_write(self, register_id, stripe):
        self.possible[register_id] = {tuple(stripe)}

    def aborted_stripe_write(self, register_id, stripe):
        self._states(register_id).add(tuple(stripe))

    def committed_block_write(self, register_id, updates):
        states = self._states(register_id)
        outcomes = set()
        for state in states:
            blocks = list(state)
            for j, block in updates.items():
                blocks[j - 1] = block
            outcomes.add(tuple(blocks))
        # The write committed, but WHICH pre-state it applied to is only
        # pinned down if the set was already collapsed.
        self.possible[register_id] = outcomes

    def aborted_block_write(self, register_id, updates):
        states = self._states(register_id)
        outcomes = set(states)
        for state in states:
            blocks = list(state)
            for j, block in updates.items():
                blocks[j - 1] = block
            outcomes.add(tuple(blocks))
        self.possible[register_id] = outcomes

    # -- reads -------------------------------------------------------------

    def observe_stripe(self, register_id, value):
        """Check a successful stripe read and collapse the model."""
        observed = self._normalize_stripe(value)
        states = self._states(register_id)
        assert observed in states, (
            f"register {register_id}: read {observed} not among "
            f"{len(states)} possible states"
        )
        self.possible[register_id] = {observed}

    def observe_block(self, register_id, j, value):
        """Check a successful block read; collapse to consistent states."""
        observed = ZERO if value is None else value
        states = self._states(register_id)
        consistent = {s for s in states if s[j - 1] == observed}
        assert consistent, (
            f"register {register_id} block {j}: read {observed!r} "
            f"matches none of {len(states)} possible states"
        )
        self.possible[register_id] = consistent


class FabMachine(RuleBasedStateMachine):
    registers = st.integers(min_value=0, max_value=REGISTERS - 1)
    blocks = st.integers(min_value=1, max_value=M)
    pids = st.integers(min_value=1, max_value=N)

    @initialize()
    def setup(self):
        self.cluster = make_cluster(m=M, n=N, block_size=BLOCK, seed=0)
        self.model = PossibilityModel()
        self.tag = 0

    def _coordinator_pid(self, preferred):
        live = self.cluster.live_processes()
        return preferred if preferred in live else live[0]

    def _fresh(self):
        self.tag += 1
        return self.tag

    @rule(register_id=registers, pid=pids)
    def write_stripe(self, register_id, pid):
        stripe = [payload(self._fresh()) for _ in range(M)]
        register = self.cluster.register(
            register_id, self._coordinator_pid(pid)
        )
        if register.write_stripe(stripe) == "OK":
            self.model.committed_stripe_write(register_id, stripe)
        else:
            self.model.aborted_stripe_write(register_id, stripe)

    @rule(register_id=registers, j=blocks, pid=pids)
    def write_block(self, register_id, j, pid):
        block = payload(self._fresh())
        register = self.cluster.register(
            register_id, self._coordinator_pid(pid)
        )
        if register.write_block(j, block) == "OK":
            self.model.committed_block_write(register_id, {j: block})
        else:
            self.model.aborted_block_write(register_id, {j: block})

    @rule(register_id=registers, pid=pids, js=st.sets(blocks, min_size=1))
    def write_blocks(self, register_id, pid, js):
        updates = {j: payload(self._fresh()) for j in sorted(js)}
        register = self.cluster.register(
            register_id, self._coordinator_pid(pid)
        )
        if register.write_blocks(updates) == "OK":
            self.model.committed_block_write(register_id, updates)
        else:
            self.model.aborted_block_write(register_id, updates)

    @rule(register_id=registers, pid=pids)
    def read_stripe(self, register_id, pid):
        register = self.cluster.register(
            register_id, self._coordinator_pid(pid)
        )
        value = register.read_stripe()
        if value is not ABORT:
            self.model.observe_stripe(register_id, value)

    @rule(register_id=registers, j=blocks, pid=pids)
    def read_block(self, register_id, j, pid):
        register = self.cluster.register(
            register_id, self._coordinator_pid(pid)
        )
        value = register.read_block(j)
        if value is not ABORT:
            self.model.observe_block(register_id, j, value)

    @precondition(lambda self: len(self.cluster.live_processes()) > N - 1)
    @rule(pid=pids)
    def crash_brick(self, pid):
        # Keep at least a quorum: f = (N - M) // 2 = 1 brick down max.
        if self.cluster.nodes[pid].is_up:
            self.cluster.crash(pid)

    @rule(pid=pids)
    def recover_brick(self, pid):
        if not self.cluster.nodes[pid].is_up:
            self.cluster.recover(pid)

    @rule()
    def let_time_pass(self):
        self.cluster.env.run(until=self.cluster.env.now + 7.0)

    @invariant()
    def quorum_always_available(self):
        if hasattr(self, "cluster"):
            assert len(self.cluster.live_processes()) >= (
                self.cluster.quorum_system.quorum_size
            )


FabMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)

TestFabStateful = FabMachine.TestCase
