"""Partial writes: roll-back and roll-forward (paper Sections 4.1.1-4.1.2).

These tests crash coordinators at precise points mid-protocol using
MessageCountTrigger and verify the recovery semantics: a partial write
takes effect before the crash or not at all, decided by the next read.
"""

import pytest

from repro.core.messages import OrderReq, WriteReq
from repro.sim.failures import MessageCountTrigger
from repro.types import ABORT
from tests.conftest import make_cluster, stripe_of


def crash_writer_after(cluster, writer_pid, count, payload_type):
    """Arm a crash of `writer_pid` after its count-th payload_type message."""
    return MessageCountTrigger(
        cluster.network, cluster.nodes[writer_pid], count, payload_type
    )


def start_write(cluster, writer_pid, register_id, stripe):
    coordinator = cluster.coordinators[writer_pid]
    return cluster.nodes[writer_pid].spawn(
        coordinator.write_stripe(register_id, stripe)
    )


class TestRollBack:
    def test_write_crashing_in_order_phase_rolls_back(self):
        """Coordinator dies after sending only Order messages: no value
        was ever stored, the old value must survive."""
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0, route=2)
        old = stripe_of(3, 32, tag=1)
        register.write_stripe(old)

        trigger = crash_writer_after(cluster, 1, count=3, payload_type=OrderReq)
        process = start_write(cluster, 1, 0, stripe_of(3, 32, tag=2))
        cluster.env.run()
        assert not process.ok  # interrupted
        assert trigger.fired

        assert register.read_stripe() == old
        # And the decision is stable: repeated reads agree.
        assert register.read_stripe() == old

    def test_write_crashing_with_too_few_write_messages_rolls_back(self):
        """Fewer than m new blocks stored: the new value is
        unreconstructable and must be rolled back (the paper's m=5, n=7
        motivating scenario, scaled to m=3, n=5)."""
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0, route=2)
        old = stripe_of(3, 32, tag=1)
        register.write_stripe(old)

        # Crash after 5 Orders + 2 Writes: only 2 < m new blocks land.
        trigger = crash_writer_after(cluster, 1, count=2, payload_type=WriteReq)
        process = start_write(cluster, 1, 0, stripe_of(3, 32, tag=2))
        cluster.env.run()
        assert trigger.fired
        assert not process.ok

        assert register.read_stripe() == old

    def test_rolled_back_value_never_reappears(self):
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0, route=2)
        old = stripe_of(3, 32, tag=1)
        register.write_stripe(old)
        doomed = stripe_of(3, 32, tag=2)
        crash_writer_after(cluster, 1, count=1, payload_type=WriteReq)
        start_write(cluster, 1, 0, doomed)
        cluster.env.run()
        assert register.read_stripe() == old

        # Recover the crashed brick; its log holds the doomed blocks,
        # but the recovery's write-back at a higher timestamp wins.
        cluster.recover(1)
        for _ in range(3):
            assert register.read_stripe() == old

    def test_partial_write_on_virgin_register_rolls_back_to_nil(self):
        cluster = make_cluster(m=3, n=5)
        crash_writer_after(cluster, 1, count=2, payload_type=WriteReq)
        start_write(cluster, 1, 5, stripe_of(3, 32, tag=1))
        cluster.env.run()
        register = cluster.register(5, route=3)
        assert register.read_stripe() is None


class TestRollForward:
    def test_write_reaching_m_blocks_rolls_forward(self):
        """At least m new blocks stored (but no complete quorum): the
        next read finds enough blocks and completes the write."""
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0, route=2)
        old = stripe_of(3, 32, tag=1)
        register.write_stripe(old)

        new = stripe_of(3, 32, tag=2)
        # 5 Orders succeed; crash after 4 Write messages.  One of the
        # first sends is the coordinator's message to its own replica,
        # which dies with the crash — so 4 sends leave exactly m = 3
        # new blocks on surviving bricks.
        trigger = crash_writer_after(cluster, 1, count=4, payload_type=WriteReq)
        process = start_write(cluster, 1, 0, new)
        cluster.env.run()
        assert trigger.fired
        assert not process.ok

        value = register.read_stripe()
        assert value == new  # rolled forward
        # Decision is stable.
        assert register.read_stripe() == new

    def test_roll_forward_read_uses_slow_path(self):
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0, route=2)
        register.write_stripe(stripe_of(3, 32, tag=1))
        crash_writer_after(cluster, 1, count=4, payload_type=WriteReq)
        start_write(cluster, 1, 0, stripe_of(3, 32, tag=2))
        cluster.env.run()
        register.read_stripe()
        assert cluster.metrics.summary()["read-stripe/slow"]["count"] >= 1

    def test_roll_forward_visible_to_all_coordinators(self):
        cluster = make_cluster(m=3, n=5)
        seed_register = cluster.register(0, route=2)
        seed_register.write_stripe(stripe_of(3, 32, tag=1))
        new = stripe_of(3, 32, tag=2)
        crash_writer_after(cluster, 1, count=4, payload_type=WriteReq)
        start_write(cluster, 1, 0, new)
        cluster.env.run()
        for pid in (2, 3, 4, 5):
            assert cluster.register(0, route=pid).read_stripe() == new


class TestPaperSection411Example:
    """The exact motivating example of Section 4.1.1: m=5, n=7 (quorum
    size 6).  A write crashes after storing the new value on only 4
    processes — 4 new blocks and 3 old blocks, so *neither* version is
    reconstructable from current blocks alone.  The versioned log is
    what saves the old value."""

    def test_neither_version_complete_old_recovered(self):
        cluster = make_cluster(m=5, n=7, block_size=16)
        register = cluster.register(0, route=2)
        old = stripe_of(5, 16, tag=1)
        assert register.write_stripe(old) == "OK"

        # Coordinator 1 crashes after 5 Write sends; its self-send dies
        # with it, leaving the new value on exactly 4 survivors.
        trigger = crash_writer_after(cluster, 1, count=5, payload_type=WriteReq)
        process = start_write(cluster, 1, 0, stripe_of(5, 16, tag=2))
        cluster.env.run()
        assert trigger.fired
        assert not process.ok

        old_version = cluster.replicas[7].state(0).log.max_block()[0]
        new_copies = sum(
            1
            for pid in range(1, 8)
            if cluster.replicas[pid].state(0).log.max_block()[0] > old_version
        )
        assert new_copies == 4  # fewer than m=5: new value unrecoverable

        # The read must fall back to the old version from the logs.
        assert register.read_stripe() == old

    def test_with_five_new_blocks_rolls_forward(self):
        cluster = make_cluster(m=5, n=7, block_size=16)
        register = cluster.register(0, route=2)
        register.write_stripe(stripe_of(5, 16, tag=1))
        new = stripe_of(5, 16, tag=2)
        crash_writer_after(cluster, 1, count=6, payload_type=WriteReq)
        process = start_write(cluster, 1, 0, new)
        cluster.env.run()
        assert not process.ok
        assert register.read_stripe() == new  # m new blocks: roll forward


class TestDecisionStability:
    """Once the next read decides a partial write's fate, that decision
    is permanent — even across crashes and recoveries."""

    @pytest.mark.parametrize("writes_before_crash", [1, 2, 3, 4])
    def test_fate_decided_once(self, writes_before_crash):
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0, route=2)
        old = stripe_of(3, 32, tag=1)
        register.write_stripe(old)
        new = stripe_of(3, 32, tag=2)
        crash_writer_after(
            cluster, 1, count=writes_before_crash, payload_type=WriteReq
        )
        start_write(cluster, 1, 0, new)
        cluster.env.run()

        first = register.read_stripe()
        assert first in (old, new)
        cluster.recover(1)
        cluster.crash(3)
        second = cluster.register(0, route=4).read_stripe()
        assert second == first
        cluster.recover(3)
        third = cluster.register(0, route=5).read_stripe()
        assert third == first
