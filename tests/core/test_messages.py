"""Message formats and size accounting."""

from repro.core.messages import (
    ALL,
    GcReq,
    ModifyReq,
    OrderReadReply,
    OrderReadReq,
    OrderReq,
    ReadReply,
    ReadReq,
    WriteReq,
)
from repro.timestamps import Timestamp


def ts(t):
    return Timestamp(t, 1)


class TestSizes:
    def test_control_messages_are_free(self):
        assert ReadReq(register_id=0, request_id=1, targets=frozenset()).size == 0
        assert OrderReq(register_id=0, request_id=1, ts=ts(1)).size == 0
        assert GcReq(register_id=0, request_id=1, ts=ts(1)).size == 0
        assert OrderReadReq(
            register_id=0, request_id=1, j=ALL, max_ts=ts(9), ts=ts(1)
        ).size == 0

    def test_block_carrying_messages(self):
        assert WriteReq(register_id=0, request_id=1, block=b"x" * 64, ts=ts(1)).size == 64
        assert WriteReq(register_id=0, request_id=1, block=None, ts=ts(1)).size == 0
        assert ReadReply(
            register_id=0, request_id=1, status=True, val_ts=ts(1), block=b"y" * 32
        ).size == 32
        assert OrderReadReply(
            register_id=0, request_id=1, status=True, lts=ts(1), block=b"z" * 16
        ).size == 16

    def test_modify_counts_old_and_new(self):
        request = ModifyReq(
            register_id=0, request_id=1, j=1,
            old_block=b"a" * 8, new_block=b"b" * 8, delta=None,
            ts_j=ts(1), ts=ts(2),
        )
        assert request.size == 16

    def test_modify_delta_counts_once(self):
        request = ModifyReq(
            register_id=0, request_id=1, j=1,
            old_block=None, new_block=None, delta=b"d" * 8,
            ts_j=ts(1), ts=ts(2),
        )
        assert request.size == 8


class TestIdentity:
    def test_frozen_and_hashable(self):
        a = OrderReq(register_id=0, request_id=1, ts=ts(1))
        b = OrderReq(register_id=0, request_id=1, ts=ts(1))
        assert a == b
        assert hash(a) == hash(b)

    def test_all_sentinel(self):
        assert ALL == -1
