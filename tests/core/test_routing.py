"""RouteOptions / resolve_route and the deprecated coordinator_pid shims."""

import pytest

from repro import LogicalVolume, RouteOptions
from repro.core.routing import DEFAULT_ROUTE, resolve_route
from repro.errors import ConfigurationError, StorageError
from tests.conftest import block_of, make_cluster


def test_route_options_defaults_and_pinning():
    assert RouteOptions() == RouteOptions(coordinator=None, failover=True)
    assert not RouteOptions().pinned()
    assert RouteOptions(coordinator=3).pinned()
    with pytest.raises(AttributeError):  # frozen
        RouteOptions().coordinator = 2


def test_resolve_route_forms():
    explicit = RouteOptions(coordinator=4, failover=False)
    assert resolve_route(explicit) is explicit
    assert resolve_route(5) == RouteOptions(coordinator=5)
    assert resolve_route(None) is DEFAULT_ROUTE
    fallback = RouteOptions(coordinator=2)
    assert resolve_route(None, default=fallback) is fallback
    with pytest.raises(ConfigurationError):
        resolve_route("brick-3")


def test_resolve_route_deprecated_keyword_warns():
    with pytest.deprecated_call():
        resolved = resolve_route(coordinator_pid=3)
    assert resolved == RouteOptions(coordinator=3)
    with pytest.raises(ConfigurationError, match="not both"):
        resolve_route(RouteOptions(coordinator=2), coordinator_pid=3)


def test_volume_ops_accept_route(cluster):
    volume = LogicalVolume(cluster, num_stripes=4)
    data = block_of(32, 1)
    assert volume.write(0, route=RouteOptions(coordinator=2), data=data) == "OK"
    assert volume.read(0, route=3) == data
    assert volume.read(0, RouteOptions(coordinator=4)) == data


def test_volume_ops_deprecated_coordinator_pid_still_works(cluster):
    volume = LogicalVolume(cluster, num_stripes=4)
    data = block_of(32, 2)
    with pytest.deprecated_call():
        assert volume.write(0, data, coordinator_pid=2) == "OK"
    with pytest.deprecated_call():
        assert volume.read(0, coordinator_pid=3) == data
    with pytest.deprecated_call():
        assert volume.read_range(0, 2, coordinator_pid=2)[0] == data
    with pytest.deprecated_call():
        assert volume.write_range(0, [data], coordinator_pid=4) == "OK"
    with pytest.deprecated_call():
        stripe = [block_of(32, 9)] * 3
        assert volume.write_stripe_aligned(0, stripe, coordinator_pid=2) == "OK"


def test_volume_default_route_from_constructor(cluster):
    volume = LogicalVolume(
        cluster, num_stripes=4, route=RouteOptions(coordinator=3)
    )
    assert volume.coordinator_pid == 3
    assert volume.write(0, block_of(32, 3)) == "OK"


def test_cluster_register_accepts_route(cluster):
    register = cluster.register(0, route=RouteOptions(coordinator=4))
    assert register.coordinator is cluster.coordinator(4)
    with pytest.deprecated_call():
        register = cluster.register(0, coordinator_pid=2)
    assert register.coordinator is cluster.coordinator(2)


def test_resolve_route_warning_names_the_replacement():
    with pytest.warns(DeprecationWarning, match="use route=RouteOptions"):
        resolve_route(coordinator_pid=2)


def test_legacy_pid_resolves_like_route_options(cluster):
    """The shim must route identically to the RouteOptions equivalent."""
    from repro.core.rebuild import Rebuilder

    modern = Rebuilder(cluster, route=RouteOptions(coordinator=2))
    with pytest.deprecated_call():
        legacy = Rebuilder(cluster, coordinator_pid=2)
    assert legacy.route == modern.route
    assert legacy.coordinator_pid == modern.coordinator_pid == 2

    via_options = cluster.register(0, route=RouteOptions(coordinator=3))
    with pytest.deprecated_call():
        via_pid = cluster.register(0, coordinator_pid=3)
    assert via_pid.coordinator is via_options.coordinator


def test_volume_rejects_both_route_and_coordinator_pid(cluster):
    volume = LogicalVolume(cluster, num_stripes=4)
    with pytest.raises(ConfigurationError, match="not both"):
        volume.read(0, route=2, coordinator_pid=3)


def test_failover_disabled_surfaces_crash_on_sync_ops():
    cluster = make_cluster()
    volume = LogicalVolume(cluster, num_stripes=2)
    volume.write(0, block_of(32, 5))

    def crash_soon(env):
        yield env.timeout(1.0)
        cluster.crash(2)

    cluster.env.process(crash_soon(cluster.env))
    pinned = RouteOptions(coordinator=2, failover=False)
    with pytest.raises(StorageError, match="failover is disabled"):
        volume.read(0, route=pinned)
    # With failover back on, the same read succeeds elsewhere.
    assert volume.read(0, route=RouteOptions(coordinator=2)) == block_of(32, 5)
