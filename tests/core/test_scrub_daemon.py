"""Scrub daemon and degraded reads: detect, mask, repair."""

import pytest

from repro.errors import CorruptionDetected
from repro.scrub import ScrubConfig, ScrubDaemon
from repro.sim.failures import CorruptionInjector
from tests.conftest import make_cluster, stripe_of

REGISTERS = 4


def populated_cluster(**kwargs):
    cluster = make_cluster(m=3, n=5, **kwargs)
    stripes = {}
    for register_id in range(REGISTERS):
        stripes[register_id] = stripe_of(3, 32, register_id)
        assert cluster.register(register_id).write_stripe(
            stripes[register_id]
        ) == "OK"
    return cluster, stripes


def corrupt_on(cluster, pid, register_id, seed=0):
    injector = CorruptionInjector(cluster.nodes)
    assert injector.corrupt(pid, register_id, seed=seed)
    cluster.replicas[pid].drop_mirror(register_id)


def brick_is_clean(cluster, pid, register_id):
    replica = cluster.replicas[pid]
    node = cluster.nodes[pid]
    if register_id in replica.quarantined:
        return False
    return all(
        node.stable.verify(key)
        for key in (
            replica._journal_key(register_id),
            replica._log_key(register_id),
        )
        if key in node.stable
    )


class TestDegradedReads:
    def test_read_succeeds_past_corrupt_fragment(self):
        cluster, stripes = populated_cluster()
        corrupt_on(cluster, pid=2, register_id=0)
        assert cluster.register(0).read_stripe() == stripes[0]
        assert cluster.metrics.checksum_failures > 0
        assert cluster.metrics.degraded_reads > 0

    def test_degraded_read_write_back_repairs(self):
        cluster, stripes = populated_cluster()
        corrupt_on(cluster, pid=2, register_id=0)
        assert cluster.register(0).read_stripe() == stripes[0]
        # The recovery write-back re-stored the fragment on brick 2.
        assert brick_is_clean(cluster, 2, 0)

    def test_quarantined_state_raises_typed_error(self):
        cluster, _stripes = populated_cluster()
        corrupt_on(cluster, pid=3, register_id=1)
        with pytest.raises(CorruptionDetected):
            cluster.replicas[3].state(1)
        assert 1 in cluster.replicas[3].quarantined


class TestScrubDaemon:
    def test_sweep_detects_and_repairs_cold_damage(self):
        # Nothing ever reads register 3 — only the scrubber can find
        # the flip.
        cluster, _stripes = populated_cluster()
        corrupt_on(cluster, pid=4, register_id=3)
        daemon = ScrubDaemon(cluster, registers=range(REGISTERS))
        daemon.sweep_now()
        assert daemon.detections
        assert any(
            pid == 4 and register_id == 3
            for _t, pid, register_id in daemon.detections
        )
        cluster.run(until=cluster.env.now + 200.0)
        assert daemon.repairs_done >= 1
        assert brick_is_clean(cluster, 4, 3)
        assert cluster.metrics.scrub_detections > 0
        assert cluster.metrics.scrub_repairs > 0

    def test_clean_cluster_scans_without_detections(self):
        cluster, _stripes = populated_cluster()
        daemon = ScrubDaemon(cluster, registers=range(REGISTERS))
        scanned = daemon.sweep_now()
        assert scanned == REGISTERS * 5
        assert not daemon.detections
        assert cluster.metrics.scrub_scans == scanned
        assert cluster.metrics.scrub_repairs == 0

    def test_timer_driven_sweep(self):
        cluster, _stripes = populated_cluster()
        corrupt_on(cluster, pid=1, register_id=2)
        daemon = ScrubDaemon(
            cluster,
            registers=range(REGISTERS),
            config=ScrubConfig(interval=5.0, bricks_per_step=4),
        )
        daemon.start()
        cluster.run(until=cluster.env.now + 300.0)
        daemon.stop()
        assert daemon.sweeps_completed >= 1
        assert daemon.repairs_done >= 1
        assert brick_is_clean(cluster, 1, 2)

    def test_audit_mode_detects_without_repairing(self):
        cluster, _stripes = populated_cluster()
        corrupt_on(cluster, pid=2, register_id=3)
        daemon = ScrubDaemon(
            cluster,
            registers=range(REGISTERS),
            config=ScrubConfig(repair=False),
        )
        daemon.sweep_now()
        cluster.run(until=cluster.env.now + 100.0)
        assert daemon.detections
        assert daemon.repairs_done == 0
        assert 3 in cluster.replicas[2].quarantined

    def test_skips_down_bricks(self):
        cluster, _stripes = populated_cluster()
        corrupt_on(cluster, pid=5, register_id=0)
        cluster.nodes[5].crash()
        daemon = ScrubDaemon(cluster, registers=range(REGISTERS))
        daemon.sweep_now()
        # The damaged brick is down: nothing to verify there yet.
        assert all(pid != 5 for _t, pid, _r in daemon.detections)
        cluster.nodes[5].recover()
        cluster.run(until=cluster.env.now + 50.0)
        daemon.sweep_now()
        cluster.run(until=cluster.env.now + 200.0)
        assert brick_is_clean(cluster, 5, 0)

    def test_summary_shape(self):
        cluster, _stripes = populated_cluster()
        daemon = ScrubDaemon(cluster, registers=range(REGISTERS))
        daemon.sweep_now()
        summary = daemon.summary()
        for key in (
            "sweeps_completed", "detections", "repairs_done",
            "repair_aborts", "pending_repairs",
        ):
            assert key in summary


class TestGarbageCollectorQuarantine:
    def test_trim_skips_quarantined_registers(self):
        cluster, _stripes = populated_cluster(gc_enabled=False)
        register = cluster.register(0)
        for tag in range(5, 9):
            register.write_stripe(stripe_of(3, 32, tag))
        corrupt_on(cluster, pid=2, register_id=0)
        with pytest.raises(CorruptionDetected):
            cluster.replicas[2].state(0)
        last_ts = max(
            replica.state(0).log.max_ts()
            for pid, replica in cluster.replicas.items()
            if pid != 2
        )
        report = cluster.gc.trim(0, last_ts)
        # Compacting a corrupt log would destroy the evidence the
        # repair path needs; the quarantined brick is left alone.
        assert report.skipped_quarantined == [2]
        assert report.total_removed > 0  # clean bricks still trimmed
