"""FabCluster assembly and configuration."""

import pytest

from repro import ClusterConfig, FabCluster
from repro.erasure import ReedSolomonCode, ReplicationCode, SingleParityCode
from repro.errors import ConfigurationError
from tests.conftest import make_cluster, stripe_of


class TestConstruction:
    def test_defaults(self):
        cluster = FabCluster()
        assert cluster.config.m == 3
        assert cluster.config.n == 5
        assert len(cluster.nodes) == 5
        assert cluster.quorum_system.quorum_size == 4

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            FabCluster(ClusterConfig(m=5, n=3))

    def test_code_selection(self):
        assert isinstance(FabCluster(ClusterConfig(m=1, n=3)).code, ReplicationCode)
        assert isinstance(FabCluster(ClusterConfig(m=3, n=4)).code, SingleParityCode)
        assert isinstance(FabCluster(ClusterConfig(m=3, n=6)).code, ReedSolomonCode)

    def test_explicit_f(self):
        cluster = FabCluster(ClusterConfig(m=3, n=7, f=1))
        assert cluster.quorum_system.quorum_size == 6

    def test_clock_skews_applied(self):
        cluster = FabCluster(ClusterConfig(clock_skews={2: 50.0}))
        skewed = cluster.coordinators[2].ts_source
        normal = cluster.coordinators[1].ts_source
        assert skewed.new_ts().time > normal.new_ts().time

    def test_live_processes(self):
        cluster = make_cluster()
        assert cluster.live_processes() == [1, 2, 3, 4, 5]
        cluster.crash(3)
        assert cluster.live_processes() == [1, 2, 4, 5]

    def test_repr(self):
        assert "m=3" in repr(make_cluster())


class TestDeterminism:
    def test_same_seed_same_history(self):
        def run(seed):
            cluster = make_cluster(m=3, n=5, seed=seed,
                                   min_latency=0.5, max_latency=3.0)
            register = cluster.register(0)
            outcomes = []
            for tag in range(5):
                outcomes.append(register.write_stripe(stripe_of(3, 32, tag)))
                outcomes.append(register.read_stripe())
            outcomes.append(cluster.metrics.total_messages)
            outcomes.append(cluster.env.now)
            return outcomes

        assert run(7) == run(7)

    def test_different_seed_different_timing(self):
        def message_total(seed):
            cluster = make_cluster(m=3, n=5, seed=seed,
                                   min_latency=0.5, max_latency=3.0, drop=0.2)
            register = cluster.register(0)
            for tag in range(3):
                register.write_stripe(stripe_of(3, 32, tag))
            return cluster.env.now

        assert message_total(1) != message_total(2)


class TestMultiRegister:
    def test_hundred_registers(self):
        cluster = make_cluster(m=2, n=4, block_size=16)
        for register_id in range(100):
            stripe = stripe_of(2, 16, register_id)
            assert cluster.register(register_id).write_stripe(stripe) == "OK"
        for register_id in range(0, 100, 7):
            assert cluster.register(register_id).read_stripe() == stripe_of(
                2, 16, register_id
            )

    def test_registers_survive_crash_independently(self):
        cluster = make_cluster(m=2, n=4, block_size=16)
        for register_id in range(10):
            cluster.register(register_id).write_stripe(stripe_of(2, 16, register_id))
        cluster.crash(4)
        for register_id in range(10):
            assert cluster.register(register_id).read_stripe() == stripe_of(
                2, 16, register_id
            )
