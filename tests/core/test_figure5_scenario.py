"""The paper's Figure 5 scenario, reproduced exactly.

Three processes a=1, b=2, c=3 implement a storage register with
replication as a 1-out-of-3 erasure code (quorum size 2).  A write of
v' crashes after storing v' on only process a (isolated by a partition
at just the right moment).  A subsequent read2, served by b and c,
returns the old value v.  Then a recovers.

Strict linearizability demands read3 also return v: the partial write
was rolled back by read2 and must stay rolled back — even though a now
holds v' with the highest timestamp.  The paper's two-phase write makes
this work (ord-ts reveals the unfulfilled intention); the LS97 baseline,
which simply completes partial writes, returns v' — the exact anomaly
the paper argues is unacceptable for storage systems.
"""

import pytest

from repro.baselines.ls97 import Ls97Cluster, Ls97Config, StoreReq
from repro.sim.network import NetworkConfig
from tests.conftest import make_cluster

V_OLD = [b"v" * 32]
V_NEW = [b"w" * 32]


def run_figure5_on_our_protocol():
    """Drive the scenario; returns (read2_value, read3_value)."""
    cluster = make_cluster(m=1, n=3, block_size=32)
    env = cluster.env

    # Initial state: v committed everywhere (coordinator b).
    assert cluster.register(0, route=2).write_stripe(V_OLD) == "OK"

    # write1(v') from coordinator a.  Let the Order phase complete
    # (one round trip = 2 time units), then cut a off from b and c so
    # only a's own replica receives the Write.
    writer = cluster.coordinators[1]
    process = cluster.nodes[1].spawn(writer.write_stripe(0, V_NEW))
    env.run(until=env.now + 2.5)  # Order done, Write messages in flight
    cluster.network.partition({1}, {2, 3})
    env.run(until=env.now + 2.0)  # a's self-Write lands; others dropped
    cluster.nodes[1].crash()      # write1 dies: partial write
    env.run(until=env.now + 1.0)
    assert not process.ok
    cluster.network.heal_partition()

    # Verify the partial state is as in the figure.
    assert cluster.replicas[1].state(0).log.max_block()[1] == V_NEW[0]
    assert cluster.replicas[2].state(0).log.max_block()[1] == V_OLD[0]
    assert cluster.replicas[3].state(0).log.max_block()[1] == V_OLD[0]

    read2 = cluster.register(0, route=3).read_stripe()

    cluster.nodes[1].recover()
    read3 = cluster.register(0, route=2).read_stripe()
    read3_again = cluster.register(0, route=3).read_stripe()
    return read2, read3, read3_again


class TestFigure5OurProtocol:
    def test_partial_write_rolled_back_and_stays_rolled_back(self):
        read2, read3, read3_again = run_figure5_on_our_protocol()
        assert read2 == V_OLD
        assert read3 == V_OLD, "v' resurfaced after recovery: not strict"
        assert read3_again == V_OLD


class TestFigure5Ls97Anomaly:
    def test_ls97_resurrects_the_partial_write(self):
        """The baseline *does* exhibit the Figure 5 anomaly, confirming
        our protocol's extra machinery is what prevents it."""
        cluster = Ls97Cluster(Ls97Config(n=3))
        env = cluster.env

        assert cluster.write(0, V_OLD[0], route=2) == "OK"

        writer = cluster.coordinators[1]
        process = cluster.nodes[1].spawn(writer.write(0, V_NEW[0]))
        env.run(until=env.now + 2.5)  # query phase done, stores in flight
        cluster.network.partition({1}, {2, 3})
        env.run(until=env.now + 2.0)  # self-store lands on a only
        cluster.nodes[1].crash()
        env.run(until=env.now + 1.0)
        assert not process.ok
        cluster.network.heal_partition()

        assert cluster.nodes[1].stable.load("reg:0")[1] == V_NEW[0]
        assert cluster.nodes[2].stable.load("reg:0")[1] == V_OLD[0]

        read2 = cluster.read(0, route=3)
        assert read2 == V_OLD[0]

        cluster.nodes[1].recover()
        read3 = cluster.read(0, route=3)
        # LS97 write-back completes the partial write arbitrarily late:
        # the anomaly strict linearizability forbids.
        assert read3 == V_NEW[0]
