"""The quorum() primitive: gathering, grace, retransmission, expiry."""

import pytest

from repro.core.coordinator import CoordinatorConfig, QuorumRpc, _PendingCall
from repro.core.messages import ReadReply, ReadReq
from repro.sim.kernel import Environment
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Node
from tests.conftest import make_cluster, stripe_of


class EchoReplica:
    """A minimal endpoint that answers ReadReq with a canned status."""

    def __init__(self, node, status=True, delay=0.0):
        self.node = node
        self.status = status
        self.delay = delay
        node.register_handler(ReadReq, self._on_read)

    def _on_read(self, src, req):
        reply = ReadReply(
            register_id=req.register_id,
            request_id=req.request_id,
            status=self.status,
            val_ts=None,
            block=None,
        )
        if self.delay:
            timer = self.node.env.timeout(self.delay)
            timer._add_callback(lambda _t: self.node.send(src, reply))
        else:
            self.node.send(src, reply)


def build_rpc(n=4, quorum=3, config=None, delays=None, statuses=None):
    env = Environment()
    network = Network(env, NetworkConfig())
    nodes = {pid: Node(env, network, pid) for pid in range(1, n + 1)}
    replicas = {
        pid: EchoReplica(
            nodes[pid],
            status=(statuses or {}).get(pid, True),
            delay=(delays or {}).get(pid, 0.0),
        )
        for pid in nodes
    }
    coordinator_node = Node(env, network, 100)
    rpc = QuorumRpc(
        coordinator_node,
        universe=list(range(1, n + 1)),
        quorum_size=quorum,
        config=config or CoordinatorConfig(),
    )
    return env, coordinator_node, rpc, nodes


def run_call(env, node, rpc, **kwargs):
    process = node.spawn(
        rpc.call(
            lambda dst, rid: ReadReq(register_id=0, request_id=rid,
                                     targets=frozenset()),
            **kwargs,
        )
    )
    return env.run_until_complete(process)


class TestGathering:
    def test_completes_at_quorum(self):
        env, node, rpc, _nodes = build_rpc(n=4, quorum=3)
        replies = run_call(env, node, rpc)
        assert len(replies) >= 3

    def test_waits_for_slow_member_without_prefer_only_to_quorum(self):
        env, node, rpc, _nodes = build_rpc(
            n=4, quorum=3, delays={4: 50.0}
        )
        replies = run_call(env, node, rpc)
        assert 4 not in replies
        assert env.now < 10

    def test_prefer_waits_within_grace(self):
        env, node, rpc, _nodes = build_rpc(
            n=4, quorum=3, delays={4: 2.5},
            config=CoordinatorConfig(grace=5.0),
        )
        replies = run_call(
            env, node, rpc, prefer=lambda r: 4 in r and len(r) >= 3
        )
        assert 4 in replies

    def test_grace_expiry_returns_quorum_without_preferred(self):
        env, node, rpc, _nodes = build_rpc(
            n=4, quorum=3, delays={4: 100.0},
            config=CoordinatorConfig(grace=2.0, retransmit_interval=500.0),
        )
        replies = run_call(
            env, node, rpc, prefer=lambda r: 4 in r and len(r) >= 3
        )
        assert 4 not in replies
        assert len(replies) == 3

    def test_min_count_override(self):
        env, node, rpc, _nodes = build_rpc(n=4, quorum=3)
        replies = run_call(env, node, rpc, min_count=4)
        assert len(replies) == 4


class TestRetransmission:
    def test_resends_to_nonresponders_until_quorum(self):
        env, node, rpc, nodes = build_rpc(
            n=3, quorum=3,
            config=CoordinatorConfig(retransmit_interval=5.0),
        )
        nodes[3].crash()

        process = node.spawn(
            rpc.call(lambda dst, rid: ReadReq(0, rid, frozenset()))
        )
        env.run(until=12.0)
        assert not process.triggered  # still missing node 3
        nodes[3].recover()
        env.run(until=30.0)
        assert process.triggered
        assert len(process.value) == 3

    def test_retransmission_stops_after_completion(self):
        env, node, rpc, _nodes = build_rpc(
            n=3, quorum=3,
            config=CoordinatorConfig(retransmit_interval=3.0),
        )
        run_call(env, node, rpc)
        sent_after = node.metrics.total_messages
        env.run(until=env.now + 50)
        assert node.metrics.total_messages == sent_after

    def test_duplicate_replies_counted_once(self):
        env = Environment()
        network = Network(env, NetworkConfig(duplicate_probability=1.0))
        nodes = {pid: Node(env, network, pid) for pid in (1, 2, 3)}
        for pid in nodes:
            EchoReplica(nodes[pid])
        coordinator = Node(env, network, 100)
        rpc = QuorumRpc(coordinator, [1, 2, 3], 3, CoordinatorConfig())
        replies = env.run_until_complete(
            coordinator.spawn(
                rpc.call(lambda dst, rid: ReadReq(0, rid, frozenset()))
            )
        )
        assert len(replies) == 3


class TestExpiry:
    def test_op_timeout_yields_none_below_quorum(self):
        env, node, rpc, nodes = build_rpc(
            n=4, quorum=3, config=CoordinatorConfig(op_timeout=20.0),
        )
        nodes[2].crash()
        nodes[3].crash()
        nodes[4].crash()
        result = run_call(env, node, rpc)
        assert result is None

    def test_op_timeout_ignored_when_quorum_met(self):
        env, node, rpc, _nodes = build_rpc(
            n=4, quorum=3, config=CoordinatorConfig(op_timeout=50.0),
        )
        replies = run_call(env, node, rpc)
        assert replies is not None


class TestRequestIds:
    def test_monotonic_unique(self):
        _env, _node, rpc, _nodes = build_rpc()
        ids = [rpc.next_request_id() for _ in range(10)]
        assert ids == sorted(set(ids))
