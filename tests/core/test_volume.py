"""Logical volumes: address translation and block I/O."""

import pytest

from repro import LogicalVolume
from repro.errors import ConfigurationError
from tests.conftest import block_of, make_cluster, stripe_of


@pytest.fixture
def volume():
    cluster = make_cluster(m=3, n=5, block_size=32)
    return LogicalVolume(cluster, num_stripes=4)


class TestGeometry:
    def test_sizes(self, volume):
        assert volume.num_blocks == 12
        assert volume.capacity_bytes == 12 * 32

    def test_rejects_zero_stripes(self):
        cluster = make_cluster()
        with pytest.raises(ConfigurationError):
            LogicalVolume(cluster, num_stripes=0)

    def test_locate_shuffled(self, volume):
        """Consecutive logical blocks land on consecutive stripes."""
        stripes = [volume.locate(block)[0] for block in range(4)]
        assert stripes == [0, 1, 2, 3]

    def test_locate_linear(self):
        cluster = make_cluster(m=3, n=5, block_size=32)
        volume = LogicalVolume(cluster, num_stripes=4, stripe_shuffle=False)
        assert [volume.locate(b) for b in range(4)] == [
            (0, 1), (0, 2), (0, 3), (1, 1)
        ]

    def test_locate_out_of_range(self, volume):
        with pytest.raises(ConfigurationError):
            volume.locate(12)
        with pytest.raises(ConfigurationError):
            volume.locate(-1)

    def test_locate_covers_all_units(self, volume):
        seen = {volume.locate(block) for block in range(volume.num_blocks)}
        assert len(seen) == volume.num_blocks

    def test_base_register_offset(self):
        cluster = make_cluster(m=3, n=5, block_size=32)
        vol_a = LogicalVolume(cluster, num_stripes=2, base_register_id=0)
        vol_b = LogicalVolume(cluster, num_stripes=2, base_register_id=100)
        vol_a.write(0, b"A" * 32)
        vol_b.write(0, b"B" * 32)
        assert vol_a.read(0) == b"A" * 32
        assert vol_b.read(0) == b"B" * 32


class TestBlockIO:
    def test_read_unwritten_is_zeros(self, volume):
        assert volume.read(5) == bytes(32)

    def test_write_read_roundtrip(self, volume):
        data = block_of(32, tag=1)
        assert volume.write(3, data) == "OK"
        assert volume.read(3) == data

    def test_write_wrong_size_rejected(self, volume):
        with pytest.raises(ConfigurationError):
            volume.write(0, b"short")

    def test_all_blocks_independent(self, volume):
        for block in range(volume.num_blocks):
            volume.write(block, block_of(32, tag=block))
        for block in range(volume.num_blocks):
            assert volume.read(block) == block_of(32, tag=block)

    def test_write_survives_crash(self, volume):
        data = block_of(32, tag=1)
        volume.write(0, data)
        volume.cluster.crash(5)
        assert volume.read(0) == data

    def test_read_via_other_coordinator(self, volume):
        data = block_of(32, tag=2)
        volume.write(7, data, route=1)
        assert volume.read(7, route=4) == data


class TestRangeIO:
    def test_range_roundtrip(self, volume):
        blocks = [block_of(32, tag=10 + i) for i in range(5)]
        assert volume.write_range(2, blocks) == "OK"
        assert volume.read_range(2, 5) == blocks

    def test_range_mixes_written_and_zeros(self, volume):
        volume.write(1, block_of(32, tag=1))
        values = volume.read_range(0, 3)
        assert values[0] == bytes(32)
        assert values[1] == block_of(32, tag=1)
        assert values[2] == bytes(32)


class TestStripeAlignedIO:
    def test_stripe_write_visible_blockwise(self, volume):
        stripe = stripe_of(3, 32, tag=5)
        assert volume.write_stripe_aligned(1, stripe) == "OK"
        # Stripe 1, units 1..3 correspond to logical blocks 1, 5, 9
        # under the shuffled layout (block % 4 == 1).
        for unit, logical in enumerate([1, 5, 9]):
            assert volume.read(logical) == stripe[unit]

    def test_stripe_write_validations(self, volume):
        with pytest.raises(ConfigurationError):
            volume.write_stripe_aligned(9, stripe_of(3, 32, tag=1))
        with pytest.raises(ConfigurationError):
            volume.write_stripe_aligned(0, stripe_of(2, 32, tag=1))

    def test_stripe_write_cheaper_than_block_writes(self):
        cluster = make_cluster(m=3, n=5, block_size=32)
        volume = LogicalVolume(cluster, num_stripes=2)
        volume.write_stripe_aligned(0, stripe_of(3, 32, tag=1))
        stripe_msgs = cluster.metrics.summary()["write-stripe/fast"]["messages"]
        for i in range(3):
            volume.write(i, block_of(32, tag=i))
        block_msgs = sum(
            row["messages"] * row["count"]
            for label, row in cluster.metrics.summary().items()
            if label.startswith("write-block")
        )
        assert stripe_msgs < block_msgs
