"""Seed-vs-fast simulator path equivalence.

The copy-on-write stable store and the journal log persistence are pure
performance work: for identical seeds, the seed path (``deepcopy`` +
full-log re-store) and the fast path (``cow`` + journal) must produce
identical operation histories, identical metric totals, and identical
recovered replica state — including runs with crashes, GC, and message
drops.  These tests pin that equivalence so future fast-path work
cannot silently change protocol behaviour.
"""

import pytest

from repro.core.cluster import ClusterConfig, FabCluster
from repro.core.coordinator import CoordinatorConfig
from repro.sim.network import NetworkConfig

#: path name -> (store_mode, persistence), mirroring analysis.simcore.
PATHS = {
    "seed": ("deepcopy", "full"),
    "fast": ("cow", "journal"),
}

M, N = 2, 4
BLOCK = 32
REGISTERS = 4


def make_cluster(path, drop=0.0, gc=False, seed=7):
    store_mode, persistence = PATHS[path]
    return FabCluster(
        ClusterConfig(
            m=M,
            n=N,
            block_size=BLOCK,
            seed=seed,
            store_mode=store_mode,
            persistence=persistence,
            network=NetworkConfig(jitter_seed=seed, drop_probability=drop),
            coordinator=CoordinatorConfig(gc_enabled=gc),
        )
    )


def stripe_for(rid, version):
    return [
        bytes([65 + (rid + version + j) % 26]) * BLOCK for j in range(M)
    ]


def run_workload(cluster, crash_pid=None):
    """A deterministic mixed workload; returns the visible op history.

    Writes and reads round-robin over registers; midway, brick
    ``crash_pid`` crashes (missing several writes, which forces the
    slow-path recovery read on it later) and then recovers, exercising
    the stable-storage reload on whichever persistence path is active.
    """
    handles = [cluster.register(rid) for rid in range(REGISTERS)]
    history = []
    for step in range(40):
        rid = step % REGISTERS
        if crash_pid is not None and step == 12:
            cluster.crash(crash_pid)
        if crash_pid is not None and step == 28:
            cluster.recover(crash_pid)
        if step % 5 == 4:
            history.append(("read", rid, handles[rid].read_stripe()))
        elif step % 7 == 6:
            block = bytes([97 + step % 26]) * BLOCK
            history.append(
                ("write-block", rid, handles[rid].write_block(0, block))
            )
        else:
            history.append(
                ("write", rid, handles[rid].write_stripe(stripe_for(rid, step)))
            )
    return history


def metric_totals(cluster):
    metrics = cluster.metrics
    return {
        "messages": metrics.total_messages,
        "bytes": metrics.total_bytes,
        "disk_reads": metrics.total_disk_reads,
        "disk_writes": metrics.total_disk_writes,
        "dropped": metrics.dropped_messages,
        "retransmissions": metrics.total_retransmissions,
        "ops": (metrics.ops_started, metrics.ops_finished),
        "now": cluster.env.now,
        "events": cluster.env.events_processed,
    }


def recovered_states(cluster):
    """Every replica's state as observed after a crash + recovery.

    Crashing first forces the reload path, so on the journal path this
    checks what ``replay_journal`` actually reconstructs from stable
    storage, not the volatile mirror.
    """
    states = {}
    for pid, node in cluster.nodes.items():
        if not node.is_up:
            node.recover()
        node.crash()
        node.recover()
        replica = cluster.replicas[pid]
        for rid in range(REGISTERS):
            state = replica.state(rid)
            states[(pid, rid)] = (state.ord_ts, state.log.to_state())
    return states


def assert_equivalent(seed_cluster, fast_cluster, seed_hist, fast_hist):
    assert seed_hist == fast_hist
    assert metric_totals(seed_cluster) == metric_totals(fast_cluster)
    assert recovered_states(seed_cluster) == recovered_states(fast_cluster)


class TestPathEquivalence:
    def test_plain_run(self):
        seed_cluster, fast_cluster = make_cluster("seed"), make_cluster("fast")
        assert_equivalent(
            seed_cluster, fast_cluster,
            run_workload(seed_cluster), run_workload(fast_cluster),
        )

    def test_with_crash_and_gc(self):
        seed_cluster = make_cluster("seed", gc=True)
        fast_cluster = make_cluster("fast", gc=True)
        assert_equivalent(
            seed_cluster, fast_cluster,
            run_workload(seed_cluster, crash_pid=3),
            run_workload(fast_cluster, crash_pid=3),
        )

    def test_with_drops_and_crash(self):
        seed_cluster = make_cluster("seed", drop=0.05, gc=True)
        fast_cluster = make_cluster("fast", drop=0.05, gc=True)
        assert_equivalent(
            seed_cluster, fast_cluster,
            run_workload(seed_cluster, crash_pid=4),
            run_workload(fast_cluster, crash_pid=4),
        )

    @pytest.mark.parametrize("path", sorted(PATHS))
    def test_same_seed_reproduces_itself(self, path):
        first = make_cluster(path, drop=0.05, gc=True)
        second = make_cluster(path, drop=0.05, gc=True)
        assert run_workload(first, crash_pid=2) == run_workload(
            second, crash_pid=2
        )
        assert metric_totals(first) == metric_totals(second)
        assert recovered_states(first) == recovered_states(second)

    def test_journal_compaction_preserves_state(self):
        """GC-heavy runs compact the journal; recovered state must match
        the live log exactly afterwards."""
        cluster = make_cluster("fast", gc=True)
        handle = cluster.register(0)
        for version in range(60):
            handle.write_stripe(stripe_for(0, version))
        replica = cluster.replicas[1]
        live = replica.state(0)
        expected = (live.ord_ts, live.log.to_state())
        cluster.crash(1)
        cluster.recover(1)
        state = replica.state(0)
        assert (state.ord_ts, state.log.to_state()) == expected
        # Compaction actually happened: the journal is bounded well
        # below one record per historical mutation.
        journal = cluster.nodes[1].stable
        assert journal.journal_len("logj:0") < 60
