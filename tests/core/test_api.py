"""The repro.api facade: one-call cluster/volume construction."""

import pytest

import repro
from repro import open_cluster, open_volume
from repro.api import _split_knobs
from repro.errors import ConfigurationError


def test_three_line_roundtrip():
    volume = open_volume(m=3, n=5, blocks=48, block_size=64)
    volume.write(0, b"x" * 64)
    assert volume.read(0) == b"x" * 64


def test_open_cluster_defaults():
    cluster = open_cluster()
    assert cluster.config.m == 3
    assert cluster.config.n == 5


def test_knobs_route_to_the_right_config():
    cluster = open_cluster(
        5, 8,
        block_size=256,          # ClusterConfig
        seed=9,                  # ClusterConfig
        drop_probability=0.25,   # NetworkConfig
        min_latency=0.5,         # NetworkConfig
        gc_enabled=False,        # CoordinatorConfig
    )
    assert cluster.config.m == 5 and cluster.config.n == 8
    assert cluster.config.block_size == 256
    assert cluster.config.seed == 9
    assert cluster.config.network.drop_probability == 0.25
    assert cluster.config.network.min_latency == 0.5
    assert cluster.config.coordinator.gc_enabled is False


def test_jitter_seed_defaults_to_cluster_seed():
    assert open_cluster(seed=7).config.network.jitter_seed == 7
    assert open_cluster(seed=7, jitter_seed=3).config.network.jitter_seed == 3


def test_unknown_knob_fails_loudly():
    with pytest.raises(ConfigurationError, match="blok_size"):
        open_cluster(block_size=64, blok_size=64)
    with pytest.raises(ConfigurationError, match="valid knobs"):
        open_volume(m=3, n=5, not_a_knob=1)


def test_split_knobs_routes_every_field_uniquely():
    cluster_kw, network_kw, coordinator_kw = _split_knobs(
        {"block_size": 1, "drop_probability": 0.1, "gc_enabled": True}
    )
    assert cluster_kw == {"block_size": 1}
    assert network_kw == {"drop_probability": 0.1}
    assert coordinator_kw == {"gc_enabled": True}


def test_blocks_round_up_to_whole_stripes():
    volume = open_volume(m=3, n=5, blocks=10)
    assert volume.num_stripes == 4          # ceil(10 / 3)
    assert volume.num_blocks == 12          # whole stripes
    assert open_volume(m=3, n=5, blocks=12).num_stripes == 4


def test_stripes_taken_verbatim_and_default():
    assert open_volume(m=3, n=5, stripes=7).num_stripes == 7
    assert open_volume(m=3, n=5).num_stripes == 16


def test_blocks_and_stripes_are_exclusive():
    with pytest.raises(ConfigurationError, match="either blocks= or stripes="):
        open_volume(m=3, n=5, blocks=6, stripes=2)
    with pytest.raises(ConfigurationError):
        open_volume(m=3, n=5, blocks=0)


def test_existing_cluster_is_reused():
    cluster = open_cluster(3, 5, block_size=64)
    a = open_volume(cluster, stripes=4)
    b = open_volume(cluster, stripes=4, base_register_id=100)
    assert a.cluster is b.cluster is cluster
    a.write(0, b"a" * 64)
    b.write(0, b"b" * 64)
    assert a.read(0) == b"a" * 64
    assert b.read(0) == b"b" * 64


def test_cluster_knobs_rejected_with_existing_cluster():
    cluster = open_cluster()
    with pytest.raises(ConfigurationError, match="open_cluster"):
        open_volume(cluster, blocks=6, block_size=64)


def test_facade_reexported_at_package_root():
    assert repro.open_cluster is open_cluster
    assert repro.open_volume is open_volume
    for name in (
        "open_cluster", "open_volume", "RouteOptions", "VolumeSession",
        "SessionOp",
    ):
        assert name in repro.__all__
        assert hasattr(repro, name)
