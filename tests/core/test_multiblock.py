"""Multi-block operations (the paper's footnote 2 extension)."""

import pytest

from repro.errors import ProtocolInvariantError
from repro.types import ABORT
from tests.conftest import block_of, make_cluster, stripe_of


@pytest.fixture
def loaded_cluster():
    cluster = make_cluster(m=3, n=5)
    stripe = stripe_of(3, 32, tag=1)
    cluster.register(0).write_stripe(stripe)
    return cluster, stripe


class TestReadBlocks:
    def test_reads_requested_blocks(self, loaded_cluster):
        cluster, stripe = loaded_cluster
        register = cluster.register(0)
        assert register.read_blocks([1, 3]) == {1: stripe[0], 3: stripe[2]}

    def test_single_block(self, loaded_cluster):
        cluster, stripe = loaded_cluster
        assert cluster.register(0).read_blocks([2]) == {2: stripe[1]}

    def test_all_blocks(self, loaded_cluster):
        cluster, stripe = loaded_cluster
        result = cluster.register(0).read_blocks([1, 2, 3])
        assert result == {1: stripe[0], 2: stripe[1], 3: stripe[2]}

    def test_nil_register(self):
        cluster = make_cluster(m=3, n=5)
        assert cluster.register(9).read_blocks([1, 2]) == {1: None, 2: None}

    def test_fast_path_costs(self, loaded_cluster):
        cluster, _ = loaded_cluster
        cluster.register(0).read_blocks([1, 2])
        row = cluster.metrics.summary()["read-blocks/fast"]
        assert row["latency_delta"] == 2
        assert row["messages"] == 10
        assert row["disk_reads"] == 2  # one per requested block

    def test_recovers_when_target_down(self, loaded_cluster):
        cluster, stripe = loaded_cluster
        cluster.crash(2)
        result = cluster.register(0).read_blocks([1, 2])
        assert result == {1: stripe[0], 2: stripe[1]}
        assert cluster.metrics.summary()["read-blocks/slow"]["count"] == 1


class TestWriteBlocks:
    def test_atomic_multi_update(self, loaded_cluster):
        cluster, stripe = loaded_cluster
        register = cluster.register(0)
        updates = {1: block_of(32, tag=11), 3: block_of(32, tag=13)}
        assert register.write_blocks(updates) == "OK"
        assert register.read_stripe() == [updates[1], stripe[1], updates[3]]

    def test_parity_consistent_after_multi_update(self, loaded_cluster):
        cluster, stripe = loaded_cluster
        register = cluster.register(0)
        updates = {1: block_of(32, tag=21), 2: block_of(32, tag=22)}
        register.write_blocks(updates)
        cluster.crash(1)
        cluster.crash(2)  # exceed f: bring one back
        cluster.recover(1)
        value = cluster.register(0, route=3).read_stripe()
        assert value == [updates[1], updates[2], stripe[2]]

    def test_empty_updates_is_noop(self, loaded_cluster):
        cluster, _ = loaded_cluster
        coordinator = cluster.coordinators[1]
        process = cluster.nodes[1].spawn(coordinator.write_blocks(0, {}))
        assert cluster.env.run_until_complete(process) == "OK"

    def test_rejects_out_of_range_index(self, loaded_cluster):
        cluster, _ = loaded_cluster
        coordinator = cluster.coordinators[1]
        process = cluster.nodes[1].spawn(
            coordinator.write_blocks(0, {4: b"x" * 32})
        )
        with pytest.raises(ProtocolInvariantError):
            cluster.env.run_until_complete(process)

    def test_virgin_register_zero_fills(self):
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(7)
        updates = {2: block_of(32, tag=5)}
        assert register.write_blocks(updates) == "OK"
        assert register.read_stripe() == [bytes(32), updates[2], bytes(32)]

    def test_costs_independent_of_update_count(self, loaded_cluster):
        cluster, _ = loaded_cluster
        register = cluster.register(0)
        register.write_blocks({1: block_of(32, tag=31)})
        register.write_blocks({
            1: block_of(32, tag=41),
            2: block_of(32, tag=42),
            3: block_of(32, tag=43),
        })
        rows = cluster.metrics.by_kind_and_path()["write-blocks/fast"]
        assert rows[0].messages == rows[1].messages == 20  # 4n
        assert rows[0].round_trips == rows[1].round_trips == 2  # 4δ

    def test_sequential_multi_writes(self, loaded_cluster):
        cluster, stripe = loaded_cluster
        register = cluster.register(0)
        expected = list(stripe)
        for round_tag in range(5):
            js = [(round_tag % 3) + 1, ((round_tag + 1) % 3) + 1]
            updates = {
                j: block_of(32, tag=100 + round_tag * 10 + j) for j in js
            }
            assert register.write_blocks(updates) == "OK"
            for j, block in updates.items():
                expected[j - 1] = block
            assert register.read_stripe() == expected

    def test_interleaves_with_single_block_ops(self, loaded_cluster):
        cluster, stripe = loaded_cluster
        register = cluster.register(0)
        expected = list(stripe)
        multi = {1: block_of(32, tag=51), 2: block_of(32, tag=52)}
        register.write_blocks(multi)
        expected[0], expected[1] = multi[1], multi[2]
        single = block_of(32, tag=53)
        register.write_block(3, single)
        expected[2] = single
        assert register.read_stripe() == expected
        assert register.read_blocks([1, 2, 3]) == {
            1: expected[0], 2: expected[1], 3: expected[2]
        }

    def test_write_blocks_with_brick_down(self, loaded_cluster):
        cluster, stripe = loaded_cluster
        cluster.crash(5)
        register = cluster.register(0)
        updates = {2: block_of(32, tag=61)}
        assert register.write_blocks(updates) == "OK"
        cluster.recover(5)
        cluster.crash(4)
        value = cluster.register(0, route=2).read_stripe()
        assert value[1] == updates[2]
