"""Block-level coordinator operations (Algorithm 3)."""

import pytest

from repro.types import ABORT
from tests.conftest import block_of, make_cluster, stripe_of


class TestReadBlock:
    def test_read_block_after_stripe_write(self, cluster):
        register = cluster.register(0)
        stripe = stripe_of(3, 32, tag=1)
        register.write_stripe(stripe)
        for j in (1, 2, 3):
            assert register.read_block(j) == stripe[j - 1]

    def test_read_block_never_written_is_nil(self, cluster):
        assert cluster.register(3).read_block(2) is None

    def test_read_block_fast_costs(self):
        """Block read/F: 2δ, 2n messages, 1 disk read, B bandwidth."""
        cluster = make_cluster(m=3, n=5, block_size=32)
        register = cluster.register(0)
        register.write_stripe(stripe_of(3, 32, tag=1))
        register.read_block(2)
        row = cluster.metrics.summary()["read-block/fast"]
        assert row["latency_delta"] == 2
        assert row["messages"] == 10
        assert row["disk_reads"] == 1
        assert row["bytes"] == 32

    def test_read_block_with_target_crashed_recovers(self):
        """p_j down: the fast path can't get its block; recovery decodes."""
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0)
        stripe = stripe_of(3, 32, tag=1)
        register.write_stripe(stripe)
        cluster.crash(2)
        assert register.read_block(2) == stripe[1]
        row = cluster.metrics.summary()["read-block/slow"]
        assert row["count"] == 1


class TestWriteBlock:
    def test_write_block_updates_single_block(self, cluster):
        register = cluster.register(0)
        stripe = stripe_of(3, 32, tag=1)
        register.write_stripe(stripe)
        new_block = block_of(32, tag=2)
        assert register.write_block(2, new_block) == "OK"
        expected = [stripe[0], new_block, stripe[2]]
        assert register.read_stripe() == expected

    def test_write_block_updates_parity(self, cluster):
        """After write-block, the stripe decodes from ANY m blocks."""
        register = cluster.register(0)
        stripe = stripe_of(3, 32, tag=1)
        register.write_stripe(stripe)
        new_block = block_of(32, tag=9)
        register.write_block(1, new_block)
        # Crash both other data bricks: decode must use parity.
        cluster.crash(2)
        value = register.read_stripe()
        assert value == [new_block, stripe[1], stripe[2]]

    def test_each_block_writable(self, cluster):
        register = cluster.register(0)
        stripe = stripe_of(3, 32, tag=1)
        register.write_stripe(stripe)
        expected = list(stripe)
        for j in (1, 2, 3):
            new_block = block_of(32, tag=10 + j)
            assert register.write_block(j, new_block) == "OK"
            expected[j - 1] = new_block
        assert register.read_stripe() == expected

    def test_write_block_fast_costs(self):
        """Block write/F: 4δ, 4n msgs, k+1 reads, k+1 writes, (2n+1)B."""
        cluster = make_cluster(m=3, n=5, block_size=32)
        register = cluster.register(0)
        register.write_stripe(stripe_of(3, 32, tag=1))
        register.write_block(2, block_of(32, tag=2))
        row = cluster.metrics.summary()["write-block/fast"]
        k = 2
        assert row["latency_delta"] == 4
        assert row["messages"] == 20
        assert row["disk_reads"] == k + 1
        assert row["disk_writes"] == k + 1
        assert row["bytes"] == (2 * 5 + 1) * 32

    def test_write_block_on_virgin_register(self, cluster):
        """No base value: the fast path aborts cleanly, the slow path
        materializes a zero stripe and writes through."""
        register = cluster.register(4)
        new_block = block_of(32, tag=5)
        assert register.write_block(2, new_block) == "OK"
        stripe = register.read_stripe()
        assert stripe[1] == new_block
        assert stripe[0] == bytes(32)
        assert stripe[2] == bytes(32)

    def test_write_block_delta_updates(self):
        """Section 5.2 (b): shipping one coded delta, not old+new."""
        cluster = make_cluster(m=3, n=5, block_size=32, delta_updates=True)
        # force Reed-Solomon so deltas apply (auto picks parity for n=m+1)
        assert type(cluster.code).__name__ == "ReedSolomonCode"
        register = cluster.register(0)
        stripe = stripe_of(3, 32, tag=1)
        register.write_stripe(stripe)
        new_block = block_of(32, tag=2)
        assert register.write_block(2, new_block) == "OK"
        assert register.read_stripe() == [stripe[0], new_block, stripe[2]]
        # Bandwidth shrinks: parity processes got B (delta) instead of 2B.
        row = cluster.metrics.summary()["write-block/fast"]
        assert row["bytes"] < (2 * 5 + 1) * 32

    def test_write_block_survives_parity_crash(self):
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0)
        stripe = stripe_of(3, 32, tag=1)
        register.write_stripe(stripe)
        cluster.crash(5)  # one parity brick down
        new_block = block_of(32, tag=2)
        assert register.write_block(1, new_block) == "OK"
        cluster.recover(5)
        cluster.crash(4)
        assert register.read_stripe() == [new_block, stripe[1], stripe[2]]

    def test_write_block_with_pj_crashed_uses_slow_path(self):
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0)
        stripe = stripe_of(3, 32, tag=1)
        register.write_stripe(stripe)
        cluster.crash(2)  # p_j itself is down
        new_block = block_of(32, tag=2)
        assert register.write_block(2, new_block) == "OK"
        cluster.recover(2)
        assert register.read_block(2) == new_block
        assert cluster.metrics.summary()["write-block/slow"]["count"] == 1

    def test_mixed_block_and_stripe_traffic(self, cluster):
        register = cluster.register(0)
        stripe = stripe_of(3, 32, tag=0)
        register.write_stripe(stripe)
        expected = list(stripe)
        for round_tag in range(1, 6):
            j = (round_tag % 3) + 1
            block = block_of(32, tag=round_tag)
            register.write_block(j, block)
            expected[j - 1] = block
            assert register.read_block(j) == block
        assert register.read_stripe() == expected
