"""Garbage collection (Section 5.1): online and offline log trimming."""

import pytest

from tests.conftest import make_cluster, stripe_of


class TestOnlineGc:
    def test_logs_grow_without_gc(self):
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0)
        for tag in range(10):
            register.write_stripe(stripe_of(3, 32, tag))
        assert cluster.gc.high_water_mark(0) >= 10

    def test_gc_enabled_keeps_logs_bounded(self):
        cluster = make_cluster(m=3, n=5, gc_enabled=True)
        register = cluster.register(0)
        for tag in range(20):
            register.write_stripe(stripe_of(3, 32, tag))
        cluster.run(until=cluster.env.now + 50)  # let async GC notices land
        # Each log holds at most the last complete write + one in flight.
        assert cluster.gc.high_water_mark(0) <= 3

    def test_gc_preserves_readability(self):
        cluster = make_cluster(m=3, n=5, gc_enabled=True)
        register = cluster.register(0)
        last = None
        for tag in range(15):
            last = stripe_of(3, 32, tag)
            register.write_stripe(last)
        cluster.run(until=cluster.env.now + 50)
        assert register.read_stripe() == last

    def test_gc_with_block_writes(self):
        cluster = make_cluster(m=3, n=5, gc_enabled=True)
        register = cluster.register(0)
        register.write_stripe(stripe_of(3, 32, tag=0))
        for tag in range(1, 12):
            block = (f"g{tag}".encode() * 32)[:32]
            register.write_block((tag % 3) + 1, block)
        cluster.run(until=cluster.env.now + 50)
        # Fast block writes do not GC (they do not touch a full quorum
        # write path in our implementation), so growth is bounded only
        # by the stripe writes; still, reads must stay correct.
        value = register.read_stripe()
        assert value is not None

    def test_gc_safe_under_crash(self):
        """GC then crash/recover: the surviving entry must suffice."""
        cluster = make_cluster(m=3, n=5, gc_enabled=True)
        register = cluster.register(0)
        last = None
        for tag in range(8):
            last = stripe_of(3, 32, tag)
            register.write_stripe(last)
        cluster.run(until=cluster.env.now + 50)
        cluster.crash(2)
        assert register.read_stripe() == last
        cluster.recover(2)
        cluster.crash(4)
        assert register.read_stripe() == last


class TestOfflineGc:
    def test_stats(self):
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0)
        for tag in range(4):
            register.write_stripe(stripe_of(3, 32, tag))
        stats = cluster.gc.stats(0)
        assert stats.register_id == 0
        assert set(stats.entries_per_replica) == {1, 2, 3, 4, 5}
        assert stats.total_entries == 5 * 5  # LowTS + 4 writes each
        assert stats.max_entries == 5

    def test_manual_trim(self):
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0)
        last_stripe = None
        for tag in range(5):
            last_stripe = stripe_of(3, 32, tag)
            register.write_stripe(last_stripe)
        # The last committed timestamp: max over replica logs.
        last_ts = max(
            replica.state(0).log.max_ts()
            for replica in cluster.replicas.values()
        )
        report = cluster.gc.trim(0, last_ts)
        assert report.total_removed > 0
        assert report.skipped_down == []
        assert cluster.gc.high_water_mark(0) == 1
        assert register.read_stripe() == last_stripe

    def test_trim_skips_down_replicas(self):
        """Regression: trim must never mutate a crashed replica's state."""
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0)
        for tag in range(5):
            register.write_stripe(stripe_of(3, 32, tag))
        last_ts = max(
            replica.state(0).log.max_ts()
            for replica in cluster.replicas.values()
        )
        down_pid = 4
        before = len(cluster.replicas[down_pid].state(0).log)
        store_count_before = cluster.nodes[down_pid].stable.store_count
        cluster.crash(down_pid)
        report = cluster.gc.trim(0, last_ts)
        assert report.skipped_down == [down_pid]
        assert down_pid not in report.removed
        assert report.total_removed > 0  # live replicas still trimmed
        # The crashed brick's persistent state is untouched while down.
        assert cluster.nodes[down_pid].stable.store_count == store_count_before
        cluster.recover(down_pid)
        assert len(cluster.replicas[down_pid].state(0).log) == before
        # A later pass (post-recovery) catches the straggler up.
        catchup = cluster.gc.trim(0, last_ts)
        assert catchup.skipped_down == []
        assert catchup.removed[down_pid] > 0

    def test_registers_seen(self):
        cluster = make_cluster(m=3, n=5)
        cluster.register(3).write_stripe(stripe_of(3, 32, 1))
        cluster.register(7).write_stripe(stripe_of(3, 32, 2))
        seen = cluster.gc.registers_seen()
        assert 3 in seen and 7 in seen

    def test_registers_seen_survives_recovery(self):
        """The public accessor must see stable-store-only registers."""
        cluster = make_cluster(m=3, n=5)
        cluster.register(3).write_stripe(stripe_of(3, 32, 1))
        cluster.crash(1)
        cluster.recover(1)  # volatile mirrors dropped; state is on disk
        assert 3 in cluster.replicas[1].register_ids()
        assert 3 in cluster.gc.registers_seen()


class TestGcRecoveryInterplay:
    def test_recovery_after_aggressive_gc(self):
        """GC trims history; recovery must still find the kept version."""
        from repro.core.messages import WriteReq
        from repro.sim.failures import MessageCountTrigger

        cluster = make_cluster(m=3, n=5, gc_enabled=True)
        register = cluster.register(0, route=2)
        committed = stripe_of(3, 32, tag=1)
        register.write_stripe(committed)
        cluster.run(until=cluster.env.now + 30)  # GC lands: logs hold 1 entry
        assert cluster.gc.high_water_mark(0) == 1

        # Now a partial write with too few blocks must roll back to the
        # GC-trimmed-but-kept committed version, not to nil.
        MessageCountTrigger(cluster.network, cluster.nodes[1], 2, WriteReq)
        coordinator = cluster.coordinators[1]
        cluster.nodes[1].spawn(
            coordinator.write_stripe(0, stripe_of(3, 32, tag=2))
        )
        cluster.env.run()
        assert register.read_stripe() == committed

    def test_gc_then_roll_forward(self):
        from repro.core.messages import WriteReq
        from repro.sim.failures import MessageCountTrigger

        cluster = make_cluster(m=3, n=5, gc_enabled=True)
        register = cluster.register(0, route=2)
        register.write_stripe(stripe_of(3, 32, tag=1))
        cluster.run(until=cluster.env.now + 30)

        new = stripe_of(3, 32, tag=2)
        MessageCountTrigger(cluster.network, cluster.nodes[1], 4, WriteReq)
        coordinator = cluster.coordinators[1]
        cluster.nodes[1].spawn(coordinator.write_stripe(0, new))
        cluster.env.run()
        assert register.read_stripe() == new

    def test_gc_never_trims_only_copy(self):
        """Even trimming at the newest timestamp keeps a value entry."""
        cluster = make_cluster(m=3, n=5, gc_enabled=True)
        register = cluster.register(0)
        stripe = stripe_of(3, 32, tag=1)
        register.write_stripe(stripe)
        cluster.run(until=cluster.env.now + 30)
        for replica in cluster.replicas.values():
            log = replica.state(0).log
            assert log.max_block()[1] is not None
        assert register.read_stripe() == stripe
