"""ShardedCluster: group-sharded registers, hot spares, local rebuild."""

import pytest

from repro.core.rebuild import Scrubber
from repro.errors import ConfigurationError
from repro.placement import ShardedCluster, ShardedConfig


def stripe_of(m, size, tag):
    return [
        bytes((tag * 31 + i * 7 + j) % 251 for j in range(size))
        for i in range(m)
    ]


def loaded_fleet(registers=20, **overrides):
    defaults = dict(bricks=34, groups=4, spares=2, m=4, block_size=64, seed=7)
    defaults.update(overrides)
    cfg = ShardedConfig(**defaults)
    fleet = ShardedCluster(cfg)
    stripes = {}
    for rid in range(registers):
        stripes[rid] = stripe_of(cfg.m, cfg.block_size, rid)
        assert fleet.register(rid).write_stripe(stripes[rid]) == "OK"
    return fleet, stripes


class TestSharding:
    def test_write_read_roundtrip(self):
        fleet, stripes = loaded_fleet()
        for rid, stripe in stripes.items():
            assert fleet.register(rid).read_stripe() == stripe

    def test_registers_stay_inside_their_group(self):
        """A register's state exists only in the group it hashes to —
        the whole point of placement groups."""
        fleet, stripes = loaded_fleet(registers=12)
        pm = fleet.placement
        for rid in stripes:
            home = pm.group_of_register(rid)
            for gid, cluster in enumerate(fleet.group_clusters):
                present = rid in cluster.register_ids()
                assert present == (gid == home)

    def test_register_ids_union(self):
        fleet, stripes = loaded_fleet(registers=9)
        assert fleet.register_ids() == sorted(stripes)

    def test_group_failure_is_contained(self):
        """Crashing a brick degrades only its own group's quorum."""
        fleet, stripes = loaded_fleet(registers=16)
        victim = fleet.placement.members[1][0]
        fleet.crash_brick(victim)
        for rid, stripe in stripes.items():
            assert fleet.register(rid).read_stripe() == stripe

    def test_rejects_m_not_below_group_size(self):
        with pytest.raises(ConfigurationError):
            ShardedCluster(ShardedConfig(bricks=8, groups=4, m=2))


class TestSparePromotion:
    def test_promote_seats_spare_in_slot(self):
        fleet, _ = loaded_fleet(registers=4)
        victim = fleet.placement.members[0][2]
        gid, lpid = fleet.slot_of(victim)
        fleet.crash_brick(victim)
        spare = fleet.promote_spare(victim)
        assert spare in fleet.placement.spares
        assert fleet.slot_of(spare) == (gid, lpid)
        assert fleet.brick_at(gid, lpid) == spare
        assert victim in fleet.retired
        with pytest.raises(ConfigurationError):
            fleet.slot_of(victim)

    def test_promote_requires_crashed_brick(self):
        fleet, _ = loaded_fleet(registers=1)
        victim = fleet.placement.members[0][0]
        with pytest.raises(ConfigurationError):
            fleet.promote_spare(victim)

    def test_promote_with_empty_pool_raises(self):
        fleet, _ = loaded_fleet(registers=1, spares=0, bricks=32)
        victim = fleet.placement.members[0][0]
        fleet.crash_brick(victim)
        with pytest.raises(ConfigurationError):
            fleet.promote_spare(victim)

    def test_promoted_spare_arrives_blank(self):
        fleet, _ = loaded_fleet(registers=8)
        victim = fleet.placement.members[0][1]
        gid, lpid = fleet.slot_of(victim)
        fleet.crash_brick(victim)
        fleet.promote_spare(victim)
        cluster = fleet.cluster_of_group(gid)
        assert cluster.replicas[lpid].register_ids() == []


class TestRebuild:
    def test_rebuild_reprotects_promoted_spare(self):
        fleet, stripes = loaded_fleet()
        victim = fleet.placement.members[0][2]
        gid, lpid = fleet.slot_of(victim)
        fleet.crash_brick(victim)
        spare = fleet.promote_spare(victim)
        report = fleet.rebuild_brick(spare)
        assert report.success
        assert report.group == gid
        cluster = fleet.cluster_of_group(gid)
        scrubber = Scrubber(cluster)
        for rid in cluster.register_ids():
            audit = scrubber.scrub_register(rid)
            assert audit.fully_redundant, (rid, audit)
            assert lpid in audit.current
        for rid, stripe in stripes.items():
            assert fleet.register(rid).read_stripe() == stripe

    def test_lrc_rebuild_is_group_local(self):
        """Satellite invariant: with an LRC group code, single-brick
        rebuild reads at most ``local_group_size - 1`` fragments per
        register — never the ``m`` a global code needs."""
        fleet, _ = loaded_fleet()
        victim = fleet.placement.members[0][2]
        fleet.crash_brick(victim)
        spare = fleet.promote_spare(victim)
        gid, _ = fleet.slot_of(spare)
        code = fleet.cluster_of_group(gid).code
        report = fleet.rebuild_brick(spare)
        assert report.success
        assert report.local_repairs == report.registers > 0
        assert report.protocol_repairs == 0
        per_register = code.local_group_size - 1
        assert report.fragments_read <= report.registers * per_register
        assert report.fragments_read < report.registers * code.m

    def test_rebuild_touches_only_the_home_group(self):
        """No other group sends a message or reads a byte during a
        brick rebuild — blast radius is one group."""
        fleet, _ = loaded_fleet()
        victim = fleet.placement.members[2][0]
        gid, _ = fleet.slot_of(victim)
        fleet.crash_brick(victim)
        spare = fleet.promote_spare(victim)
        before = {
            g: (c.metrics.total_messages, c.metrics.total_disk_reads)
            for g, c in enumerate(fleet.group_clusters)
        }
        fleet.rebuild_brick(spare)
        for g, cluster in enumerate(fleet.group_clusters):
            after = (cluster.metrics.total_messages,
                     cluster.metrics.total_disk_reads)
            if g == gid:
                assert after > before[g]
            else:
                assert after == before[g]

    def test_reed_solomon_rebuild_reads_m_per_register(self):
        """The RS baseline the LRC beats: every repair is a full
        ``m``-fragment global read."""
        fleet, _ = loaded_fleet(code_kind="reed-solomon")
        victim = fleet.placement.members[0][2]
        fleet.crash_brick(victim)
        spare = fleet.promote_spare(victim)
        gid, _ = fleet.slot_of(spare)
        code = fleet.cluster_of_group(gid).code
        report = fleet.rebuild_brick(spare)
        assert report.success
        assert report.local_repairs == report.registers > 0
        assert report.fragments_read == report.registers * code.m

    def test_degraded_group_falls_back_to_protocol(self):
        """When a second brick in the failed block's local group is also
        down, the fragment fast path cannot stay local; the protocol
        rebuilder must still re-protect."""
        fleet, stripes = loaded_fleet()
        victim = fleet.placement.members[0][2]
        gid, lpid = fleet.slot_of(victim)
        cluster = fleet.cluster_of_group(gid)
        code = cluster.code
        # Take down one member of the victim's local parity group too
        # (staying inside the campaign tolerance of the group code).
        group = code.group_of(lpid)
        peers = [
            p for p in (set(code.local_groups[group])
                        | {code.local_parity_index(group)})
            if p != lpid
        ]
        other = fleet.brick_at(gid, peers[0])
        fleet.crash_brick(victim)
        spare = fleet.promote_spare(victim)
        fleet.crash_brick(other)
        report = fleet.rebuild_brick(spare)
        assert report.success
        assert report.registers == report.local_repairs + report.protocol_repairs
        for rid, stripe in stripes.items():
            assert fleet.register(rid).read_stripe() == stripe

    def test_rebuild_without_promotion_recovers_brick(self):
        """Rebuilding a crashed (but not replaced) brick first brings it
        back up, then repairs whatever went stale."""
        fleet, stripes = loaded_fleet(registers=8)
        victim = fleet.placement.members[3][1]
        gid, _ = fleet.slot_of(victim)
        fleet.crash_brick(victim)
        home = [
            rid for rid in stripes
            if fleet.placement.group_of_register(rid) == gid
        ]
        for rid in home:
            stripes[rid] = stripe_of(4, 64, tag=100 + rid)
            assert fleet.register(rid).write_stripe(stripes[rid]) == "OK"
        report = fleet.rebuild_brick(victim)
        assert report.success
        assert victim in fleet.live_bricks()
        for rid, stripe in stripes.items():
            assert fleet.register(rid).read_stripe() == stripe
