"""PlacementMap: deterministic brick-to-group and register routing."""

import pytest

from repro.errors import ConfigurationError
from repro.placement import PlacementMap


class TestLayout:
    def test_deterministic_under_seed(self):
        a = PlacementMap(bricks=34, groups=4, spares=2, seed=7)
        b = PlacementMap(bricks=34, groups=4, spares=2, seed=7)
        assert a.members == b.members
        assert a.spares == b.spares

    def test_seed_changes_layout(self):
        a = PlacementMap(bricks=34, groups=4, spares=2, seed=7)
        b = PlacementMap(bricks=34, groups=4, spares=2, seed=8)
        assert a.members != b.members

    def test_groups_are_balanced_and_disjoint(self):
        pm = PlacementMap(bricks=34, groups=4, spares=2, seed=3)
        sizes = {len(group) for group in pm.members}
        assert sizes == {8}
        placed = [brick for group in pm.members for brick in group]
        assert len(placed) == len(set(placed)) == 32
        assert set(placed) | set(pm.spares) == set(range(1, 35))

    def test_spares_hold_no_slot(self):
        pm = PlacementMap(bricks=10, groups=2, spares=2, seed=1)
        for spare in pm.spares:
            assert pm.group_of_brick(spare) is None
            with pytest.raises(ConfigurationError):
                pm.slot_of(spare)

    def test_slot_roundtrip(self):
        pm = PlacementMap(bricks=16, groups=4, seed=5)
        for gid, group in enumerate(pm.members):
            for local_pid, brick in enumerate(group, start=1):
                assert pm.slot_of(brick) == (gid, local_pid)
                assert pm.brick_at(gid, local_pid) == brick

    def test_domain_spreading(self):
        """With domains dividing the group size evenly, every group gets
        an equal share of each failure domain."""
        pm = PlacementMap(bricks=16, groups=2, seed=2, domains=4)
        for group in pm.members:
            per_domain = [0] * 4
            for brick in group:
                per_domain[pm.domain_of(brick)] += 1
            assert per_domain == [2, 2, 2, 2]

    def test_invalid_configurations(self):
        with pytest.raises(ConfigurationError):
            PlacementMap(bricks=10, groups=3)  # 10 does not divide by 3
        with pytest.raises(ConfigurationError):
            PlacementMap(bricks=10, groups=2, spares=10)
        with pytest.raises(ConfigurationError):
            PlacementMap(bricks=0, groups=1)
        with pytest.raises(ConfigurationError):
            PlacementMap(bricks=10, groups=2, domains=0)


class TestRouting:
    def test_routing_is_deterministic(self):
        a = PlacementMap(bricks=16, groups=4, seed=9)
        b = PlacementMap(bricks=16, groups=4, seed=9)
        assert all(
            a.group_of_register(rid) == b.group_of_register(rid)
            for rid in range(200)
        )

    def test_routing_depends_on_seed(self):
        a = PlacementMap(bricks=16, groups=4, seed=9)
        b = PlacementMap(bricks=16, groups=4, seed=10)
        assert any(
            a.group_of_register(rid) != b.group_of_register(rid)
            for rid in range(200)
        )

    def test_routing_roughly_balances(self):
        pm = PlacementMap(bricks=16, groups=4, seed=0)
        counts = [0] * 4
        for rid in range(1000):
            counts[pm.group_of_register(rid)] += 1
        assert min(counts) > 150  # uniform would be 250 each

    def test_registers_of_group_partitions(self):
        pm = PlacementMap(bricks=16, groups=4, seed=0)
        ids = range(100)
        shares = [pm.registers_of_group(ids, gid) for gid in range(4)]
        merged = sorted(rid for share in shares for rid in share)
        assert merged == list(ids)
