"""Sharded fault campaigns: projection, determinism, invariants."""

from repro.campaign.engine import CampaignConfig, run_campaign
from repro.campaign.schedule import generate_schedule
from repro.placement import (
    PlacementMap,
    ShardedCampaignConfig,
    project_schedule,
    run_sharded_campaign,
)


def quick_config(**overrides):
    defaults = dict(
        seed=3,
        registers=12,
        clients_per_group=2,
        ops_per_client=12,
        duration=200.0,
        drain=120.0,
    )
    defaults.update(overrides)
    return ShardedCampaignConfig(**defaults)


class TestProjection:
    def test_targets_remap_to_local_pids(self):
        pm = PlacementMap(bricks=34, groups=4, spares=2, seed=7)
        fleet = generate_schedule(seed=7, n=34, duration=400.0, max_down=2)
        for gid in range(4):
            projected = project_schedule(fleet, pm, gid)
            for event in projected.events:
                for target in event.targets:
                    assert 1 <= target <= pm.group_size

    def test_every_crash_lands_in_exactly_one_group_or_nowhere(self):
        """A physical brick failure concerns one group (or an idle
        spare); projections must neither duplicate nor invent crashes."""
        pm = PlacementMap(bricks=34, groups=4, spares=2, seed=7)
        fleet = generate_schedule(seed=7, n=34, duration=400.0, max_down=2)
        fleet_crashes = [e for e in fleet.events if e.kind == "crash"]
        spare_hits = sum(
            1 for e in fleet_crashes if e.targets[0] in pm.spares
        )
        projected_crashes = sum(
            sum(1 for e in project_schedule(fleet, pm, gid).events
                if e.kind == "crash")
            for gid in range(4)
        )
        assert projected_crashes == len(fleet_crashes) - spare_hits

    def test_network_weather_is_fleet_wide(self):
        pm = PlacementMap(bricks=34, groups=4, spares=2, seed=7)
        fleet = generate_schedule(seed=7, n=34, duration=400.0, max_down=2)
        drops = [e for e in fleet.events if e.kind == "drop_start"]
        for gid in range(4):
            projected = project_schedule(fleet, pm, gid)
            assert [
                e.value for e in projected.events if e.kind == "drop_start"
            ] == [e.value for e in drops]


class TestShardedCampaign:
    def test_fixed_seed_campaign_passes_all_invariants(self):
        """The acceptance bar: a seeded fault campaign over a sharded,
        LRC-coded fleet upholds every online invariant."""
        result = run_sharded_campaign(quick_config())
        assert result.ok, result.violations
        assert len(result.group_results) == 4
        assert result.ops.get("ok", 0) > 0
        for group_result in result.group_results:
            assert group_result.blocks_checked >= 0
            assert group_result.samples_taken > 0

    def test_campaign_is_deterministic(self):
        a = run_sharded_campaign(quick_config())
        b = run_sharded_campaign(quick_config())
        assert a.to_dict() == b.to_dict()

    def test_seed_changes_outcome_details(self):
        a = run_sharded_campaign(quick_config(seed=3))
        b = run_sharded_campaign(quick_config(seed=4))
        assert a.to_dict() != b.to_dict()

    def test_reed_solomon_fleet_also_passes(self):
        """The harness is code-agnostic; the MDS baseline must pass the
        same bar."""
        result = run_sharded_campaign(
            quick_config(code_kind="reed-solomon")
        )
        assert result.ok, result.violations


class TestCodeKindPassthrough:
    def test_single_cluster_campaign_over_lrc(self):
        """CampaignConfig.code_kind reaches the cluster: a plain (non-
        sharded) campaign over an LRC cluster passes unchanged."""
        result = run_campaign(CampaignConfig(
            m=4, n=8, code_kind="lrc", seed=5,
            registers=4, clients=2, ops_per_client=15,
            duration=200.0, drain=120.0,
        ))
        assert result.ok, result.violations
        assert result.ops.get("ok", 0) > 0
