"""Corruption faults in the campaign: sound configs survive, the
escape hatch demonstrates what checksums prevent."""

from dataclasses import replace

from repro.campaign import CampaignConfig, run_campaign

#: QUICK plus corruption faults; checksums on (the sound default).
CORRUPTING = CampaignConfig(
    duration=200.0, ops_per_client=12, clients=2, corrupt_weight=2.0,
)


class TestSoundConfig:
    def test_zero_violations_with_checksums_on(self):
        # The robustness headline: silent corruption plus crashes,
        # partitions and drops — and no invariant ever fires, because
        # every bad fragment is detected and masked as an erasure.
        injected = 0
        for seed in range(4):
            result = run_campaign(replace(CORRUPTING, seed=seed))
            assert result.ok, (
                f"seed {seed}: {[v.detail for v in result.violations]}"
            )
            injected += result.corruption["corruptions_injected"]
        assert injected > 0  # the schedule actually corrupted things

    def test_detection_counters_populate(self):
        result = run_campaign(replace(CORRUPTING, seed=1))
        corruption = result.corruption
        assert corruption["corruptions_injected"] > 0
        assert corruption["checksum_failures"] > 0
        assert result.reads_verified > 0

    def test_deterministic_with_corruption(self):
        import json

        first = run_campaign(replace(CORRUPTING, seed=5))
        second = run_campaign(replace(CORRUPTING, seed=5))
        assert json.dumps(first.to_dict()) == json.dumps(second.to_dict())

    def test_scrub_daemon_rides_along(self):
        result = run_campaign(
            replace(CORRUPTING, seed=2, scrub_enabled=True)
        )
        assert result.ok
        assert result.corruption["scrub_scans"] > 0


class TestEscapeHatch:
    def test_read_verification_catches_served_rot(self):
        # verify_checksums=False turns the store into a liar; the
        # read-verification invariant (and usually linearizability
        # too) must catch garbage reaching a client.
        config = replace(
            CORRUPTING, seed=1, corrupt_weight=4.0, verify_checksums=False,
        )
        result = run_campaign(config)
        assert not result.ok
        invariants = {v.invariant for v in result.violations}
        assert "read-verification" in invariants

    def test_same_schedule_is_clean_with_checksums_on(self):
        # The exact schedule that poisons the unprotected run is
        # harmless with verification enabled.
        unsound = replace(
            CORRUPTING, seed=1, corrupt_weight=4.0, verify_checksums=False,
        )
        poisoned = run_campaign(unsound)
        assert not poisoned.ok
        protected = run_campaign(
            replace(unsound, verify_checksums=True),
            schedule=poisoned.schedule,
        )
        assert protected.ok, [v.detail for v in protected.violations]
        assert protected.corruption["checksum_failures"] > 0
