"""Schedule generation: determinism, pairing, serialization."""

import pytest

from repro.campaign.schedule import (
    CampaignSchedule,
    FaultEvent,
    generate_schedule,
)
from repro.errors import ConfigurationError


def gen(seed=0, **kwargs):
    defaults = dict(seed=seed, n=5, duration=400.0, max_down=1)
    defaults.update(kwargs)
    return generate_schedule(**defaults)


class TestGeneration:
    def test_deterministic_for_seed(self):
        assert gen(seed=3).to_dict() == gen(seed=3).to_dict()
        assert gen(seed=3).to_dict() != gen(seed=4).to_dict()

    def test_events_sorted_and_within_duration(self):
        schedule = gen(seed=1)
        times = [e.time for e in schedule.events]
        assert times == sorted(times)
        assert all(0 < t <= 400.0 for t in times)

    def test_every_fault_is_withdrawn(self):
        for seed in range(10):
            schedule = gen(seed=seed)
            down = set()
            partitioned = False
            dropping = False
            for event in schedule.sorted_events():
                if event.kind == "crash":
                    down.update(event.targets)
                elif event.kind == "recover":
                    down.difference_update(event.targets)
                elif event.kind == "partition":
                    partitioned = True
                elif event.kind == "heal":
                    partitioned = False
                elif event.kind == "drop_start":
                    dropping = True
                elif event.kind == "drop_stop":
                    dropping = False
            assert not down, f"seed {seed} leaves {down} down forever"
            assert not partitioned
            assert not dropping

    def test_max_down_respected_at_generation(self):
        for seed in range(10):
            schedule = gen(seed=seed, max_down=2, crash_weight=10.0)
            down = set()
            for event in schedule.sorted_events():
                if event.kind == "crash":
                    down.update(event.targets)
                    assert len(down) <= 2
                elif event.kind == "recover":
                    down.difference_update(event.targets)

    def test_zero_weight_disables_fault_class(self):
        schedule = gen(seed=2, partition_weight=0.0, drop_weight=0.0)
        kinds = {e.kind for e in schedule.events}
        assert kinds <= {"crash", "recover"}

    def test_clock_skews_generated_when_enabled(self):
        assert gen(seed=1).clock_skews == {}
        skews = gen(seed=1, max_clock_skew=5.0).clock_skews
        assert set(skews) == {1, 2, 3, 4, 5}
        assert all(-5.0 <= s <= 5.0 for s in skews.values())


class TestSerialization:
    def test_json_round_trip(self):
        schedule = gen(seed=9, max_clock_skew=2.0)
        restored = CampaignSchedule.from_json(schedule.to_json())
        assert restored.to_dict() == schedule.to_dict()
        assert restored.events == schedule.events
        assert restored.clock_skews == schedule.clock_skews

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(time=1.0, kind="meteor")

    def test_subset_keeps_skews_and_seed(self):
        schedule = gen(seed=9, max_clock_skew=2.0)
        sub = schedule.subset(schedule.events[:2])
        assert sub.events == schedule.events[:2]
        assert sub.clock_skews == schedule.clock_skews
        assert sub.seed == schedule.seed
