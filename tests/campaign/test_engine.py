"""The campaign engine: determinism, invariants, broken-config detection."""

import json
from dataclasses import replace

from repro.campaign import (
    CampaignConfig,
    CampaignSchedule,
    FaultEvent,
    broken_config,
    run_campaign,
)

#: Short but non-trivial: faults fire, ops abort and crash, GC runs.
QUICK = CampaignConfig(duration=200.0, ops_per_client=12, clients=2)


class TestCorrectConfig:
    def test_zero_violations_across_seeds(self):
        for seed in range(4):
            result = run_campaign(replace(QUICK, seed=seed))
            assert result.ok, (
                f"seed {seed}: {[v.detail for v in result.violations]}"
            )

    def test_deterministic(self):
        first = run_campaign(replace(QUICK, seed=11))
        second = run_campaign(replace(QUICK, seed=11))
        assert json.dumps(first.to_dict()) == json.dumps(second.to_dict())
        assert first.schedule.to_dict() == second.schedule.to_dict()

    def test_deterministic_across_delivery_sweeps(self):
        """Batched delivery sweeps are a pure scheduling optimization:
        every counter of a fixed-seed campaign is bit-identical with
        sweeps on and off."""
        for seed in range(3):
            swept = run_campaign(
                replace(QUICK, seed=seed, delivery_sweeps=True)
            )
            unswept = run_campaign(
                replace(QUICK, seed=seed, delivery_sweeps=False)
            )
            assert json.dumps(swept.to_dict()) == json.dumps(
                unswept.to_dict()
            ), f"sweeps changed campaign outcome at seed {seed}"

    def test_campaign_exercises_faults_and_recoveries(self):
        result = run_campaign(replace(QUICK, seed=0))
        assert result.schedule_events > 0
        assert result.recoveries_checked > 0
        assert result.samples_taken > 0
        assert result.ops.get("ok", 0) > 0
        assert result.blocks_checked == QUICK.registers * QUICK.m

    def test_explicit_schedule_overrides_generation(self):
        schedule = CampaignSchedule(
            events=[
                FaultEvent(time=20.0, kind="crash", targets=(2,)),
                FaultEvent(time=60.0, kind="recover", targets=(2,)),
            ]
        )
        result = run_campaign(replace(QUICK, seed=5), schedule=schedule)
        assert result.schedule_events == 2
        assert result.recoveries_checked == 1
        assert result.ok

    def test_clock_skew_config_stays_safe(self):
        result = run_campaign(replace(QUICK, seed=2, max_clock_skew=8.0))
        assert result.ok


class TestBrokenConfig:
    def test_broken_config_is_detected(self):
        cfg = broken_config(replace(QUICK, seed=1))
        assert cfg.n < 2 * cfg.effective_f + cfg.m
        result = run_campaign(cfg)
        assert not result.ok
        invariants = {v.invariant for v in result.violations}
        assert "quorum-precondition" in invariants

    def test_precondition_fires_even_with_empty_schedule(self):
        cfg = broken_config(replace(QUICK, seed=1))
        result = run_campaign(cfg, schedule=CampaignSchedule())
        assert not result.ok
        assert result.violations[0].time == 0.0
