"""Suite runner, report rendering, and the JSON artifact contract."""

import json

from repro.analysis.campaign import render_report, run_suite, to_json
from repro.campaign import CampaignConfig, broken_config

QUICK = CampaignConfig(duration=200.0, ops_per_client=12, clients=2)


class TestSuite:
    def test_clean_sweep(self):
        suite = run_suite(QUICK, seeds=[0, 1])
        assert suite.ok
        assert [o.result.seed for o in suite.outcomes] == [0, 1]
        report = render_report(suite)
        assert "no invariant violations" in report

    def test_artifact_is_deterministic(self):
        first = to_json(run_suite(QUICK, seeds=[0, 1]))
        second = to_json(run_suite(QUICK, seeds=[0, 1]))
        assert first == second

    def test_violating_seed_gets_reproducer(self):
        suite = run_suite(broken_config(QUICK), seeds=[0])
        assert not suite.ok
        outcome = suite.violating[0]
        assert outcome.reproducer is not None
        assert len(outcome.reproducer.events) <= 10
        payload = json.loads(to_json(suite))
        assert payload["ok"] is False
        assert payload["violating_seeds"] == [0]
        assert "reproducer" in payload["results"][0]
        report = render_report(suite)
        assert "reproducer" in report
        assert "quorum-precondition" in report

    def test_json_shape(self):
        payload = json.loads(to_json(run_suite(QUICK, seeds=[0])))
        assert payload["benchmark"] == "campaign"
        assert payload["config"]["m"] == QUICK.m
        assert payload["config"]["n"] == QUICK.n
        result = payload["results"][0]
        for key in (
            "seed", "ok", "violations", "ops", "schedule_events",
            "recoveries_checked", "blocks_checked", "sim_time",
        ):
            assert key in result
