"""Suite runner, report rendering, and the JSON artifact contract."""

import json

from repro.analysis.campaign import render_report, run_suite, to_json
from repro.campaign import CampaignConfig, broken_config

QUICK = CampaignConfig(duration=200.0, ops_per_client=12, clients=2)


class TestSuite:
    def test_clean_sweep(self):
        suite = run_suite(QUICK, seeds=[0, 1])
        assert suite.ok
        assert [o.result.seed for o in suite.outcomes] == [0, 1]
        report = render_report(suite)
        assert "no invariant violations" in report

    def test_artifact_is_deterministic(self):
        first = to_json(run_suite(QUICK, seeds=[0, 1]))
        second = to_json(run_suite(QUICK, seeds=[0, 1]))
        assert first == second

    def test_violating_seed_gets_reproducer(self):
        suite = run_suite(broken_config(QUICK), seeds=[0])
        assert not suite.ok
        outcome = suite.violating[0]
        assert outcome.reproducer is not None
        assert len(outcome.reproducer.events) <= 10
        payload = json.loads(to_json(suite))
        assert payload["ok"] is False
        assert payload["violating_seeds"] == [0]
        assert "reproducer" in payload["results"][0]
        report = render_report(suite)
        assert "reproducer" in report
        assert "quorum-precondition" in report

    def test_json_shape(self):
        payload = json.loads(to_json(run_suite(QUICK, seeds=[0])))
        assert payload["benchmark"] == "campaign"
        assert payload["config"]["m"] == QUICK.m
        assert payload["config"]["n"] == QUICK.n
        for key in ("corrupt_weight", "verify_checksums", "scrub_enabled"):
            assert key in payload["config"]
        result = payload["results"][0]
        for key in (
            "seed", "ok", "violations", "ops", "schedule_events",
            "recoveries_checked", "blocks_checked", "sim_time",
            "reads_verified", "corruption",
        ):
            assert key in result
        # The corruption-resilience counters are part of the artifact
        # contract even on corruption-free runs (all zeros there).
        for counter in (
            "corruptions_injected", "torn_injected", "checksum_failures",
            "degraded_reads", "scrub_repairs",
        ):
            assert counter in result["corruption"]

    def test_corrupting_sweep_counters(self):
        config = CampaignConfig(
            duration=200.0, ops_per_client=12, clients=2,
            corrupt_weight=2.0, scrub_enabled=True,
        )
        suite = run_suite(config, seeds=[0, 1])
        assert suite.ok  # checksums on: corruption never violates
        payload = json.loads(to_json(suite))
        injected = sum(
            r["corruption"]["corruptions_injected"]
            for r in payload["results"]
        )
        detected = sum(
            r["corruption"]["checksum_failures"]
            for r in payload["results"]
        )
        assert injected > 0
        assert detected > 0
        report = render_report(suite)
        assert "corruption:" in report
        assert "[scrub on]" in report
