"""Invariant monitors must actually catch what they claim to catch."""

from repro.campaign.invariants import CampaignMonitor
from repro.core.cluster import ClusterConfig, FabCluster
from repro.sim.network import NetworkConfig
from repro.timestamps import LOW_TS
from tests.conftest import make_cluster, stripe_of


def monitored_cluster(**cluster_kwargs):
    cluster = make_cluster(m=3, n=5, **cluster_kwargs)
    return cluster, CampaignMonitor(cluster)


class TestQuorumPrecondition:
    def test_sound_config_passes(self):
        _cluster, monitor = monitored_cluster()
        assert monitor.violations == []

    def test_unsound_config_flagged_at_time_zero(self):
        cluster = FabCluster(
            ClusterConfig(
                m=3, n=5, f=2, allow_unsafe_f=True, block_size=32,
                network=NetworkConfig(jitter_seed=0),
            )
        )
        monitor = CampaignMonitor(cluster)
        assert monitor.violations
        assert all(v.time == 0.0 for v in monitor.violations)
        assert {v.invariant for v in monitor.violations} == {
            "quorum-precondition"
        }


class TestRecoveryEquivalence:
    def test_clean_crash_recover_cycle_passes(self):
        cluster, monitor = monitored_cluster()
        register = cluster.register(0)
        register.write_stripe(stripe_of(3, 32, tag=1))
        cluster.crash(2)
        cluster.recover(2)
        assert monitor.recoveries_checked == 1
        assert monitor.violations == []

    def test_detects_stable_store_corruption(self):
        """Mutating stable state while down must be caught on recovery."""
        cluster, monitor = monitored_cluster()
        register = cluster.register(0)
        register.write_stripe(stripe_of(3, 32, tag=1))
        cluster.crash(2)
        # Simulate the bug class the GC fix closed: writing to a down
        # brick's persistent state behind the crash-recovery model's back.
        replica = cluster.replicas[2]
        state = replica.state(0)
        state.log.trim_below(state.log.max_ts())
        cluster.nodes[2].stable.reset_journal("logj:0")
        cluster.nodes[2].stable.store("log:0", state.log.to_state())
        cluster.recover(2)
        assert any(
            v.invariant == "recovery-equivalence" for v in monitor.violations
        )


class TestTimestampMonotonicity:
    def test_normal_operation_passes(self):
        cluster, monitor = monitored_cluster()
        register = cluster.register(0)
        for tag in range(3):
            register.write_stripe(stripe_of(3, 32, tag))
            monitor.sample()
        assert monitor.violations == []
        assert monitor.samples_taken == 3

    def test_detects_timestamp_regression(self):
        cluster, monitor = monitored_cluster()
        register = cluster.register(0)
        register.write_stripe(stripe_of(3, 32, tag=1))
        monitor.sample()
        cluster.replicas[3].state(0).ord_ts = LOW_TS  # lost persistent state
        monitor.sample()
        assert any(
            v.invariant == "timestamp-monotonicity"
            for v in monitor.violations
        )
