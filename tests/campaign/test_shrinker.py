"""ddmin shrinking: synthetic predicates and real campaign reproducers."""

from dataclasses import replace

from repro.campaign import (
    CampaignConfig,
    broken_config,
    ddmin,
    run_campaign,
    shrink_schedule,
)

QUICK = CampaignConfig(duration=200.0, ops_per_client=12, clients=2)


class TestDdmin:
    def test_single_culprit(self):
        assert ddmin(list(range(20)), lambda s: 13 in s) == [13]

    def test_pair_of_culprits(self):
        result = ddmin(list(range(32)), lambda s: 3 in s and 27 in s)
        assert sorted(result) == [3, 27]

    def test_empty_when_predicate_holds_vacuously(self):
        assert ddmin(list(range(8)), lambda s: True) == []

    def test_all_items_needed(self):
        items = [1, 2, 3]
        assert ddmin(items, lambda s: len(s) == 3) == items

    def test_preserves_order(self):
        result = ddmin(list(range(16)), lambda s: {2, 9, 11} <= set(s))
        assert result == [2, 9, 11]


class TestShrinkSchedule:
    def test_broken_config_shrinks_to_small_reproducer(self):
        cfg = broken_config(replace(QUICK, seed=1))
        violating = run_campaign(cfg)
        assert not violating.ok
        shrunk = shrink_schedule(cfg, violating.schedule)
        assert len(shrunk.events) <= 10
        # The minimized schedule is a standalone reproducer.
        replay = run_campaign(
            cfg, schedule=violating.schedule.subset(shrunk.events)
        )
        assert not replay.ok

    def test_budget_cap_returns_best_effort(self):
        cfg = broken_config(replace(QUICK, seed=1))
        violating = run_campaign(cfg)
        shrunk = shrink_schedule(cfg, violating.schedule, max_runs=1)
        assert shrunk.runs <= 1
        assert shrunk.original_events == len(violating.schedule.events)
