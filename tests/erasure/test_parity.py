"""XOR single-parity (RAID-5) code."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure.parity import SingleParityCode
from repro.errors import CodingError


class TestConstruction:
    def test_requires_n_equals_m_plus_one(self):
        SingleParityCode(4, 5)
        with pytest.raises(CodingError):
            SingleParityCode(3, 5)
        with pytest.raises(CodingError):
            SingleParityCode(3, 3)


class TestEncodeDecode:
    def test_parity_is_xor_of_data(self):
        code = SingleParityCode(3, 4)
        stripe = [b"\x01\x02", b"\x04\x08", b"\x10\x20"]
        encoded = code.encode(stripe)
        assert encoded[3] == b"\x15\x2a"

    def test_decode_full_data(self):
        code = SingleParityCode(2, 3)
        stripe = [b"ab", b"cd"]
        encoded = code.encode(stripe)
        assert code.decode({1: encoded[0], 2: encoded[1]}) == stripe

    def test_decode_each_missing_data_block(self):
        code = SingleParityCode(3, 4)
        stripe = [b"aaaa", b"bbbb", b"cccc"]
        encoded = code.encode(stripe)
        for missing in range(1, 4):
            blocks = {
                i: encoded[i - 1] for i in range(1, 5) if i != missing
            }
            assert code.decode(blocks) == stripe

    def test_decode_two_missing_raises(self):
        code = SingleParityCode(3, 4)
        encoded = code.encode([b"a", b"b", b"c"])
        with pytest.raises(CodingError):
            code.decode({1: encoded[0], 4: encoded[3]})

    def test_decode_rejects_out_of_range_index(self):
        code = SingleParityCode(3, 4)
        encoded = code.encode([b"a", b"b", b"c"])
        with pytest.raises(CodingError):
            code.decode({1: encoded[0], 2: encoded[1], 12: encoded[1]})

    def test_decode_too_few_raises(self):
        code = SingleParityCode(3, 4)
        encoded = code.encode([b"a", b"b", b"c"])
        with pytest.raises(CodingError):
            code.decode({1: encoded[0], 2: encoded[1]})

    @settings(deadline=None, max_examples=25)
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=32),
        st.randoms(use_true_random=False),
    )
    def test_roundtrip_random(self, m, size, rng):
        code = SingleParityCode(m, m + 1)
        stripe = [bytes(rng.randrange(256) for _ in range(size)) for _ in range(m)]
        encoded = code.encode(stripe)
        survivors = rng.sample(range(1, m + 2), m)
        assert code.decode({i: encoded[i - 1] for i in survivors}) == stripe


class TestModify:
    def test_modify_matches_reencode(self):
        code = SingleParityCode(3, 4)
        stripe = [b"\x11", b"\x22", b"\x33"]
        encoded = code.encode(stripe)
        new_block = b"\x7f"
        new_stripe = [stripe[0], new_block, stripe[2]]
        reencoded = code.encode(new_stripe)
        assert code.modify(2, 4, stripe[1], new_block, encoded[3]) == reencoded[3]

    def test_modify_validates(self):
        code = SingleParityCode(2, 3)
        with pytest.raises(CodingError):
            code.modify(1, 2, b"a", b"b", b"c")
