"""Replication as the degenerate m=1 erasure code."""

import pytest

from repro.erasure.replication import ReplicationCode
from repro.errors import CodingError


class TestReplicationCode:
    def test_requires_m_one(self):
        ReplicationCode(1, 3)
        with pytest.raises(CodingError):
            ReplicationCode(2, 3)

    def test_encode_copies(self):
        code = ReplicationCode(1, 4)
        assert code.encode([b"xyz"]) == [b"xyz"] * 4

    def test_decode_single(self):
        code = ReplicationCode(1, 3)
        assert code.decode({2: b"v"}) == [b"v"]

    def test_decode_consistent_copies(self):
        code = ReplicationCode(1, 3)
        assert code.decode({1: b"v", 3: b"v"}) == [b"v"]

    def test_decode_inconsistent_raises(self):
        code = ReplicationCode(1, 3)
        with pytest.raises(CodingError):
            code.decode({1: b"v", 2: b"w"})

    def test_decode_empty_raises(self):
        code = ReplicationCode(1, 3)
        with pytest.raises(CodingError):
            code.decode({})

    def test_modify_returns_new_value(self):
        code = ReplicationCode(1, 3)
        assert code.modify(1, 2, b"old", b"new", b"old") == b"new"

    def test_modify_validates_indices(self):
        code = ReplicationCode(1, 3)
        with pytest.raises(CodingError):
            code.modify(2, 3, b"a", b"b", b"a")

    def test_overhead(self):
        assert ReplicationCode(1, 4).storage_overhead == 4.0
