"""Reed-Solomon code: encode/decode round-trips, erasures, modify."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure.reed_solomon import ReedSolomonCode
from repro.errors import CodingError


def make_stripe(m, size, seed=0):
    return [bytes((seed * 31 + i * 7 + j) % 256 for j in range(size)) for i in range(m)]


class TestConstruction:
    def test_basic_properties(self):
        code = ReedSolomonCode(3, 5)
        assert code.m == 3
        assert code.n == 5
        assert code.parity_count == 2
        assert code.storage_overhead == pytest.approx(5 / 3)

    def test_rejects_bad_params(self):
        with pytest.raises(CodingError):
            ReedSolomonCode(0, 5)
        with pytest.raises(CodingError):
            ReedSolomonCode(6, 5)
        with pytest.raises(CodingError):
            ReedSolomonCode(2, 257)

    def test_generator_is_systematic(self):
        import numpy as np

        code = ReedSolomonCode(4, 7)
        gen = code.generator_matrix
        assert np.array_equal(gen[:4], np.eye(4, dtype=np.uint8))

    def test_coefficient_accessor(self):
        code = ReedSolomonCode(2, 4)
        gen = code.generator_matrix
        assert code.coefficient(1, 3) == int(gen[2, 0])
        with pytest.raises(CodingError):
            code.coefficient(0, 1)
        with pytest.raises(CodingError):
            code.coefficient(1, 5)

    def test_repr(self):
        assert "m=3" in repr(ReedSolomonCode(3, 5))


class TestEncodeDecode:
    def test_encode_prefix_is_data(self):
        code = ReedSolomonCode(3, 6)
        stripe = make_stripe(3, 16)
        encoded = code.encode(stripe)
        assert len(encoded) == 6
        assert encoded[:3] == stripe

    def test_encode_wrong_arity(self):
        code = ReedSolomonCode(3, 5)
        with pytest.raises(CodingError):
            code.encode(make_stripe(2, 16))

    def test_encode_mismatched_sizes(self):
        code = ReedSolomonCode(2, 3)
        with pytest.raises(CodingError):
            code.encode([b"aa", b"bbb"])

    def test_decode_from_data_blocks(self):
        code = ReedSolomonCode(3, 5)
        stripe = make_stripe(3, 8)
        encoded = code.encode(stripe)
        assert code.decode({1: encoded[0], 2: encoded[1], 3: encoded[2]}) == stripe

    def test_decode_every_survivor_pattern(self):
        code = ReedSolomonCode(3, 6)
        stripe = make_stripe(3, 8, seed=5)
        encoded = code.encode(stripe)
        for survivors in itertools.combinations(range(1, 7), 3):
            blocks = {i: encoded[i - 1] for i in survivors}
            assert code.decode(blocks) == stripe, survivors

    def test_decode_with_extra_blocks(self):
        code = ReedSolomonCode(2, 4)
        stripe = make_stripe(2, 4)
        encoded = code.encode(stripe)
        blocks = {i: encoded[i - 1] for i in range(1, 5)}
        assert code.decode(blocks) == stripe

    def test_decode_too_few_raises(self):
        code = ReedSolomonCode(3, 5)
        encoded = code.encode(make_stripe(3, 4))
        with pytest.raises(CodingError):
            code.decode({1: encoded[0], 2: encoded[1]})

    def test_decode_bad_index_raises(self):
        code = ReedSolomonCode(2, 3)
        encoded = code.encode(make_stripe(2, 4))
        with pytest.raises(CodingError):
            code.decode({0: encoded[0], 2: encoded[1]})

    def test_decode_caches_matrices(self):
        code = ReedSolomonCode(2, 4)
        stripe = make_stripe(2, 4)
        encoded = code.encode(stripe)
        blocks = {2: encoded[1], 4: encoded[3]}
        code.decode(blocks)
        assert len(code._decode_cache) == 1
        code.decode(blocks)
        assert len(code._decode_cache) == 1

    def test_decode_cache_is_lru_bounded(self):
        import random

        code = ReedSolomonCode(4, 12)
        code.DECODE_CACHE_SIZE = 8
        stripe = make_stripe(4, 4)
        encoded = code.encode(stripe)
        all_data = frozenset(range(1, 5))  # pass-through, never cached
        seen = []
        rng = random.Random(5)
        while len(seen) < 20:
            survivors = frozenset(rng.sample(range(1, 13), 4))
            if survivors in seen or survivors == all_data:
                continue
            seen.append(survivors)
            blocks = {i: encoded[i - 1] for i in survivors}
            assert code.decode(blocks) == stripe
            assert len(code._decode_cache) <= 8
        # The most recent distinct survivor sets are the ones retained.
        assert set(code._decode_cache) == set(seen[-8:])

    def test_decode_cache_lru_refreshes_on_hit(self):
        code = ReedSolomonCode(2, 6)
        code.DECODE_CACHE_SIZE = 2
        stripe = make_stripe(2, 4)
        encoded = code.encode(stripe)
        first = {1: encoded[0], 3: encoded[2]}
        second = {2: encoded[1], 4: encoded[3]}
        third = {5: encoded[4], 6: encoded[5]}
        code.decode(first)
        code.decode(second)
        code.decode(first)  # refresh: first is now most recent
        code.decode(third)  # evicts second, not first
        assert set(code._decode_cache) == {
            frozenset({1, 3}), frozenset({5, 6})
        }

    @settings(deadline=None, max_examples=25)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=1, max_value=64),
        st.randoms(use_true_random=False),
    )
    def test_roundtrip_random(self, m, extra, size, rng):
        n = m + extra
        code = ReedSolomonCode(m, n)
        stripe = [
            bytes(rng.randrange(256) for _ in range(size)) for _ in range(m)
        ]
        encoded = code.encode(stripe)
        survivors = rng.sample(range(1, n + 1), m)
        assert code.decode({i: encoded[i - 1] for i in survivors}) == stripe


class TestModify:
    def test_modify_matches_reencode(self):
        code = ReedSolomonCode(3, 6)
        stripe = make_stripe(3, 8)
        encoded = code.encode(stripe)
        new_block = bytes(range(8))
        new_stripe = [new_block, stripe[1], stripe[2]]
        reencoded = code.encode(new_stripe)
        for j in range(4, 7):
            modified = code.modify(1, j, stripe[0], new_block, encoded[j - 1])
            assert modified == reencoded[j - 1]

    def test_modify_each_data_index(self):
        code = ReedSolomonCode(3, 5)
        stripe = make_stripe(3, 8, seed=2)
        encoded = code.encode(stripe)
        for i in range(1, 4):
            new_block = bytes((x + i) % 256 for x in range(8))
            new_stripe = list(stripe)
            new_stripe[i - 1] = new_block
            reencoded = code.encode(new_stripe)
            for j in range(4, 6):
                modified = code.modify(i, j, stripe[i - 1], new_block, encoded[j - 1])
                assert modified == reencoded[j - 1]

    def test_modify_noop_when_unchanged(self):
        code = ReedSolomonCode(2, 4)
        stripe = make_stripe(2, 4)
        encoded = code.encode(stripe)
        assert code.modify(1, 3, stripe[0], stripe[0], encoded[2]) == encoded[2]

    def test_modify_validates_indices(self):
        code = ReedSolomonCode(2, 4)
        with pytest.raises(CodingError):
            code.modify(3, 4, b"a", b"b", b"c")
        with pytest.raises(CodingError):
            code.modify(1, 2, b"a", b"b", b"c")

    def test_modify_validates_sizes(self):
        code = ReedSolomonCode(2, 4)
        with pytest.raises(CodingError):
            code.modify(1, 3, b"aa", b"b", b"cc")


class TestDeltaOptimization:
    def test_delta_equivalent_to_modify(self):
        code = ReedSolomonCode(3, 6)
        stripe = make_stripe(3, 16)
        encoded = code.encode(stripe)
        new_block = bytes(reversed(range(16)))
        delta = code.encode_delta(2, stripe[1], new_block)
        for j in range(4, 7):
            via_modify = code.modify(2, j, stripe[1], new_block, encoded[j - 1])
            via_delta = code.apply_delta(2, j, delta, encoded[j - 1])
            assert via_modify == via_delta

    def test_delta_is_xor(self):
        code = ReedSolomonCode(2, 3)
        assert code.encode_delta(1, b"\x0f", b"\xf0") == b"\xff"

    def test_delta_validates(self):
        code = ReedSolomonCode(2, 4)
        with pytest.raises(CodingError):
            code.encode_delta(3, b"a", b"b")
        with pytest.raises(CodingError):
            code.encode_delta(1, b"aa", b"b")
        with pytest.raises(CodingError):
            code.apply_delta(1, 2, b"a", b"b")
