"""GF(2^8) arithmetic: table construction, axioms, vectorized kernels."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.erasure.gf256 import GF256
from repro.errors import CodingError

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestScalarOps:
    def test_add_is_xor(self):
        assert GF256.add(0b1010, 0b0110) == 0b1100

    def test_sub_equals_add(self):
        for a, b in [(1, 2), (200, 13), (255, 255)]:
            assert GF256.sub(a, b) == GF256.add(a, b)

    def test_mul_identity(self):
        for a in range(256):
            assert GF256.mul(a, 1) == a
            assert GF256.mul(1, a) == a

    def test_mul_zero(self):
        for a in range(256):
            assert GF256.mul(a, 0) == 0
            assert GF256.mul(0, a) == 0

    def test_known_products(self):
        # 2 * 2 = 4 (polynomial x * x = x^2, no reduction)
        assert GF256.mul(2, 2) == 4
        # 0x80 * 2 overflows and reduces by 0x11D -> 0x1D
        assert GF256.mul(0x80, 2) == 0x1D

    def test_div_inverts_mul(self):
        for a in [1, 7, 100, 255]:
            for b in [1, 3, 91, 254]:
                assert GF256.div(GF256.mul(a, b), b) == a

    def test_div_by_zero_raises(self):
        with pytest.raises(CodingError):
            GF256.div(5, 0)

    def test_inv_of_zero_raises(self):
        with pytest.raises(CodingError):
            GF256.inv(0)

    def test_inv_roundtrip(self):
        for a in range(1, 256):
            assert GF256.mul(a, GF256.inv(a)) == 1

    def test_pow_zero_exponent(self):
        assert GF256.pow(0, 0) == 1
        assert GF256.pow(17, 0) == 1

    def test_pow_matches_repeated_mul(self):
        value = 1
        for exponent in range(1, 10):
            value = GF256.mul(value, 3)
            assert GF256.pow(3, exponent) == value

    def test_pow_negative(self):
        assert GF256.pow(7, -1) == GF256.inv(7)

    def test_pow_zero_base_negative_raises(self):
        with pytest.raises(CodingError):
            GF256.pow(0, -1)

    def test_pow_zero_base_positive(self):
        assert GF256.pow(0, 5) == 0


class TestFieldAxioms:
    @given(elements, elements)
    def test_add_commutative(self, a, b):
        assert GF256.add(a, b) == GF256.add(b, a)

    @given(elements, elements)
    def test_mul_commutative(self, a, b):
        assert GF256.mul(a, b) == GF256.mul(b, a)

    @given(elements, elements, elements)
    def test_mul_associative(self, a, b, c):
        assert GF256.mul(GF256.mul(a, b), c) == GF256.mul(a, GF256.mul(b, c))

    @given(elements, elements, elements)
    def test_distributive(self, a, b, c):
        left = GF256.mul(a, GF256.add(b, c))
        right = GF256.add(GF256.mul(a, b), GF256.mul(a, c))
        assert left == right

    @given(elements)
    def test_additive_inverse_is_self(self, a):
        assert GF256.add(a, a) == 0

    @given(nonzero, nonzero)
    def test_div_consistent_with_inv(self, a, b):
        assert GF256.div(a, b) == GF256.mul(a, GF256.inv(b))

    @given(nonzero)
    def test_generator_has_full_order(self, a):
        # Every nonzero element is a power of the generator.
        seen = set()
        value = 1
        for _ in range(255):
            seen.add(value)
            value = GF256.mul(value, GF256.GENERATOR)
        assert a in seen


class TestVectorizedOps:
    def test_mul_bytes_matches_scalar(self):
        data = np.arange(256, dtype=np.uint8)
        for scalar in [0, 1, 2, 7, 255]:
            expected = np.array(
                [GF256.mul(scalar, int(x)) for x in data], dtype=np.uint8
            )
            assert np.array_equal(GF256.mul_bytes(scalar, data), expected)

    def test_mul_bytes_zero_scalar(self):
        data = np.array([1, 2, 3], dtype=np.uint8)
        assert np.array_equal(GF256.mul_bytes(0, data), np.zeros(3, dtype=np.uint8))

    def test_mul_bytes_returns_copy_for_identity(self):
        data = np.array([5, 6], dtype=np.uint8)
        result = GF256.mul_bytes(1, data)
        result[0] = 99
        assert data[0] == 5

    def test_addmul_bytes(self):
        accum = np.array([1, 2, 3, 0], dtype=np.uint8)
        data = np.array([4, 0, 6, 7], dtype=np.uint8)
        expected = np.array(
            [1 ^ GF256.mul(3, 4), 2, 3 ^ GF256.mul(3, 6), GF256.mul(3, 7)],
            dtype=np.uint8,
        )
        GF256.addmul_bytes(accum, 3, data)
        assert np.array_equal(accum, expected)

    def test_addmul_bytes_scalar_one_is_xor(self):
        accum = np.array([0xF0, 0x0F], dtype=np.uint8)
        GF256.addmul_bytes(accum, 1, np.array([0xFF, 0xFF], dtype=np.uint8))
        assert list(accum) == [0x0F, 0xF0]

    def test_matmul_identity(self):
        data = np.random.RandomState(0).randint(
            0, 256, size=(3, 16)
        ).astype(np.uint8)
        identity = np.eye(3, dtype=np.uint8)
        assert np.array_equal(GF256.matmul(identity, data), data)

    def test_matmul_dimension_mismatch(self):
        with pytest.raises(CodingError):
            GF256.matmul(
                np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 4), dtype=np.uint8)
            )

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_matmul_linear(self, seed):
        rng = np.random.RandomState(seed % (2**31))
        matrix = rng.randint(0, 256, size=(2, 3)).astype(np.uint8)
        x = rng.randint(0, 256, size=(3, 8)).astype(np.uint8)
        y = rng.randint(0, 256, size=(3, 8)).astype(np.uint8)
        left = GF256.matmul(matrix, np.bitwise_xor(x, y))
        right = np.bitwise_xor(GF256.matmul(matrix, x), GF256.matmul(matrix, y))
        assert np.array_equal(left, right)

    def test_elements(self):
        assert GF256.elements() == list(range(256))
