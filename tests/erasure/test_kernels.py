"""GF(2^8) kernel backends: registry, primitives, cross-backend identity.

The kernels are only allowed to differ in speed — every backend must be
bit-for-bit identical to the masked reference on every operation of
every registered coder.  The property tests here drive random
encode/decode/modify/delta round-trips through all three backends and
compare outputs byte for byte.
"""

import random

import pytest

from repro.erasure import make_code
from repro.erasure.interface import ErasureCode
from repro.erasure.kernels import (
    BytesKernel,
    Kernel,
    MaskedKernel,
    TableKernel,
    available_kernels,
    get_kernel,
    register_kernel,
)
from repro.erasure import kernels as kernels_module
from repro.errors import CodingError, ConfigurationError

BACKENDS = ["masked", "table", "bytes"]

#: Every registered coder kind at a representative geometry.
CODER_GEOMETRIES = [
    ("reed-solomon", 3, 6),
    ("cauchy", 3, 6),
    ("lrc", 4, 8),
    ("parity", 3, 4),
    ("replication", 1, 3),
]


def tolerated_erasures(kind: str, m: int, n: int) -> int:
    """Worst-case erasures every coder guarantees to decode.

    MDS codes tolerate any ``n - m`` losses; the LRC is non-MDS and
    only guarantees the campaign bound ``(n - m) // 2``.
    """
    return (n - m) // 2 if kind == "lrc" else n - m


class TestRegistry:
    def test_available_kernels(self):
        names = available_kernels()
        for name in ("auto", "table", "masked", "bytes"):
            assert name in names

    def test_unknown_kernel_raises(self):
        with pytest.raises(ConfigurationError):
            get_kernel("simd")

    def test_instances_are_shared(self):
        assert get_kernel("table") is get_kernel("table")
        assert get_kernel("bytes") is get_kernel("bytes")

    def test_auto_prefers_table_with_numpy(self):
        assert get_kernel("auto").name == "table"

    def test_auto_falls_back_to_bytes_without_numpy(self, monkeypatch):
        monkeypatch.setattr(kernels_module, "np", None)
        assert get_kernel("auto").name == "bytes"

    def test_numpy_kernels_refuse_without_numpy(self, monkeypatch):
        monkeypatch.setattr(kernels_module, "np", None)
        with pytest.raises(ConfigurationError):
            TableKernel()
        with pytest.raises(ConfigurationError):
            MaskedKernel()

    def test_register_custom_kernel(self):
        class MyKernel(BytesKernel):
            name = "my-kernel"

        register_kernel("my-kernel", MyKernel)
        assert isinstance(get_kernel("my-kernel"), MyKernel)
        assert "my-kernel" in available_kernels()

    def test_register_rejects_non_kernel(self):
        with pytest.raises(ConfigurationError):
            register_kernel("bogus", dict)

    def test_code_reports_resolved_backend(self):
        assert make_code(3, 6, backend="auto").backend == "table"
        assert make_code(3, 6, backend="bytes").backend == "bytes"

    def test_code_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            make_code(3, 6, backend="simd")


class TestKernelPrimitives:
    """matmul/scale/addmul/xor agree across backends on random inputs."""

    def _random_blocks(self, rng, count, width):
        return [
            bytes(rng.randrange(256) for _ in range(width))
            for _ in range(count)
        ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matmul_matches_masked(self, backend):
        rng = random.Random(7)
        reference = get_kernel("masked")
        kernel = get_kernel(backend)
        for _ in range(15):
            rows = rng.randrange(0, 5)
            cols = rng.randrange(1, 5)
            width = rng.choice([1, 7, 64, 257])
            coeffs = [
                [rng.randrange(256) for _ in range(cols)]
                for _ in range(rows)
            ]
            blocks = self._random_blocks(rng, cols, width)
            assert kernel.matmul(coeffs, blocks) == reference.matmul(
                coeffs, blocks
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_scale_addmul_xor_match_masked(self, backend):
        rng = random.Random(11)
        reference = get_kernel("masked")
        kernel = get_kernel(backend)
        for scalar in [0, 1, 2, 255] + [rng.randrange(256) for _ in range(8)]:
            a, b = self._random_blocks(rng, 2, 113)
            assert kernel.scale(scalar, a) == reference.scale(scalar, a)
            assert kernel.addmul(a, scalar, b) == reference.addmul(
                a, scalar, b
            )
            assert kernel.xor(a, b) == reference.xor(a, b)
        blocks = self._random_blocks(rng, 5, 64)
        assert kernel.xor_all(blocks) == reference.xor_all(blocks)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matmul_dimension_mismatch(self, backend):
        kernel = get_kernel(backend)
        with pytest.raises(CodingError):
            kernel.matmul([[1, 2]], [b"xy"])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matmul_zero_rows(self, backend):
        kernel = get_kernel(backend)
        assert kernel.matmul([], [b"xy", b"ab"]) == []

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matmul_zero_row_output_is_zero(self, backend):
        kernel = get_kernel(backend)
        assert kernel.matmul([[0, 0]], [b"xy", b"ab"]) == [b"\x00\x00"]


class TestCrossBackendCoders:
    """Every registered coder is byte-identical across all backends."""

    def _stripe(self, rng, m, width):
        return [
            bytes(rng.randrange(256) for _ in range(width))
            for _ in range(m)
        ]

    @pytest.mark.parametrize("kind,m,n", CODER_GEOMETRIES)
    def test_encode_decode_identical(self, kind, m, n):
        rng = random.Random(sum(kind.encode()))
        codes = {b: make_code(m, n, kind, backend=b) for b in BACKENDS}
        for trial in range(5):
            width = rng.choice([1, 16, 129])
            stripe = self._stripe(rng, m, width)
            encodings = {
                b: code.encode(stripe) for b, code in codes.items()
            }
            reference = encodings["masked"]
            assert all(enc == reference for enc in encodings.values())
            keep = n - tolerated_erasures(kind, m, n)
            survivors = rng.sample(range(1, n + 1), keep)
            blocks = {i: reference[i - 1] for i in survivors}
            for backend, code in codes.items():
                assert code.decode(blocks) == stripe, backend

    @pytest.mark.parametrize("kind,m,n", CODER_GEOMETRIES)
    def test_modify_and_delta_identical(self, kind, m, n):
        rng = random.Random(1 + sum(kind.encode()))
        codes = {b: make_code(m, n, kind, backend=b) for b in BACKENDS}
        width = 33
        stripe = self._stripe(rng, m, width)
        encoded = codes["masked"].encode(stripe)
        new_block = bytes(rng.randrange(256) for _ in range(width))
        index = rng.randrange(1, m + 1)
        for j in range(m + 1, n + 1):
            modified = {
                b: code.modify(
                    index, j, stripe[index - 1], new_block, encoded[j - 1]
                )
                for b, code in codes.items()
            }
            reference = modified["masked"]
            assert all(out == reference for out in modified.values())
            deltas = {
                b: code.encode_delta(index, stripe[index - 1], new_block)
                for b, code in codes.items()
                if hasattr(code, "encode_delta")
            }
            for backend, delta in deltas.items():
                applied = codes[backend].apply_delta(
                    index, j, delta, encoded[j - 1]
                )
                assert applied == reference, backend

    def test_bytes_backend_works_without_numpy(self, monkeypatch):
        """The pure-bytes coder path must never touch numpy."""
        monkeypatch.setattr(kernels_module, "np", None)
        kernel = get_kernel("bytes")
        assert isinstance(kernel, BytesKernel)
        blocks = [b"\x01\x02\x03", b"\x04\x05\x06"]
        out = kernel.matmul([[3, 7], [1, 1]], blocks)
        assert len(out) == 2 and len(out[0]) == 3

    def test_kernel_base_class_contract(self):
        assert issubclass(TableKernel, Kernel)
        assert issubclass(MaskedKernel, Kernel)
        assert issubclass(BytesKernel, Kernel)
