"""BoundedLRU and the shared decode-matrix cache bound.

The regression of record: every matrix coder's decode cache must stay
bounded under survivor-set churn (fault campaigns produce a new
frozenset per crash pattern).  PR 7 bounded only the Reed-Solomon
cache inline; the bound now lives in one helper
(:class:`repro.erasure.cache.BoundedLRU`) shared by Reed-Solomon,
Cauchy, and LRC, and these tests drive >64 distinct survivor sets
through each coder to prove the bound holds everywhere.
"""

import itertools
import random

import pytest

from repro.erasure import LRCCode, make_code
from repro.erasure.cache import BoundedLRU


class TestBoundedLRU:
    def test_get_or_compute_caches(self):
        cache = BoundedLRU(4)
        calls = []

        def factory():
            calls.append(1)
            return "value"

        assert cache.get_or_compute("k", factory) == "value"
        assert cache.get_or_compute("k", factory) == "value"
        assert len(calls) == 1
        assert "k" in cache and len(cache) == 1

    def test_evicts_least_recently_used(self):
        cache = BoundedLRU(2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: 1)  # refresh "a"
        cache.get_or_compute("c", lambda: 3)  # evicts "b"
        assert set(cache) == {"a", "c"}

    def test_failed_factory_caches_nothing(self):
        cache = BoundedLRU(2)
        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", self._boom)
        assert "k" not in cache and len(cache) == 0

    @staticmethod
    def _boom():
        raise RuntimeError("factory failed")

    def test_dynamic_bound_shrinks_on_insert(self):
        bound = [8]
        cache = BoundedLRU(lambda: bound[0])
        for key in range(8):
            cache.get_or_compute(key, lambda: key)
        bound[0] = 2
        cache.get_or_compute("new", lambda: "v")
        assert len(cache) <= 2
        assert "new" in cache

    def test_rejects_non_positive_bound(self):
        with pytest.raises(ValueError):
            BoundedLRU(0)

    def test_clear(self):
        cache = BoundedLRU(4)
        cache.get_or_compute("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0


class TestCoderCacheBound:
    """All matrix coders stay bounded under >64 distinct survivor sets."""

    def _churn_mds(self, code, m, n):
        stripe = [bytes([17 * (i + 1) % 256]) * 24 for i in range(m)]
        encoded = code.encode(stripe)
        distinct = 0
        for survivors in itertools.combinations(range(1, n + 1), m):
            if list(survivors) == list(range(1, m + 1)):
                continue  # fast path, never touches the cache
            blocks = {i: encoded[i - 1] for i in survivors}
            assert code.decode(blocks) == stripe
            distinct += 1
        return distinct

    @pytest.mark.parametrize("kind", ["reed-solomon", "cauchy"])
    def test_mds_decode_cache_stays_bounded(self, kind):
        m, n = 3, 10
        code = make_code(m, n, kind)
        distinct = self._churn_mds(code, m, n)
        assert distinct > 64
        assert len(code._decode_cache) <= code.DECODE_CACHE_SIZE

    def test_lrc_decode_cache_stays_bounded(self):
        code = LRCCode(4, 12)
        rng = random.Random(5)
        stripe = [bytes([i + 1]) * 16 for i in range(code.m)]
        encoded = code.encode(stripe)
        seen = set()
        while len(seen) <= 64:
            survivors = frozenset(rng.sample(range(1, code.n + 1), 8))
            if survivors in seen or 1 in survivors:
                continue  # keep block 1 missing: skip the fast path
            try:
                decoded = code.decode({i: encoded[i - 1] for i in survivors})
            except Exception:
                continue  # undecodable pattern for this non-MDS layout
            assert decoded == stripe
            seen.add(survivors)
        assert len(seen) > 64
        assert len(code._decode_cache) <= code.DECODE_CACHE_SIZE
