"""Cauchy-matrix Reed-Solomon code."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure import CauchyReedSolomonCode, make_code
from repro.erasure.reed_solomon import ReedSolomonCode
from repro.errors import CodingError


class TestConstruction:
    def test_registered_in_factory(self):
        assert isinstance(make_code(3, 6, "cauchy"), CauchyReedSolomonCode)

    def test_is_a_reed_solomon(self):
        assert isinstance(CauchyReedSolomonCode(2, 4), ReedSolomonCode)

    def test_systematic(self):
        import numpy as np

        code = CauchyReedSolomonCode(4, 7)
        assert np.array_equal(
            code.generator_matrix[:4], np.eye(4, dtype=np.uint8)
        )

    def test_rejects_oversize(self):
        with pytest.raises(CodingError):
            CauchyReedSolomonCode(2, 300)

    def test_zero_parity_allowed(self):
        code = CauchyReedSolomonCode(3, 3)
        stripe = [b"a", b"b", b"c"]
        assert code.encode(stripe) == stripe


class TestMdsProperty:
    def test_every_survivor_pattern_decodes(self):
        code = CauchyReedSolomonCode(3, 6)
        stripe = [bytes([i]) * 8 for i in range(3)]
        encoded = code.encode(stripe)
        for survivors in itertools.combinations(range(1, 7), 3):
            blocks = {i: encoded[i - 1] for i in survivors}
            assert code.decode(blocks) == stripe, survivors

    @settings(deadline=None, max_examples=20)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=4),
        st.randoms(use_true_random=False),
    )
    def test_roundtrip_random(self, m, extra, rng):
        n = m + extra
        code = CauchyReedSolomonCode(m, n)
        stripe = [
            bytes(rng.randrange(256) for _ in range(16)) for _ in range(m)
        ]
        encoded = code.encode(stripe)
        survivors = rng.sample(range(1, n + 1), m)
        assert code.decode({i: encoded[i - 1] for i in survivors}) == stripe


class TestEquivalence:
    """Vandermonde-RS and Cauchy-RS are interchangeable behaviours."""

    def test_modify_matches_reencode(self):
        code = CauchyReedSolomonCode(3, 6)
        stripe = [bytes([10 + i]) * 8 for i in range(3)]
        encoded = code.encode(stripe)
        new_block = b"\x77" * 8
        reencoded = code.encode([stripe[0], new_block, stripe[2]])
        for j in range(4, 7):
            assert code.modify(2, j, stripe[1], new_block, encoded[j - 1]) \
                == reencoded[j - 1]

    def test_delta_path(self):
        code = CauchyReedSolomonCode(2, 4)
        stripe = [b"\x01" * 4, b"\x02" * 4]
        encoded = code.encode(stripe)
        new_block = b"\x0f" * 4
        delta = code.encode_delta(1, stripe[0], new_block)
        for j in (3, 4):
            assert code.apply_delta(1, j, delta, encoded[j - 1]) == code.modify(
                1, j, stripe[0], new_block, encoded[j - 1]
            )

    def test_cluster_runs_on_cauchy(self):
        from tests.conftest import stripe_of
        from repro import ClusterConfig, FabCluster

        cluster = FabCluster(
            ClusterConfig(m=3, n=5, block_size=32, code_kind="cauchy")
        )
        register = cluster.register(0)
        stripe = stripe_of(3, 32, tag=1)
        assert register.write_stripe(stripe) == "OK"
        cluster.crash(2)
        assert register.read_stripe() == stripe
