"""Erasure-code factory."""

import pytest

from repro.erasure import (
    ReedSolomonCode,
    ReplicationCode,
    SingleParityCode,
    available_codes,
    make_code,
)
from repro.erasure.interface import ErasureCode
from repro.erasure.registry import register_code
from repro.errors import ConfigurationError


class TestMakeCode:
    def test_auto_picks_replication_for_m1(self):
        assert isinstance(make_code(1, 3), ReplicationCode)

    def test_auto_picks_parity_for_single_parity(self):
        assert isinstance(make_code(4, 5), SingleParityCode)

    def test_auto_picks_reed_solomon_otherwise(self):
        assert isinstance(make_code(3, 6), ReedSolomonCode)

    def test_explicit_kind(self):
        assert isinstance(make_code(3, 6, "reed-solomon"), ReedSolomonCode)
        assert isinstance(make_code(2, 3, "parity"), SingleParityCode)
        assert isinstance(make_code(1, 2, "replication"), ReplicationCode)

    def test_unknown_kind_raises(self):
        with pytest.raises(ConfigurationError):
            make_code(2, 4, "fountain")

    def test_available_codes(self):
        names = available_codes()
        assert "auto" in names
        assert "reed-solomon" in names

    def test_register_custom_code(self):
        class MyCode(ReedSolomonCode):
            pass

        register_code("my-code", MyCode)
        assert isinstance(make_code(2, 4, "my-code"), MyCode)
        assert "my-code" in available_codes()

    def test_register_rejects_non_code(self):
        with pytest.raises(ConfigurationError):
            register_code("bogus", dict)


class TestInterfaceContract:
    """All codes honour the shared ErasureCode contract."""

    @pytest.mark.parametrize(
        "code",
        [make_code(1, 3), make_code(3, 4), make_code(3, 6)],
        ids=["replication", "parity", "reed-solomon"],
    )
    def test_encode_decode_roundtrip(self, code: ErasureCode):
        stripe = [bytes([i]) * 8 for i in range(code.m)]
        encoded = code.encode(stripe)
        assert len(encoded) == code.n
        assert encoded[: code.m] == stripe  # systematic
        blocks = {i: encoded[i - 1] for i in range(code.n - code.m + 1, code.n + 1)}
        assert code.decode(blocks) == stripe

    @pytest.mark.parametrize(
        "code",
        [make_code(1, 3), make_code(3, 4), make_code(3, 6)],
        ids=["replication", "parity", "reed-solomon"],
    )
    def test_modify_consistency(self, code: ErasureCode):
        stripe = [bytes([10 + i]) * 8 for i in range(code.m)]
        encoded = code.encode(stripe)
        new_block = b"\x99" * 8
        new_stripe = [new_block] + stripe[1:]
        reencoded = code.encode(new_stripe)
        for j in range(code.m + 1, code.n + 1):
            assert (
                code.modify(1, j, stripe[0], new_block, encoded[j - 1])
                == reencoded[j - 1]
            )
