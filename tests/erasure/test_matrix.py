"""Matrix algebra over GF(2^8): inversion, rank, MDS constructions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure import matrix as gfm
from repro.erasure.gf256 import GF256
from repro.errors import CodingError


class TestIdentityAndConstructors:
    def test_identity(self):
        eye = gfm.identity(4)
        assert eye.shape == (4, 4)
        assert np.array_equal(eye, np.eye(4, dtype=np.uint8))

    def test_vandermonde_first_column_ones(self):
        v = gfm.vandermonde(5, 3)
        assert all(v[i, 0] == 1 for i in range(5))

    def test_vandermonde_powers(self):
        v = gfm.vandermonde(5, 4)
        for i in range(1, 5):
            for j in range(4):
                assert v[i, j] == GF256.pow(i, j)

    def test_vandermonde_row_zero(self):
        v = gfm.vandermonde(3, 3)
        assert list(v[0]) == [1, 0, 0]

    def test_vandermonde_too_many_rows(self):
        with pytest.raises(CodingError):
            gfm.vandermonde(257, 2)

    def test_cauchy_all_square_submatrices_invertible(self):
        c = gfm.cauchy(4, 3)
        # every 3x3 row subset must invert
        import itertools

        for rows in itertools.combinations(range(4), 3):
            gfm.invert(c[list(rows), :])  # must not raise

    def test_cauchy_bounds(self):
        with pytest.raises(CodingError):
            gfm.cauchy(200, 100)


class TestInversion:
    def test_invert_identity(self):
        eye = gfm.identity(5)
        assert np.array_equal(gfm.invert(eye), eye)

    def test_invert_roundtrip(self):
        rng = np.random.RandomState(7)
        for _ in range(10):
            size = rng.randint(1, 8)
            candidate = rng.randint(0, 256, size=(size, size)).astype(np.uint8)
            try:
                inverse = gfm.invert(candidate)
            except CodingError:
                continue  # singular sample
            product = GF256.matmul(candidate, inverse)
            assert np.array_equal(product, gfm.identity(size))

    def test_invert_singular_raises(self):
        singular = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(CodingError):
            gfm.invert(singular)

    def test_invert_zero_matrix_raises(self):
        with pytest.raises(CodingError):
            gfm.invert(np.zeros((3, 3), dtype=np.uint8))

    def test_invert_non_square_raises(self):
        with pytest.raises(CodingError):
            gfm.invert(np.ones((2, 3), dtype=np.uint8))

    def test_invert_needs_row_swap(self):
        # Zero pivot in the first position forces a swap.
        m = np.array([[0, 1], [1, 0]], dtype=np.uint8)
        inverse = gfm.invert(m)
        assert np.array_equal(GF256.matmul(m, inverse), gfm.identity(2))


class TestRank:
    def test_rank_identity(self):
        assert gfm.rank(gfm.identity(4)) == 4

    def test_rank_zero(self):
        assert gfm.rank(np.zeros((3, 5), dtype=np.uint8)) == 0

    def test_rank_duplicated_rows(self):
        m = np.array([[1, 2, 3], [1, 2, 3], [0, 1, 0]], dtype=np.uint8)
        assert gfm.rank(m) == 2

    def test_rank_wide(self):
        m = np.array([[1, 0, 1, 1], [0, 1, 1, 0]], dtype=np.uint8)
        assert gfm.rank(m) == 2

    def test_vandermonde_has_full_rank(self):
        assert gfm.rank(gfm.vandermonde(8, 5)) == 5


class TestSystematicGenerator:
    @settings(deadline=None, max_examples=30)
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=6),
    )
    def test_mds_property(self, m, extra):
        """Every m-row subset of the generator must be invertible."""
        import itertools

        n = m + extra
        generator = gfm.systematic_from_vandermonde(m, n)
        assert generator.shape == (n, m)
        assert np.array_equal(generator[:m], gfm.identity(m))
        # Check a sample of m-row subsets (all if few).
        subsets = list(itertools.combinations(range(n), m))
        for rows in subsets[:50]:
            square = gfm.submatrix(generator, rows)
            assert gfm.rank(square) == m

    def test_rejects_m_greater_than_n(self):
        with pytest.raises(CodingError):
            gfm.systematic_from_vandermonde(5, 3)

    def test_rejects_n_over_256(self):
        with pytest.raises(CodingError):
            gfm.systematic_from_vandermonde(2, 300)

    def test_matmul_helper(self):
        a = gfm.identity(3)
        b = gfm.vandermonde(3, 3)
        assert np.array_equal(gfm.matmul(a, b), b)
