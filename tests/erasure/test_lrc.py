"""LRCCode: topology, decodability, locality, and repair planning.

The locality contract under test: a single lost block repairs from its
local group alone — at most ``local_group_size`` reads, never ``m``
fleet-wide — while any failure pattern within the campaign tolerance
``(n - m) // 2`` still decodes through the global parities.
"""

import itertools
import random

import pytest

from repro.erasure import LRCCode, make_code, split_parity
from repro.erasure.reed_solomon import ReedSolomonCode
from repro.errors import CodingError


def stripe_for(code, width=32, seed=3):
    rng = random.Random(seed)
    return [bytes(rng.randrange(256) for _ in range(width)) for _ in range(code.m)]


class TestConstruction:
    def test_default_split(self):
        assert split_parity(4) == (2, 2)
        assert split_parity(5) == (3, 2)
        assert split_parity(1) == (1, 0)
        with pytest.raises(CodingError):
            split_parity(0)

    def test_factory_registration(self):
        code = make_code(4, 8, "lrc")
        assert isinstance(code, LRCCode)
        assert code.local_group_count == 2
        assert code.global_parity_count == 2

    def test_balanced_groups(self):
        code = LRCCode(7, 12, local_groups=3, global_parities=2)
        assert code.local_groups == ((1, 2, 3), (4, 5), (6, 7))
        assert code.local_group_size == 4  # largest group + its parity

    def test_group_layout_accessors(self):
        code = LRCCode(4, 8, local_groups=2, global_parities=2)
        assert code.local_groups == ((1, 2), (3, 4))
        assert code.local_parity_index(0) == 5
        assert code.local_parity_index(1) == 6
        assert code.group_of(1) == 0 and code.group_of(4) == 1
        assert code.group_of(5) == 0 and code.group_of(6) == 1
        assert code.group_of(7) is None and code.group_of(8) is None
        with pytest.raises(CodingError):
            code.group_of(9)
        with pytest.raises(CodingError):
            code.local_parity_index(2)

    def test_invalid_splits_rejected(self):
        with pytest.raises(CodingError):
            LRCCode(4, 8, local_groups=0, global_parities=4)
        with pytest.raises(CodingError):
            LRCCode(4, 8, local_groups=1, global_parities=1)  # L+g != n-m
        with pytest.raises(CodingError):
            LRCCode(2, 8, local_groups=3, global_parities=3)  # L > m

    def test_systematic_encode(self):
        code = LRCCode(4, 8)
        stripe = stripe_for(code)
        encoded = code.encode(stripe)
        assert encoded[: code.m] == stripe
        # Local parities are the XOR of their group.
        for gid, members in enumerate(code.local_groups):
            expected = bytes(len(stripe[0]))
            for index in members:
                expected = bytes(a ^ b for a, b in zip(expected, stripe[index - 1]))
            assert encoded[code.m + gid] == expected


class TestDecode:
    def test_all_tolerated_patterns_decode(self):
        code = LRCCode(4, 8)
        code.verify_tolerance((code.n - code.m) // 2)
        stripe = stripe_for(code)
        encoded = code.encode(stripe)
        indices = range(1, code.n + 1)
        for count in (1, 2):
            for lost in itertools.combinations(indices, count):
                blocks = {
                    i: encoded[i - 1] for i in indices if i not in lost
                }
                assert code.decode(blocks) == stripe, lost

    def test_intolerant_layout_detected(self):
        # No global parity: two losses in one group are unrecoverable.
        code = LRCCode(4, 6, local_groups=2, global_parities=0)
        with pytest.raises(CodingError):
            code.verify_tolerance(2)
        stripe = stripe_for(code)
        encoded = code.encode(stripe)
        blocks = {i: encoded[i - 1] for i in (3, 4, 5, 6)}  # lost group 0 data
        with pytest.raises(CodingError):
            code.decode(blocks)

    def test_single_data_loss_prefers_local_parity(self):
        code = LRCCode(4, 8)
        chosen, _ = code._decode_plan(frozenset(range(2, code.n + 1)))
        globals_start = code.m + code.local_group_count + 1
        assert all(index < globals_start for index in chosen)
        assert code.local_parity_index(0) in chosen

    def test_group_wipe_falls_back_to_globals(self):
        code = LRCCode(4, 8)
        survivors = frozenset({3, 4, 6, 7, 8})  # group 0 data + parity gone
        chosen, _ = code._decode_plan(survivors)
        assert any(index > code.m + code.local_group_count for index in chosen)
        stripe = stripe_for(code)
        encoded = code.encode(stripe)
        assert code.decode({i: encoded[i - 1] for i in survivors}) == stripe


class TestDecodable:
    def test_mds_default_counts_valid_indices(self):
        code = ReedSolomonCode(3, 5)
        assert code.is_decodable({1, 2, 3})
        assert code.is_decodable({2, 4, 5})
        assert not code.is_decodable({1, 2})
        assert not code.is_decodable({1, 2, 99})  # out of range ignored

    def test_lrc_rejects_rank_deficient_subsets(self):
        code = LRCCode(4, 8)  # L=2 (groups {1,2}, {3,4}), g=2
        # The fast-read bug set: a group's data plus its own parity plus
        # one global — rank 3.
        assert not code.is_decodable({3, 4, 6, 7})
        assert not code.is_decodable({1, 2, 5, 7})
        assert code.is_decodable({1, 2, 3, 4})
        assert code.is_decodable({1, 3, 6, 7})
        assert not code.is_decodable({1, 2, 3})  # too few

    def test_lrc_decodable_sets_actually_decode(self):
        code = LRCCode(4, 8)
        stripe = [bytes([10 + i] * 16) for i in range(4)]
        encoded = code.encode(stripe)
        for subset in itertools.combinations(range(1, 9), 4):
            blocks = {i: encoded[i - 1] for i in subset}
            if code.is_decodable(subset):
                assert code.decode(blocks) == stripe
            else:
                with pytest.raises(CodingError):
                    code.decode(blocks)


class TestReconstruct:
    @pytest.mark.parametrize("m,n,L,g", [(4, 8, 2, 2), (6, 10, 2, 2), (6, 12, 3, 3)])
    def test_single_failure_repairs_locally(self, m, n, L, g):
        """Property: one lost brick reads <= local_group_size fragments."""
        code = LRCCode(m, n, local_groups=L, global_parities=g)
        stripe = stripe_for(code)
        encoded = code.encode(stripe)
        for failed in range(1, code.n + 1):
            sources = code.recovery_sources(failed)
            globals_start = code.m + code.local_group_count
            if failed <= globals_start:
                assert len(sources) <= code.local_group_size - 1
            else:
                assert len(sources) <= code.m  # global parity needs the data
            rebuilt = code.reconstruct(
                failed, {i: encoded[i - 1] for i in sources}
            )
            assert rebuilt == encoded[failed - 1], failed

    def test_degraded_local_group_falls_back(self):
        code = LRCCode(4, 8)
        stripe = stripe_for(code)
        encoded = code.encode(stripe)
        # Block 1 failed and its local parity (5) is also down.
        available = set(range(1, 9)) - {1, 5}
        sources = code.recovery_sources(1, available)
        assert set(sources) <= available
        rebuilt = code.reconstruct(1, {i: encoded[i - 1] for i in sources})
        assert rebuilt == encoded[0]

    def test_reconstruct_rejects_failed_source(self):
        code = LRCCode(4, 8)
        with pytest.raises(CodingError):
            code.reconstruct(1, {1: b"x", 2: b"y"})


class TestModify:
    def test_modify_matches_reencode(self):
        code = LRCCode(4, 8)
        stripe = stripe_for(code)
        encoded = code.encode(stripe)
        new_block = bytes(b ^ 0x5A for b in stripe[1])
        new_stripe = list(stripe)
        new_stripe[1] = new_block
        reencoded = code.encode(new_stripe)
        for j in range(code.m + 1, code.n + 1):
            modified = code.modify(2, j, stripe[1], new_block, encoded[j - 1])
            assert modified == reencoded[j - 1], j
            delta = code.encode_delta(2, stripe[1], new_block)
            assert code.apply_delta(2, j, delta, encoded[j - 1]) == reencoded[j - 1]
