"""Corrupt-as-erasure property: any m clean fragments recover the stripe.

The degraded-read path (PR: silent-corruption resilience) treats a
checksum-failed fragment exactly like a missing one — an erasure ⊥ —
and decodes from the survivors.  That is only sound if the code really
delivers its MDS promise under that treatment: with up to ``n - m``
fragments corrupted-and-excluded, *every* m-subset of the remaining
clean fragments must reconstruct the original data blocks.

The flip side is also pinned down: a silently corrupted fragment that
is *not* excluded poisons the decode — which is why the stable store
checksums at rest and the coordinator masks failed fragments to ⊥
instead of thawing garbage.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure.registry import make_code

BLOCK_SIZE = 16

#: (registry kind, m, n) — parity only tolerates one erasure (n = m+1).
CODES = [
    ("parity", 4, 5),
    ("reed-solomon", 3, 5),
    ("cauchy", 3, 5),
]


def stripes(m):
    block = st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE)
    return st.lists(block, min_size=m, max_size=m)


def flip(block: bytes) -> bytes:
    return bytes([block[0] ^ 0x80]) + block[1:]


@pytest.mark.parametrize("kind,m,n", CODES, ids=[c[0] for c in CODES])
def test_every_m_subset_of_clean_fragments_decodes(kind, m, n):
    code = make_code(m, n, kind=kind)
    data = [bytes((31 * i + j) % 256 for j in range(BLOCK_SIZE)) for i in range(m)]
    encoded = code.encode(data)
    indices = set(range(1, n + 1))
    # Every corrupt set of size 0..n-m, treated as erasures.
    for k in range(n - m + 1):
        for corrupt in itertools.combinations(sorted(indices), k):
            clean = sorted(indices - set(corrupt))
            for subset in itertools.combinations(clean, m):
                got = code.decode({i: encoded[i - 1] for i in subset})
                assert got == data, (
                    f"{kind}: corrupt={corrupt} subset={subset}"
                )


@pytest.mark.parametrize("kind,m,n", CODES, ids=[c[0] for c in CODES])
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_random_stripes_survive_corrupt_as_erasure(kind, m, n, data):
    code = make_code(m, n, kind=kind)
    stripe = data.draw(stripes(m))
    encoded = code.encode(stripe)
    corrupt = data.draw(
        st.sets(st.integers(1, n), min_size=0, max_size=n - m)
    )
    clean = sorted(set(range(1, n + 1)) - corrupt)
    subset = data.draw(st.permutations(clean)).copy()[:m]
    got = code.decode({i: encoded[i - 1] for i in subset})
    assert got == stripe


@pytest.mark.parametrize("kind,m,n", CODES, ids=[c[0] for c in CODES])
def test_unmasked_corruption_poisons_the_decode(kind, m, n):
    # Why checksums matter: feed the decoder a silently-flipped
    # fragment as if it were clean and the output is wrong.
    code = make_code(m, n, kind=kind)
    data = [bytes((7 * i + j) % 256 for j in range(BLOCK_SIZE)) for i in range(m)]
    encoded = code.encode(data)
    # Use the parity fragment (index n) so decode must actually mix it in.
    supplied = {i: encoded[i - 1] for i in range(2, m + 1)}
    supplied[n] = flip(encoded[n - 1])
    assert code.decode(supplied) != data
