"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro import ClusterConfig, FabCluster
from repro.core.coordinator import CoordinatorConfig
from repro.sim.network import NetworkConfig


def make_cluster(
    m: int = 3,
    n: int = 5,
    block_size: int = 32,
    seed: int = 0,
    drop: float = 0.0,
    min_latency: float = 1.0,
    max_latency: float = 1.0,
    **coordinator_kwargs,
) -> FabCluster:
    """A small cluster with test-friendly defaults."""
    return FabCluster(
        ClusterConfig(
            m=m,
            n=n,
            block_size=block_size,
            seed=seed,
            network=NetworkConfig(
                min_latency=min_latency,
                max_latency=max_latency,
                drop_probability=drop,
                jitter_seed=seed,
            ),
            coordinator=CoordinatorConfig(**coordinator_kwargs),
        )
    )


@pytest.fixture
def cluster() -> FabCluster:
    """Default 3-of-5 cluster, deterministic network."""
    return make_cluster()


def stripe_of(m: int, block_size: int, tag: int) -> list:
    """A unique, well-formed stripe value for tests."""
    return [
        (f"s{tag}b{index}".encode() * block_size)[:block_size]
        for index in range(m)
    ]


def block_of(block_size: int, tag: int) -> bytes:
    """A unique block value for tests."""
    return (f"blk{tag}".encode() * block_size)[:block_size]
