"""Centralized-controller baseline: cheap but fragile."""

import pytest

from repro.baselines.central import CentralConfig, CentralController
from repro.errors import CodingError


def stripe(m=3, size=16, tag=1):
    return [(f"c{tag}b{i}".encode() * size)[:size] for i in range(m)]


class TestHappyPath:
    def test_write_read(self):
        controller = CentralController(CentralConfig(m=3, n=5, block_size=16))
        data = stripe()
        assert controller.write_stripe(0, data) == "OK"
        assert controller.read_stripe(0) == data

    def test_read_unwritten(self):
        controller = CentralController(CentralConfig(m=3, n=5))
        assert controller.read_stripe(0) is None

    def test_single_round_trip_costs(self):
        """With oracle failure detection: 2δ for both operations."""
        controller = CentralController(CentralConfig(m=3, n=5, block_size=16))
        controller.write_stripe(0, stripe())
        controller.read_stripe(0)
        summary = controller.metrics.summary()
        assert summary["central-write/fast"]["latency_delta"] == 2
        assert summary["central-read/fast"]["latency_delta"] == 2
        # Reads touch only m devices: 2m messages.
        assert summary["central-read/fast"]["messages"] == 2 * 3

    def test_oracle_tracks_real_failures(self):
        controller = CentralController(CentralConfig(m=3, n=5, block_size=16))
        data = stripe()
        controller.write_stripe(0, data)
        controller.crash_device(1)
        controller.crash_device(2)
        assert controller.read_stripe(0) == data  # reads 3,4,5 and decodes


class TestFragility:
    def test_controller_is_single_point_of_failure(self):
        controller = CentralController(CentralConfig(m=3, n=5, block_size=16))
        controller.write_stripe(0, stripe())
        controller.crash_controller()
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            controller.read_stripe(0)

    def test_wrong_failure_view_can_lose_data(self):
        """Section 1.3 / the [2] comparison: a false failure verdict
        plus real failures leaves < m reachable blocks."""
        controller = CentralController(CentralConfig(m=3, n=5, block_size=16))
        controller.write_stripe(0, stripe())
        # The detector wrongly declares devices 1 and 2 dead, so new
        # stripes are written only to 3, 4, 5...
        controller.set_oracle_wrong({1, 2})
        controller.write_stripe(1, stripe(tag=2))
        # ...then two of those really die: stripe 1 is gone.
        controller.crash_device(3)
        controller.crash_device(4)
        controller.set_oracle_wrong({1, 2, 3, 4})
        with pytest.raises(CodingError):
            controller.read_stripe(1)

    def test_too_few_believed_alive_raises(self):
        controller = CentralController(CentralConfig(m=3, n=5, block_size=16))
        controller.set_oracle_wrong({1, 2, 3})
        with pytest.raises(CodingError):
            controller.read_stripe(0)
