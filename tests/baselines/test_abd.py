"""ABD single-writer baseline."""

from repro.baselines.abd import AbdCluster, AbdConfig


class TestAbd:
    def test_write_read(self):
        cluster = AbdCluster(AbdConfig(n=5))
        assert cluster.write(0, b"solo") == "OK"
        assert cluster.read(0) == b"solo"

    def test_read_from_any_process(self):
        cluster = AbdCluster(AbdConfig(n=5))
        cluster.write(0, b"v")
        for pid in range(1, 6):
            assert cluster.read(0, route=pid) == b"v"

    def test_single_phase_write_cost(self):
        """SWMR writes: one round trip (2δ, 2n messages)."""
        n = 5
        cluster = AbdCluster(AbdConfig(n=n))
        cluster.write(0, b"fast")
        row = cluster.metrics.summary()["abd-write/fast"]
        assert row["latency_delta"] == 2
        assert row["messages"] == 2 * n

    def test_two_phase_read_cost(self):
        cluster = AbdCluster(AbdConfig(n=5))
        cluster.write(0, b"v")
        cluster.read(0)
        row = cluster.metrics.summary()["abd-read/fast"]
        assert row["latency_delta"] == 4

    def test_writer_monotonic_sequence(self):
        cluster = AbdCluster(AbdConfig(n=3))
        for tag in range(10):
            cluster.write(0, f"w{tag}".encode())
        assert cluster.read(0) == b"w9"

    def test_survives_minority_failures(self):
        cluster = AbdCluster(AbdConfig(n=5))
        cluster.write(0, b"v")
        cluster.crash(4)
        cluster.crash(5)
        assert cluster.read(0) == b"v"
        assert cluster.write(0, b"v2") == "OK"
