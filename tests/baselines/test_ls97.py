"""LS97 replicated register baseline."""

import pytest

from repro.baselines.ls97 import Ls97Cluster, Ls97Config
from repro.sim.network import NetworkConfig


class TestBasicOperation:
    def test_write_read(self):
        cluster = Ls97Cluster(Ls97Config(n=5))
        assert cluster.write(0, b"value-1") == "OK"
        assert cluster.read(0) == b"value-1"

    def test_read_unwritten_is_none(self):
        cluster = Ls97Cluster(Ls97Config(n=3))
        assert cluster.read(0) is None

    def test_overwrite_ordering(self):
        cluster = Ls97Cluster(Ls97Config(n=5))
        for tag in range(5):
            cluster.write(0, f"v{tag}".encode())
        assert cluster.read(0) == b"v4"

    def test_multi_register(self):
        cluster = Ls97Cluster(Ls97Config(n=3))
        cluster.write(0, b"a")
        cluster.write(1, b"b")
        assert cluster.read(0) == b"a"
        assert cluster.read(1) == b"b"

    def test_any_coordinator(self):
        cluster = Ls97Cluster(Ls97Config(n=5))
        cluster.write(0, b"x", route=2)
        for pid in range(1, 6):
            assert cluster.read(0, route=pid) == b"x"


class TestFaultTolerance:
    def test_survives_minority_crashes(self):
        cluster = Ls97Cluster(Ls97Config(n=5))
        cluster.write(0, b"persist")
        cluster.crash(4)
        cluster.crash(5)
        assert cluster.read(0) == b"persist"
        assert cluster.write(0, b"newer") == "OK"
        assert cluster.read(0) == b"newer"

    def test_write_back_updates_stale_replica(self):
        cluster = Ls97Cluster(Ls97Config(n=3))
        cluster.write(0, b"v1")
        cluster.crash(3)
        cluster.write(0, b"v2")
        cluster.recover(3)
        # Reads write back the latest value; eventually 3 catches up.
        cluster.read(0)
        cluster.env.run(until=cluster.env.now + 20)
        assert cluster.nodes[3].stable.load("reg:0")[1] == b"v2"


class TestCostProfile:
    def test_table1_right_columns(self):
        """read: 4δ, 4n msgs, n disk reads, 2nB; write: 4δ, 4n, n writes, nB."""
        n, B = 5, 64
        cluster = Ls97Cluster(Ls97Config(n=n, block_size=B))
        cluster.write(0, b"w" * B)
        cluster.read(0)
        summary = cluster.metrics.summary()
        w = summary["ls97-write/fast"]
        r = summary["ls97-read/fast"]
        assert w["latency_delta"] == 4
        assert w["messages"] == 4 * n
        assert w["disk_writes"] == n
        assert w["bytes"] == n * B
        assert r["latency_delta"] == 4
        assert r["messages"] == 4 * n
        assert r["disk_reads"] == n
        assert r["bytes"] == 2 * n * B

    def test_reads_cost_double_ours(self):
        """LS97 reads are 4δ vs our fast 2δ — the paper's improvement."""
        from tests.conftest import make_cluster, stripe_of

        ours = make_cluster(m=1, n=3, block_size=16)
        register = ours.register(0)
        register.write_stripe([b"p" * 16])
        register.read_stripe()
        our_read = ours.metrics.summary()["read-stripe/fast"]

        theirs = Ls97Cluster(Ls97Config(n=3, block_size=16))
        theirs.write(0, b"p" * 16)
        theirs.read(0)
        their_read = theirs.metrics.summary()["ls97-read/fast"]

        assert our_read["latency_delta"] == 2
        assert their_read["latency_delta"] == 4
