"""Latency distribution analysis."""

import pytest

from repro.analysis.latency import (
    LatencyStats,
    latency_by_group,
    latency_stats,
    percentile,
)
from repro.errors import ConfigurationError
from repro.sim.monitor import Metrics
from tests.conftest import make_cluster, stripe_of


class TestPercentile:
    def test_single_sample(self):
        assert percentile([5.0], 50) == 5.0
        assert percentile([5.0], 99) == 5.0

    def test_median_of_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 50) == 5.0
        assert percentile([0, 10], 25) == 2.5

    def test_extremes(self):
        samples = list(range(101))
        assert percentile(samples, 0) == 0
        assert percentile(samples, 100) == 100

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50)
        with pytest.raises(ConfigurationError):
            percentile([1], 101)

    def test_order_independent(self):
        import random

        samples = [random.Random(3).uniform(0, 1) for _ in range(50)]
        shuffled = list(samples)
        random.Random(4).shuffle(shuffled)
        assert percentile(samples, 90) == percentile(shuffled, 90)


class TestMetricsIntegration:
    def test_stats_from_cluster_run(self):
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0)
        for tag in range(10):
            register.write_stripe(stripe_of(3, 32, tag))
            register.read_stripe()
        stats = latency_stats(cluster.metrics)
        assert stats is not None
        assert stats.count == 20
        assert stats.p50 <= stats.p90 <= stats.p99 <= stats.max
        assert stats.mean > 0

    def test_kind_filter(self):
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0)
        register.write_stripe(stripe_of(3, 32, 1))
        register.read_stripe()
        reads = latency_stats(cluster.metrics, kind="read-stripe")
        writes = latency_stats(cluster.metrics, kind="write-stripe")
        assert reads.count == 1
        assert writes.count == 1
        # Reads are one round trip, writes two.
        assert reads.mean < writes.mean

    def test_empty_returns_none(self):
        assert latency_stats(Metrics()) is None

    def test_by_group(self):
        cluster = make_cluster(m=3, n=5)
        register = cluster.register(0)
        register.write_stripe(stripe_of(3, 32, 1))
        register.read_block(2)
        groups = latency_by_group(cluster.metrics)
        assert "write-stripe/fast" in groups
        assert "read-block/fast" in groups

    def test_aborted_excluded_by_default(self):
        metrics = Metrics()
        op = metrics.begin_op("write", now=0.0)
        metrics.end_op(op, now=5.0, aborted=True)
        assert latency_stats(metrics) is None
        assert latency_stats(metrics, include_aborted=True).count == 1

    def test_str(self):
        stats = LatencyStats(count=1, mean=1, p50=1, p90=1, p99=1, max=1)
        assert "p99" in str(stats)
