"""Table 1 analytic formulas."""

import pytest

from repro.analysis.costs import ls97_costs, our_costs, table1
from repro.errors import ConfigurationError


class TestOurCosts:
    def test_paper_table_n5_m3(self):
        """Spot-check every cell against Table 1 with n=5, m=3, k=2, B=1."""
        costs = our_costs(5, 3, 1)
        row = costs["stripe-read/F"]
        assert (row.latency_delta, row.messages, row.disk_reads,
                row.disk_writes, row.bandwidth) == (2, 10, 3, 0, 3)
        row = costs["stripe-write"]
        assert (row.latency_delta, row.messages, row.disk_reads,
                row.disk_writes, row.bandwidth) == (4, 20, 0, 5, 5)
        row = costs["stripe-read/S"]
        assert (row.latency_delta, row.messages, row.disk_reads,
                row.disk_writes, row.bandwidth) == (6, 30, 8, 5, 13)
        row = costs["block-read/F"]
        assert (row.latency_delta, row.messages, row.disk_reads,
                row.disk_writes, row.bandwidth) == (2, 10, 1, 0, 1)
        row = costs["block-write/F"]
        assert (row.latency_delta, row.messages, row.disk_reads,
                row.disk_writes, row.bandwidth) == (4, 20, 3, 3, 11)
        row = costs["block-read/S"]
        assert (row.latency_delta, row.messages, row.disk_reads,
                row.disk_writes, row.bandwidth) == (6, 30, 6, 5, 11)
        row = costs["block-write/S"]
        assert (row.latency_delta, row.messages, row.disk_reads,
                row.disk_writes, row.bandwidth) == (8, 40, 8, 8, 21)

    def test_block_size_scales_bandwidth_only(self):
        small = our_costs(5, 3, 1)
        large = our_costs(5, 3, 1024)
        for key in small:
            assert large[key].bandwidth == small[key].bandwidth * 1024
            assert large[key].messages == small[key].messages

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            our_costs(3, 5, 1)


class TestLs97Costs:
    def test_paper_values(self):
        costs = ls97_costs(5, 1)
        read = costs["read"]
        assert (read.latency_delta, read.messages, read.disk_reads,
                read.disk_writes, read.bandwidth) == (4, 20, 5, 5, 10)
        write = costs["write"]
        assert (write.latency_delta, write.messages, write.disk_reads,
                write.disk_writes, write.bandwidth) == (4, 20, 0, 5, 5)


class TestComparisons:
    def test_our_fast_read_beats_ls97(self):
        both = table1(5, 3, 1024)
        assert (
            both["ours"]["stripe-read/F"].latency_delta
            < both["ls97"]["read"].latency_delta
        )
        assert (
            both["ours"]["stripe-read/F"].bandwidth
            < both["ls97"]["read"].bandwidth
        )

    def test_our_slow_read_costs_more(self):
        both = table1(5, 3, 1024)
        assert (
            both["ours"]["stripe-read/S"].latency_delta
            > both["ls97"]["read"].latency_delta
        )

    def test_write_latency_matches_ls97(self):
        both = table1(8, 5, 1024)
        assert (
            both["ours"]["stripe-write"].latency_delta
            == both["ls97"]["write"].latency_delta
        )
