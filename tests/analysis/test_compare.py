"""Analytic-vs-measured comparison harness."""

import pytest

from repro.analysis.compare import ComparisonRow, compare_table1
from repro.analysis.costs import our_costs
from tests.conftest import block_of, make_cluster, stripe_of


class TestComparisonRow:
    def test_deviation(self):
        row = ComparisonRow("op", "messages", analytic=10.0, measured=11.0)
        assert row.deviation == pytest.approx(0.1)

    def test_zero_analytic(self):
        assert ComparisonRow("op", "x", 0.0, 0.0).deviation == 0.0
        assert ComparisonRow("op", "x", 0.0, 1.0).deviation == float("inf")

    def test_str(self):
        assert "messages" in str(ComparisonRow("op", "messages", 1, 1))


class TestMeasuredMatchesAnalytic:
    """The headline Table 1 validation: simulator == formulas on the
    fast paths in a failure-free run."""

    def test_fast_paths_exact(self):
        n, m, B = 5, 3, 64
        cluster = make_cluster(m=m, n=n, block_size=B)
        register = cluster.register(0)
        register.write_stripe(stripe_of(m, B, tag=1))
        register.read_stripe()
        register.read_block(2)
        register.write_block(2, block_of(B, tag=2))
        rows = compare_table1(our_costs(n, m, B), cluster.metrics.summary())
        assert rows, "no comparable rows found"
        for row in rows:
            assert row.deviation == 0.0, str(row)

    def test_multiple_geometries(self):
        for m, n in [(2, 4), (5, 8), (1, 3)]:
            B = 32
            cluster = make_cluster(m=m, n=n, block_size=B)
            register = cluster.register(0)
            register.write_stripe(stripe_of(m, B, tag=1))
            register.read_stripe()
            rows = compare_table1(our_costs(n, m, B), cluster.metrics.summary())
            for row in rows:
                assert row.deviation == 0.0, (m, n, str(row))
