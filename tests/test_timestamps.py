"""Timestamps: ordering, sentinels, and the Section 2.3 properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.timestamps import HIGH_TS, LOW_TS, Timestamp, TimestampSource


class TestTimestampOrdering:
    def test_lexicographic(self):
        assert Timestamp(1, 2) < Timestamp(2, 1)
        assert Timestamp(1, 1) < Timestamp(1, 2)
        assert Timestamp(3, 4) == Timestamp(3, 4)

    def test_sentinels_bracket_everything(self):
        ts = Timestamp(0, 1)
        assert LOW_TS < ts < HIGH_TS
        assert LOW_TS < Timestamp(-10**9, 1)
        assert Timestamp(10**18, 10**6) < HIGH_TS

    def test_sentinel_flags(self):
        assert LOW_TS.is_low and not LOW_TS.is_high
        assert HIGH_TS.is_high and not HIGH_TS.is_low
        assert not Timestamp(1, 1).is_low

    def test_sentinels_compare_to_themselves(self):
        assert not LOW_TS < LOW_TS
        assert LOW_TS <= LOW_TS
        assert LOW_TS < HIGH_TS

    def test_hashable(self):
        assert len({Timestamp(1, 1), Timestamp(1, 1), Timestamp(1, 2)}) == 2

    def test_repr(self):
        assert repr(LOW_TS) == "LowTS"
        assert repr(HIGH_TS) == "HighTS"
        assert repr(Timestamp(3, 2)) == "TS(3,2)"

    def test_comparison_with_non_timestamp(self):
        assert Timestamp(1, 1) != "nope"

    @given(
        st.integers(-100, 100), st.integers(1, 50),
        st.integers(-100, 100), st.integers(1, 50),
    )
    def test_total_order(self, t1, p1, t2, p2):
        a, b = Timestamp(t1, p1), Timestamp(t2, p2)
        assert (a < b) + (b < a) + (a == b) == 1


class TestTimestampSource:
    def test_rejects_nonpositive_pid(self):
        with pytest.raises(ConfigurationError):
            TimestampSource(0)

    def test_uniqueness_across_processes(self):
        a = TimestampSource(1)
        b = TimestampSource(2)
        produced = {a.new_ts() for _ in range(50)} | {b.new_ts() for _ in range(50)}
        assert len(produced) == 100

    def test_monotonicity(self):
        source = TimestampSource(3)
        previous = source.new_ts()
        for _ in range(100):
            current = source.new_ts()
            assert current > previous
            previous = current

    def test_monotonic_despite_stalled_clock(self):
        source = TimestampSource(1, clock=lambda: 5.0)
        first = source.new_ts()
        second = source.new_ts()
        assert second > first

    def test_monotonic_despite_backwards_clock(self):
        readings = iter([100.0, 1.0, 0.5])
        source = TimestampSource(1, clock=lambda: next(readings))
        a = source.new_ts()
        b = source.new_ts()
        c = source.new_ts()
        assert a < b < c

    def test_progress_property(self):
        """A retrying process eventually exceeds any fixed timestamp."""
        fixed = TimestampSource(2, clock=lambda: 1000.0, resolution=1.0).new_ts()
        slow = TimestampSource(1)  # purely logical, starts at 0
        for _ in range(10**4):
            ts = slow.new_ts()
            if ts > fixed:
                break
        else:
            pytest.fail("PROGRESS violated")

    def test_clock_advances_timestamps(self):
        now = [0.0]
        source = TimestampSource(1, clock=lambda: now[0], resolution=10.0)
        first = source.new_ts()
        now[0] = 100.0
        second = source.new_ts()
        assert second.time - first.time >= 900

    def test_skew_shifts_readings(self):
        base = TimestampSource(1, clock=lambda: 10.0, skew=0.0, resolution=1.0)
        ahead = TimestampSource(2, clock=lambda: 10.0, skew=5.0, resolution=1.0)
        assert ahead.new_ts().time > base.new_ts().time

    def test_observe_advances_clock(self):
        source = TimestampSource(1)
        foreign = Timestamp(10**6, 9)
        source.observe(foreign)
        assert source.new_ts() > foreign

    def test_observe_ignores_sentinels(self):
        source = TimestampSource(1)
        source.observe(HIGH_TS)
        ts = source.new_ts()
        assert ts < HIGH_TS
        assert ts.time == 1

    def test_observe_ignores_older(self):
        source = TimestampSource(1)
        latest = None
        for _ in range(5):
            latest = source.new_ts()
        source.observe(Timestamp(1, 2))
        assert source.new_ts() > latest
