"""Trace synthesis and replay."""

import pytest

from repro import LogicalVolume
from repro.errors import ConfigurationError
from repro.workloads.traces import TraceOp, TraceReplayer, synthesize_trace
from tests.conftest import make_cluster


class TestSynthesis:
    def test_length_and_monotonic_times(self):
        trace = synthesize_trace(50, num_blocks=20, seed=1)
        assert len(trace) == 50
        times = [op.time for op in trace]
        assert times == sorted(times)

    def test_blocks_in_range(self):
        trace = synthesize_trace(100, num_blocks=10, seed=2)
        assert all(0 <= op.block < 10 for op in trace)

    def test_read_fraction(self):
        trace = synthesize_trace(500, 10, read_fraction=0.9, seed=3)
        reads = sum(1 for op in trace if op.op == "read")
        assert reads > 400

    def test_write_tags_unique(self):
        trace = synthesize_trace(200, 10, read_fraction=0.0, seed=4)
        tags = [op.tag for op in trace]
        assert len(set(tags)) == len(tags)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            synthesize_trace(-1, 10)
        with pytest.raises(ConfigurationError):
            TraceOp(time=0.0, op="erase", block=0)


class TestReplay:
    def test_replay_statistics(self):
        cluster = make_cluster(m=2, n=4, block_size=16)
        volume = LogicalVolume(cluster, num_stripes=5)
        trace = synthesize_trace(30, volume.num_blocks, seed=5)
        stats = TraceReplayer(volume).replay(trace)
        assert stats.operations == 30
        assert stats.reads + stats.writes == 30
        assert stats.duration > 0
        assert stats.throughput > 0

    def test_sequential_replay_never_aborts(self):
        """No concurrency => no conflicts => zero aborts (the paper's
        trace observation)."""
        cluster = make_cluster(m=2, n=4, block_size=16)
        volume = LogicalVolume(cluster, num_stripes=5)
        trace = synthesize_trace(40, volume.num_blocks, seed=6)
        stats = TraceReplayer(volume).replay(trace)
        assert stats.aborts == 0
        assert stats.abort_rate == 0.0

    def test_replay_data_integrity(self):
        cluster = make_cluster(m=2, n=4, block_size=16)
        volume = LogicalVolume(cluster, num_stripes=5)
        replayer = TraceReplayer(volume)
        trace = [
            TraceOp(time=1.0, op="write", block=3, tag=42),
            TraceOp(time=2.0, op="read", block=3),
        ]
        replayer.replay(trace)
        assert volume.read(3) == replayer._payload(trace[0])

    def test_empty_trace(self):
        cluster = make_cluster(m=2, n=4, block_size=16)
        volume = LogicalVolume(cluster, num_stripes=2)
        stats = TraceReplayer(volume).replay([])
        assert stats.operations == 0
        assert stats.throughput == 0
