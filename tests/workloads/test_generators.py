"""Workload generators."""

import random
from collections import Counter

import pytest

from repro.errors import ConfigurationError
from repro.workloads.generators import (
    ConflictSchedule,
    SequentialPattern,
    UniformPattern,
    WorkloadConfig,
    WorkloadGenerator,
    ZipfPattern,
)


class TestPatterns:
    def test_uniform_in_range(self):
        pattern = UniformPattern()
        rng = random.Random(0)
        assert all(0 <= pattern.next_block(rng, 10) < 10 for _ in range(200))

    def test_uniform_covers_space(self):
        pattern = UniformPattern()
        rng = random.Random(1)
        seen = {pattern.next_block(rng, 8) for _ in range(400)}
        assert seen == set(range(8))

    def test_zipf_is_skewed(self):
        pattern = ZipfPattern(exponent=1.2, seed=0)
        rng = random.Random(2)
        counts = Counter(pattern.next_block(rng, 50) for _ in range(3000))
        top_share = sum(c for _b, c in counts.most_common(5)) / 3000
        assert top_share > 0.35

    def test_zipf_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfPattern(exponent=0)

    def test_sequential_wraps(self):
        pattern = SequentialPattern()
        rng = random.Random(0)
        values = [pattern.next_block(rng, 3) for _ in range(7)]
        assert values == [0, 1, 2, 0, 1, 2, 0]

    def test_sequential_start(self):
        pattern = SequentialPattern(start=5)
        assert pattern.next_block(random.Random(0), 10) == 5


class TestWorkloadGenerator:
    def test_read_fraction_respected(self):
        config = WorkloadConfig(num_blocks=100, read_fraction=0.8, seed=1)
        ops = WorkloadGenerator(config).ops(2000)
        reads = sum(1 for op, _b, _t in ops if op == "read")
        assert 0.75 < reads / 2000 < 0.85

    def test_write_tags_unique(self):
        config = WorkloadConfig(num_blocks=10, read_fraction=0.3, seed=2)
        ops = WorkloadGenerator(config).ops(500)
        tags = [tag for op, _b, tag in ops if op == "write"]
        assert len(tags) == len(set(tags))

    def test_reads_have_no_tag(self):
        config = WorkloadConfig(num_blocks=10, read_fraction=1.0, seed=0)
        ops = WorkloadGenerator(config).ops(20)
        assert all(tag is None for _op, _b, tag in ops)

    def test_deterministic_by_seed(self):
        config = WorkloadConfig(num_blocks=10, seed=7)
        a = WorkloadGenerator(config).ops(50)
        b = WorkloadGenerator(WorkloadConfig(num_blocks=10, seed=7)).ops(50)
        assert a == b

    def test_iterable(self):
        config = WorkloadConfig(num_blocks=10, seed=0)
        generator = iter(WorkloadGenerator(config))
        assert len([next(generator) for _ in range(5)]) == 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(num_blocks=0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(num_blocks=1, read_fraction=1.5)


class TestConflictSchedule:
    def test_full_conflict_targets_shared_register(self):
        schedule = ConflictSchedule(
            num_registers=10, writers=3, conflict_probability=1.0, seed=0
        )
        for round_ops in schedule.rounds(20):
            registers = {register for register, _offset in round_ops}
            assert len(registers) == 1
            assert len(round_ops) == 3

    def test_zero_conflict_targets_distinct_registers(self):
        schedule = ConflictSchedule(
            num_registers=10, writers=3, conflict_probability=0.0, seed=0
        )
        for round_ops in schedule.rounds(20):
            registers = [register for register, _offset in round_ops]
            assert len(set(registers)) == len(registers)

    def test_offsets_within_spread(self):
        schedule = ConflictSchedule(num_registers=5, spread=2.5, seed=1)
        for round_ops in schedule.rounds(10):
            assert all(0 <= offset <= 2.5 for _register, offset in round_ops)


class TestHotspotPattern:
    def test_concentrates_on_hot_region(self):
        from repro.workloads import HotspotPattern

        pattern = HotspotPattern(hot_fraction=0.1, hot_probability=0.9)
        rng = random.Random(0)
        hot_hits = sum(
            1 for _ in range(2000) if pattern.next_block(rng, 100) < 10
        )
        assert 0.85 < hot_hits / 2000 < 0.95

    def test_cold_region_still_reachable(self):
        from repro.workloads import HotspotPattern

        pattern = HotspotPattern(hot_fraction=0.2, hot_probability=0.5)
        rng = random.Random(1)
        seen = {pattern.next_block(rng, 10) for _ in range(500)}
        assert seen == set(range(10))

    def test_degenerate_all_hot(self):
        from repro.workloads import HotspotPattern

        pattern = HotspotPattern(hot_fraction=1.0, hot_probability=0.0)
        rng = random.Random(2)
        assert all(0 <= pattern.next_block(rng, 5) < 5 for _ in range(100))

    def test_validation(self):
        from repro.workloads import HotspotPattern

        with pytest.raises(ConfigurationError):
            HotspotPattern(hot_fraction=0.0)
        with pytest.raises(ConfigurationError):
            HotspotPattern(hot_probability=1.5)
