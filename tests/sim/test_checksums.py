"""Checksummed persistence: CRC envelopes, quarantine, torn tails."""

import pytest

from repro.errors import CorruptionDetected
from repro.sim.node import StableStore


def records_for(count):
    return [("w", i, bytes([i + 1]) * 16) for i in range(count)]


class TestPlainValues:
    def test_clean_roundtrip_verifies(self):
        store = StableStore()
        store.store("k", b"\x01" * 32)
        assert store.verify("k")
        assert store.load("k") == b"\x01" * 32
        assert store.checksum_failures == 0

    def test_corrupt_is_detected_and_quarantined(self):
        store = StableStore()
        store.store("k", b"\x01" * 32)
        assert store.corrupt("k", seed=7)
        assert not store.verify("k")
        with pytest.raises(CorruptionDetected):
            store.load("k")
        assert "k" in store.quarantined
        assert store.checksum_failures == 1

    def test_verify_is_side_effect_free(self):
        store = StableStore()
        store.store("k", b"\x01" * 32)
        store.corrupt("k", seed=7)
        assert not store.verify("k")
        # verify() never quarantines or counts — only load does.
        assert "k" not in store.quarantined
        assert store.checksum_failures == 0

    def test_overwrite_repairs_a_quarantined_cell(self):
        store = StableStore()
        store.store("k", b"\x01" * 32)
        store.corrupt("k", seed=7)
        with pytest.raises(CorruptionDetected):
            store.load("k")
        store.store("k", b"\x02" * 32)
        assert "k" not in store.quarantined
        assert store.verify("k")
        assert store.load("k") == b"\x02" * 32

    def test_corrupt_absent_key_is_noop(self):
        store = StableStore()
        assert not store.corrupt("missing")

    def test_deterministic_by_seed(self):
        def flipped(seed):
            store = StableStore(verify_checksums=False)
            store.store("k", b"\x01" * 32)
            store.corrupt("k", seed=seed)
            return store.load("k")

        assert flipped(3) == flipped(3)
        assert flipped(3) != flipped(4)


class TestJournals:
    def test_corrupt_journal_record_detected(self):
        store = StableStore()
        for record in records_for(4):
            store.append("j", record)
        assert store.corrupt("j", seed=1)
        assert not store.verify("j")
        with pytest.raises(CorruptionDetected):
            store.load_journal("j")
        assert "j" in store.quarantined
        assert store.checksum_failures == 1

    def test_reset_journal_repairs(self):
        store = StableStore()
        for record in records_for(4):
            store.append("j", record)
        store.corrupt("j", seed=1)
        store.reset_journal("j", records_for(2))
        assert "j" not in store.quarantined
        assert store.load_journal("j") == records_for(2)

    def test_torn_tail_is_dropped_not_corruption(self):
        store = StableStore()
        for record in records_for(3):
            store.append("j", record)
        assert store.tear_journal("j")
        # A torn tail is a framing failure, not rot: verify stays
        # clean and the read self-truncates without raising.
        assert store.verify("j")
        assert store.load_journal("j") == records_for(3)
        assert store.torn_dropped == 1
        assert store.checksum_failures == 0

    def test_append_overwrites_torn_tail(self):
        store = StableStore()
        for record in records_for(2):
            store.append("j", record)
        store.tear_journal("j")
        store.append("j", ("w", 9, b"\xaa" * 16))
        assert store.journal_len("j") == 3
        assert store.load_journal("j")[-1] == ("w", 9, b"\xaa" * 16)
        assert store.torn_dropped == 0  # never hit a read

    def test_tear_twice_is_noop(self):
        store = StableStore()
        store.append("j", records_for(1)[0])
        assert store.tear_journal("j")
        assert not store.tear_journal("j")


class TestEscapeHatch:
    def test_disabled_verification_serves_garbage_silently(self):
        store = StableStore(verify_checksums=False)
        store.store("k", b"\x01" * 32)
        store.corrupt("k", seed=7)
        value = store.load("k")  # no raise: this is the danger mode
        assert value != b"\x01" * 32
        assert "k" not in store.quarantined
        assert store.checksum_failures == 0

    def test_disabled_verification_still_drops_torn_tails(self):
        # Torn tails are caught by framing, not checksums: truncation
        # must survive the escape hatch.
        store = StableStore(verify_checksums=False)
        for record in records_for(3):
            store.append("j", record)
        store.tear_journal("j")
        assert store.load_journal("j") == records_for(3)
        assert store.torn_dropped == 1
