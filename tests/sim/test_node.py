"""Crash-recovery nodes and stable storage."""

import pytest

from repro.errors import StorageError
from repro.sim.kernel import Environment, Interrupt
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Node, StableStore


def make_node(pid=1):
    env = Environment()
    network = Network(env, NetworkConfig())
    return env, network, Node(env, network, pid)


class TestStableStore:
    def test_roundtrip(self):
        store = StableStore()
        store.store("k", [1, 2, 3])
        assert store.load("k") == [1, 2, 3]

    def test_default(self):
        assert StableStore().load("missing", "fallback") == "fallback"

    def test_deep_copy_on_store(self):
        store = StableStore()
        value = {"nested": [1]}
        store.store("k", value)
        value["nested"].append(2)
        assert store.load("k") == {"nested": [1]}

    def test_deep_copy_on_load(self):
        store = StableStore()
        store.store("k", [1])
        loaded = store.load("k")
        loaded.append(2)
        assert store.load("k") == [1]

    def test_contains_and_keys(self):
        store = StableStore()
        store.store("a", 1)
        assert "a" in store
        assert "b" not in store
        assert store.keys() == ["a"]

    def test_size_bytes_grows(self):
        store = StableStore()
        store.store("a", b"x" * 10)
        small = store.size_bytes()
        store.store("b", b"y" * 1000)
        assert store.size_bytes() > small

    def test_size_bytes_tracks_overwrites(self):
        store = StableStore()
        store.store("a", b"x" * 1000)
        big = store.size_bytes()
        store.store("a", b"x" * 10)
        assert store.size_bytes() < big

    def test_unknown_mode_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            StableStore(mode="magnetic-tape")


@pytest.mark.parametrize("mode", ["cow", "deepcopy"])
class TestStableStoreAliasing:
    """Stored values must be detached from live memory in both modes."""

    def test_mutating_after_store_does_not_change_disk(self, mode):
        store = StableStore(mode=mode)
        block = bytearray(b"v1" * 16)
        state = [(1, block), (2, None)]
        store.store("log:0", state)
        block[:2] = b"XX"
        state.append((3, b"late"))
        assert store.load("log:0") == [(1, bytearray(b"v1" * 16)), (2, None)]

    def test_mutating_after_load_does_not_change_disk(self, mode):
        store = StableStore(mode=mode)
        store.store("log:0", [(1, bytearray(b"abc"))])
        loaded = store.load("log:0")
        loaded[0][1][0:1] = b"Z"
        loaded.append((9, b"junk"))
        assert store.load("log:0") == [(1, bytearray(b"abc"))]

    def test_post_crash_recovery_observes_stored_snapshot(self, mode):
        """The satellite regression: mutation after store()/load() must
        not change what a post-crash recover() observes."""
        env = Environment()
        network = Network(env, NetworkConfig())
        node = Node(env, network, 1, store_mode=mode)
        block = bytearray(b"durable!")
        node.stable.store("log:7", [(5, block)])
        leaked = node.stable.load("log:7")
        block[:] = b"mutated!"          # after store()
        leaked[0][1][:] = b"mutated!"   # after load()
        node.crash()
        node.recover()
        assert node.stable.load("log:7") == [(5, bytearray(b"durable!"))]

    def test_journal_records_are_detached(self, mode):
        store = StableStore(mode=mode)
        record = ["a", 1, bytearray(b"block")]
        store.append("logj:0", record)
        record[2][:] = b"XXXXX"
        record.append("extra")
        replayed = store.load_journal("logj:0")
        assert replayed == [["a", 1, bytearray(b"block")]]
        replayed[0][2][:] = b"YYYYY"
        assert store.load_journal("logj:0") == [["a", 1, bytearray(b"block")]]


class TestStableStoreCounters:
    def test_counters_count(self):
        store = StableStore()
        store.store("a", b"x")
        store.load("a")
        store.load("a")
        assert store.store_count == 1
        assert store.load_count == 2

    def test_cow_shares_immutable_payloads(self):
        """bytes blocks and atom tuples are snapshotted without copying."""
        store = StableStore(mode="cow")
        store.store("block", b"x" * 4096)
        store.store("state", [(1, b"y" * 4096), (2, None)])
        store.load("block")
        store.load("state")
        assert store.bytes_copied == 0

    def test_deepcopy_pays_per_access(self):
        store = StableStore(mode="deepcopy")
        store.store("block", [b"x" * 4096])
        first = store.bytes_copied
        assert first >= 4096
        store.load("block")
        assert store.bytes_copied >= 2 * 4096

    def test_journal_append_is_incremental(self):
        """Appending to a journal accounts only the new record's size."""
        store = StableStore(mode="cow")
        store.append("logj:0", ("a", 1, b"x" * 1024))
        one = store.size_bytes()
        store.append("logj:0", ("a", 2, b"x" * 1024))
        two = store.size_bytes()
        assert one < two <= 2 * one + 64
        store.reset_journal("logj:0", [("s", (1, b"x" * 1024))])
        assert store.size_bytes() < two
        assert store.journal_len("logj:0") == 1


class TestNodeLifecycle:
    def test_starts_up(self):
        _env, _network, node = make_node()
        assert node.is_up
        assert node.crash_count == 0

    def test_crash_and_recover(self):
        _env, network, node = make_node()
        node.crash()
        assert not node.is_up
        assert node.crash_count == 1
        node.recover()
        assert node.is_up

    def test_crash_idempotent(self):
        _env, _network, node = make_node()
        node.crash()
        node.crash()
        assert node.crash_count == 1

    def test_recover_when_up_is_noop(self):
        _env, _network, node = make_node()
        node.recover()
        assert node.crash_count == 0

    def test_stable_storage_survives_crash(self):
        _env, _network, node = make_node()
        node.stable.store("data", b"persisted")
        node.crash()
        node.recover()
        assert node.stable.load("data") == b"persisted"

    def test_recovery_hooks_run(self):
        _env, _network, node = make_node()
        calls = []
        node.on_recovery(lambda: calls.append("hook"))
        node.crash()
        assert calls == []
        node.recover()
        assert calls == ["hook"]


class TestNodeMessaging:
    def test_handler_dispatch_by_type(self):
        env, network, node = make_node(pid=1)
        other = Node(env, network, 2)
        seen = []
        other.register_handler(str, lambda src, payload: seen.append((src, payload)))
        other.register_handler(int, lambda src, payload: seen.append("int"))
        node.send(2, "text")
        env.run()
        assert seen == [(1, "text")]

    def test_down_node_ignores_messages(self):
        env, network, node = make_node(pid=1)
        other = Node(env, network, 2)
        seen = []
        other.register_handler(str, lambda src, payload: seen.append(payload))
        other.crash()
        node.send(2, "lost")
        env.run()
        assert seen == []

    def test_down_node_cannot_send(self):
        env, network, node = make_node(pid=1)
        other = Node(env, network, 2)
        seen = []
        other.register_handler(str, lambda src, payload: seen.append(payload))
        node.crash()
        node.send(2, "x")
        env.run()
        assert seen == []

    def test_unhandled_type_ignored(self):
        env, network, node = make_node(pid=1)
        other = Node(env, network, 2)
        node.send(2, 3.14)  # no float handler registered
        env.run()  # must not raise


class TestProcessOwnership:
    def test_spawn_runs(self):
        env, _network, node = make_node()

        def task():
            yield env.timeout(1)
            return "done"

        process = node.spawn(task())
        assert env.run_until_complete(process) == "done"

    def test_crash_interrupts_owned_processes(self):
        env, _network, node = make_node()
        outcomes = []

        def task():
            try:
                yield env.timeout(100)
                outcomes.append("finished")
            except Interrupt as interrupt:
                outcomes.append(f"killed:{interrupt.cause}")

        node.spawn(task())
        env.run(until=2)
        node.crash()
        env.run()
        assert outcomes == ["killed:crash"]

    def test_crash_spares_finished_processes(self):
        env, _network, node = make_node()

        def quick():
            yield env.timeout(1)
            return "ok"

        process = node.spawn(quick())
        env.run()
        node.crash()
        assert process.value == "ok"

    def test_spawn_on_down_node_rejected(self):
        env, _network, node = make_node()
        node.crash()

        def task():
            yield env.timeout(1)

        with pytest.raises(StorageError):
            node.spawn(task())

    def test_owned_processes_stay_bounded(self):
        """The satellite regression: a 10k-op run must not accumulate
        finished processes — each is reaped on completion, so the list
        stays bounded by genuine concurrency, not run length."""
        env, _network, node = make_node()

        def task():
            yield env.timeout(1)

        for _batch in range(100):
            for _ in range(100):
                node.spawn(task())
            assert len(node._owned_processes) == 100  # only this batch
            env.run()
            assert node._owned_processes == []  # reaped on completion

    def test_recovery_does_not_revive_processes(self):
        env, _network, node = make_node()
        outcomes = []

        def task():
            yield env.timeout(100)
            outcomes.append("finished")

        node.spawn(task())
        env.run(until=1)
        node.crash()
        node.recover()
        env.run()
        assert outcomes == []
