"""Crash-recovery nodes and stable storage."""

import pytest

from repro.errors import StorageError
from repro.sim.kernel import Environment, Interrupt
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Node, StableStore


def make_node(pid=1):
    env = Environment()
    network = Network(env, NetworkConfig())
    return env, network, Node(env, network, pid)


class TestStableStore:
    def test_roundtrip(self):
        store = StableStore()
        store.store("k", [1, 2, 3])
        assert store.load("k") == [1, 2, 3]

    def test_default(self):
        assert StableStore().load("missing", "fallback") == "fallback"

    def test_deep_copy_on_store(self):
        store = StableStore()
        value = {"nested": [1]}
        store.store("k", value)
        value["nested"].append(2)
        assert store.load("k") == {"nested": [1]}

    def test_deep_copy_on_load(self):
        store = StableStore()
        store.store("k", [1])
        loaded = store.load("k")
        loaded.append(2)
        assert store.load("k") == [1]

    def test_contains_and_keys(self):
        store = StableStore()
        store.store("a", 1)
        assert "a" in store
        assert "b" not in store
        assert store.keys() == ["a"]

    def test_size_bytes_grows(self):
        store = StableStore()
        store.store("a", b"x" * 10)
        small = store.size_bytes()
        store.store("b", b"y" * 1000)
        assert store.size_bytes() > small


class TestNodeLifecycle:
    def test_starts_up(self):
        _env, _network, node = make_node()
        assert node.is_up
        assert node.crash_count == 0

    def test_crash_and_recover(self):
        _env, network, node = make_node()
        node.crash()
        assert not node.is_up
        assert node.crash_count == 1
        node.recover()
        assert node.is_up

    def test_crash_idempotent(self):
        _env, _network, node = make_node()
        node.crash()
        node.crash()
        assert node.crash_count == 1

    def test_recover_when_up_is_noop(self):
        _env, _network, node = make_node()
        node.recover()
        assert node.crash_count == 0

    def test_stable_storage_survives_crash(self):
        _env, _network, node = make_node()
        node.stable.store("data", b"persisted")
        node.crash()
        node.recover()
        assert node.stable.load("data") == b"persisted"

    def test_recovery_hooks_run(self):
        _env, _network, node = make_node()
        calls = []
        node.on_recovery(lambda: calls.append("hook"))
        node.crash()
        assert calls == []
        node.recover()
        assert calls == ["hook"]


class TestNodeMessaging:
    def test_handler_dispatch_by_type(self):
        env, network, node = make_node(pid=1)
        other = Node(env, network, 2)
        seen = []
        other.register_handler(str, lambda src, payload: seen.append((src, payload)))
        other.register_handler(int, lambda src, payload: seen.append("int"))
        node.send(2, "text")
        env.run()
        assert seen == [(1, "text")]

    def test_down_node_ignores_messages(self):
        env, network, node = make_node(pid=1)
        other = Node(env, network, 2)
        seen = []
        other.register_handler(str, lambda src, payload: seen.append(payload))
        other.crash()
        node.send(2, "lost")
        env.run()
        assert seen == []

    def test_down_node_cannot_send(self):
        env, network, node = make_node(pid=1)
        other = Node(env, network, 2)
        seen = []
        other.register_handler(str, lambda src, payload: seen.append(payload))
        node.crash()
        node.send(2, "x")
        env.run()
        assert seen == []

    def test_unhandled_type_ignored(self):
        env, network, node = make_node(pid=1)
        other = Node(env, network, 2)
        node.send(2, 3.14)  # no float handler registered
        env.run()  # must not raise


class TestProcessOwnership:
    def test_spawn_runs(self):
        env, _network, node = make_node()

        def task():
            yield env.timeout(1)
            return "done"

        process = node.spawn(task())
        assert env.run_until_complete(process) == "done"

    def test_crash_interrupts_owned_processes(self):
        env, _network, node = make_node()
        outcomes = []

        def task():
            try:
                yield env.timeout(100)
                outcomes.append("finished")
            except Interrupt as interrupt:
                outcomes.append(f"killed:{interrupt.cause}")

        node.spawn(task())
        env.run(until=2)
        node.crash()
        env.run()
        assert outcomes == ["killed:crash"]

    def test_crash_spares_finished_processes(self):
        env, _network, node = make_node()

        def quick():
            yield env.timeout(1)
            return "ok"

        process = node.spawn(quick())
        env.run()
        node.crash()
        assert process.value == "ok"

    def test_spawn_on_down_node_rejected(self):
        env, _network, node = make_node()
        node.crash()

        def task():
            yield env.timeout(1)

        with pytest.raises(StorageError):
            node.spawn(task())

    def test_recovery_does_not_revive_processes(self):
        env, _network, node = make_node()
        outcomes = []

        def task():
            yield env.timeout(100)
            outcomes.append("finished")

        node.spawn(task())
        env.run(until=1)
        node.crash()
        node.recover()
        env.run()
        assert outcomes == []
