"""Message tracer."""

import pytest

from repro.sim.trace import MessageTracer
from tests.conftest import make_cluster, stripe_of


@pytest.fixture
def traced_cluster():
    cluster = make_cluster(m=2, n=4, block_size=16)
    tracer = MessageTracer(cluster.network)
    return cluster, tracer


class TestTracing:
    def test_records_protocol_messages(self, traced_cluster):
        cluster, tracer = traced_cluster
        cluster.register(0).write_stripe(stripe_of(2, 16, tag=1))
        assert tracer.count("OrderReq") == 4
        assert tracer.count("WriteReq") == 4
        assert tracer.count("OrderReply") == 4
        assert tracer.count("WriteReply") == 4

    def test_entries_carry_context(self, traced_cluster):
        cluster, tracer = traced_cluster
        cluster.register(7).write_stripe(stripe_of(2, 16, tag=1))
        entry = tracer.filter(payload_type="WriteReq")[0]
        assert entry.register_id == 7
        assert entry.src == 1
        assert entry.size == 16

    def test_filter_by_register(self, traced_cluster):
        cluster, tracer = traced_cluster
        cluster.register(0).write_stripe(stripe_of(2, 16, tag=1))
        cluster.register(1).write_stripe(stripe_of(2, 16, tag=2))
        only_zero = tracer.filter(register_id=0)
        assert only_zero
        assert all(entry.register_id == 0 for entry in only_zero)

    def test_filter_by_endpoint(self, traced_cluster):
        cluster, tracer = traced_cluster
        cluster.register(0).write_stripe(stripe_of(2, 16, tag=1))
        touching_3 = tracer.filter(endpoint=3)
        assert touching_3
        assert all(3 in (e.src, e.dst) for e in touching_3)

    def test_custom_predicate(self, traced_cluster):
        cluster, tracer = traced_cluster
        cluster.register(0).write_stripe(stripe_of(2, 16, tag=1))
        big = tracer.filter(predicate=lambda entry: entry.size > 0)
        assert all(entry.size > 0 for entry in big)

    def test_format(self, traced_cluster):
        cluster, tracer = traced_cluster
        cluster.register(0).write_stripe(stripe_of(2, 16, tag=1))
        chart = tracer.format(limit=5)
        assert "->" in chart
        assert "Req" in chart or "Reply" in chart

    def test_format_empty(self, traced_cluster):
        _cluster, tracer = traced_cluster
        assert tracer.format() == "(no traced messages)"

    def test_clear(self, traced_cluster):
        cluster, tracer = traced_cluster
        cluster.register(0).write_stripe(stripe_of(2, 16, tag=1))
        tracer.clear()
        assert len(tracer.entries) == 0

    def test_ring_buffer_bounded(self):
        cluster = make_cluster(m=2, n=4, block_size=16)
        tracer = MessageTracer(cluster.network, capacity=10)
        cluster.register(0).write_stripe(stripe_of(2, 16, tag=1))
        assert len(tracer.entries) == 10  # 16 sends, capped at 10

    def test_uninstall(self, traced_cluster):
        cluster, tracer = traced_cluster
        tracer.uninstall()
        cluster.register(0).write_stripe(stripe_of(2, 16, tag=1))
        assert len(tracer.entries) == 0

    def test_does_not_perturb_metrics(self):
        plain = make_cluster(m=2, n=4, block_size=16, seed=3)
        plain.register(0).write_stripe(stripe_of(2, 16, tag=1))
        traced = make_cluster(m=2, n=4, block_size=16, seed=3)
        MessageTracer(traced.network)
        traced.register(0).write_stripe(stripe_of(2, 16, tag=1))
        assert (
            plain.metrics.total_messages == traced.metrics.total_messages
        )
        assert plain.env.now == traced.env.now
