"""Failure injectors."""

import pytest

from repro.sim.failures import (
    FailureEvent,
    MessageCountTrigger,
    RandomFailures,
    ScheduledFailures,
)
from repro.sim.kernel import Environment
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Node


def make_nodes(count=3):
    env = Environment()
    network = Network(env, NetworkConfig())
    nodes = {pid: Node(env, network, pid) for pid in range(1, count + 1)}
    return env, network, nodes


class TestFailureEvent:
    def test_validates_action(self):
        with pytest.raises(ValueError):
            FailureEvent(time=1.0, process_id=1, action="explode")


class TestScheduledFailures:
    def test_crash_and_recover_on_schedule(self):
        env, _network, nodes = make_nodes()
        ScheduledFailures(
            env,
            nodes,
            [
                FailureEvent(time=5.0, process_id=1, action="crash"),
                FailureEvent(time=10.0, process_id=1, action="recover"),
            ],
        )
        env.run(until=6)
        assert not nodes[1].is_up
        env.run(until=11)
        assert nodes[1].is_up

    def test_events_applied_in_time_order(self):
        env, _network, nodes = make_nodes()
        injector = ScheduledFailures(
            env,
            nodes,
            [
                FailureEvent(time=10.0, process_id=2, action="crash"),
                FailureEvent(time=5.0, process_id=1, action="crash"),
            ],
        )
        env.run()
        assert [e.process_id for e in injector.applied] == [1, 2]

    def test_unknown_node_ignored(self):
        env, _network, nodes = make_nodes()
        ScheduledFailures(
            env, nodes, [FailureEvent(time=1.0, process_id=99, action="crash")]
        )
        env.run()  # must not raise

    def test_same_timestamp_events_keep_list_order(self):
        """Simultaneous events apply in the order they were listed.

        The sort on time is stable and the kernel breaks ties FIFO, so
        crash-then-recover at the same instant leaves the node up, and
        listing them the other way leaves it down.
        """
        env, _network, nodes = make_nodes()
        injector = ScheduledFailures(
            env,
            nodes,
            [
                FailureEvent(time=5.0, process_id=1, action="crash"),
                FailureEvent(time=5.0, process_id=1, action="recover"),
                FailureEvent(time=5.0, process_id=2, action="crash"),
            ],
        )
        env.run()
        assert nodes[1].is_up  # crash then recover
        assert not nodes[2].is_up
        assert [(e.process_id, e.action) for e in injector.applied] == [
            (1, "crash"), (1, "recover"), (2, "crash"),
        ]

        env2, _network2, nodes2 = make_nodes()
        ScheduledFailures(
            env2,
            nodes2,
            [
                FailureEvent(time=5.0, process_id=1, action="recover"),
                FailureEvent(time=5.0, process_id=1, action="crash"),
            ],
        )
        nodes2[1].crash()
        env2.run()
        assert not nodes2[1].is_up  # recover then crash


class TestRandomFailures:
    def test_respects_max_down(self):
        env, _network, nodes = make_nodes(count=5)
        injector = RandomFailures(
            env,
            nodes,
            max_down=2,
            crash_probability=1.0,
            recovery_probability=0.0,
            check_interval=1.0,
            horizon=50.0,
            seed=1,
        )
        max_seen = 0
        for _ in range(40):
            env.run(until=env.now + 1.0)
            down = sum(1 for node in nodes.values() if not node.is_up)
            max_seen = max(max_seen, down)
        assert max_seen <= 2
        assert injector.crashes_injected >= 2

    def test_recoveries_happen(self):
        env, _network, nodes = make_nodes(count=3)
        injector = RandomFailures(
            env,
            nodes,
            max_down=1,
            crash_probability=0.5,
            recovery_probability=1.0,
            check_interval=1.0,
            horizon=100.0,
            seed=2,
        )
        env.run(until=100)
        assert injector.recoveries_injected > 0
        assert injector.crashes_injected >= injector.recoveries_injected

    def test_horizon_stops_injection(self):
        env, _network, nodes = make_nodes()
        injector = RandomFailures(
            env, nodes, max_down=3, crash_probability=1.0,
            check_interval=1.0, horizon=5.0, seed=3,
        )
        env.run(until=50)
        before = injector.crashes_injected
        env.run(until=200)
        # Recoveries are off by default prob 0.5; crashes capped by horizon.
        assert injector.crashes_injected == before

    def test_horizon_drains_downed_nodes(self):
        """Regression: nodes must not stay down forever past the horizon."""
        env, _network, nodes = make_nodes(count=5)
        injector = RandomFailures(
            env, nodes, max_down=3, crash_probability=1.0,
            recovery_probability=0.0,  # nothing recovers on its own
            check_interval=1.0, horizon=10.0, seed=4,
        )
        env.run(until=9)
        assert any(not node.is_up for node in nodes.values())
        env.run(until=20)  # horizon passed: injector stopped and drained
        assert injector.stopped
        assert all(node.is_up for node in nodes.values())

    def test_stop_recovers_only_own_crashes(self):
        env, _network, nodes = make_nodes(count=4)
        injector = RandomFailures(
            env, nodes, max_down=2, crash_probability=1.0,
            recovery_probability=0.0, check_interval=1.0, seed=5,
        )
        env.run(until=5)
        injected = [pid for pid, node in nodes.items() if not node.is_up]
        assert injected
        # A crash from another actor (e.g. a scripted scenario).
        other = next(pid for pid, node in nodes.items() if node.is_up)
        nodes[other].crash()
        injector.stop()
        assert all(nodes[pid].is_up for pid in injected)
        assert not nodes[other].is_up  # not ours: left alone
        injector.stop()  # idempotent
        before = injector.crashes_injected
        env.run(until=50)
        assert injector.crashes_injected == before  # stopped means stopped

    def test_max_down_rechecked_per_crash_within_sweep(self):
        """One sweep over many up nodes must never overshoot max_down."""
        env, _network, nodes = make_nodes(count=10)
        RandomFailures(
            env, nodes, max_down=1, crash_probability=1.0,
            recovery_probability=0.0, check_interval=1.0,
            horizon=100.0, seed=6,
        )
        for _ in range(20):
            env.run(until=env.now + 1.0)
            down = sum(1 for node in nodes.values() if not node.is_up)
            assert down <= 1


class TestMessageCountTrigger:
    def test_crashes_after_nth_message(self):
        env, network, nodes = make_nodes()
        received = []
        nodes[2].register_handler(str, lambda src, payload: received.append(payload))
        trigger = MessageCountTrigger(network, nodes[1], count=2)
        nodes[1].send(2, "one")
        nodes[1].send(2, "two")  # delivered, then node 1 crashes
        nodes[1].send(2, "three")  # node 1 is down: lost
        env.run()
        assert trigger.fired
        assert not nodes[1].is_up
        assert received == ["one", "two"]

    def test_filters_by_payload_type(self):
        env, network, nodes = make_nodes()
        trigger = MessageCountTrigger(network, nodes[1], count=1, payload_type=int)
        nodes[1].send(2, "string messages do not count")
        assert not trigger.fired
        nodes[1].send(2, 42)
        assert trigger.fired

    def test_only_counts_its_node(self):
        env, network, nodes = make_nodes()
        trigger = MessageCountTrigger(network, nodes[1], count=1)
        nodes[2].send(3, "other sender")
        assert not trigger.fired

    def test_uninstall(self):
        env, network, nodes = make_nodes()
        original_send = network.send
        trigger = MessageCountTrigger(network, nodes[1], count=99)
        trigger.uninstall()
        nodes[1].send(2, "x")
        assert not trigger.fired
        # No triggers left: the unwrapped send path is restored.
        assert network.send == original_send

    def test_out_of_order_uninstall(self):
        """Regression: removing an older trigger must not revive or drop
        any other trigger (the seed's chained wrappers did both)."""
        env, network, nodes = make_nodes()
        first = MessageCountTrigger(network, nodes[1], count=2)
        second = MessageCountTrigger(network, nodes[2], count=1)
        first.uninstall()  # out of order: second installed after first
        nodes[1].send(3, "a")
        nodes[1].send(3, "b")
        assert not first.fired  # uninstalled: stays dormant
        assert nodes[1].is_up
        nodes[2].send(3, "c")
        assert second.fired  # still armed despite first's uninstall
        assert not nodes[2].is_up

    def test_fired_trigger_stops_wrapping_send(self):
        env, network, nodes = make_nodes()
        original_send = network.send
        trigger = MessageCountTrigger(network, nodes[1], count=1)
        assert network.send != original_send
        nodes[1].send(2, "boom")
        assert trigger.fired
        assert not trigger.installed
        # The last trigger fired: no wrapper cost on subsequent sends.
        assert network.send == original_send

    def test_stacked_triggers_and_interleaved_uninstall(self):
        env, network, nodes = make_nodes(count=4)
        original_send = network.send
        t1 = MessageCountTrigger(network, nodes[1], count=5)
        t2 = MessageCountTrigger(network, nodes[2], count=1)
        t3 = MessageCountTrigger(network, nodes[3], count=1)
        t2.uninstall()
        nodes[2].send(4, "x")
        assert not t2.fired and nodes[2].is_up
        nodes[3].send(4, "y")
        assert t3.fired and not nodes[3].is_up
        t1.uninstall()
        assert network.send == original_send

    def test_payload_type_filter_under_retransmissions(self):
        """Count only WriteReq sends while Order retransmits interleave."""
        from repro.core.messages import OrderReq, WriteReq

        from tests.conftest import make_cluster, stripe_of

        # Heavy drops force the quorum layer to retransmit Order and
        # Write requests; the trigger must count only WriteReq sends
        # (retransmissions included) from the coordinator brick.
        cluster = make_cluster(m=2, n=4, seed=3, drop=0.3)
        register = cluster.register(0)
        register.write_stripe(stripe_of(2, 32, tag=1))

        trigger = MessageCountTrigger(
            cluster.network, cluster.nodes[1], count=3, payload_type=WriteReq
        )
        order_sends = []
        cluster.network.add_send_observer(
            lambda msg: order_sends.append(msg)
            if msg.src == 1 and isinstance(msg.payload, OrderReq)
            else None
        )
        coordinator = cluster.coordinators[1]
        cluster.nodes[1].spawn(
            coordinator.write_stripe(0, stripe_of(2, 32, tag=2))
        )
        cluster.env.run()
        assert trigger.fired
        assert trigger._seen == 3
        assert not cluster.nodes[1].is_up
        # Order traffic happened too and did not advance the count.
        assert order_sends
