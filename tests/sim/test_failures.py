"""Failure injectors."""

import pytest

from repro.sim.failures import (
    FailureEvent,
    MessageCountTrigger,
    RandomFailures,
    ScheduledFailures,
)
from repro.sim.kernel import Environment
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Node


def make_nodes(count=3):
    env = Environment()
    network = Network(env, NetworkConfig())
    nodes = {pid: Node(env, network, pid) for pid in range(1, count + 1)}
    return env, network, nodes


class TestFailureEvent:
    def test_validates_action(self):
        with pytest.raises(ValueError):
            FailureEvent(time=1.0, process_id=1, action="explode")


class TestScheduledFailures:
    def test_crash_and_recover_on_schedule(self):
        env, _network, nodes = make_nodes()
        ScheduledFailures(
            env,
            nodes,
            [
                FailureEvent(time=5.0, process_id=1, action="crash"),
                FailureEvent(time=10.0, process_id=1, action="recover"),
            ],
        )
        env.run(until=6)
        assert not nodes[1].is_up
        env.run(until=11)
        assert nodes[1].is_up

    def test_events_applied_in_time_order(self):
        env, _network, nodes = make_nodes()
        injector = ScheduledFailures(
            env,
            nodes,
            [
                FailureEvent(time=10.0, process_id=2, action="crash"),
                FailureEvent(time=5.0, process_id=1, action="crash"),
            ],
        )
        env.run()
        assert [e.process_id for e in injector.applied] == [1, 2]

    def test_unknown_node_ignored(self):
        env, _network, nodes = make_nodes()
        ScheduledFailures(
            env, nodes, [FailureEvent(time=1.0, process_id=99, action="crash")]
        )
        env.run()  # must not raise


class TestRandomFailures:
    def test_respects_max_down(self):
        env, _network, nodes = make_nodes(count=5)
        injector = RandomFailures(
            env,
            nodes,
            max_down=2,
            crash_probability=1.0,
            recovery_probability=0.0,
            check_interval=1.0,
            horizon=50.0,
            seed=1,
        )
        max_seen = 0
        for _ in range(40):
            env.run(until=env.now + 1.0)
            down = sum(1 for node in nodes.values() if not node.is_up)
            max_seen = max(max_seen, down)
        assert max_seen <= 2
        assert injector.crashes_injected >= 2

    def test_recoveries_happen(self):
        env, _network, nodes = make_nodes(count=3)
        injector = RandomFailures(
            env,
            nodes,
            max_down=1,
            crash_probability=0.5,
            recovery_probability=1.0,
            check_interval=1.0,
            horizon=100.0,
            seed=2,
        )
        env.run(until=100)
        assert injector.recoveries_injected > 0
        assert injector.crashes_injected >= injector.recoveries_injected

    def test_horizon_stops_injection(self):
        env, _network, nodes = make_nodes()
        injector = RandomFailures(
            env, nodes, max_down=3, crash_probability=1.0,
            check_interval=1.0, horizon=5.0, seed=3,
        )
        env.run(until=50)
        before = injector.crashes_injected
        env.run(until=200)
        # Recoveries are off by default prob 0.5; crashes capped by horizon.
        assert injector.crashes_injected == before


class TestMessageCountTrigger:
    def test_crashes_after_nth_message(self):
        env, network, nodes = make_nodes()
        received = []
        nodes[2].register_handler(str, lambda src, payload: received.append(payload))
        trigger = MessageCountTrigger(network, nodes[1], count=2)
        nodes[1].send(2, "one")
        nodes[1].send(2, "two")  # delivered, then node 1 crashes
        nodes[1].send(2, "three")  # node 1 is down: lost
        env.run()
        assert trigger.fired
        assert not nodes[1].is_up
        assert received == ["one", "two"]

    def test_filters_by_payload_type(self):
        env, network, nodes = make_nodes()
        trigger = MessageCountTrigger(network, nodes[1], count=1, payload_type=int)
        nodes[1].send(2, "string messages do not count")
        assert not trigger.fired
        nodes[1].send(2, 42)
        assert trigger.fired

    def test_only_counts_its_node(self):
        env, network, nodes = make_nodes()
        trigger = MessageCountTrigger(network, nodes[1], count=1)
        nodes[2].send(3, "other sender")
        assert not trigger.fired

    def test_uninstall(self):
        env, network, nodes = make_nodes()
        trigger = MessageCountTrigger(network, nodes[1], count=99)
        trigger.uninstall()
        nodes[1].send(2, "x")
        assert not trigger.fired
