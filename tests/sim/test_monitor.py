"""Metric counters."""

from repro.sim.monitor import Metrics, OpMetrics


class TestOpMetrics:
    def test_latency(self):
        op = OpMetrics(kind="read", started_at=5.0)
        assert op.latency is None
        op.finished_at = 9.0
        assert op.latency == 4.0

    def test_latency_in_delta(self):
        op = OpMetrics(kind="read")
        op.round_trips = 3
        assert op.latency_in_delta == 6


class TestMetrics:
    def test_global_counters(self):
        metrics = Metrics()
        metrics.count_message(10)
        metrics.count_message(20)
        metrics.count_disk_read(2)
        metrics.count_disk_write()
        metrics.count_drop()
        assert metrics.total_messages == 2
        assert metrics.total_bytes == 30
        assert metrics.total_disk_reads == 2
        assert metrics.total_disk_writes == 1
        assert metrics.dropped_messages == 1

    def test_op_scoping(self):
        metrics = Metrics()
        op = metrics.begin_op("read", now=0.0)
        metrics.count_message(8)
        metrics.count_disk_read()
        metrics.count_round_trip()
        metrics.end_op(op, now=2.0)
        assert op.messages == 1
        assert op.bytes_sent == 8
        assert op.disk_reads == 1
        assert op.round_trips == 1
        assert op.latency == 2.0
        # counts outside any op only hit globals
        metrics.count_message(5)
        assert op.messages == 1

    def test_summary_groups_by_kind_and_path(self):
        metrics = Metrics()
        for aborted in (False, True):
            op = metrics.begin_op("write", now=0.0)
            metrics.count_message(4)
            metrics.count_round_trip()
            metrics.end_op(op, now=1.0, aborted=aborted)
        slow = metrics.begin_op("write", now=0.0)
        slow.path = "slow"
        metrics.end_op(slow, now=3.0)
        summary = metrics.summary()
        assert summary["write/fast"]["count"] == 2
        assert summary["write/fast"]["abort_rate"] == 0.5
        assert summary["write/fast"]["messages"] == 1.0
        assert summary["write/slow"]["count"] == 1

    def test_unfinished_ops_excluded_from_summary(self):
        metrics = Metrics()
        metrics.begin_op("read", now=0.0)  # never ended (e.g. crash)
        assert metrics.summary() == {}
