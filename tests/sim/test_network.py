"""Fair-loss network: delivery, drops, duplicates, partitions."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.kernel import Environment
from repro.sim.monitor import Metrics
from repro.sim.network import Message, Network, NetworkConfig


def make_net(**kwargs):
    env = Environment()
    network = Network(env, NetworkConfig(**kwargs), Metrics())
    return env, network


class TestConfigValidation:
    def test_latency_bounds(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(min_latency=5, max_latency=1)
        with pytest.raises(ConfigurationError):
            NetworkConfig(min_latency=-1)

    def test_drop_probability_bounds(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(drop_probability=1.0)
        with pytest.raises(ConfigurationError):
            NetworkConfig(drop_probability=-0.1)

    def test_delta_is_max_latency(self):
        assert NetworkConfig(min_latency=1, max_latency=3).delta == 3


class TestDelivery:
    def test_basic_delivery(self):
        env, network = make_net()
        received = []
        network.register(1, lambda msg: None)
        network.register(2, received.append)
        network.send(1, 2, "hello", size=5)
        env.run()
        assert len(received) == 1
        assert received[0].payload == "hello"
        assert received[0].src == 1

    def test_latency_applied(self):
        env, network = make_net(min_latency=3.0, max_latency=3.0)
        times = []
        network.register(2, lambda msg: times.append(env.now))
        network.send(1, 2, "x")
        env.run()
        assert times == [3.0]

    def test_latency_within_bounds(self):
        env, network = make_net(min_latency=1.0, max_latency=5.0, jitter_seed=3)
        times = []
        network.register(2, lambda msg: times.append(env.now))
        for _ in range(50):
            network.send(1, 2, "x")
        env.run()
        assert all(1.0 <= t <= 5.0 for t in times)

    def test_variable_latency_reorders(self):
        env, network = make_net(min_latency=1.0, max_latency=10.0, jitter_seed=1)
        order = []
        network.register(2, lambda msg: order.append(msg.payload))
        for index in range(20):
            network.send(1, 2, index)
        env.run()
        assert sorted(order) == list(range(20))
        assert order != list(range(20))  # at least one reorder with this seed

    def test_unregistered_destination_drops(self):
        env, network = make_net()
        network.send(1, 42, "void")
        env.run()
        assert network.metrics.dropped_messages == 1

    def test_duplicate_registration_rejected(self):
        _env, network = make_net()
        network.register(1, lambda msg: None)
        with pytest.raises(SimulationError):
            network.register(1, lambda msg: None)

    def test_unregister(self):
        env, network = make_net()
        received = []
        network.register(2, received.append)
        network.unregister(2)
        network.send(1, 2, "x")
        env.run()
        assert received == []

    def test_self_send_goes_through_queue(self):
        env, network = make_net(min_latency=2.0, max_latency=2.0)
        times = []
        network.register(1, lambda msg: times.append(env.now))
        network.send(1, 1, "loop")
        env.run()
        assert times == [2.0]


class TestLossAndDuplication:
    def test_drops_are_probabilistic(self):
        env, network = make_net(drop_probability=0.5, jitter_seed=7)
        received = []
        network.register(2, received.append)
        for _ in range(200):
            network.send(1, 2, "x")
        env.run()
        assert 40 < len(received) < 160  # ~100 expected
        assert network.metrics.dropped_messages == 200 - len(received)

    def test_fair_loss_eventual_delivery(self):
        """Retransmission beats 90% loss (the fair-loss property)."""
        env, network = make_net(drop_probability=0.9, jitter_seed=11)
        received = []
        network.register(2, received.append)
        for _ in range(300):
            network.send(1, 2, "retry")
        env.run()
        assert len(received) >= 1

    def test_duplicates(self):
        env, network = make_net(duplicate_probability=1.0)
        received = []
        network.register(2, received.append)
        network.send(1, 2, "x")
        env.run()
        assert len(received) == 2

    def test_metrics_count_messages_and_bytes(self):
        env, network = make_net()
        network.register(2, lambda msg: None)
        network.send(1, 2, "x", size=10)
        network.send(1, 2, "y", size=32)
        assert network.metrics.total_messages == 2
        assert network.metrics.total_bytes == 42


class TestFailuresAndPartitions:
    def test_down_destination_loses_messages(self):
        env, network = make_net()
        received = []
        network.register(2, received.append)
        network.set_down(2, True)
        network.send(1, 2, "x")
        env.run()
        assert received == []
        network.set_down(2, False)
        network.send(1, 2, "y")
        env.run()
        assert len(received) == 1

    def test_down_source_cannot_send(self):
        env, network = make_net()
        received = []
        network.register(2, received.append)
        network.set_down(1, True)
        network.send(1, 2, "x")
        env.run()
        assert received == []

    def test_crash_while_in_flight(self):
        """A message in flight to a node that crashes is lost."""
        env, network = make_net(min_latency=5.0, max_latency=5.0)
        received = []
        network.register(2, received.append)
        network.send(1, 2, "x")
        env.run(until=1)
        network.set_down(2, True)
        env.run()
        assert received == []

    def test_partition_blocks_both_directions(self):
        env, network = make_net()
        received = []
        network.register(1, received.append)
        network.register(2, received.append)
        network.partition({1}, {2})
        network.send(1, 2, "a")
        network.send(2, 1, "b")
        env.run()
        assert received == []

    def test_partition_only_affects_pairs(self):
        env, network = make_net()
        received = []
        network.register(3, received.append)
        network.partition({1}, {2})
        network.send(1, 3, "ok")
        env.run()
        assert len(received) == 1

    def test_heal_partition(self):
        env, network = make_net()
        received = []
        network.register(2, received.append)
        network.partition({1}, {2})
        network.heal_partition({1}, {2})
        network.send(1, 2, "x")
        env.run()
        assert len(received) == 1

    def test_heal_all(self):
        env, network = make_net()
        network.partition({1, 2}, {3, 4})
        network.heal_partition()
        assert not network.is_partitioned(1, 3)

    def test_is_partitioned_symmetric(self):
        _env, network = make_net()
        network.partition({1}, {2})
        assert network.is_partitioned(1, 2)
        assert network.is_partitioned(2, 1)


class TestDeliverySweeps:
    """Batched per-(time, destination) delivery sweeps."""

    def test_fan_in_batches_into_one_heap_entry(self):
        env, network = make_net(min_latency=1.0, max_latency=1.0)
        received = []
        network.register(1, received.append)
        before = env.events_scheduled
        for src in range(2, 7):
            network.send(src, 1, f"reply-{src}")
        # Five same-tick messages to one destination: one heap push.
        assert env.events_scheduled - before == 1
        env.run()
        assert [m.payload for m in received] == [
            f"reply-{src}" for src in range(2, 7)
        ]

    def test_sweeps_off_pushes_per_message(self):
        env, network = make_net(
            min_latency=1.0, max_latency=1.0, delivery_sweeps=False
        )
        received = []
        network.register(1, received.append)
        before = env.events_scheduled
        for src in range(2, 7):
            network.send(src, 1, f"reply-{src}")
        assert env.events_scheduled - before == 5
        env.run()
        assert [m.payload for m in received] == [
            f"reply-{src}" for src in range(2, 7)
        ]

    def test_batch_order_is_send_order(self):
        env, network = make_net(min_latency=2.0, max_latency=2.0)
        received = []
        network.register(9, received.append)
        for tag in ("a", "b", "c", "a2"):
            network.send(1, 9, tag)
        env.run()
        assert [m.payload for m in received] == ["a", "b", "c", "a2"]

    def test_distinct_destinations_get_distinct_sweeps(self):
        env, network = make_net(min_latency=1.0, max_latency=1.0)
        network.register(1, lambda m: None)
        network.register(2, lambda m: None)
        before = env.events_scheduled
        network.send(3, 1, "x")
        network.send(3, 2, "y")
        network.send(4, 1, "z")  # joins destination 1's open sweep
        assert env.events_scheduled - before == 2

    def test_distinct_times_get_distinct_sweeps(self):
        env, network = make_net(min_latency=1.0, max_latency=1.0)
        times = []
        network.register(1, lambda m: times.append(env.now))
        network.send(2, 1, "early")
        env.run(until=0.5)  # now = 0.5: the next send lands at 1.5
        network.send(2, 1, "late")
        env.run()
        assert times == [1.0, 1.5]

    def test_resend_during_sweep_opens_fresh_sweep(self):
        """A handler sending with zero latency must not append to the
        sweep that is currently firing (it would never be delivered)."""
        env, network = make_net(min_latency=0.0, max_latency=0.0)
        received = []

        def echo_once(message):
            received.append(message.payload)
            if message.payload == "ping":
                network.send(1, 1, "pong")

        network.register(1, echo_once)
        network.send(1, 1, "ping")
        env.run()
        assert received == ["ping", "pong"]

    def test_crash_between_batched_messages_still_rechecked(self):
        """Down/partition state is evaluated per message at delivery."""
        env, network = make_net(min_latency=3.0, max_latency=3.0)
        received = []
        network.register(2, received.append)
        network.send(1, 2, "x")
        network.send(1, 2, "y")
        env.run(until=1)
        network.set_down(2, True)
        env.run()
        assert received == []

    def test_sweep_state_drains_after_firing(self):
        env, network = make_net(min_latency=1.0, max_latency=1.0)
        network.register(1, lambda m: None)
        network.send(2, 1, "x")
        assert len(network._sweeps) == 1
        env.run()
        assert network._sweeps == {}

    def test_sweeps_match_unswept_outcomes(self):
        """Same seed, same sends: identical delivery schedule either way."""
        outcomes = []
        for sweeps in (True, False):
            env, network = make_net(
                min_latency=1.0, max_latency=4.0, jitter_seed=13,
                drop_probability=0.1, delivery_sweeps=sweeps,
            )
            log = []
            for pid in (1, 2, 3):
                network.register(
                    pid,
                    lambda m, pid=pid: log.append((env.now, pid, m.payload)),
                )
            for i in range(40):
                network.send(1 + i % 3, 1 + (i + 1) % 3, f"m{i}")
            env.run()
            outcomes.append(log)
        assert outcomes[0] == outcomes[1]
