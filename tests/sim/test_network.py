"""Fair-loss network: delivery, drops, duplicates, partitions."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.kernel import Environment
from repro.sim.monitor import Metrics
from repro.sim.network import Message, Network, NetworkConfig


def make_net(**kwargs):
    env = Environment()
    network = Network(env, NetworkConfig(**kwargs), Metrics())
    return env, network


class TestConfigValidation:
    def test_latency_bounds(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(min_latency=5, max_latency=1)
        with pytest.raises(ConfigurationError):
            NetworkConfig(min_latency=-1)

    def test_drop_probability_bounds(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(drop_probability=1.0)
        with pytest.raises(ConfigurationError):
            NetworkConfig(drop_probability=-0.1)

    def test_delta_is_max_latency(self):
        assert NetworkConfig(min_latency=1, max_latency=3).delta == 3


class TestDelivery:
    def test_basic_delivery(self):
        env, network = make_net()
        received = []
        network.register(1, lambda msg: None)
        network.register(2, received.append)
        network.send(1, 2, "hello", size=5)
        env.run()
        assert len(received) == 1
        assert received[0].payload == "hello"
        assert received[0].src == 1

    def test_latency_applied(self):
        env, network = make_net(min_latency=3.0, max_latency=3.0)
        times = []
        network.register(2, lambda msg: times.append(env.now))
        network.send(1, 2, "x")
        env.run()
        assert times == [3.0]

    def test_latency_within_bounds(self):
        env, network = make_net(min_latency=1.0, max_latency=5.0, jitter_seed=3)
        times = []
        network.register(2, lambda msg: times.append(env.now))
        for _ in range(50):
            network.send(1, 2, "x")
        env.run()
        assert all(1.0 <= t <= 5.0 for t in times)

    def test_variable_latency_reorders(self):
        env, network = make_net(min_latency=1.0, max_latency=10.0, jitter_seed=1)
        order = []
        network.register(2, lambda msg: order.append(msg.payload))
        for index in range(20):
            network.send(1, 2, index)
        env.run()
        assert sorted(order) == list(range(20))
        assert order != list(range(20))  # at least one reorder with this seed

    def test_unregistered_destination_drops(self):
        env, network = make_net()
        network.send(1, 42, "void")
        env.run()
        assert network.metrics.dropped_messages == 1

    def test_duplicate_registration_rejected(self):
        _env, network = make_net()
        network.register(1, lambda msg: None)
        with pytest.raises(SimulationError):
            network.register(1, lambda msg: None)

    def test_unregister(self):
        env, network = make_net()
        received = []
        network.register(2, received.append)
        network.unregister(2)
        network.send(1, 2, "x")
        env.run()
        assert received == []

    def test_self_send_goes_through_queue(self):
        env, network = make_net(min_latency=2.0, max_latency=2.0)
        times = []
        network.register(1, lambda msg: times.append(env.now))
        network.send(1, 1, "loop")
        env.run()
        assert times == [2.0]


class TestLossAndDuplication:
    def test_drops_are_probabilistic(self):
        env, network = make_net(drop_probability=0.5, jitter_seed=7)
        received = []
        network.register(2, received.append)
        for _ in range(200):
            network.send(1, 2, "x")
        env.run()
        assert 40 < len(received) < 160  # ~100 expected
        assert network.metrics.dropped_messages == 200 - len(received)

    def test_fair_loss_eventual_delivery(self):
        """Retransmission beats 90% loss (the fair-loss property)."""
        env, network = make_net(drop_probability=0.9, jitter_seed=11)
        received = []
        network.register(2, received.append)
        for _ in range(300):
            network.send(1, 2, "retry")
        env.run()
        assert len(received) >= 1

    def test_duplicates(self):
        env, network = make_net(duplicate_probability=1.0)
        received = []
        network.register(2, received.append)
        network.send(1, 2, "x")
        env.run()
        assert len(received) == 2

    def test_metrics_count_messages_and_bytes(self):
        env, network = make_net()
        network.register(2, lambda msg: None)
        network.send(1, 2, "x", size=10)
        network.send(1, 2, "y", size=32)
        assert network.metrics.total_messages == 2
        assert network.metrics.total_bytes == 42


class TestFailuresAndPartitions:
    def test_down_destination_loses_messages(self):
        env, network = make_net()
        received = []
        network.register(2, received.append)
        network.set_down(2, True)
        network.send(1, 2, "x")
        env.run()
        assert received == []
        network.set_down(2, False)
        network.send(1, 2, "y")
        env.run()
        assert len(received) == 1

    def test_down_source_cannot_send(self):
        env, network = make_net()
        received = []
        network.register(2, received.append)
        network.set_down(1, True)
        network.send(1, 2, "x")
        env.run()
        assert received == []

    def test_crash_while_in_flight(self):
        """A message in flight to a node that crashes is lost."""
        env, network = make_net(min_latency=5.0, max_latency=5.0)
        received = []
        network.register(2, received.append)
        network.send(1, 2, "x")
        env.run(until=1)
        network.set_down(2, True)
        env.run()
        assert received == []

    def test_partition_blocks_both_directions(self):
        env, network = make_net()
        received = []
        network.register(1, received.append)
        network.register(2, received.append)
        network.partition({1}, {2})
        network.send(1, 2, "a")
        network.send(2, 1, "b")
        env.run()
        assert received == []

    def test_partition_only_affects_pairs(self):
        env, network = make_net()
        received = []
        network.register(3, received.append)
        network.partition({1}, {2})
        network.send(1, 3, "ok")
        env.run()
        assert len(received) == 1

    def test_heal_partition(self):
        env, network = make_net()
        received = []
        network.register(2, received.append)
        network.partition({1}, {2})
        network.heal_partition({1}, {2})
        network.send(1, 2, "x")
        env.run()
        assert len(received) == 1

    def test_heal_all(self):
        env, network = make_net()
        network.partition({1, 2}, {3, 4})
        network.heal_partition()
        assert not network.is_partitioned(1, 3)

    def test_is_partitioned_symmetric(self):
        _env, network = make_net()
        network.partition({1}, {2})
        assert network.is_partitioned(1, 2)
        assert network.is_partitioned(2, 1)
