"""Discrete-event kernel: events, timeouts, processes, interrupts."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Environment, Interrupt


class TestEventsAndTimeouts:
    def test_clock_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_timeout_advances_clock(self):
        env = Environment()
        env.timeout(7.5)
        env.run()
        assert env.now == 7.5

    def test_timeouts_fire_in_order(self):
        env = Environment()
        fired = []
        for delay in [5, 1, 3]:
            timer = env.timeout(delay, value=delay)
            timer._add_callback(lambda event: fired.append(event.value))
        env.run()
        assert fired == [1, 3, 5]

    def test_equal_time_fifo(self):
        env = Environment()
        fired = []
        for tag in range(5):
            timer = env.timeout(1.0, value=tag)
            timer._add_callback(lambda event: fired.append(event.value))
        env.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Environment().timeout(-1)

    def test_run_until(self):
        env = Environment()
        env.timeout(10)
        env.run(until=4)
        assert env.now == 4
        env.run()
        assert env.now == 10

    def test_run_until_beyond_queue(self):
        env = Environment()
        env.run(until=100)
        assert env.now == 100

    def test_event_succeed_once(self):
        env = Environment()
        event = env.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_event_value_before_trigger(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().value

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")

    def test_step_on_empty_queue(self):
        with pytest.raises(SimulationError):
            Environment().step()


class TestProcesses:
    def test_process_returns_value(self):
        env = Environment()

        def worker():
            yield env.timeout(3)
            return 42

        process = env.process(worker())
        assert env.run_until_complete(process) == 42
        assert env.now == 3

    def test_process_waits_on_event(self):
        env = Environment()
        gate = env.event()

        def opener():
            yield env.timeout(5)
            gate.succeed("open")

        def waiter():
            result = yield gate
            return result

        env.process(opener())
        process = env.process(waiter())
        assert env.run_until_complete(process) == "open"
        assert env.now == 5

    def test_process_chains(self):
        env = Environment()

        def inner():
            yield env.timeout(2)
            return "inner-done"

        def outer():
            result = yield env.process(inner())
            return result + "!"

        assert env.run_until_complete(env.process(outer())) == "inner-done!"

    def test_process_exception_propagates(self):
        env = Environment()

        def bad():
            yield env.timeout(1)
            raise ValueError("boom")

        process = env.process(bad())
        with pytest.raises(ValueError, match="boom"):
            env.run_until_complete(process)

    def test_yield_non_event_raises(self):
        env = Environment()

        def confused():
            yield 42

        process = env.process(confused())
        with pytest.raises(SimulationError):
            env.run_until_complete(process)

    def test_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_deadlock_detection(self):
        env = Environment()

        def stuck():
            yield env.event()  # never triggered

        process = env.process(stuck())
        with pytest.raises(SimulationError, match="deadlock"):
            env.run_until_complete(process)

    def test_time_limit(self):
        env = Environment()

        def slow():
            yield env.timeout(1000)

        process = env.process(slow())
        with pytest.raises(SimulationError, match="limit"):
            env.run_until_complete(process, limit=10)


class TestInterrupts:
    def test_interrupt_while_waiting(self):
        env = Environment()
        log = []

        def worker():
            try:
                yield env.timeout(100)
                log.append("finished")
            except Interrupt as interrupt:
                log.append((f"interrupted:{interrupt.cause}", env.now))

        process = env.process(worker())
        env.run(until=5)
        process.interrupt("crash")
        env.run()
        # Delivered promptly at t=5, not when the abandoned timer fires.
        assert log == [("interrupted:crash", 5)]

    def test_unhandled_interrupt_kills_silently(self):
        env = Environment()

        def worker():
            yield env.timeout(100)

        process = env.process(worker())
        env.run(until=1)
        process.interrupt("crash")
        env.run()
        assert process.triggered
        assert not process.ok

    def test_interrupt_finished_process_is_noop(self):
        env = Environment()

        def quick():
            yield env.timeout(1)
            return "ok"

        process = env.process(quick())
        env.run()
        process.interrupt("late")
        assert process.value == "ok"

    def test_interrupt_before_first_resume(self):
        env = Environment()

        def worker():
            yield env.timeout(10)
            return "ran"

        process = env.process(worker())
        process.interrupt("early")  # before the kernel ever resumed it
        env.run()
        assert process.triggered
        assert not process.ok

    def test_interrupted_waits_dont_resume(self):
        """The event the process waited on must not revive it."""
        env = Environment()
        resumed = []

        def worker():
            yield env.timeout(10)
            resumed.append(True)

        process = env.process(worker())
        env.run(until=1)
        process.interrupt()
        env.run()  # timeout at t=10 still fires, but must not resume worker
        assert resumed == []


class TestCompositeEvents:
    def test_all_of(self):
        env = Environment()

        def worker():
            values = yield env.all_of([env.timeout(1, "a"), env.timeout(5, "b")])
            return values

        process = env.process(worker())
        assert env.run_until_complete(process) == ["a", "b"]
        assert env.now == 5

    def test_all_of_empty(self):
        env = Environment()

        def worker():
            values = yield env.all_of([])
            return values

        assert env.run_until_complete(env.process(worker())) == []

    def test_any_of(self):
        env = Environment()

        def worker():
            event, value = yield env.any_of(
                [env.timeout(9, "slow"), env.timeout(2, "fast")]
            )
            return value

        process = env.process(worker())
        assert env.run_until_complete(process) == "fast"
        assert env.now == 2

    def test_all_of_with_pretriggered(self):
        env = Environment()
        done = env.event()
        done.succeed("pre")
        env.run()

        def worker():
            values = yield env.all_of([done, env.timeout(1, "t")])
            return values

        assert env.run_until_complete(env.process(worker())) == ["pre", "t"]
