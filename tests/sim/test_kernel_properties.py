"""Property-based tests of the simulation kernel and network."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Environment
from repro.sim.network import Network, NetworkConfig


class TestKernelProperties:
    @settings(deadline=None, max_examples=40)
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=30))
    def test_timeouts_fire_in_nondecreasing_time_order(self, delays):
        env = Environment()
        fired = []
        for delay in delays:
            timer = env.timeout(delay)
            timer._add_callback(lambda _t: fired.append(env.now))
        env.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @settings(deadline=None, max_examples=40)
    @given(st.lists(st.floats(min_value=0.0, max_value=50.0),
                    min_size=1, max_size=20))
    def test_clock_never_goes_backwards(self, delays):
        env = Environment()
        observations = []

        def watcher():
            previous = env.now
            for delay in delays:
                yield env.timeout(delay)
                observations.append((previous, env.now))
                previous = env.now

        env.process(watcher())
        env.run()
        assert all(before <= after for before, after in observations)

    @settings(deadline=None, max_examples=30)
    @given(st.integers(min_value=1, max_value=20), st.integers(0, 2**31 - 1))
    def test_nested_processes_return_in_spawn_tree_order(self, count, seed):
        """A parent awaiting children sees each child's value exactly."""
        env = Environment()
        rng = random.Random(seed)
        delays = [rng.uniform(0, 10) for _ in range(count)]

        def child(tag, delay):
            yield env.timeout(delay)
            return tag

        def parent():
            children = [env.process(child(i, delays[i])) for i in range(count)]
            values = yield env.all_of(children)
            return values

        result = env.run_until_complete(env.process(parent()))
        assert result == list(range(count))

    @settings(deadline=None, max_examples=30)
    @given(st.floats(min_value=0.1, max_value=100.0))
    def test_run_until_never_overshoots(self, until):
        env = Environment()
        for delay in (until / 3, until, until * 2):
            env.timeout(delay)
        env.run(until=until)
        assert env.now <= until


class TestNetworkProperties:
    @settings(deadline=None, max_examples=25)
    @given(
        st.integers(min_value=1, max_value=60),
        st.floats(min_value=0.0, max_value=0.8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_conservation_sent_equals_delivered_plus_dropped(
        self, count, drop, seed
    ):
        env = Environment()
        network = Network(
            env, NetworkConfig(drop_probability=drop, jitter_seed=seed)
        )
        received = []
        network.register(2, received.append)
        for index in range(count):
            network.send(1, 2, index)
        env.run()
        metrics = network.metrics
        assert metrics.total_messages == count
        assert len(received) + metrics.dropped_messages == count

    @settings(deadline=None, max_examples=25)
    @given(
        st.floats(min_value=0.0, max_value=10.0),
        st.floats(min_value=0.0, max_value=10.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_delivery_times_within_latency_bounds(self, low, extra, seed):
        env = Environment()
        network = Network(
            env,
            NetworkConfig(
                min_latency=low, max_latency=low + extra, jitter_seed=seed
            ),
        )
        times = []
        network.register(2, lambda msg: times.append(env.now))
        for _ in range(30):
            network.send(1, 2, "x")
        env.run()
        assert all(low <= t <= low + extra + 1e-9 for t in times)

    @settings(deadline=None, max_examples=20)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_payloads_never_corrupted(self, seed):
        """Channels may drop or reorder but never corrupt (Section 2)."""
        env = Environment()
        network = Network(
            env,
            NetworkConfig(
                min_latency=0.1, max_latency=5.0,
                drop_probability=0.2, duplicate_probability=0.2,
                jitter_seed=seed,
            ),
        )
        sent = [bytes([i, i ^ 0xFF]) for i in range(40)]
        received = []
        network.register(2, lambda msg: received.append(msg.payload))
        for payload in sent:
            network.send(1, 2, payload)
        env.run()
        assert set(received) <= set(sent)
