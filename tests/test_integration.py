"""End-to-end soak tests: the whole stack under sustained hostile load."""

import pytest

from repro import ClusterConfig, FabCluster, LogicalVolume
from repro.core.coordinator import CoordinatorConfig
from repro.core.rebuild import Rebuilder, Scrubber
from repro.sim.failures import RandomFailures
from repro.sim.network import NetworkConfig
from repro.types import ABORT
from repro.workloads import TraceReplayer, ZipfPattern, synthesize_trace


def build_cluster(seed=0, drop=0.0, gc=True):
    return FabCluster(
        ClusterConfig(
            m=3,
            n=6,
            block_size=128,
            network=NetworkConfig(
                min_latency=0.5, max_latency=2.5,
                drop_probability=drop, jitter_seed=seed,
            ),
            coordinator=CoordinatorConfig(gc_enabled=gc),
            seed=seed,
        )
    )


class TestSoak:
    def test_long_trace_with_churn_loss_and_gc(self):
        """300 ops; f-bounded churn; 5% loss; GC on; verify every block."""
        cluster = build_cluster(seed=21, drop=0.05)
        volume = LogicalVolume(cluster, num_stripes=20)
        churn = RandomFailures(
            cluster.env, cluster.nodes, max_down=cluster.quorum_system.f,
            crash_probability=0.06, recovery_probability=0.5,
            check_interval=30.0, horizon=1e9, seed=5,
        )
        trace = synthesize_trace(
            300, volume.num_blocks, read_fraction=0.6,
            mean_interarrival=4.0, pattern=ZipfPattern(1.0, seed=2), seed=9,
        )
        replayer = TraceReplayer(volume)
        stats = replayer.replay(trace)

        assert stats.operations == 300
        assert stats.abort_rate < 0.2
        assert churn.crashes_injected > 0

        # Recover everyone and verify the final value of every block
        # that had a successful write.
        for pid in cluster.nodes:
            cluster.recover(pid)
        last_payload = {}
        for op in trace:
            if op.op == "write":
                last_payload[op.block] = replayer._payload(op)
        # Replay the volume's abort decisions: a block whose last write
        # aborted may hold either value; just require reads to be
        # stable and non-corrupt.
        for block, payload in sorted(last_payload.items()):
            value = volume.read(block)
            assert value is not ABORT
            again = volume.read(block)
            assert again == value  # stability
        # GC kept logs bounded.
        assert cluster.gc.high_water_mark(0) <= 5

    def test_rebuild_cycle_during_load(self):
        """Brick dies, misses writes, is rebuilt; redundancy restored."""
        cluster = build_cluster(seed=3)
        volume = LogicalVolume(cluster, num_stripes=10)
        for block in range(volume.num_blocks):
            assert volume.write(block, bytes([block % 256]) * 128) == "OK"
        cluster.crash(6)
        for block in range(0, volume.num_blocks, 2):
            assert volume.write(block, bytes([(block + 7) % 256]) * 128) == "OK"
        report = Rebuilder(cluster, route=1).rebuild_brick(
            6, range(10)
        )
        assert report.aborted == 0
        scrubber = Scrubber(cluster)
        for register_id in range(10):
            assert scrubber.scrub_register(register_id).fully_redundant
        # Now ANY two bricks may fail (f permits 1, but 6 holds data for
        # quorums that exclude two specific others after rebuild) — at
        # minimum the original fault bound still holds:
        cluster.crash(2)
        for block in range(volume.num_blocks):
            assert volume.read(block) is not ABORT

    def test_duplicating_network(self):
        """Message duplication (at-most-once layer) does not break ops."""
        cluster = FabCluster(
            ClusterConfig(
                m=2, n=4, block_size=64,
                network=NetworkConfig(duplicate_probability=0.5, jitter_seed=7),
                seed=7,
            )
        )
        register = cluster.register(0)
        for tag in range(10):
            stripe = [bytes([tag, i]) * 32 for i in range(2)]
            assert register.write_stripe(stripe) == "OK"
            assert register.read_stripe() == stripe

    def test_every_code_kind_end_to_end(self):
        for kind, m, n in [
            ("reed-solomon", 3, 6),
            ("cauchy", 3, 6),
            ("parity", 3, 4),
            ("replication", 1, 3),
        ]:
            cluster = FabCluster(
                ClusterConfig(m=m, n=n, block_size=64, code_kind=kind)
            )
            register = cluster.register(0)
            stripe = [bytes([i + 1]) * 64 for i in range(m)]
            assert register.write_stripe(stripe) == "OK", kind
            if cluster.quorum_system.f >= 1:
                # Single-parity with n = m + 1 has f = 0: it repairs
                # *data* from any m blocks but cannot run quorums with
                # a brick down, so skip the crash there.
                cluster.crash(n)
            assert register.read_stripe() == stripe, kind
            if m > 1:
                assert register.write_block(1, b"\xaa" * 64) == "OK", kind
                assert register.read_block(1) == b"\xaa" * 64, kind

    def test_mixed_volumes_share_cluster(self):
        cluster = build_cluster(seed=11)
        volume_a = LogicalVolume(cluster, num_stripes=5, base_register_id=0)
        volume_b = LogicalVolume(
            cluster, num_stripes=5, base_register_id=1000, stripe_shuffle=False
        )
        for block in range(volume_a.num_blocks):
            volume_a.write(block, b"A" * 128)
            volume_b.write(block, b"B" * 128)
        cluster.crash(4)
        assert all(
            volume_a.read(block) == b"A" * 128
            for block in range(volume_a.num_blocks)
        )
        assert all(
            volume_b.read(block) == b"B" * 128
            for block in range(volume_b.num_blocks)
        )
