"""Birth-death MTTDL solver."""

import pytest

from repro.errors import ConfigurationError
from repro.reliability.markov import birth_death_mttdl, closed_form_mttdl


class TestExactSolver:
    def test_no_redundancy_is_first_failure(self):
        # t=0: MTTDL = 1 / (g * lam)
        assert birth_death_mttdl(10, 0, 0.01, 1.0) == pytest.approx(10.0)

    def test_single_brick(self):
        assert birth_death_mttdl(1, 0, 0.001, 1.0) == pytest.approx(1000.0)

    def test_redundancy_multiplies_mttdl(self):
        lam, mu = 1e-4, 1.0
        t0 = birth_death_mttdl(8, 0, lam, mu)
        t1 = birth_death_mttdl(8, 1, lam, mu)
        t2 = birth_death_mttdl(8, 2, lam, mu)
        assert t1 / t0 > 100
        assert t2 / t1 > 100

    def test_faster_repair_helps(self):
        lam = 1e-4
        slow = birth_death_mttdl(8, 2, lam, mu=0.1)
        fast = birth_death_mttdl(8, 2, lam, mu=1.0)
        assert fast > 10 * slow

    def test_more_bricks_hurt(self):
        lam, mu = 1e-4, 1.0
        small = birth_death_mttdl(8, 3, lam, mu)
        large = birth_death_mttdl(80, 3, lam, mu)
        assert small > large

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            birth_death_mttdl(3, 3, 0.1, 1.0)  # t >= g
        with pytest.raises(ConfigurationError):
            birth_death_mttdl(3, -1, 0.1, 1.0)
        with pytest.raises(ConfigurationError):
            birth_death_mttdl(3, 1, 0.0, 1.0)


class TestClosedFormAgreement:
    @pytest.mark.parametrize("g,t", [(4, 1), (8, 2), (8, 3), (20, 3)])
    def test_matches_exact_when_repair_dominates(self, g, t):
        lam, mu = 1e-6, 1.0  # lam << mu: approximation regime
        exact = birth_death_mttdl(g, t, lam, mu)
        approx = closed_form_mttdl(g, t, lam, mu)
        assert exact == pytest.approx(approx, rel=0.05)

    def test_t0_exact(self):
        assert closed_form_mttdl(5, 0, 0.01, 1.0) == pytest.approx(
            birth_death_mttdl(5, 0, 0.01, 1.0)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            closed_form_mttdl(2, 2, 0.1, 1.0)
