"""System-level MTTDL models: the Figure 2 claims."""

import pytest

from repro.errors import ConfigurationError
from repro.reliability.components import BrickParams
from repro.reliability.mttdl import (
    ErasureCodedSystem,
    LRCSystem,
    ReplicationSystem,
    StripingSystem,
)

R0 = BrickParams(internal_raid="r0")
R5 = BrickParams(internal_raid="r5")
RELIABLE = BrickParams(internal_raid="r5", reliable_array=True)


class TestBasics:
    def test_overheads(self):
        assert StripingSystem(brick=R0).storage_overhead == 1.0
        assert ReplicationSystem(brick=R0, replicas=4).storage_overhead == 4.0
        assert ErasureCodedSystem(brick=R0, m=5, n=8).storage_overhead == 1.6

    def test_total_overhead_includes_brick_parity(self):
        system = ReplicationSystem(brick=R5, replicas=3)
        assert system.total_overhead == pytest.approx(3 * 12 / 11)

    def test_tolerated_failures(self):
        assert StripingSystem().tolerated_failures == 0
        assert ReplicationSystem(replicas=4).tolerated_failures == 3
        assert ErasureCodedSystem(m=5, n=8).tolerated_failures == 3

    def test_bricks_for_capacity(self):
        system = ErasureCodedSystem(brick=R0, m=5, n=8)
        # 100 TB logical -> 160 TB raw / 3 TB per brick = 54 bricks.
        assert system.bricks_for(100) == 54

    def test_bricks_never_below_group(self):
        system = ErasureCodedSystem(brick=R0, m=5, n=8)
        assert system.bricks_for(0.001) == 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReplicationSystem(replicas=0)
        with pytest.raises(ConfigurationError):
            ErasureCodedSystem(m=5, n=4)
        with pytest.raises(ConfigurationError):
            StripingSystem(placement="magic")
        with pytest.raises(ConfigurationError):
            StripingSystem().mttdl_years(-1)


class TestFigure2Claims:
    """The qualitative structure of Figure 2 must hold at every capacity."""

    CAPACITIES = [1, 10, 100, 1000]

    def test_striping_declines_as_one_over_n(self):
        system = StripingSystem(brick=RELIABLE)
        values = [system.mttdl_years(c) for c in self.CAPACITIES]
        assert values == sorted(values, reverse=True)
        assert values[0] / values[-1] > 100  # ~1000x more bricks

    def test_striping_only_adequate_for_small_systems(self):
        system = StripingSystem(brick=RELIABLE)
        assert system.mttdl_years(1) > 100
        assert system.mttdl_years(1000) < 10

    @pytest.mark.parametrize("capacity", CAPACITIES)
    def test_replication_and_ec_beat_striping(self, capacity):
        striping = StripingSystem(brick=RELIABLE).mttdl_years(capacity)
        replication = ReplicationSystem(brick=R0, replicas=4).mttdl_years(capacity)
        erasure = ErasureCodedSystem(brick=R0, m=5, n=8).mttdl_years(capacity)
        assert replication > striping
        assert erasure > striping

    @pytest.mark.parametrize("capacity", CAPACITIES)
    def test_r5_bricks_improve_both(self, capacity):
        assert ReplicationSystem(brick=R5, replicas=4).mttdl_years(
            capacity
        ) > ReplicationSystem(brick=R0, replicas=4).mttdl_years(capacity)
        assert ErasureCodedSystem(brick=R5, m=5, n=8).mttdl_years(
            capacity
        ) > ErasureCodedSystem(brick=R0, m=5, n=8).mttdl_years(capacity)

    @pytest.mark.parametrize("capacity", [100, 256, 1000])
    def test_ec_close_to_4way_replication(self, capacity):
        """'reliability is almost as high as the 4-way replicated
        system' — same failure tolerance, within ~2 orders of magnitude,
        and replication stays ahead."""
        replication = ReplicationSystem(brick=R0, replicas=4).mttdl_years(capacity)
        erasure = ErasureCodedSystem(brick=R0, m=5, n=8).mttdl_years(capacity)
        assert erasure < replication
        assert replication / erasure < 200

    def test_ec_and_replication_scale_well(self):
        """Unlike striping, redundant schemes lose less than ~3 orders
        of magnitude over a 1000x capacity increase."""
        for system in (
            ReplicationSystem(brick=R0, replicas=4),
            ErasureCodedSystem(brick=R0, m=5, n=8),
        ):
            ratio = system.mttdl_years(1) / system.mttdl_years(1000)
            assert ratio < 1e7  # striping's ratio is ~1e3 on 1e3x bricks but
            # from a base ~1e9 times lower; redundant schemes stay high:
            assert system.mttdl_years(1000) > 1e4

    def test_million_year_anchor(self):
        """EC(5,8)/R0 meets the paper's 1e6-year MTTDL at 256 TB."""
        assert ErasureCodedSystem(brick=R0, m=5, n=8).mttdl_years(256) > 1e6
        assert ReplicationSystem(brick=R0, replicas=4).mttdl_years(256) > 1e6


class TestPlacementModels:
    def test_grouped_placement_supported(self):
        random_placement = ErasureCodedSystem(brick=R0, m=5, n=8)
        grouped = ErasureCodedSystem(brick=R0, m=5, n=8, placement="grouped")
        # Both produce finite positive answers; grouped has fewer fatal
        # combinations and therefore at least as high an MTTDL.
        assert grouped.mttdl_years(100) >= random_placement.mttdl_years(100) * 0.1

    def test_fatal_fraction_bounds(self):
        system = ErasureCodedSystem(brick=R0, m=5, n=8)
        p = system.fatal_fraction(100)
        assert 0.0 < p <= 1.0
        assert system.fatal_fraction(0.001) == 1.0  # single group

    def test_fatal_fraction_decreases_with_fleet_size(self):
        system = ErasureCodedSystem(brick=R0, m=5, n=8)
        assert system.fatal_fraction(1000) < system.fatal_fraction(100)

    def test_smaller_segments_more_fatal(self):
        fine = ErasureCodedSystem(brick=R0, m=5, n=8, segment_gb=1.0)
        coarse = ErasureCodedSystem(brick=R0, m=5, n=8, segment_gb=64.0)
        assert fine.fatal_fraction(256) > coarse.fatal_fraction(256)

    def test_with_brick(self):
        system = ErasureCodedSystem(brick=R0, m=5, n=8)
        swapped = system.with_brick(R5)
        assert swapped.brick.internal_raid == "r5"
        assert swapped.m == 5


class TestLRCSystem:
    def test_geometry_and_overhead(self):
        system = LRCSystem(brick=R0, m=4, local_groups=2, global_parities=2)
        assert system.n == 8
        assert system.storage_overhead == 2.0
        assert system.group_size == 8
        assert system.tolerated_failures == 3  # g + 1

    def test_repair_locality(self):
        system = LRCSystem(brick=R0, m=4, local_groups=2, global_parities=2)
        assert system.local_read_cost == 2  # ceil(4 / 2)
        assert system.repair_speedup == 2.0
        wide = LRCSystem(brick=R0, m=12, local_groups=4, global_parities=2)
        assert wide.local_read_cost == 3
        assert wide.repair_speedup == 4.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LRCSystem(m=0)
        with pytest.raises(ConfigurationError):
            LRCSystem(m=4, local_groups=5)
        with pytest.raises(ConfigurationError):
            LRCSystem(m=4, local_groups=2, global_parities=-1)

    @pytest.mark.parametrize("capacity", [50, 500])
    def test_faster_repair_beats_equal_tolerance_rs(self, capacity):
        """At equal fault tolerance, the LRC's shorter repair window
        must yield a strictly higher MTTDL than Reed-Solomon."""
        lrc = LRCSystem(brick=R0, m=4, local_groups=2, global_parities=2)
        rs = ErasureCodedSystem(brick=R0, m=4, n=7)  # also tolerates 3
        assert lrc.tolerated_failures == rs.tolerated_failures
        assert lrc.mttdl_years(capacity) > rs.mttdl_years(capacity)

    @pytest.mark.parametrize("capacity", [50, 500])
    def test_tolerance_gap_to_same_overhead_rs(self, capacity):
        """Same overhead, one less tolerated failure: RS(4,8) should
        out-survive LRC(4+2+2) — locality is not free."""
        lrc = LRCSystem(brick=R0, m=4, local_groups=2, global_parities=2)
        rs = ErasureCodedSystem(brick=R0, m=4, n=8)
        assert lrc.storage_overhead == rs.storage_overhead
        assert lrc.tolerated_failures == rs.tolerated_failures - 1
        assert lrc.mttdl_years(capacity) < rs.mttdl_years(capacity)

    def test_matches_executable_code_layout(self):
        """The analytic model and LRCCode agree on the layout's cost."""
        from repro.erasure import LRCCode

        code = LRCCode(4, 8)
        system = LRCSystem(
            m=4,
            local_groups=code.local_group_count,
            global_parities=code.global_parity_count,
        )
        assert system.n == code.n
        assert system.local_read_cost == code.local_group_size - 1
