"""Brick and disk reliability parameters."""

import pytest

from repro.errors import ConfigurationError
from repro.reliability.components import BrickParams, DiskParams, brick_failure_rate


class TestDiskParams:
    def test_failure_rate(self):
        disk = DiskParams(mttf_hours=500_000)
        assert disk.failure_rate == pytest.approx(2e-6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DiskParams(mttf_hours=0)


class TestBrickParams:
    def test_r0_capacity(self):
        brick = BrickParams(internal_raid="r0")
        assert brick.capacity_tb == pytest.approx(12 * 0.25)
        assert brick.capacity_overhead == 1.0

    def test_r5_capacity_loses_one_disk(self):
        brick = BrickParams(internal_raid="r5")
        assert brick.capacity_tb == pytest.approx(11 * 0.25)
        assert brick.capacity_overhead == pytest.approx(12 / 11)

    def test_r0_rate_dominated_by_disks(self):
        brick = BrickParams(internal_raid="r0")
        d, lam = 12, 2e-6
        assert brick.data_loss_rate > d * lam

    def test_r5_much_more_reliable_than_r0(self):
        r0 = BrickParams(internal_raid="r0")
        r5 = BrickParams(internal_raid="r5")
        assert r0.data_loss_rate > 5 * r5.data_loss_rate

    def test_r5_rate_dominated_by_enclosure(self):
        brick = BrickParams(internal_raid="r5")
        lam_enclosure = 1.0 / brick.enclosure_mttf_hours
        assert brick.data_loss_rate == pytest.approx(lam_enclosure, rel=0.05)

    def test_reliable_array_boosts_enclosure(self):
        normal = BrickParams(internal_raid="r5")
        reliable = BrickParams(internal_raid="r5", reliable_array=True)
        assert reliable.data_loss_rate < normal.data_loss_rate

    def test_mttf_is_inverse_rate(self):
        brick = BrickParams()
        assert brick.mttf_hours == pytest.approx(1.0 / brick.data_loss_rate)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BrickParams(internal_raid="r6")
        with pytest.raises(ConfigurationError):
            BrickParams(disks_per_brick=1)

    def test_free_function_matches_property(self):
        brick = BrickParams()
        assert brick_failure_rate(brick) == brick.data_loss_rate
