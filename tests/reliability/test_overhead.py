"""The Figure 3 solver: storage overhead vs MTTDL requirement."""

import pytest

from repro.errors import ConfigurationError
from repro.reliability.components import BrickParams
from repro.reliability.overhead import (
    cheapest_erasure_code,
    cheapest_replication,
    overhead_curve,
)

R0 = BrickParams(internal_raid="r0")
R5 = BrickParams(internal_raid="r5")

CAPACITY = 256.0  # the paper's 256 TB system


class TestFigure3Anchors:
    """The paper's quoted numbers at the one-million-year requirement."""

    def test_replication_r0_needs_overhead_4(self):
        point = cheapest_replication(1e6, CAPACITY, R0)
        assert point is not None
        assert point.overhead == pytest.approx(4.0)

    def test_replication_r5_needs_about_3_2(self):
        point = cheapest_replication(1e6, CAPACITY, R5)
        assert point is not None
        assert 3.0 < point.overhead < 3.5

    def test_erasure_r0_needs_overhead_1_6(self):
        point = cheapest_erasure_code(1e6, CAPACITY, R0)
        assert point is not None
        assert point.overhead == pytest.approx(1.6)
        assert point.config == "EC(5,8)/r0"

    def test_erasure_r5_yet_lower(self):
        point = cheapest_erasure_code(1e6, CAPACITY, R5)
        assert point is not None
        assert point.overhead < 1.6


class TestCurveShape:
    TARGETS = [1e0, 1e2, 1e4, 1e6, 1e8, 1e10]

    def test_overhead_monotone_in_requirement(self):
        for scheme, brick in [("replication", R0), ("erasure", R0)]:
            points = overhead_curve(self.TARGETS, CAPACITY, brick, scheme)
            overheads = [p.overhead for p in points]
            assert overheads == sorted(overheads)

    def test_replication_rises_much_faster(self):
        """The headline of Figure 3."""
        replication = overhead_curve(self.TARGETS, CAPACITY, R0, "replication")
        erasure = overhead_curve(self.TARGETS, CAPACITY, R0, "erasure")
        for rep_point, ec_point in zip(replication, erasure):
            assert ec_point.overhead <= rep_point.overhead
        # At the high end the gap is large.
        assert replication[-1].overhead / erasure[-1].overhead > 2.0

    def test_achieved_meets_requirement(self):
        for point in overhead_curve(self.TARGETS, CAPACITY, R0, "erasure"):
            assert point.achieved_mttdl_years >= point.required_mttdl_years

    def test_unreachable_targets_dropped(self):
        points = overhead_curve([1e60], CAPACITY, R0, "replication")
        assert points == []

    def test_bad_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            overhead_curve([1e6], CAPACITY, R0, "raid2")

    def test_bad_m_rejected(self):
        with pytest.raises(ConfigurationError):
            cheapest_erasure_code(1e6, CAPACITY, R0, m=0)

    def test_low_requirement_is_cheap(self):
        point = cheapest_replication(1e-3, CAPACITY, R0)
        assert point.overhead == 1.0  # one copy suffices
