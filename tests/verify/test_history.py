"""History recorder."""

import pytest

from repro.types import ABORT, OpKind, OpStatus
from repro.verify.history import HistoryRecorder, OpRecord
from tests.conftest import make_cluster, stripe_of


class TestRecording:
    def test_tracks_successful_write_and_read(self):
        cluster = make_cluster(m=2, n=4, block_size=16)
        recorder = HistoryRecorder(cluster.env)
        coordinator = cluster.coordinators[1]
        stripe = stripe_of(2, 16, tag=1)
        wp = cluster.nodes[1].spawn(coordinator.write_stripe(0, stripe))
        write_record = recorder.track(wp, OpKind.WRITE_STRIPE, value=stripe)
        cluster.env.run()
        assert write_record.status is OpStatus.OK
        assert write_record.t_resp > write_record.t_inv

        rp = cluster.nodes[2].spawn(cluster.coordinators[2].read_stripe(0))
        read_record = recorder.track(rp, OpKind.READ_STRIPE)
        cluster.env.run()
        assert read_record.status is OpStatus.OK
        assert read_record.value == stripe

    def test_crash_marks_record(self):
        cluster = make_cluster(m=2, n=4, block_size=16)
        recorder = HistoryRecorder(cluster.env)
        coordinator = cluster.coordinators[1]
        process = cluster.nodes[1].spawn(
            coordinator.write_stripe(0, stripe_of(2, 16, tag=1))
        )
        record = recorder.track(process, OpKind.WRITE_STRIPE,
                                value=stripe_of(2, 16, tag=1))
        cluster.env.run(until=cluster.env.now + 1)
        cluster.crash(1)
        cluster.env.run()
        assert record.status is OpStatus.CRASHED

    def test_close_stamps_pending(self):
        cluster = make_cluster(m=2, n=4, block_size=16)
        recorder = HistoryRecorder(cluster.env)
        cluster.crash(3)
        cluster.crash(4)  # no quorum: op will hang
        coordinator = cluster.coordinators[1]
        process = cluster.nodes[1].spawn(
            coordinator.write_stripe(0, stripe_of(2, 16, tag=1))
        )
        record = recorder.track(process, OpKind.WRITE_STRIPE,
                                value=stripe_of(2, 16, tag=1))
        cluster.env.run(until=cluster.env.now + 50)
        recorder.close()
        assert record.status is OpStatus.PENDING

    def test_summary(self):
        cluster = make_cluster(m=2, n=4, block_size=16)
        recorder = HistoryRecorder(cluster.env)
        coordinator = cluster.coordinators[1]
        process = cluster.nodes[1].spawn(
            coordinator.write_stripe(0, stripe_of(2, 16, tag=1))
        )
        recorder.track(process, OpKind.WRITE_STRIPE, value=stripe_of(2, 16, 1))
        cluster.env.run()
        assert recorder.summary() == {"ok": 1}


class TestProjection:
    def make_record(self, kind, value, block_index=None, op_id=1):
        return OpRecord(
            op_id=op_id, kind=kind, block_index=block_index, value=value,
            t_inv=0.0, t_resp=1.0, status=OpStatus.OK,
        )

    def test_stripe_write_projects_to_each_block(self):
        record = self.make_record(OpKind.WRITE_STRIPE, [b"a", b"b", b"c"])
        recorder = HistoryRecorder.__new__(HistoryRecorder)
        recorder.records = [record]
        h1 = recorder.per_block_history(1)
        h3 = recorder.per_block_history(3)
        assert h1[0].value == b"a"
        assert h1[0].kind is OpKind.WRITE_BLOCK
        assert h3[0].value == b"c"

    def test_block_ops_filtered_by_index(self):
        record = self.make_record(OpKind.WRITE_BLOCK, b"x", block_index=2)
        recorder = HistoryRecorder.__new__(HistoryRecorder)
        recorder.records = [record]
        assert recorder.per_block_history(2) == [record]
        assert recorder.per_block_history(1) == []

    def test_nil_stripe_projects_to_nil_blocks(self):
        record = self.make_record(OpKind.READ_STRIPE, None)
        recorder = HistoryRecorder.__new__(HistoryRecorder)
        recorder.records = [record]
        assert recorder.per_block_history(1)[0].value is None

    def test_block_value_helper(self):
        record = self.make_record(OpKind.WRITE_STRIPE, [b"a", b"b"])
        assert record.block_value(1) == b"a"
        assert record.block_value(2) == b"b"
        block_record = self.make_record(OpKind.READ_BLOCK, b"z", block_index=2)
        assert block_record.block_value(2) == b"z"
        assert block_record.block_value(1) is None
