"""Per-block correctness of mixed stripe- and block-level traffic.

Appendix B reduces correctness of the full operation mix to per-block
histories.  These tests drive a live cluster with interleaved stripe
writes, block writes, multi-block writes, and reads from several
coordinators — including coordinator crashes — and check every block's
projected history with the Appendix-B checker.
"""

import random

import pytest

from repro.core.messages import ModifyReq, WriteReq
from repro.sim.failures import MessageCountTrigger
from repro.types import OpKind
from repro.verify import HistoryRecorder, check_strict_linearizability
from tests.conftest import make_cluster

M, N, B = 3, 5, 16


def payload(tag):
    return (f"x{tag}-".encode() * B)[:B]


def stripe_payload(tag):
    return [payload(f"{tag}.{i}") for i in range(M)]


def drive(cluster, recorder, plan):
    """Run a scripted op plan; each entry is (kind, pid, args)."""
    for kind, pid, args in plan:
        coordinator = cluster.coordinators[pid]
        node = cluster.nodes[pid]
        if not node.is_up:
            continue
        if kind == "ws":
            stripe = stripe_payload(args)
            process = node.spawn(coordinator.write_stripe(0, stripe))
            recorder.track(process, OpKind.WRITE_STRIPE, value=stripe,
                           coordinator=pid)
        elif kind == "wb":
            j, tag = args
            block = payload(tag)
            process = node.spawn(coordinator.write_block(0, j, block))
            recorder.track(process, OpKind.WRITE_BLOCK, value=block,
                           block_index=j, coordinator=pid)
        elif kind == "rs":
            process = node.spawn(coordinator.read_stripe(0))
            recorder.track(process, OpKind.READ_STRIPE, coordinator=pid)
        elif kind == "rb":
            process = node.spawn(coordinator.read_block(0, args))
            recorder.track(process, OpKind.READ_BLOCK, block_index=args,
                           coordinator=pid)
        cluster.env.run()
    recorder.close()


def assert_all_blocks_strict(recorder):
    for index in range(1, M + 1):
        result = check_strict_linearizability(
            recorder.per_block_history(index)
        )
        assert result.ok, (index, result.violations)


class TestMixedProjection:
    def test_sequential_mixed_traffic(self):
        cluster = make_cluster(m=M, n=N, block_size=B)
        recorder = HistoryRecorder(cluster.env)
        plan = [
            ("ws", 1, 1),
            ("rb", 2, 2),
            ("wb", 3, (2, "a")),
            ("rs", 4, None),
            ("wb", 5, (1, "b")),
            ("rb", 1, 1),
            ("ws", 2, 2),
            ("rb", 3, 3),
            ("rs", 4, None),
        ]
        drive(cluster, recorder, plan)
        assert_all_blocks_strict(recorder)

    def test_mixed_traffic_with_mid_stream_crash(self):
        cluster = make_cluster(m=M, n=N, block_size=B)
        recorder = HistoryRecorder(cluster.env)
        # Seed, then crash coordinator 1 mid stripe-write, then keep going.
        drive(cluster, recorder, [("ws", 2, 1)])
        MessageCountTrigger(cluster.network, cluster.nodes[1], 3, WriteReq)
        stripe = stripe_payload(2)
        process = cluster.nodes[1].spawn(
            cluster.coordinators[1].write_stripe(0, stripe)
        )
        recorder.track(process, OpKind.WRITE_STRIPE, value=stripe,
                       coordinator=1)
        cluster.env.run()
        drive(cluster, recorder, [
            ("rs", 3, None),
            ("wb", 4, (3, "c")),
            ("rb", 5, 3),
            ("rs", 2, None),
        ])
        assert_all_blocks_strict(recorder)

    def test_block_write_crash_mid_modify(self):
        cluster = make_cluster(m=M, n=N, block_size=B)
        recorder = HistoryRecorder(cluster.env)
        drive(cluster, recorder, [("ws", 2, 1)])
        MessageCountTrigger(cluster.network, cluster.nodes[1], 2, ModifyReq)
        block = payload("doomed")
        process = cluster.nodes[1].spawn(
            cluster.coordinators[1].write_block(0, 2, block)
        )
        recorder.track(process, OpKind.WRITE_BLOCK, value=block,
                       block_index=2, coordinator=1)
        cluster.env.run()
        drive(cluster, recorder, [
            ("rb", 3, 2),
            ("rb", 4, 2),
            ("rs", 5, None),
        ])
        assert_all_blocks_strict(recorder)

    @pytest.mark.parametrize("seed", [11, 22, 33])
    def test_randomized_plans(self, seed):
        rng = random.Random(seed)
        cluster = make_cluster(m=M, n=N, block_size=B, seed=seed,
                               min_latency=0.5, max_latency=2.0)
        recorder = HistoryRecorder(cluster.env)
        plan = []
        for step in range(20):
            pid = rng.randint(1, N)
            choice = rng.random()
            if choice < 0.3:
                plan.append(("ws", pid, f"s{seed}.{step}"))
            elif choice < 0.5:
                plan.append(("wb", pid, (rng.randint(1, M), f"b{seed}.{step}")))
            elif choice < 0.75:
                plan.append(("rs", pid, None))
            else:
                plan.append(("rb", pid, rng.randint(1, M)))
        drive(cluster, recorder, plan)
        assert_all_blocks_strict(recorder)
