"""The strict-linearizability checker against hand-built histories."""

import pytest

from repro.errors import VerificationError
from repro.types import OpKind, OpStatus
from repro.verify.history import OpRecord
from repro.verify.linearizability import (
    check_strict_linearizability,
    check_strict_linearizability_or_raise,
)

_ids = iter(range(1, 10_000))


def op(kind, value, t_inv, t_resp, status=OpStatus.OK):
    return OpRecord(
        op_id=next(_ids),
        kind=kind,
        block_index=1,
        value=value,
        t_inv=t_inv,
        t_resp=t_resp,
        status=status,
    )


def write(value, t_inv, t_resp, status=OpStatus.OK):
    return op(OpKind.WRITE_BLOCK, value, t_inv, t_resp, status)


def read(value, t_inv, t_resp, status=OpStatus.OK):
    return op(OpKind.READ_BLOCK, value, t_inv, t_resp, status)


class TestGoodHistories:
    def test_empty(self):
        assert check_strict_linearizability([]).ok

    def test_sequential(self):
        history = [
            write(b"a", 0, 1),
            read(b"a", 2, 3),
            write(b"b", 4, 5),
            read(b"b", 6, 7),
        ]
        assert check_strict_linearizability(history).ok

    def test_read_nil_before_any_write(self):
        history = [read(None, 0, 1), write(b"a", 2, 3), read(b"a", 4, 5)]
        assert check_strict_linearizability(history).ok

    def test_concurrent_writes_any_order(self):
        history = [
            write(b"a", 0, 10),
            write(b"b", 0, 10),
            read(b"b", 11, 12),
        ]
        assert check_strict_linearizability(history).ok

    def test_concurrent_read_sees_either(self):
        for seen in (b"a", b"b"):
            history = [
                write(b"a", 0, 1),
                write(b"b", 2, 10),
                read(seen, 3, 9),  # concurrent with write(b)
            ]
            assert check_strict_linearizability(history).ok, seen

    def test_crashed_write_never_observed(self):
        history = [
            write(b"a", 0, 1),
            write(b"b", 2, 3, status=OpStatus.CRASHED),
            read(b"a", 4, 5),
            read(b"a", 6, 7),
        ]
        assert check_strict_linearizability(history).ok

    def test_crashed_write_observed_rolled_forward(self):
        history = [
            write(b"a", 0, 1),
            write(b"b", 2, 3, status=OpStatus.CRASHED),
            read(b"b", 4, 5),
            read(b"b", 6, 7),
        ]
        assert check_strict_linearizability(history).ok

    def test_aborted_write_may_or_may_not_take_effect(self):
        for seen in (b"a", b"b"):
            history = [
                write(b"a", 0, 1),
                write(b"b", 2, 3, status=OpStatus.ABORTED),
                read(seen, 4, 5),
            ]
            assert check_strict_linearizability(history).ok, seen

    def test_zero_block_read_is_nil(self):
        history = [read(b"\x00" * 8, 0, 1)]
        assert check_strict_linearizability(history).ok

    def test_order_returned_when_ok(self):
        history = [write(b"a", 0, 1), read(b"a", 2, 3)]
        result = check_strict_linearizability(history)
        assert result.order is not None
        assert result.n_values == 1

    def test_pending_op_constrains_nothing(self):
        history = [
            write(b"a", 0, 1),
            write(b"b", 2, None, status=OpStatus.PENDING),
            read(b"a", 5, 6),
        ]
        assert check_strict_linearizability(history).ok


class TestBadHistories:
    def test_stale_read_after_newer_read(self):
        history = [
            write(b"a", 0, 1),
            write(b"b", 2, 3),
            read(b"b", 4, 5),
            read(b"a", 6, 7),  # goes backwards
        ]
        result = check_strict_linearizability(history)
        assert not result.ok

    def test_figure5_anomaly_detected(self):
        """The LS97 behaviour: crashed write resurfaces after a read
        that established the old value."""
        history = [
            write(b"v", 0, 1),
            write(b"w", 2, 3, status=OpStatus.CRASHED),  # partial
            read(b"v", 4, 5),   # rolled the partial write back
            read(b"w", 6, 7),   # ...but then it resurfaces: violation
        ]
        result = check_strict_linearizability(history)
        assert not result.ok
        assert any("cycle" in v for v in result.violations)

    def test_read_before_write_of_value(self):
        history = [read(b"x", 0, 1), write(b"x", 2, 3)]
        result = check_strict_linearizability(history)
        assert not result.ok

    def test_phantom_value(self):
        history = [write(b"a", 0, 1), read(b"ghost", 2, 3)]
        result = check_strict_linearizability(history)
        assert not result.ok
        assert any("no write wrote" in v for v in result.violations)

    def test_nil_read_after_value_read(self):
        history = [
            write(b"a", 0, 1),
            read(b"a", 2, 3),
            read(None, 4, 5),  # registers never lose values
        ]
        result = check_strict_linearizability(history)
        assert not result.ok

    def test_write_order_violated(self):
        history = [
            write(b"a", 0, 1),
            write(b"b", 2, 3),
            read(b"b", 4, 5),
            write(b"c", 6, 7),
            read(b"b", 8, 9),  # must be c
        ]
        assert not check_strict_linearizability(history).ok

    def test_duplicate_write_values_rejected(self):
        history = [write(b"a", 0, 1), write(b"a", 2, 3)]
        result = check_strict_linearizability(history)
        assert not result.ok
        assert any("unique-value" in v for v in result.violations)

    def test_or_raise(self):
        history = [write(b"a", 0, 1), read(b"ghost", 2, 3)]
        with pytest.raises(VerificationError):
            check_strict_linearizability_or_raise(history)


class TestStrictnessSpecifics:
    def test_traditional_but_not_strict_history(self):
        """Crashed write takes effect AFTER an intervening read of an
        older value: fine under traditional linearizability, forbidden
        under strict linearizability."""
        history = [
            write(b"v1", 0, 1),
            write(b"v2", 10, 12, status=OpStatus.CRASHED),
            read(b"v1", 20, 21),
            read(b"v2", 30, 31),
        ]
        assert not check_strict_linearizability(history).ok

    def test_crash_before_read_invocation_counts(self):
        """A crashed op's end event orders it before later invocations."""
        history = [
            write(b"v1", 0, 1),
            write(b"v2", 2, 5, status=OpStatus.CRASHED),
            read(b"v2", 6, 7),  # partial took effect before crash: OK
        ]
        assert check_strict_linearizability(history).ok

    def test_overlapping_crash_allows_either(self):
        """Read overlapping the crashed write may see old or new."""
        for seen in (b"v1", b"v2"):
            history = [
                write(b"v1", 0, 1),
                write(b"v2", 2, 8, status=OpStatus.CRASHED),
                read(seen, 4, 10),
            ]
            assert check_strict_linearizability(history).ok, seen
