"""Brute-force checker, and cross-validation against the graph checker."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.types import OpKind, OpStatus
from repro.verify.linearizability import check_strict_linearizability
from repro.verify.wing_gong import brute_force_linearizable
from tests.verify.test_linearizability import read, write


class TestBruteForce:
    def test_sequential_ok(self):
        history = [write(b"a", 0, 1), read(b"a", 2, 3)]
        assert brute_force_linearizable(history) is True

    def test_stale_read_rejected(self):
        history = [
            write(b"a", 0, 1),
            write(b"b", 2, 3),
            read(b"a", 4, 5),
        ]
        assert brute_force_linearizable(history) is False

    def test_crashed_write_optional(self):
        base = [
            write(b"a", 0, 1),
            write(b"b", 2, 3, status=OpStatus.CRASHED),
        ]
        assert brute_force_linearizable(base + [read(b"a", 4, 5)]) is True
        assert brute_force_linearizable(base + [read(b"b", 4, 5)]) is True

    def test_figure5_rejected(self):
        history = [
            write(b"v", 0, 1),
            write(b"w", 2, 3, status=OpStatus.CRASHED),
            read(b"v", 4, 5),
            read(b"w", 6, 7),
        ]
        assert brute_force_linearizable(history) is False

    def test_size_cap(self):
        history = [write(bytes([i]), 2 * i, 2 * i + 1) for i in range(1, 20)]
        assert brute_force_linearizable(history, max_ops=10) is None


def random_history(rng: random.Random, length: int):
    """A random (not necessarily valid) small history."""
    history = []
    values = [bytes([v]) for v in range(1, 6)]
    now = 0.0
    active = []
    for index in range(length):
        now += rng.uniform(0.1, 2.0)
        duration = rng.uniform(0.1, 3.0)
        status = rng.choice(
            [OpStatus.OK, OpStatus.OK, OpStatus.OK, OpStatus.CRASHED]
        )
        if rng.random() < 0.5:
            value = bytes([index + 1])  # unique write values
            history.append(write(value, now, now + duration, status))
        else:
            value = rng.choice(values + [None])
            history.append(read(value, now, now + duration, status))
    return history


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(40))
    def test_checkers_agree_on_random_histories(self, seed):
        rng = random.Random(seed)
        history = random_history(rng, rng.randint(2, 7))
        graph = check_strict_linearizability(history)
        brute = brute_force_linearizable(history)
        assert brute is not None
        if graph.ok != brute:
            # The graph checker is conservative in exactly one known
            # direction: conforming total orders are sufficient, not
            # necessary.  The brute-force checker must never reject a
            # history the graph checker accepts.
            assert brute and not graph.ok, (
                f"seed={seed}: graph={graph.ok} brute={brute} "
                f"{graph.violations}"
            )

    @pytest.mark.parametrize("seed", range(40, 60))
    def test_graph_acceptance_implies_brute_acceptance(self, seed):
        rng = random.Random(seed)
        history = random_history(rng, rng.randint(2, 7))
        graph = check_strict_linearizability(history)
        if graph.ok:
            assert brute_force_linearizable(history) is True


class TestStrictVsTraditional:
    """Figure 5 separates the two correctness notions exactly."""

    FIGURE5 = None  # built lazily to reuse the helpers

    def _figure5_history(self):
        return [
            write(b"v", 0, 1),
            write(b"w", 2, 3, status=OpStatus.CRASHED),  # partial
            read(b"v", 4, 5),   # rolled back...
            read(b"w", 6, 7),   # ...then resurfaces
        ]

    def test_fails_strict(self):
        assert brute_force_linearizable(self._figure5_history()) is False

    def test_passes_traditional(self):
        """Under traditional linearizability the crashed write may take
        effect between read2 and read3 — the LS97 behaviour is legal
        there, which is the paper's whole point."""
        assert brute_force_linearizable(
            self._figure5_history(), strict=False
        ) is True

    def test_strict_subset_of_traditional(self):
        """Anything strictly linearizable is traditionally linearizable."""
        import random as random_module

        for seed in range(25):
            rng = random_module.Random(seed)
            history = random_history(rng, rng.randint(2, 6))
            if brute_force_linearizable(history) is True:
                assert brute_force_linearizable(history, strict=False) is True
