"""Strict linearizability of pipelined multi-client session histories.

Two :class:`~repro.core.session.VolumeSession` clients hammer a
single-stripe volume concurrently; their merged, per-block-projected
histories must pass both the graph-based strict checker and the
Wing-Gong brute-force search (kept tiny so the exponential search is
feasible).  This is the Appendix-B check applied to the pipelined
client path rather than hand-built register calls.
"""

from dataclasses import replace

from repro import open_volume
from repro.types import OpKind
from repro.verify.history import OpRecord
from repro.verify.linearizability import check_strict_linearizability
from repro.verify.wing_gong import brute_force_linearizable


def merged_history(*sessions):
    """Merge session histories, re-keying op ids so they stay unique."""
    merged = []
    for session in sessions:
        for record in session.history():
            merged.append(replace(record, op_id=len(merged) + 1))
    return merged


def per_block(history, index):
    """Project a single-register history onto block ``index`` (1-based)."""
    projected = []
    for record in history:
        if record.kind in (OpKind.READ_BLOCK, OpKind.WRITE_BLOCK):
            if record.block_index == index:
                projected.append(record)
        else:  # stripe ops project via their index-th value
            projected.append(OpRecord(
                op_id=record.op_id,
                kind=OpKind.READ_BLOCK if record.is_read else OpKind.WRITE_BLOCK,
                block_index=index,
                value=record.block_value(index),
                t_inv=record.t_inv,
                t_resp=record.t_resp,
                status=record.status,
                coordinator=record.coordinator,
            ))
    return projected


def run_two_client_workload(seed):
    volume = open_volume(m=2, n=4, stripes=1, block_size=16, seed=seed)
    a = volume.session(max_inflight=2, seed=seed + 1)
    b = volume.session(max_inflight=2, seed=seed + 2)
    # Unique write values (checker precondition); both clients touch
    # both blocks so the projections contain genuine interleavings.
    a.submit_write(0, b"\x01" * 16)
    b.submit_write(1, b"\x02" * 16)
    a.submit_write(1, b"\x03" * 16)
    b.submit_read(0)
    a.submit_read(1)
    b.submit_write(0, b"\x04" * 16)
    a.drain()
    b.drain()
    return a, b


def test_pipelined_two_client_history_is_strictly_linearizable():
    a, b = run_two_client_workload(seed=21)
    history = merged_history(a, b)
    assert len(history) == 6
    for index in (1, 2):
        projection = per_block(history, index)
        graph = check_strict_linearizability(projection)
        brute = brute_force_linearizable(projection, max_ops=12)
        assert graph.ok, graph.violations
        assert brute is True
        # Two independent checkers, one verdict.
        assert bool(graph) == brute


def test_pipelined_history_checkers_agree_across_seeds():
    for seed in (31, 41, 51, 61):
        a, b = run_two_client_workload(seed)
        history = merged_history(a, b)
        for index in (1, 2):
            projection = per_block(history, index)
            graph = check_strict_linearizability(projection)
            brute = brute_force_linearizable(projection, max_ops=12)
            assert brute is not None
            assert graph.ok == brute, (seed, index, graph.violations)
            assert graph.ok


def test_session_history_expands_coalesced_ops_per_unit():
    volume = open_volume(m=2, n=4, stripes=1, block_size=16, seed=71)
    volume.stripe_shuffle = False
    with volume.session() as session:
        session.submit_write_range(0, [b"\x05" * 16, b"\x06" * 16])
        session.submit_read_range(0, 2)
    history = session.history()
    # One full-stripe write record plus one read record per unit.
    kinds = [record.kind for record in history]
    assert kinds.count(OpKind.WRITE_STRIPE) == 1
    assert kinds.count(OpKind.READ_BLOCK) == 2
    reads = [r for r in history if r.kind is OpKind.READ_BLOCK]
    assert {r.block_index for r in reads} == {1, 2}
    assert [r.value for r in sorted(reads, key=lambda r: r.block_index)] == [
        b"\x05" * 16, b"\x06" * 16,
    ]
