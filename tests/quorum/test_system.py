"""m-quorum system constructions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, QuorumError
from repro.quorum.system import ExplicitQuorumSystem, MajorityMQuorumSystem


class TestMajorityMQuorumSystem:
    def test_default_f_is_maximum(self):
        qs = MajorityMQuorumSystem(n=5, m=3)
        assert qs.f == 1
        assert qs.quorum_size == 4

    def test_explicit_f(self):
        qs = MajorityMQuorumSystem(n=7, m=3, f=1)
        assert qs.quorum_size == 6

    def test_f_above_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            MajorityMQuorumSystem(n=5, m=3, f=2)

    def test_negative_f_rejected(self):
        with pytest.raises(ConfigurationError):
            MajorityMQuorumSystem(n=5, m=3, f=-1)

    def test_bad_m_rejected(self):
        with pytest.raises(ConfigurationError):
            MajorityMQuorumSystem(n=5, m=0)
        with pytest.raises(ConfigurationError):
            MajorityMQuorumSystem(n=5, m=6)

    def test_universe(self):
        assert MajorityMQuorumSystem(4, 2).universe == (1, 2, 3, 4)

    def test_is_quorum(self):
        qs = MajorityMQuorumSystem(n=5, m=3)  # quorum size 4
        assert qs.is_quorum([1, 2, 3, 4])
        assert qs.is_quorum([1, 2, 3, 4, 5])
        assert not qs.is_quorum([1, 2, 3])
        # Out-of-universe and duplicate ids don't help.
        assert not qs.is_quorum([1, 2, 3, 3, 99])

    def test_quorums_enumeration(self):
        qs = MajorityMQuorumSystem(n=5, m=3)
        quorums = list(qs.quorums())
        assert len(quorums) == 5  # C(5, 4)
        assert all(len(q) == 4 for q in quorums)

    def test_find_live_quorum(self):
        qs = MajorityMQuorumSystem(n=5, m=3)
        quorum = qs.find_live_quorum([5, 3, 2, 1])
        assert quorum == frozenset({1, 2, 3, 5})

    def test_find_live_quorum_insufficient(self):
        qs = MajorityMQuorumSystem(n=5, m=3)
        with pytest.raises(QuorumError):
            qs.find_live_quorum([1, 2, 3])

    @settings(deadline=None, max_examples=50)
    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=12),
    )
    def test_any_two_quorums_intersect_in_m(self, n, m):
        if m > n:
            return
        qs = MajorityMQuorumSystem(n=n, m=m)
        # Worst case: two maximally disjoint quorums.
        q1 = frozenset(range(1, qs.quorum_size + 1))
        q2 = frozenset(range(n - qs.quorum_size + 1, n + 1))
        assert len(q1 & q2) >= m

    def test_min_quorum_size(self):
        qs = MajorityMQuorumSystem(n=8, m=5)
        assert qs.min_quorum_size() == qs.quorum_size == 7

    def test_repr(self):
        assert "quorum_size=4" in repr(MajorityMQuorumSystem(5, 3))


class TestExplicitQuorumSystem:
    def test_valid_family(self):
        import itertools

        family = [set(c) for c in itertools.combinations(range(1, 6), 4)]
        qs = ExplicitQuorumSystem(n=5, m=3, quorums=family, f=1)
        assert qs.is_quorum({1, 2, 3, 4})
        assert qs.is_quorum({1, 2, 3, 4, 5})
        assert not qs.is_quorum({1, 2, 3})

    def test_consistency_violation_rejected(self):
        with pytest.raises(ConfigurationError):
            ExplicitQuorumSystem(n=6, m=3, quorums=[{1, 2, 3}, {4, 5, 6}])

    def test_availability_violation_rejected(self):
        # Single quorum containing process 1: faulty set {1} kills it.
        with pytest.raises(ConfigurationError):
            ExplicitQuorumSystem(n=4, m=2, quorums=[{1, 2, 3}], f=1)

    def test_quorum_smaller_than_m_rejected(self):
        with pytest.raises(ConfigurationError):
            ExplicitQuorumSystem(n=4, m=3, quorums=[{1, 2}])

    def test_out_of_universe_member_rejected(self):
        with pytest.raises(ConfigurationError):
            ExplicitQuorumSystem(n=3, m=2, quorums=[{1, 2, 7}])

    def test_empty_family_rejected(self):
        with pytest.raises(ConfigurationError):
            ExplicitQuorumSystem(n=3, m=2, quorums=[])

    def test_find_live_quorum(self):
        qs = ExplicitQuorumSystem(
            n=4, m=2, quorums=[{1, 2, 3}, {2, 3, 4}], f=0
        )
        assert qs.find_live_quorum({2, 3, 4}) == frozenset({2, 3, 4})
        with pytest.raises(QuorumError):
            qs.find_live_quorum({1, 4})

    def test_min_quorum_size(self):
        qs = ExplicitQuorumSystem(
            n=5, m=2, quorums=[{1, 2, 3}, {2, 3, 4, 5}], f=0
        )
        assert qs.min_quorum_size() == 3
