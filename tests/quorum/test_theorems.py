"""Theorem 2: existence of m-quorum systems iff n >= 2f + m."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.quorum.system import MajorityMQuorumSystem
from repro.quorum.theorems import (
    canonical_f,
    max_fault_tolerance,
    min_processes,
    mquorum_exists,
    verify_quorum_system,
)


class TestBoundArithmetic:
    def test_exists_iff_bound(self):
        assert mquorum_exists(n=5, m=3, f=1)
        assert not mquorum_exists(n=5, m=3, f=2)
        assert mquorum_exists(n=8, m=5, f=1)
        assert not mquorum_exists(n=8, m=5, f=2)
        assert mquorum_exists(n=3, m=3, f=0)

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            mquorum_exists(0, 1, 0)
        with pytest.raises(ConfigurationError):
            mquorum_exists(3, 0, 0)
        with pytest.raises(ConfigurationError):
            mquorum_exists(3, 1, -1)

    def test_min_processes(self):
        assert min_processes(m=3, f=1) == 5
        assert min_processes(m=5, f=0) == 5
        assert min_processes(m=1, f=2) == 5  # classic majority quorums

    def test_max_fault_tolerance(self):
        assert max_fault_tolerance(n=5, m=3) == 1
        assert max_fault_tolerance(n=8, m=5) == 1
        assert max_fault_tolerance(n=9, m=5) == 2
        assert max_fault_tolerance(n=5, m=5) == 0

    def test_canonical_f_alias(self):
        assert canonical_f is max_fault_tolerance

    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=20),
    )
    def test_bound_consistency(self, m, f):
        n = min_processes(m, f)
        assert mquorum_exists(n, m, f)
        if n > 1:
            assert not mquorum_exists(n - 1, m, f)

    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=60),
    )
    def test_max_f_is_tight(self, m, n):
        if n < m:
            return
        f = max_fault_tolerance(n, m)
        assert mquorum_exists(n, m, f)
        assert not mquorum_exists(n, m, f + 1)


class TestCanonicalConstructionSatisfiesDefinition:
    """Exhaustively verify Definition 1 for every small (n, m)."""

    @pytest.mark.parametrize("n", range(1, 8))
    def test_exhaustive_small_universes(self, n):
        for m in range(1, n + 1):
            f = max_fault_tolerance(n, m)
            qs = MajorityMQuorumSystem(n=n, m=m, f=f)
            report = verify_quorum_system(n, m, f, qs.quorums())
            assert report.valid, (n, m, f, report.violations)

    def test_lemma3_direction(self):
        """If the canonical family fails, no system exists (Lemma 3).

        Checked contrapositively on a case below the bound: for
        n=4, m=3, f=1 the canonical family (all 3-subsets) violates
        consistency, and indeed no 3-quorum system tolerating one fault
        exists over 4 processes.
        """
        n, m, f = 4, 3, 1
        family = list(itertools.combinations(range(1, n + 1), n - f))
        report = verify_quorum_system(n, m, f, family)
        assert not report.consistent
        assert not mquorum_exists(n, m, f)


class TestVerifier:
    def test_reports_consistency_violation(self):
        report = verify_quorum_system(6, 3, 0, [{1, 2, 3}, {4, 5, 6}])
        assert not report.consistent
        assert report.violations

    def test_reports_availability_violation(self):
        report = verify_quorum_system(4, 2, 1, [{1, 2, 3}])
        assert not report.available

    def test_self_intersection_checked(self):
        # combinations_with_replacement includes (Q, Q): |Q| >= m needed.
        report = verify_quorum_system(4, 3, 0, [{1, 2}])
        assert not report.consistent

    def test_violation_cap(self):
        family = [{i} for i in range(1, 7)]
        report = verify_quorum_system(6, 2, 0, family, max_violations=3)
        assert len(report.violations) == 3
