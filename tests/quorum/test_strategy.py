"""Quorum selection strategies."""

import random

from repro.quorum.strategy import (
    ExcludeSuspectedStrategy,
    PreferredQuorumStrategy,
    RandomQuorumStrategy,
)

UNIVERSE = (1, 2, 3, 4, 5)


class TestRandomStrategy:
    def test_is_permutation(self):
        strategy = RandomQuorumStrategy(random.Random(1))
        order = strategy.order(UNIVERSE)
        assert sorted(order) == list(UNIVERSE)

    def test_deterministic_with_seed(self):
        a = RandomQuorumStrategy(random.Random(42)).order(UNIVERSE)
        b = RandomQuorumStrategy(random.Random(42)).order(UNIVERSE)
        assert a == b

    def test_pick(self):
        strategy = RandomQuorumStrategy(random.Random(0))
        assert len(strategy.pick(UNIVERSE, 3)) == 3


class TestPreferredStrategy:
    def test_preference_first(self):
        strategy = PreferredQuorumStrategy([4, 2])
        assert strategy.order(UNIVERSE) == [4, 2, 1, 3, 5]

    def test_unknown_preferences_ignored(self):
        strategy = PreferredQuorumStrategy([9, 3])
        assert strategy.order(UNIVERSE) == [3, 1, 2, 4, 5]

    def test_pick_respects_preference(self):
        strategy = PreferredQuorumStrategy([5, 4, 3, 2, 1])
        assert strategy.pick(UNIVERSE, 2) == [5, 4]


class TestExcludeSuspectedStrategy:
    def test_suspected_demoted_not_dropped(self):
        inner = PreferredQuorumStrategy([1, 2, 3, 4, 5])
        strategy = ExcludeSuspectedStrategy(inner)
        strategy.suspect(1)
        strategy.suspect(3)
        order = strategy.order(UNIVERSE)
        assert order == [2, 4, 5, 1, 3]
        assert sorted(order) == list(UNIVERSE)  # nothing dropped

    def test_unsuspect_restores(self):
        inner = PreferredQuorumStrategy([1, 2, 3, 4, 5])
        strategy = ExcludeSuspectedStrategy(inner)
        strategy.suspect(1)
        strategy.unsuspect(1)
        assert strategy.order(UNIVERSE) == [1, 2, 3, 4, 5]

    def test_suspected_property_is_copy(self):
        strategy = ExcludeSuspectedStrategy(PreferredQuorumStrategy([]))
        strategy.suspect(2)
        view = strategy.suspected
        view.add(99)
        assert strategy.suspected == {2}
