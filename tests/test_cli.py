"""The command-line experiment runner."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_figure2(self, capsys):
        assert main(["figure2", "--capacities", "1", "100"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "EC(5,8)/R0" in out

    def test_figure3(self, capsys):
        assert main(["figure3", "--capacity", "256"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "replication/R0" in out

    def test_table1(self, capsys):
        assert main(["table1", "--n", "4", "--m", "2", "--block-size", "64"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "read-stripe/fast" in out

    def test_demo(self, capsys):
        assert main(["demo", "--n", "4", "--m", "2", "--block-size", "32"]) == 0
        out = capsys.readouterr().out
        assert "read still matches: True" in out

    def test_scrub(self, capsys):
        assert main(["scrub", "--stripes", "3"]) == 0
        out = capsys.readouterr().out
        assert "stale after rebuild: 0" in out

    def test_pipeline(self, capsys, tmp_path):
        out_file = tmp_path / "pipeline.txt"
        assert main([
            "pipeline", "--inflights", "1", "8", "--ops", "30",
            "--out", str(out_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "throughput vs max_inflight" in out
        assert "scripted coordinator crash" in out
        assert "throughput vs max_inflight" in out_file.read_text()

    def test_simcore(self, capsys, tmp_path):
        import json

        json_file = tmp_path / "simcore.json"
        out_file = tmp_path / "simcore.txt"
        assert main([
            "simcore", "--pairs", "2,4", "--ops", "40",
            "--json", str(json_file), "--out", str(out_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "Simulator-core profile" in out
        assert "fast-vs-seed ops/sec speedup" in out
        payload = json.loads(json_file.read_text())
        assert payload["benchmark"] == "simcore"
        assert {case["path"] for case in payload["cases"]} == {"seed", "fast"}
        assert "(2,4)x40" in payload["speedup_fast_over_seed"]
        assert "Simulator-core profile" in out_file.read_text()

    def test_erasure_bench(self, capsys, tmp_path):
        import json

        json_file = tmp_path / "erasure.json"
        out_file = tmp_path / "erasure.txt"
        assert main([
            "erasure-bench", "--pairs", "2,4", "--block-sizes", "1024",
            "--budget-mib", "0.25",
            "--json", str(json_file), "--out", str(out_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "Erasure-kernel throughput" in out
        assert "table-vs-masked encode speedup" in out
        payload = json.loads(json_file.read_text())
        assert payload["benchmark"] == "erasure"
        assert {case["backend"] for case in payload["cases"]} == {
            "masked", "table", "bytes"
        }
        assert "reed-solomon(2,4)x1024" in payload[
            "speedup_table_over_masked"
        ]
        assert "Erasure-kernel throughput" in out_file.read_text()

    def test_erasure_bench_min_speedup_gate(self, capsys, tmp_path):
        json_file = tmp_path / "erasure.json"
        # An impossible bar exits 1; the headline cell is auto-appended.
        assert main([
            "erasure-bench", "--pairs", "2,4", "--block-sizes", "1024",
            "--budget-mib", "0.25", "--min-speedup", "1e9",
            "--json", str(json_file),
        ]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_parser_help_lists_commands(self):
        parser = build_parser()
        help_text = parser.format_help()
        for command in (
            "figure2", "figure3", "table1", "demo", "scrub", "pipeline",
            "simcore", "erasure-bench",
        ):
            assert command in help_text
