"""Shared types: ABORT sentinel, stripe configuration."""

import pickle

import pytest

from repro.errors import CodingError, ConfigurationError
from repro.types import ABORT, NIL, StripeConfig, validate_stripe
from repro.types import _AbortType


class TestAbortSentinel:
    def test_singleton(self):
        assert _AbortType() is ABORT

    def test_falsy(self):
        assert not ABORT

    def test_repr(self):
        assert repr(ABORT) == "ABORT"

    def test_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(ABORT)) is ABORT

    def test_distinct_from_none(self):
        assert ABORT is not None
        assert NIL is None


class TestStripeConfig:
    def test_basic(self):
        config = StripeConfig(m=3, n=5, block_size=512)
        assert config.parity_count == 2
        assert config.fault_tolerance == 1
        assert config.quorum_size == 4
        assert config.stripe_size == 1536

    def test_paper_example(self):
        """The Section 4.1.1 example: m=5, n=7 gives quorum size 6."""
        config = StripeConfig(m=5, n=7, block_size=1)
        assert config.fault_tolerance == 1
        assert config.quorum_size == 6

    def test_process_partitions(self):
        config = StripeConfig(m=2, n=4, block_size=1)
        assert config.data_processes() == (1, 2)
        assert config.parity_processes() == (3, 4)
        assert config.all_processes() == (1, 2, 3, 4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StripeConfig(m=0, n=3, block_size=1)
        with pytest.raises(ConfigurationError):
            StripeConfig(m=4, n=3, block_size=1)
        with pytest.raises(ConfigurationError):
            StripeConfig(m=2, n=3, block_size=0)


class TestValidateStripe:
    def test_accepts_good_stripe(self):
        config = StripeConfig(m=2, n=3, block_size=4)
        validate_stripe([b"aaaa", b"bbbb"], config)

    def test_rejects_wrong_arity(self):
        config = StripeConfig(m=2, n=3, block_size=4)
        with pytest.raises(CodingError):
            validate_stripe([b"aaaa"], config)

    def test_rejects_wrong_size(self):
        config = StripeConfig(m=2, n=3, block_size=4)
        with pytest.raises(CodingError):
            validate_stripe([b"aaaa", b"bb"], config)

    def test_rejects_non_bytes(self):
        config = StripeConfig(m=1, n=2, block_size=4)
        with pytest.raises(CodingError):
            validate_stripe(["aaaa"], config)
