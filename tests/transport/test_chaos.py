"""ChaosTransport: seeded fault injection over sim and asyncio inners."""

import pytest

from repro.core.client import RetryPolicy
from repro.core.cluster import ClusterConfig, FabCluster
from repro.core.volume import LogicalVolume
from repro.errors import ConfigurationError
from repro.campaign.schedule import CampaignSchedule, FaultEvent
from repro.transport import make_transport
from repro.transport.chaos import (
    ChaosPolicy,
    ChaosTransport,
    DropWindow,
    LinkChaos,
    PartitionWindow,
)
from repro.transport.sim import SimTransport


def _chaos_cluster(policy, m=3, n=5, stripes=4, seed=11):
    transport = ChaosTransport(SimTransport(), policy)
    cluster = FabCluster(
        ClusterConfig(m=m, n=n, seed=seed), transport=transport
    )
    return cluster, LogicalVolume(cluster, num_stripes=stripes), transport


def _run_workload(volume, rounds=3):
    """Write/read every block a few rounds; returns the read-back values."""
    blocks = volume.num_blocks
    values = {}
    with volume.session(max_inflight=4, seed=5) as session:
        for round_index in range(rounds):
            for block in range(blocks):
                data = (
                    f"r{round_index}b{block}.".encode()
                    * volume.block_size
                )[:volume.block_size]
                session.submit_write(block, data)
                values[block] = data
        reads = [session.submit_read(block) for block in range(blocks)]
    assert all(op.ok for op in session.ops)
    for block, op in enumerate(reads):
        assert op.value == values[block]
    return session


# -- policy data model ----------------------------------------------------


def test_policy_json_round_trip():
    policy = ChaosPolicy(
        seed=42,
        default=LinkChaos(drop=0.05, delay=0.1, delay_range=(2.0, 6.0)),
        links={(1, 2): LinkChaos(drop=0.5, corrupt=0.1)},
        partitions=[PartitionWindow(start=10.0, end=50.0, group=(2, 3))],
        drop_windows=[DropWindow(start=5.0, end=25.0, probability=0.3)],
    )
    restored = ChaosPolicy.from_json(policy.to_json())
    assert restored.seed == 42
    assert restored.default == policy.default
    assert restored.links == policy.links
    assert restored.partitions == policy.partitions
    assert restored.drop_windows == policy.drop_windows
    assert restored.link(1, 2).drop == 0.5
    assert restored.link(2, 1) == restored.default


def test_policy_validates_probabilities():
    with pytest.raises(ConfigurationError, match="drop"):
        LinkChaos(drop=1.5)
    with pytest.raises(ConfigurationError, match="delay_range"):
        LinkChaos(delay_range=(5.0, 1.0))
    with pytest.raises(ConfigurationError, match="end >= start"):
        PartitionWindow(start=10.0, end=5.0, group=(1,))
    with pytest.raises(ConfigurationError, match="probability"):
        DropWindow(start=0.0, end=1.0, probability=2.0)


def test_partition_window_cuts_only_across_group():
    window = PartitionWindow(start=0.0, end=100.0, group=(1, 2))
    assert window.cuts(1, 3, now=50.0)
    assert window.cuts(3, 1, now=50.0)
    assert not window.cuts(1, 2, now=50.0)  # inside the group
    assert not window.cuts(3, 4, now=50.0)  # inside the complement
    assert not window.cuts(1, 3, now=100.0)  # window over


def test_from_schedule_projects_link_faults():
    schedule = CampaignSchedule(events=[
        FaultEvent(time=10.0, kind="partition", targets=(2,)),
        FaultEvent(time=20.0, kind="drop_start", value=0.25),
        FaultEvent(time=50.0, kind="heal"),
        FaultEvent(time=60.0, kind="drop_stop"),
        FaultEvent(time=70.0, kind="crash", targets=(1,)),
    ], seed=9)
    policy = ChaosPolicy.from_schedule(schedule)
    assert policy.seed == 9
    assert policy.partitions == [
        PartitionWindow(start=10.0, end=50.0, group=(2,))
    ]
    assert policy.drop_windows == [
        DropWindow(start=20.0, end=60.0, probability=0.25)
    ]
    scaled = policy.scaled(2.0)
    assert scaled.partitions[0].end == 100.0
    assert scaled.drop_windows[0].start == 40.0


def test_unclosed_schedule_windows_close_at_horizon():
    schedule = CampaignSchedule(events=[
        FaultEvent(time=10.0, kind="partition", targets=(3,)),
        FaultEvent(time=40.0, kind="crash", targets=(1,)),
    ])
    partitions, _drops = schedule.link_windows()
    assert partitions == [(10.0, 40.0, (3,))]


def test_make_transport_wraps_with_chaos_policy():
    transport = make_transport("sim", chaos_policy=ChaosPolicy(seed=1))
    assert isinstance(transport, ChaosTransport)
    assert isinstance(transport.inner, SimTransport)


# -- behaviour on the sim substrate ---------------------------------------


def test_quiet_policy_is_transparent():
    """An empty policy must not perturb the run at all."""
    _cluster, volume, transport = _chaos_cluster(ChaosPolicy(seed=3))
    _run_workload(volume)
    assert transport.stats.dropped == 0
    assert transport.stats.corrupted == 0
    assert transport.stats.forwarded > 0


def test_fixed_seed_chaos_run_is_bit_identical():
    """Two runs with identical seeds produce identical fault decisions,
    identical retry behaviour, and identical chaos counters."""

    def one_run():
        policy = ChaosPolicy(
            seed=21,
            default=LinkChaos(
                drop=0.08, delay=0.1, duplicate=0.05, reorder=0.05
            ),
        )
        _cluster, volume, transport = _chaos_cluster(policy, seed=13)
        session = _run_workload(volume)
        return (
            transport.stats.to_dict(),
            session.stats.retries,
            session.stats.failovers,
            [op.attempts for op in session.ops],
        )

    assert one_run() == one_run()


def test_drop_rate_heals_via_retransmission():
    """10% loss on every link costs retransmissions, never results."""
    policy = ChaosPolicy(seed=7, default=LinkChaos(drop=0.10))
    _cluster, volume, transport = _chaos_cluster(policy)
    _run_workload(volume)
    assert transport.stats.dropped > 0


def test_partition_window_masked_by_quorum():
    """Cutting one brick (f=1) for a window still completes every op;
    the window's kills are accounted separately from random drops."""
    policy = ChaosPolicy(
        seed=5,
        partitions=[PartitionWindow(start=0.0, end=150.0, group=(2,))],
    )
    _cluster, volume, transport = _chaos_cluster(policy)
    _run_workload(volume)
    assert transport.stats.partition_dropped > 0
    assert transport.stats.dropped == 0


def test_drop_window_elevates_loss_temporarily():
    policy = ChaosPolicy(
        seed=17,
        drop_windows=[DropWindow(start=0.0, end=100.0, probability=0.3)],
    )
    _cluster, volume, transport = _chaos_cluster(policy)
    _run_workload(volume)
    assert transport.stats.window_dropped > 0


def test_corruption_is_detected_and_becomes_erasure():
    """Bit-flipped frames always fail the CRC check: they are counted
    and *discarded*, never delivered — so the workload still completes
    with correct values (corrupt-as-erasure)."""
    policy = ChaosPolicy(seed=29, default=LinkChaos(corrupt=0.15))
    _cluster, volume, transport = _chaos_cluster(policy)
    _run_workload(volume)
    assert transport.stats.corrupted > 0
    # Every corrupted frame was dropped, not delivered: delivery count
    # excludes them by construction, and results above verified clean.


def test_duplicate_and_reorder_are_absorbed():
    """Duplicated and reordered deliveries are protocol no-ops (the
    reply cache and timestamp order absorb them)."""
    policy = ChaosPolicy(
        seed=31, default=LinkChaos(duplicate=0.2, reorder=0.15)
    )
    _cluster, volume, transport = _chaos_cluster(policy)
    _run_workload(volume)
    assert transport.stats.duplicated > 0
    assert transport.stats.reordered > 0


def test_chaos_transport_delegates_surface():
    """The wrapper is a faithful Transport: clock, peer state, network
    accessor, and metrics adoption all reach the inner substrate."""
    inner = SimTransport()
    transport = ChaosTransport(inner, ChaosPolicy())
    assert transport.env is inner.env
    assert transport.now() == inner.now()
    assert transport.peer_state(1) == "up"
    assert transport.network is inner.network
    sink = object()
    transport.metrics = sink
    assert inner.metrics is sink


def test_session_transport_budget_aborts_cleanly():
    """When every brick is transport-down, operations burn the separate
    transport_attempts budget and finish with a clean timeout abort
    instead of hanging."""
    from repro.types import ABORT

    cluster, volume, transport = _chaos_cluster(ChaosPolicy())
    for pid in list(cluster.nodes):
        transport.inner.network._down.add(pid)
        # Nodes stay formally up: only the transport says "down".
    retry = RetryPolicy(attempts=3, backoff=1.0, transport_attempts=3)
    session = volume.session(max_inflight=1, retry=retry)
    op = session.submit_write(0, b"x" * volume.block_size)
    session.drain()
    assert op.status == "timeout"
    assert op.value is ABORT
    assert session.stats.transport_retries == 3
    assert session.stats.timeouts == 1
