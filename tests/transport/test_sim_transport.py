"""SimTransport, the make_transport factory, and Endpoint plumbing."""

import pytest

from repro import api
from repro.errors import ConfigurationError, StorageError
from repro.sim.network import NetworkConfig
from repro.transport import (
    SimTransport,
    Transport,
    TRANSPORT_KINDS,
    make_transport,
)
from repro.transport.base import Endpoint


def test_factory_default_is_sim():
    transport = make_transport()
    assert isinstance(transport, SimTransport)
    assert isinstance(transport, Transport)
    assert transport.env is not None
    assert transport.network is not None


def test_factory_unknown_kind_lists_valid_kinds():
    with pytest.raises(ConfigurationError) as excinfo:
        make_transport("zeromq")
    for kind in TRANSPORT_KINDS:
        assert kind in str(excinfo.value)


def test_factory_rejects_network_knobs_for_asyncio():
    with pytest.raises(ConfigurationError, match="transport='sim'"):
        make_transport("asyncio", network_config=NetworkConfig())


def test_factory_builds_asyncio_kinds():
    from repro.transport.aio import AsyncioTransport

    loopback = make_transport("asyncio")
    assert isinstance(loopback, AsyncioTransport)
    assert loopback.mode == "loopback"
    tcp = make_transport("asyncio-tcp")
    assert tcp.mode == "tcp"


def test_set_timer_fires_and_cancel_suppresses():
    transport = make_transport()
    fired = []
    transport.set_timer(5.0, lambda: fired.append(transport.now()))
    doomed = transport.set_timer(3.0, lambda: fired.append("cancelled"))
    transport.cancel_timer(doomed)
    transport.run(until=10.0)
    assert fired == [5.0]
    assert transport.now() == 10.0


def test_spawn_runs_a_generator_to_completion():
    transport = make_transport()

    def ticker():
        yield transport.timer(2.0)
        return transport.now()

    process = transport.spawn(ticker())
    assert transport.run_until_complete(process) == 2.0


def test_endpoints_exchange_messages_and_respect_down():
    transport = make_transport()
    received = []
    a = Endpoint(transport, 1)
    b = Endpoint(transport, 2)
    b.register_handler(str, lambda src, payload: received.append((src, payload)))
    a.send(2, "hello")
    transport.run(until=50.0)
    assert received == [(1, "hello")]

    b.crash()
    a.send(2, "lost")
    transport.run(until=100.0)
    assert received == [(1, "hello")]
    with pytest.raises(StorageError, match="down"):
        b.spawn(iter(()))
    b.recover()
    assert b.is_up and b.crash_count == 1


def test_open_cluster_sim_is_the_default_path():
    cluster = api.open_cluster(m=3, n=5, transport="sim")
    assert isinstance(cluster.transport, SimTransport)
    volume = api.open_volume(cluster, blocks=3)
    data = b"t" * cluster.config.block_size
    assert volume.write(0, data) == "OK"
    assert volume.read(0) == data


def test_open_cluster_asyncio_refuses_sync_run():
    from repro.errors import SimulationError

    cluster = api.open_cluster(m=3, n=5, transport="asyncio")
    with pytest.raises(SimulationError, match="serve"):
        cluster.run(until=1.0)


def test_unknown_transport_knob_error_mentions_transport():
    with pytest.raises(ConfigurationError, match="transport"):
        api.open_cluster(transporte="sim")
