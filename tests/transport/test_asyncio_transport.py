"""AsyncioTransport end-to-end: loopback serve, TCP framing, drain_async."""

import asyncio
import json

import pytest

from repro import api
from repro.analysis.serve import run_serve
from repro.errors import ConfigurationError, SimulationError


def test_loopback_serve_end_to_end(tmp_path):
    """A small serve run completes with zero failed sessions and a
    well-formed JSON artifact."""
    json_out = tmp_path / "BENCH_serve.json"
    result = run_serve(
        clients=8, ops_per_client=4, mode="loopback", json_out=str(json_out)
    )
    assert result["failed_sessions"] == 0
    assert result["failed_ops"] == 0
    assert result["total_ops"] == 8 * 4
    assert result["ops_per_sec"] > 0
    assert result["p99_ms"] >= result["p50_ms"] >= 0
    on_disk = json.loads(json_out.read_text())
    assert on_disk == result


def test_tcp_serve_smoke(tmp_path):
    """The same protocol over real sockets (skipped if the port range
    is unavailable in the environment)."""
    try:
        result = run_serve(
            clients=3,
            ops_per_client=2,
            mode="tcp",
            base_port=7711,
            json_out=str(tmp_path / "BENCH_serve_tcp.json"),
        )
    except OSError as error:  # pragma: no cover - sandboxed environments
        pytest.skip(f"cannot bind TCP ports: {error}")
    assert result["failed_sessions"] == 0
    assert result["mode"] == "tcp"


def test_serve_validates_inputs():
    with pytest.raises(ConfigurationError, match="clients"):
        run_serve(clients=0)
    with pytest.raises(ConfigurationError, match="ops per client"):
        run_serve(ops_per_client=0)


def test_asyncio_cluster_rejects_sync_register_driving():
    cluster = api.open_cluster(m=3, n=5, transport="asyncio")
    register = cluster.register(0)
    with pytest.raises(SimulationError, match="synchronously"):
        register.read_stripe()


def test_drain_async_works_on_sim_transport():
    """drain_async is substrate-agnostic: on the sim transport it steps
    the kernel synchronously inside the event loop."""
    volume = api.open_volume(m=3, n=5, blocks=6)
    data = b"d" * volume.block_size

    async def drive():
        session = volume.session(max_inflight=4)
        session.submit_write(0, data)
        session.submit_read(0)
        return await session.drain_async()

    ops = asyncio.run(drive())
    assert [op.ok for op in ops] == [True, True]
    assert ops[1].value == data


def test_outbox_overflow_and_unregister_account_drops():
    """An unreachable peer's outbox is bounded: overflow is shed as
    counted drops, and unregister reaps the backlog and health state."""
    from repro.transport.aio import AsyncioTransport

    transport = AsyncioTransport(
        mode="tcp",
        base_port=7771,
        outbox_limit=4,
        reconnect_base_s=0.01,
        reconnect_cap_s=0.02,
        connect_timeout_s=0.2,
        down_after=2,
    )
    transport.register(1, lambda message: None)

    async def drive():
        try:
            await transport.start()
        except OSError as error:  # pragma: no cover - sandboxed envs
            pytest.skip(f"cannot bind TCP ports: {error}")
        try:
            # Peer 9 has no listener: its writer task can never connect.
            for _ in range(10):
                transport.send(1, 9, "noise", size=8)
            # 4 frames queue, 6 overflow the bounded outbox.
            assert transport.outbox_drops[9] == 6
            # Repeated refused connects walk the health machine down.
            for _ in range(100):
                if transport.peer_state(9) == "down":
                    break
                await asyncio.sleep(0.02)
            assert transport.peer_state(9) == "down"
            # Unregister drains the queued backlog as counted drops and
            # forgets the peer's health record.
            transport.unregister(9)
            assert transport.outbox_drops[9] == 10
            assert transport.peer_state(9) == "up"
        finally:
            await transport.stop()

    asyncio.run(drive())


def test_pump_death_surfaces_instead_of_hanging():
    """Once the pump dies, send/set_timer/stop raise the failure as a
    TerminalTransportError rather than silently queueing work that no
    pump will ever dispatch."""
    from repro.errors import TerminalTransportError
    from repro.transport.aio import AsyncioTransport

    transport = AsyncioTransport(mode="loopback")
    transport.register(1, lambda message: None)

    async def drive():
        await transport.start()
        transport.set_timer(0.001, _boom)
        for _ in range(100):
            if transport._pump_error is not None:
                break
            await asyncio.sleep(0.01)
        with pytest.raises(TerminalTransportError, match="pump died"):
            transport.send(1, 1, "late")
        with pytest.raises(TerminalTransportError, match="pump died"):
            transport.set_timer(1.0, lambda: None)
        # SimulationError compatibility: protocol code catching the
        # old taxonomy still sees the terminal failure.
        with pytest.raises(SimulationError):
            transport.send(1, 1, "late")
        with pytest.raises(TerminalTransportError, match="pump died"):
            await transport.stop()

    asyncio.run(drive())


def _boom() -> None:
    raise RuntimeError("injected pump failure")


def test_timer_handles_cancel_before_start():
    """Timers armed before start() fire once the pump runs; cancelled
    ones never do."""
    from repro.transport.aio import AsyncioTransport

    transport = AsyncioTransport(mode="loopback", time_scale=1000.0)
    fired = []

    async def drive():
        await transport.start()
        transport.set_timer(1.0, lambda: fired.append("kept"))
        doomed = transport.set_timer(1.0, lambda: fired.append("cancelled"))
        transport.cancel_timer(doomed)
        await asyncio.sleep(0.05)
        await transport.stop()

    asyncio.run(drive())
    assert fired == ["kept"]
