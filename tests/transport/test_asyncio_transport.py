"""AsyncioTransport end-to-end: loopback serve, TCP framing, drain_async."""

import asyncio
import json

import pytest

from repro import api
from repro.analysis.serve import run_serve
from repro.errors import ConfigurationError, SimulationError


def test_loopback_serve_end_to_end(tmp_path):
    """A small serve run completes with zero failed sessions and a
    well-formed JSON artifact."""
    json_out = tmp_path / "BENCH_serve.json"
    result = run_serve(
        clients=8, ops_per_client=4, mode="loopback", json_out=str(json_out)
    )
    assert result["failed_sessions"] == 0
    assert result["failed_ops"] == 0
    assert result["total_ops"] == 8 * 4
    assert result["ops_per_sec"] > 0
    assert result["p99_ms"] >= result["p50_ms"] >= 0
    on_disk = json.loads(json_out.read_text())
    assert on_disk == result


def test_tcp_serve_smoke(tmp_path):
    """The same protocol over real sockets (skipped if the port range
    is unavailable in the environment)."""
    try:
        result = run_serve(
            clients=3,
            ops_per_client=2,
            mode="tcp",
            base_port=7711,
            json_out=str(tmp_path / "BENCH_serve_tcp.json"),
        )
    except OSError as error:  # pragma: no cover - sandboxed environments
        pytest.skip(f"cannot bind TCP ports: {error}")
    assert result["failed_sessions"] == 0
    assert result["mode"] == "tcp"


def test_serve_validates_inputs():
    with pytest.raises(ConfigurationError, match="clients"):
        run_serve(clients=0)
    with pytest.raises(ConfigurationError, match="ops per client"):
        run_serve(ops_per_client=0)


def test_asyncio_cluster_rejects_sync_register_driving():
    cluster = api.open_cluster(m=3, n=5, transport="asyncio")
    register = cluster.register(0)
    with pytest.raises(SimulationError, match="synchronously"):
        register.read_stripe()


def test_drain_async_works_on_sim_transport():
    """drain_async is substrate-agnostic: on the sim transport it steps
    the kernel synchronously inside the event loop."""
    volume = api.open_volume(m=3, n=5, blocks=6)
    data = b"d" * volume.block_size

    async def drive():
        session = volume.session(max_inflight=4)
        session.submit_write(0, data)
        session.submit_read(0)
        return await session.drain_async()

    ops = asyncio.run(drive())
    assert [op.ok for op in ops] == [True, True]
    assert ops[1].value == data


def test_timer_handles_cancel_before_start():
    """Timers armed before start() fire once the pump runs; cancelled
    ones never do."""
    from repro.transport.aio import AsyncioTransport

    transport = AsyncioTransport(mode="loopback", time_scale=1000.0)
    fired = []

    async def drive():
        await transport.start()
        transport.set_timer(1.0, lambda: fired.append("kept"))
        doomed = transport.set_timer(1.0, lambda: fired.append("cancelled"))
        transport.cancel_timer(doomed)
        await asyncio.sleep(0.05)
        await transport.stop()

    asyncio.run(drive())
    assert fired == ["kept"]
