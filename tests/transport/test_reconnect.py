"""Reconnect lifecycle over real sockets: kill a brick's listener
mid-run, heal through capped-backoff reconnects, and keep the books.

The scenario ISSUE 10 calls the kill-server-mid-run test: a five-brick
cluster on the TCP transport loses one brick's network presence while
a session is writing (no ``set_down`` — the protocol is never told),
keeps completing operations on the surviving ``n - f`` quorum, and
after the listener returns the writer tasks re-adopt it through their
reconnect loops.  The session must finish with every operation OK, the
read-backs must match the last writes, the healed run must stay
linearizable per block (no duplicate-write anomalies from flushed
stale frames), and every frame lost along the way must be a *counted*
drop.
"""

import asyncio

import pytest

from repro.core.client import RetryPolicy
from repro.core.cluster import ClusterConfig, FabCluster
from repro.core.volume import LogicalVolume
from repro.transport.aio import AsyncioTransport
from repro.verify.linearizability import check_strict_linearizability

#: Outage-tolerant session policy: attempt timeouts abandon a
#: coordinator whose replies are blackholed (the brick whose listener
#: died can still *send* but never hears back), and the failover
#: budget rotates to a reachable one.
OUTAGE_RETRY = RetryPolicy(
    attempts=12,
    backoff=4.0,
    backoff_growth=1.5,
    jitter=0.5,
    attempt_timeout=400.0,
    max_failovers=64,
)


def _payload(tag: str, block: int, size: int) -> bytes:
    return (f"{tag}b{block}.".encode() * size)[:size]


def test_kill_server_mid_run_heals_via_reconnect():
    transport = AsyncioTransport(
        mode="tcp",
        base_port=7751,
        reconnect_base_s=0.02,
        reconnect_cap_s=0.1,
        connect_timeout_s=0.5,
        write_timeout_s=0.5,
        down_after=2,
    )
    cluster = FabCluster(
        ClusterConfig(m=3, n=5, block_size=64, transport="asyncio"),
        transport=transport,
    )
    volume = LogicalVolume(cluster, num_stripes=2)
    blocks = volume.num_blocks

    async def drive():
        try:
            await transport.start()
        except OSError as error:  # pragma: no cover - sandboxed envs
            pytest.skip(f"cannot bind TCP ports: {error}")
        values = {}
        try:
            session = volume.session(
                max_inflight=2, seed=3, retry=OUTAGE_RETRY
            )
            # Healthy warm-up: every block holds a known value.
            for block in range(blocks):
                value = _payload("warm", block, volume.block_size)
                session.submit_write(block, value)
                values[block] = value
            await session.drain_async()

            # Brick 2's network presence dies mid-run.  Quorum is
            # n - f = 4, so the four reachable bricks keep absorbing
            # writes while frames to brick 2 pile into its outbox.
            await transport.stop_server(2)
            for block in range(blocks):
                value = _payload("outage", block, volume.block_size)
                session.submit_write(block, value)
                values[block] = value
            await session.drain_async()

            # The listener returns; reconnect loops re-adopt it.
            await transport.start_server(2)
            reads = [session.submit_read(block) for block in range(blocks)]
            await session.drain_async()

            # The read round sent frames to brick 2, so its writer task
            # reconnects within the 0.1 s backoff cap; wait for the
            # health machine to confirm rather than racing it.
            for _ in range(100):
                if transport.peer_state(2) == "up":
                    break
                await asyncio.sleep(0.05)
            return session, reads, values
        finally:
            await transport.stop()

    session, reads, values = asyncio.run(drive())

    # Every operation completed despite the outage window.
    assert all(op.ok for op in session.ops)
    for block, op in enumerate(reads):
        assert op.value == values[block]

    # The brick was resurrected through the backoff loop, and the
    # health machine saw the full down/up excursion.
    assert transport.reconnects >= 1
    assert transport.peer_state(2) == "up"
    assert transport.peer_transitions >= 2

    # No duplicate-write anomalies: stale frames flushed after the
    # reconnect are absorbed by the replica reply cache and timestamp
    # order, so each block's history stays strictly linearizable.
    per_block = {}
    for record in session.history():
        if record.block_index is not None:
            key = (record.register_id, record.block_index)
            per_block.setdefault(key, []).append(record)
    assert len(per_block) == blocks
    for records in per_block.values():
        assert check_strict_linearizability(records).ok

    # Honest books: every frame lost to the dead connection or shed
    # from a bounded outbox landed in both drop ledgers.
    assert cluster.metrics.dropped_messages == sum(
        transport.outbox_drops.values()
    )


def test_stop_server_without_traffic_is_clean():
    """Stopping and restarting a listener with no in-flight workload
    neither counts drops nor wedges the transport."""
    transport = AsyncioTransport(mode="tcp", base_port=7761)
    cluster = FabCluster(
        ClusterConfig(m=3, n=5, block_size=64, transport="asyncio"),
        transport=transport,
    )
    volume = LogicalVolume(cluster, num_stripes=1)

    async def drive():
        try:
            await transport.start()
        except OSError as error:  # pragma: no cover - sandboxed envs
            pytest.skip(f"cannot bind TCP ports: {error}")
        try:
            await transport.stop_server(4)
            await transport.stop_server(4)  # idempotent
            await transport.start_server(4)
            session = volume.session(max_inflight=1, seed=1)
            data = b"q" * volume.block_size
            session.submit_write(0, data)
            read = session.submit_read(0)
            await session.drain_async()
            return read, data
        finally:
            await transport.stop()

    read, data = asyncio.run(drive())
    assert read.ok and read.value == data
