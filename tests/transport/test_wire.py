"""Wire-format round trips for the asyncio transport."""

import dataclasses

import pytest

from repro.core import messages
from repro.errors import ConfigurationError
from repro.timestamps import HIGH_TS, LOW_TS, Timestamp
from repro.transport.wire import (
    decode_frame,
    encode_frame,
    register_wire_type,
)

TS = Timestamp(12.5, 3)


def roundtrip(payload, src=1, dst=2, size=64):
    frame = encode_frame(src, dst, payload, size=size)
    out_src, out_dst, out_payload, out_size = decode_frame(frame[4:])
    assert (out_src, out_dst, out_size) == (src, dst, size)
    return out_payload


def test_scalars_bytes_and_none_roundtrip():
    assert roundtrip(None) is None
    assert roundtrip(42) == 42
    assert roundtrip("status") == "status"
    assert roundtrip(b"\x00\xffpayload") == b"\x00\xffpayload"
    assert roundtrip([1, b"a", None]) == [1, b"a", None]


def test_timestamp_roundtrip_including_sentinels():
    for ts in (TS, LOW_TS, HIGH_TS, Timestamp(0, 0)):
        back = roundtrip(ts)
        assert isinstance(back, Timestamp)
        assert back == ts
        assert back.kind == ts.kind


def test_every_protocol_message_roundtrips():
    """Each message in repro.core.messages survives encode/decode."""
    samples = [
        messages.ReadReq(0, 7, targets=frozenset({1, 3, 5})),
        messages.ReadReply(0, 7, "OK", val_ts=TS, block=b"data", corrupt=False),
        messages.OrderReq(1, 8, ts=TS),
        messages.OrderReply(1, 8, "OK", max_seen=HIGH_TS, corrupt=False),
        messages.OrderReadReq(2, 9, j=0, max_ts=LOW_TS, ts=TS),
        messages.OrderReadReply(2, 9, "OK", lts=TS, block=b"b" * 64,
                                corrupt=False),
        messages.WriteReq(3, 10, block=b"x" * 16, ts=TS),
        messages.WriteReply(3, 10, "OK", max_seen=TS),
        messages.ModifyReq(4, 11, j=2, old_block=b"old", new_block=b"new",
                           delta=None, ts_j=LOW_TS, ts=TS),
        messages.ModifyReply(4, 11, "OK"),
        messages.GcReq(5, 12, ts=TS),
    ]
    for message in samples:
        back = roundtrip(message)
        assert back == message, message
        assert type(back) is type(message)


def test_nested_timestamp_stays_typed():
    """Timestamps inside messages must decode as Timestamp, not dict."""
    back = roundtrip(messages.WriteReq(0, 1, block=b"v", ts=TS))
    assert isinstance(back.ts, Timestamp)
    assert back.ts._key() == TS._key()


def test_frozenset_targets_roundtrip_as_frozenset():
    back = roundtrip(messages.ReadReq(0, 1, targets=frozenset({2, 4})))
    assert isinstance(back.targets, frozenset)
    assert back.targets == frozenset({2, 4})


def test_unregistered_dataclass_rejected():
    @dataclasses.dataclass
    class NotOnTheWire:
        x: int = 0

    with pytest.raises(ConfigurationError, match="not wire-registered"):
        encode_frame(1, 2, NotOnTheWire())


def test_register_wire_type_decorator():
    @register_wire_type
    @dataclasses.dataclass(frozen=True)
    class ProbeMsg:
        label: str = ""
        ts: Timestamp = LOW_TS

    back = roundtrip(ProbeMsg(label="hello", ts=TS))
    assert back == ProbeMsg(label="hello", ts=TS)

    with pytest.raises(ConfigurationError, match="dataclasses"):
        register_wire_type(object)


def test_unknown_message_name_rejected_on_decode():
    import json

    body = json.dumps({
        "src": 1, "dst": 2, "size": 0,
        "payload": {"__msg__": "NoSuchMsg", "f": {}},
    }).encode()
    with pytest.raises(ConfigurationError, match="unknown wire message"):
        decode_frame(body)


def test_unencodable_value_rejected():
    with pytest.raises(ConfigurationError, match="cannot wire-encode"):
        encode_frame(1, 2, object())
