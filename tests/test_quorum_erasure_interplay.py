"""The paper's central invariant, tested directly.

Section 2.2: "With m-out-of-n erasure coding, it is necessary that a
read and a write quorum intersect in at least m processes.  Otherwise,
a read operation may not be able to construct the data written by a
previous write operation."

These property tests close the loop between the two substrates: for
every legal (m, f) geometry, any write quorum's blocks restricted to
any read quorum suffice to decode — and with one fewer process than
Theorem 2 requires, a counterexample pair of quorums exists whose
intersection cannot decode.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure import make_code
from repro.quorum import MajorityMQuorumSystem, mquorum_exists


def make_stripe(m, size=8, seed=0):
    return [bytes((seed + i * 13 + j) % 256 for j in range(size))
            for i in range(m)]


class TestQuorumErasureInterplay:
    @settings(deadline=None, max_examples=40)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=3),
        st.randoms(use_true_random=False),
    )
    def test_any_read_quorum_decodes_any_write_quorum(self, m, f, rng):
        """Write to a random quorum; decode from another random quorum
        using only the blocks the write quorum stored."""
        n = 2 * f + m
        system = MajorityMQuorumSystem(n=n, m=m, f=f)
        code = make_code(m, n)
        stripe = make_stripe(m, seed=rng.randrange(256))
        encoded = code.encode(stripe)

        universe = list(system.universe)
        write_quorum = set(rng.sample(universe, system.quorum_size))
        read_quorum = set(rng.sample(universe, system.quorum_size))
        stored = {i: encoded[i - 1] for i in write_quorum}
        visible = {i: block for i, block in stored.items() if i in read_quorum}

        assert len(visible) >= m  # the intersection property
        assert code.decode(visible) == stripe

    @settings(deadline=None, max_examples=40)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=3),
    )
    def test_below_theorem2_bound_a_read_can_fail(self, m, f):
        """With n = 2f + m − 1, the canonical quorums (size n − f) can
        intersect in only m − 1 processes: too few blocks to decode."""
        n = 2 * f + m - 1
        assert not mquorum_exists(n, m, f)
        quorum_size = n - f
        # Two maximally disjoint quorums.
        write_quorum = set(range(1, quorum_size + 1))
        read_quorum = set(range(n - quorum_size + 1, n + 1))
        intersection = write_quorum & read_quorum
        assert len(intersection) == m - 1  # decoding is impossible

    @settings(deadline=None, max_examples=25)
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=1, max_value=3),
        st.randoms(use_true_random=False),
    )
    def test_partial_write_below_m_is_unrecoverable_from_heads(self, m, f, rng):
        """Fewer than m new blocks stored: the new value cannot be
        decoded no matter which quorum reads — the reason rollback (and
        thus the versioned log) must exist."""
        n = 2 * f + m
        code = make_code(m, n)
        stripe = make_stripe(m, seed=3)
        encoded = code.encode(stripe)
        stored_count = rng.randrange(1, m)  # partial: < m blocks landed
        stored = dict(
            (i, encoded[i - 1])
            for i in rng.sample(range(1, n + 1), stored_count)
        )
        from repro.errors import CodingError

        with pytest.raises(CodingError):
            code.decode(stored)
