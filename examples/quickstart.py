#!/usr/bin/env python3
"""Quickstart: a 3-of-5 erasure-coded storage register in ten lines.

Builds a FAB cluster of five bricks, writes and reads a stripe, kills a
brick, and shows the data is still there — then prints the measured
protocol costs, which match Table 1 of the paper.

Run:  python examples/quickstart.py
"""

from repro import ClusterConfig, FabCluster

BLOCK = 1024


def main() -> None:
    cluster = FabCluster(ClusterConfig(m=3, n=5, block_size=BLOCK))
    register = cluster.register(0)

    stripe = [b"alpha--!" * 128, b"bravo--!" * 128, b"charlie!" * 128]
    print("write-stripe:", register.write_stripe(stripe))
    print("read-stripe matches:", register.read_stripe() == stripe)

    print("\nupdating one block (read-modify-write of parity included)...")
    new_block = b"delta--!" * 128
    print("write-block(2):", register.write_block(2, new_block))
    stripe[1] = new_block
    print("read-block(2) matches:", register.read_block(2) == new_block)

    print("\ncrashing brick 5 (an m-quorum of 4 remains)...")
    cluster.crash(5)
    print("read-stripe still matches:", register.read_stripe() == stripe)

    print("\ncrashing brick 4 too — no quorum, then recovering it...")
    cluster.crash(4)
    cluster.recover(4)
    print("write after recovery:", register.write_stripe(stripe))

    print("\nmeasured protocol costs (cf. paper Table 1, n=5 m=3 k=2):")
    for label, row in sorted(cluster.metrics.summary().items()):
        print(
            f"  {label:22s} latency={row['latency_delta']:.0f}δ "
            f"messages={row['messages']:.0f} "
            f"disk R/W={row['disk_reads']:.0f}/{row['disk_writes']:.0f} "
            f"bytes={row['bytes']:.0f}"
        )


if __name__ == "__main__":
    main()
