#!/usr/bin/env python3
"""Quickstart: an erasure-coded virtual disk in three lines.

Opens a 3-of-5 volume through the :mod:`repro.api` facade, round-trips
a block, kills a brick to show the data survives, then drops down to
the register layer and prints the measured protocol costs, which match
Table 1 of the paper.

Run:  python examples/quickstart.py
"""

from repro import open_volume

BLOCK = 1024


def main() -> None:
    # The whole API, in three lines:
    volume = open_volume(m=3, n=5, blocks=12, block_size=BLOCK)
    print("write:", volume.write(0, b"alpha--!" * 128))
    print("read matches:", volume.read(0) == b"alpha--!" * 128)

    print("\ncrashing brick 5 (an m-quorum of 4 remains)...")
    volume.cluster.crash(5)
    print("read still matches:", volume.read(0) == b"alpha--!" * 128)

    print("\npipelining a batch through a session...")
    payloads = [bytes([i]) * BLOCK for i in range(volume.num_blocks)]
    with volume.session(max_inflight=8) as session:
        session.submit_write_range(0, payloads)
    stats = session.stats
    print(f"  {stats.ops_completed} ops, peak inflight {stats.peak_inflight}, "
          f"{stats.coalesced_writes} writes coalesced into stripe ops")

    # Under the facade sits the storage register itself:
    cluster = volume.cluster
    register = cluster.register(100)
    stripe = [b"bravo--!" * 128, b"charlie!" * 128, b"delta--!" * 128]
    print("\nwrite-stripe:", register.write_stripe(stripe))
    print("read-stripe matches:", register.read_stripe() == stripe)

    print("\nmeasured protocol costs (cf. paper Table 1, n=5 m=3 k=2):")
    for label, row in sorted(cluster.metrics.summary().items()):
        print(
            f"  {label:22s} latency={row['latency_delta']:.0f}δ "
            f"messages={row['messages']:.0f} "
            f"disk R/W={row['disk_reads']:.0f}/{row['disk_writes']:.0f} "
            f"bytes={row['bytes']:.0f}"
        )


if __name__ == "__main__":
    main()
