#!/usr/bin/env python3
"""Operating a FAB: scrub, lose a brick, rebuild, verify.

The reliability numbers of the paper's Figures 2-3 hinge on repair:
data on a dead brick must be re-protected quickly (we model ~6 hours
for a distributed rebuild).  This example walks the operational loop:

1. fill a volume;
2. lose a brick and keep serving writes (redundancy silently degrades);
3. scrub — see exactly which stripes run with a reduced failure margin;
4. rebuild — recovery-with-full-coverage per stripe;
5. verify the margin is back by failing a *different* brick.

Run:  python examples/scrub_and_rebuild.py
"""

from repro import ClusterConfig, FabCluster, LogicalVolume
from repro.core.rebuild import Rebuilder, Scrubber

BLOCK = 256
STRIPES = 12


def fill(volume: LogicalVolume, tag: str) -> None:
    for block in range(volume.num_blocks):
        payload = (f"{tag}:{block}:".encode() * BLOCK)[:BLOCK]
        assert volume.write(block, payload) == "OK"


def main() -> None:
    cluster = FabCluster(ClusterConfig(m=3, n=5, block_size=BLOCK))
    volume = LogicalVolume(cluster, num_stripes=STRIPES)
    scrubber = Scrubber(cluster)
    print(f"cluster {cluster}")

    print("\n[1] filling the volume...")
    fill(volume, "gen1")
    reports = scrubber.scrub(range(STRIPES))
    print(f"    scrub: {sum(r.fully_redundant for r in reports)}/{STRIPES} "
          f"stripes fully redundant")

    print("\n[2] brick 4 dies; writes continue...")
    cluster.crash(4)
    fill(volume, "gen2")

    print("\n[3] brick 4 returns; scrubbing...")
    cluster.recover(4)
    stale = scrubber.stale_registers(range(STRIPES))
    print(f"    {len(stale)} stripes have a stale replica on brick 4")
    margins = [scrubber.scrub_register(r).redundancy for r in range(STRIPES)]
    print(f"    redundancy margin per stripe: min={min(margins)} "
          f"(healthy = {cluster.config.n})")

    print("\n[4] rebuilding...")
    report = Rebuilder(cluster, coordinator_pid=1).rebuild(range(STRIPES))
    print(f"    repaired={report.repaired} already-current="
          f"{report.already_current} aborted={report.aborted}")
    assert report.success
    stale = scrubber.stale_registers(range(STRIPES))
    print(f"    stale stripes after rebuild: {len(stale)}")

    print("\n[5] proving the margin: failing brick 5 instead...")
    cluster.crash(5)
    sample = [0, STRIPES - 1, volume.num_blocks - 1]
    ok = all(
        volume.read(block) is not None for block in
        range(volume.num_blocks)
    )
    print(f"    all {volume.num_blocks} blocks readable with brick 5 down: {ok}")
    print("\ndone: the rebuilt brick 4 carries the load brick 5 left behind.")


if __name__ == "__main__":
    main()
