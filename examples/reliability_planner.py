#!/usr/bin/env python3
"""Reliability planning with the Figure 2 / Figure 3 models.

Answers the question the paper's Section 1.2 answers: *how should I buy
reliability?*  Prints MTTDL-versus-capacity curves for the five system
designs of Figure 2, then the overhead-versus-requirement table of
Figure 3, and finally a small planner: the cheapest configuration for a
capacity and MTTDL you choose.

Run:  python examples/reliability_planner.py [capacity_tb] [target_years]
"""

import sys

from repro.reliability import (
    BrickParams,
    ErasureCodedSystem,
    ReplicationSystem,
    StripingSystem,
    cheapest_erasure_code,
    cheapest_replication,
)

R0 = BrickParams(internal_raid="r0")
R5 = BrickParams(internal_raid="r5")
RELIABLE = BrickParams(internal_raid="r5", reliable_array=True)


def figure2() -> None:
    print("=== Figure 2: MTTDL (years) vs logical capacity ===")
    systems = [
        ("striping / reliable R5 bricks", StripingSystem(brick=RELIABLE)),
        ("4-way replication / R0 bricks", ReplicationSystem(brick=R0, replicas=4)),
        ("4-way replication / R5 bricks", ReplicationSystem(brick=R5, replicas=4)),
        ("E.C.(5,8) / R0 bricks", ErasureCodedSystem(brick=R0, m=5, n=8)),
        ("E.C.(5,8) / R5 bricks", ErasureCodedSystem(brick=R5, m=5, n=8)),
    ]
    capacities = [1, 3, 10, 30, 100, 300, 1000]
    header = "capacity TB".ljust(32) + "".join(f"{c:>10}" for c in capacities)
    print(header)
    for name, system in systems:
        cells = "".join(
            f"{system.mttdl_years(c):>10.2e}" for c in capacities
        )
        print(name.ljust(32) + cells)
    print()


def figure3(capacity_tb: float = 256.0) -> None:
    print(f"=== Figure 3: storage overhead vs required MTTDL "
          f"({capacity_tb:.0f} TB) ===")
    targets = [1e0, 1e2, 1e4, 1e6, 1e8, 1e10, 1e12]
    series = [
        ("replication / R0", lambda t: cheapest_replication(t, capacity_tb, R0)),
        ("replication / R5", lambda t: cheapest_replication(t, capacity_tb, R5)),
        ("E.C.(5,n) / R0", lambda t: cheapest_erasure_code(t, capacity_tb, R0)),
        ("E.C.(5,n) / R5", lambda t: cheapest_erasure_code(t, capacity_tb, R5)),
    ]
    print("required years".ljust(20) + "".join(f"{t:>12.0e}" for t in targets))
    for name, solver in series:
        cells = []
        for target in targets:
            point = solver(target)
            cells.append(f"{point.overhead:>12.2f}" if point else f"{'—':>12}")
        print(name.ljust(20) + "".join(cells))
    print()


def planner(capacity_tb: float, target_years: float) -> None:
    print(f"=== Planner: {capacity_tb:.0f} TB at >= {target_years:.0e} years ===")
    candidates = []
    for name, brick in [("R0", R0), ("R5", R5)]:
        replication = cheapest_replication(target_years, capacity_tb, brick)
        if replication:
            candidates.append((replication.overhead, replication.config, replication))
        erasure = cheapest_erasure_code(target_years, capacity_tb, brick)
        if erasure:
            candidates.append((erasure.overhead, erasure.config, erasure))
    if not candidates:
        print("no configuration meets the target")
        return
    candidates.sort()
    for overhead, config, point in candidates:
        raw_tb = capacity_tb * overhead
        print(
            f"  {config:16s} overhead={overhead:.2f} "
            f"raw={raw_tb:8.1f} TB  achieves {point.achieved_mttdl_years:.2e} y"
        )
    best = candidates[0]
    print(f"cheapest: {best[1]} at overhead {best[0]:.2f}")


def main() -> None:
    capacity = float(sys.argv[1]) if len(sys.argv) > 1 else 256.0
    target = float(sys.argv[2]) if len(sys.argv) > 2 else 1e6
    figure2()
    figure3(capacity)
    planner(capacity, target)


if __name__ == "__main__":
    main()
