#!/usr/bin/env python3
"""A virtual disk served by a FAB cluster, driven by a synthetic workload.

This is the paper's headline use case (Figure 1): clients see a logical
volume; bricks coordinate erasure-coded stripes among themselves.  The
example builds a 5-of-8 volume (the paper's favourite code), replays a
read-mostly synthetic trace against it while bricks crash and recover
underneath, and reports throughput, abort rate, and data integrity.

Run:  python examples/virtual_disk.py
"""

from repro import ClusterConfig, FabCluster, LogicalVolume
from repro.core.coordinator import CoordinatorConfig
from repro.sim.failures import RandomFailures
from repro.sim.network import NetworkConfig
from repro.workloads import TraceReplayer, ZipfPattern, synthesize_trace


def main() -> None:
    cluster = FabCluster(
        ClusterConfig(
            m=5,
            n=8,
            block_size=512,
            network=NetworkConfig(
                min_latency=0.5, max_latency=2.0,
                drop_probability=0.02, jitter_seed=42,
            ),
            coordinator=CoordinatorConfig(gc_enabled=True),
            seed=42,
        )
    )
    volume = LogicalVolume(cluster, num_stripes=40)
    print(f"volume: {volume}")
    print(f"cluster: {cluster}  (tolerates f={cluster.quorum_system.f} faults)")

    # Background failure churn: at most f bricks down at once, so the
    # volume stays available throughout.
    churn = RandomFailures(
        cluster.env,
        cluster.nodes,
        max_down=cluster.quorum_system.f,
        crash_probability=0.05,
        recovery_probability=0.5,
        check_interval=25.0,
        horizon=100_000.0,
        seed=7,
    )

    trace = synthesize_trace(
        num_ops=400,
        num_blocks=volume.num_blocks,
        read_fraction=0.8,            # a web-server-ish mix
        mean_interarrival=5.0,
        pattern=ZipfPattern(exponent=1.1, seed=3),
        seed=11,
    )
    print(f"replaying {len(trace)} trace operations with failure churn...")
    stats = TraceReplayer(volume).replay(trace)

    print(f"  operations : {stats.operations} "
          f"({stats.reads} reads, {stats.writes} writes)")
    print(f"  aborts     : {stats.aborts} (rate {stats.abort_rate:.4f})")
    print(f"  throughput : {stats.throughput:.3f} ops per time unit")
    print(f"  crashes injected   : {churn.crashes_injected}")
    print(f"  recoveries injected: {churn.recoveries_injected}")

    # Verify integrity: the last write to each block must be readable.
    last_writes = {}
    replayer = TraceReplayer(volume)
    for op in trace:
        if op.op == "write":
            last_writes[op.block] = replayer._payload(op)
    mismatches = sum(
        1 for block, payload in last_writes.items()
        if volume.read(block) != payload
    )
    print(f"  integrity check    : {len(last_writes) - mismatches}/"
          f"{len(last_writes)} blocks verified, {mismatches} mismatches")

    fast = sum(
        row["count"] for label, row in cluster.metrics.summary().items()
        if label.endswith("/fast")
    )
    slow = sum(
        row["count"] for label, row in cluster.metrics.summary().items()
        if label.endswith("/slow")
    )
    print(f"  fast-path ops      : {fast}, slow-path (recovery) ops: {slow}")


if __name__ == "__main__":
    main()
