#!/usr/bin/env python3
"""A virtual disk served by a FAB cluster, driven by a synthetic workload.

This is the paper's headline use case (Figure 1): clients see a logical
volume; bricks coordinate erasure-coded stripes among themselves.  The
example opens a 5-of-8 volume (the paper's favourite code) through the
:mod:`repro.api` facade, replays a read-mostly synthetic trace against
it while bricks crash and recover underneath, and reports throughput,
abort rate, and data integrity — the final readback runs pipelined
through a :class:`~repro.core.session.VolumeSession`.

Run:  python examples/virtual_disk.py
"""

from repro import open_volume
from repro.sim.failures import RandomFailures
from repro.workloads import TraceReplayer, ZipfPattern, synthesize_trace


def main() -> None:
    volume = open_volume(
        m=5, n=8,
        stripes=40,
        block_size=512,
        min_latency=0.5, max_latency=2.0,
        drop_probability=0.02,
        gc_enabled=True,
        seed=42,
    )
    cluster = volume.cluster
    print(f"volume: {volume}")
    print(f"cluster: {cluster}  (tolerates f={cluster.quorum_system.f} faults)")

    # Background failure churn: at most f bricks down at once, so the
    # volume stays available throughout.
    churn = RandomFailures(
        cluster.env,
        cluster.nodes,
        max_down=cluster.quorum_system.f,
        crash_probability=0.05,
        recovery_probability=0.5,
        check_interval=25.0,
        horizon=100_000.0,
        seed=7,
    )

    trace = synthesize_trace(
        num_ops=400,
        num_blocks=volume.num_blocks,
        read_fraction=0.8,            # a web-server-ish mix
        mean_interarrival=5.0,
        pattern=ZipfPattern(exponent=1.1, seed=3),
        seed=11,
    )
    print(f"replaying {len(trace)} trace operations with failure churn...")
    stats = TraceReplayer(volume).replay(trace)

    print(f"  operations : {stats.operations} "
          f"({stats.reads} reads, {stats.writes} writes)")
    print(f"  aborts     : {stats.aborts} (rate {stats.abort_rate:.4f})")
    print(f"  throughput : {stats.throughput:.3f} ops per time unit")
    print(f"  crashes injected   : {churn.crashes_injected}")
    print(f"  recoveries injected: {churn.recoveries_injected}")

    # Verify integrity with a pipelined bulk readback: the last write
    # to each block must be visible.  The session keeps many reads in
    # flight and retries/fails over on its own.
    last_writes = {}
    replayer = TraceReplayer(volume)
    for op in trace:
        if op.op == "write":
            last_writes[op.block] = replayer._payload(op)
    with volume.session(max_inflight=16) as session:
        for block in sorted(last_writes):
            session.submit_read(block)
    readback = {op.blocks[0]: op.result for op in session.ops}
    mismatches = sum(
        1 for block, payload in last_writes.items()
        if readback[block] != payload
    )
    print(f"  integrity check    : {len(last_writes) - mismatches}/"
          f"{len(last_writes)} blocks verified, {mismatches} mismatches "
          f"(pipelined, peak inflight {session.stats.peak_inflight}, "
          f"{session.stats.retries} retries, "
          f"{session.stats.failovers} failovers)")

    fast = sum(
        row["count"] for label, row in cluster.metrics.summary().items()
        if label.endswith("/fast")
    )
    slow = sum(
        row["count"] for label, row in cluster.metrics.summary().items()
        if label.endswith("/slow")
    )
    print(f"  fast-path ops      : {fast}, slow-path (recovery) ops: {slow}")


if __name__ == "__main__":
    main()
