#!/usr/bin/env python3
"""Partial writes, crashes, and strict linearizability — live.

Recreates the paper's Figure 5 on a running cluster: a write crashes
after updating a single replica, a read rolls it back, the replica
recovers with the orphaned value in its log — and the protocol keeps
the rolled-back value from ever resurfacing.  The same scenario is then
run on the LS97-style replication baseline, where the partial write
*does* resurface, and both histories are fed to the strict-
linearizability checker.

Run:  python examples/failure_drama.py
"""

from repro import ClusterConfig, FabCluster
from repro.baselines.ls97 import Ls97Cluster, Ls97Config
from repro.core.messages import WriteReq
from repro.sim.failures import MessageCountTrigger
from repro.types import OpKind
from repro.verify import HistoryRecorder, check_strict_linearizability

V1 = [b"v1......" * 4]
V2 = [b"v2......" * 4]


def our_protocol() -> None:
    print("=== FAB storage register (this paper) ===")
    cluster = FabCluster(ClusterConfig(m=1, n=3, block_size=32))
    env = cluster.env
    recorder = HistoryRecorder(env)

    register = cluster.register(0, coordinator_pid=2)
    process = register.write_stripe_async(V1)
    recorder.track(process, OpKind.WRITE_STRIPE, value=V1, coordinator=2)
    env.run()
    print("write1(v1):", process.value)

    # write2(v2) from brick 1; isolate brick 1 after the Order phase so
    # only its own replica stores v2, then crash it.
    writer = cluster.coordinators[1]
    process = cluster.nodes[1].spawn(writer.write_stripe(0, V2))
    recorder.track(process, OpKind.WRITE_STRIPE, value=V2, coordinator=1)
    env.run(until=env.now + 2.5)
    cluster.network.partition({1}, {2, 3})
    env.run(until=env.now + 2.0)
    cluster.nodes[1].crash()
    env.run(until=env.now + 1.0)
    cluster.network.heal_partition()
    print("write2(v2): coordinator crashed mid-write (partial)")

    read_process = cluster.register(0, coordinator_pid=3).read_stripe_async()
    recorder.track(read_process, OpKind.READ_STRIPE, coordinator=3)
    env.run()
    print("read after crash:", read_process.value[0][:8], "(rolled back)")

    cluster.nodes[1].recover()
    print("brick 1 recovered (still holds v2 in its log)")
    for pid in (2, 3, 1):
        read_process = cluster.register(0, coordinator_pid=pid).read_stripe_async()
        recorder.track(read_process, OpKind.READ_STRIPE, coordinator=pid)
        env.run()
        print(f"read via brick {pid}:", read_process.value[0][:8])

    recorder.close()
    result = check_strict_linearizability(recorder.per_block_history(1))
    print("strictly linearizable:", result.ok)
    assert result.ok


def ls97_baseline() -> None:
    print("\n=== LS97 replication baseline (no partial-write handling) ===")
    cluster = Ls97Cluster(Ls97Config(n=3, block_size=32))
    env = cluster.env
    cluster.write(0, V1[0], coordinator_pid=2)
    print("write1(v1): OK")

    writer = cluster.coordinators[1]
    process = cluster.nodes[1].spawn(writer.write(0, V2[0]))
    env.run(until=env.now + 2.5)
    cluster.network.partition({1}, {2, 3})
    env.run(until=env.now + 2.0)
    cluster.nodes[1].crash()
    env.run(until=env.now + 1.0)
    cluster.network.heal_partition()
    print("write2(v2): coordinator crashed mid-write (partial)")

    print("read after crash:", cluster.read(0, coordinator_pid=3)[:8])
    cluster.nodes[1].recover()
    value = cluster.read(0, coordinator_pid=3)
    print("read after recovery:", value[:8],
          "<-- the crashed write RESURFACED (Figure 5 anomaly)")
    assert value == V2[0]


def main() -> None:
    our_protocol()
    ls97_baseline()
    print("\nConclusion: the two-phase write + versioned logs buy exactly")
    print("the property LS97 lacks — partial writes take effect before the")
    print("crash or never.")


if __name__ == "__main__":
    main()
