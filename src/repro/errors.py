"""Exception hierarchy for the repro package.

The protocol itself signals failure through abort values (the paper's
``⊥``) rather than exceptions; exceptions are reserved for misuse of the
API and for genuinely unrecoverable conditions (bad parameters, corrupted
state detected by internal invariants).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed with invalid parameters.

    Examples: an erasure code with ``m > n``, a quorum system whose fault
    bound violates Theorem 2 (``n < 2f + m``), a stripe whose block size
    is not positive.
    """


class CodingError(ReproError):
    """Raised when an erasure-coding operation cannot be performed.

    Examples: decoding from fewer than ``m`` blocks, or from blocks whose
    indices are out of range for the code.
    """


class QuorumError(ReproError):
    """Raised when a quorum operation is impossible.

    Example: asking for a live quorum when more than ``f`` processes are
    excluded.
    """


class SimulationError(ReproError):
    """Raised on misuse of the discrete-event simulation kernel."""


class TransportError(ReproError):
    """Base class for failures at the transport boundary.

    The transport surface is fire-and-forget (``send`` may silently
    lose a message — the paper's fair-loss model), so transport errors
    are reserved for conditions the *caller* must react to rather than
    per-message loss.  The taxonomy below splits them by what a sane
    reaction is; sessions key their retry budgets off it.
    """


class RetryableTransportError(TransportError):
    """A transport failure that backoff-and-retry can mask.

    Examples: the destination peer is in the ``"down"`` health state
    (its reconnect prober may yet resurrect it), or a bounded outbox
    rejected a frame under backlog.  Sessions count these against a
    dedicated transport retry budget
    (:attr:`~repro.core.client.RetryPolicy.transport_attempts`) and
    fall back to a different coordinator, degrading gracefully while
    at most ``f`` bricks are unreachable.

    Attributes:
        peer: the unreachable process id, when one is known.
    """

    def __init__(self, message: str, peer: int = -1):
        super().__init__(message)
        self.peer = peer


class TerminalTransportError(TransportError, SimulationError):
    """A transport failure no amount of retrying will mask.

    Examples: the event pump died (its original exception is chained as
    ``__cause__``), or the transport was stopped while callers were
    still waiting.  Subclasses :class:`SimulationError` so existing
    ``except SimulationError`` call sites keep working.
    """


class StorageError(ReproError):
    """Raised on invalid access to a node's persistent store."""


class CorruptionDetected(StorageError):
    """Raised when a stored value fails its checksum on read.

    The stable store wraps every value and journal record in a CRC
    envelope; a mismatch means the bits on "disk" were silently
    altered (injected bit flip, torn write).  Callers treat the
    affected fragment as an erasure (``⊥``) rather than thawing
    garbage — see Konwar et al., arXiv:1605.01748.
    """

    def __init__(self, message: str, key: str = "", process_id: int = -1):
        super().__init__(message)
        self.key = key
        self.process_id = process_id


class VerificationError(ReproError):
    """Raised when a history fails linearizability verification.

    The checker normally *returns* a result object; this exception is
    used by the ``check_*_or_raise`` convenience wrappers.
    """


class ProtocolInvariantError(ReproError):
    """Raised when an internal protocol invariant is violated.

    These indicate a bug in the implementation (or deliberately injected
    corruption in tests), never a legal runtime condition.
    """
