"""Command-line experiment runner.

Regenerates the paper's artifacts without going through pytest::

    python -m repro.cli figure2                # MTTDL vs capacity
    python -m repro.cli figure3 --capacity 256 # overhead vs MTTDL
    python -m repro.cli table1 --n 5 --m 3     # analytic + measured costs
    python -m repro.cli demo                   # the quickstart scenario
    python -m repro.cli scrub --stripes 8      # scrub/rebuild walkthrough
    python -m repro.cli scrub --ops 500 --corrupt-rate 0.01
                                               # scrub-daemon experiment
    python -m repro.cli pipeline               # pipelined session throughput
    python -m repro.cli simcore                # simulator-core events/sec profile
    python -m repro.cli erasure-bench          # GF(2^8) kernel MiB/s per backend
    python -m repro.cli placement              # LRC vs RS rebuild cost
    python -m repro.cli campaign --seeds 25    # randomized fault campaign

Each subcommand prints the same rows the corresponding benchmark writes
to ``benchmarks/out/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.compare import MEASURED_TO_ANALYTIC
from .analysis.costs import ls97_costs, our_costs
from .core.cluster import ClusterConfig, FabCluster
from .core.rebuild import Rebuilder, Scrubber
from .reliability import (
    BrickParams,
    ErasureCodedSystem,
    ReplicationSystem,
    StripingSystem,
    overhead_curve,
)

__all__ = ["main"]


def _figure2(args: argparse.Namespace) -> int:
    r0 = BrickParams(internal_raid="r0")
    r5 = BrickParams(internal_raid="r5")
    reliable = BrickParams(internal_raid="r5", reliable_array=True)
    systems = [
        ("striping/reliable-R5", StripingSystem(brick=reliable)),
        ("4-way-replication/R0", ReplicationSystem(brick=r0, replicas=4)),
        ("4-way-replication/R5", ReplicationSystem(brick=r5, replicas=4)),
        ("EC(5,8)/R0", ErasureCodedSystem(brick=r0, m=5, n=8)),
        ("EC(5,8)/R5", ErasureCodedSystem(brick=r5, m=5, n=8)),
    ]
    capacities = args.capacities
    print("Figure 2 — MTTDL (years) vs logical capacity (TB)")
    print("system".ljust(24) + "".join(f"{c:>11g}" for c in capacities))
    for name, system in systems:
        cells = "".join(
            f"{system.mttdl_years(c):>11.2e}" for c in capacities
        )
        print(name.ljust(24) + cells)
    return 0


def _figure3(args: argparse.Namespace) -> int:
    r0 = BrickParams(internal_raid="r0")
    r5 = BrickParams(internal_raid="r5")
    targets = [10.0**e for e in range(0, 13, 2)]
    print(f"Figure 3 — storage overhead vs required MTTDL "
          f"({args.capacity:.0f} TB)")
    print("scheme".ljust(20) + "".join(f"{t:>10.0e}" for t in targets))
    for name, brick, scheme in [
        ("replication/R0", r0, "replication"),
        ("replication/R5", r5, "replication"),
        ("EC(5,n)/R0", r0, "erasure"),
        ("EC(5,n)/R5", r5, "erasure"),
    ]:
        points = {
            p.required_mttdl_years: p
            for p in overhead_curve(targets, args.capacity, brick, scheme)
        }
        cells = []
        for target in targets:
            point = points.get(target)
            cells.append(f"{point.overhead:>10.2f}" if point else f"{'—':>10}")
        print(name.ljust(20) + "".join(cells))
    return 0


def _table1(args: argparse.Namespace) -> int:
    n, m, block = args.n, args.m, args.block_size
    cluster = FabCluster(ClusterConfig(m=m, n=n, block_size=block))
    register = cluster.register(0)
    stripe = [bytes([65 + i]) * block for i in range(m)]
    register.write_stripe(stripe)
    register.read_stripe()
    register.read_block(1)
    register.write_block(1, bytes([90]) * block)
    measured = cluster.metrics.summary()
    analytic = our_costs(n, m, block)
    analytic.update(ls97_costs(n, block))
    print(f"Table 1 — n={n}, m={m}, k={n - m}, B={block}")
    print(f"{'operation':18s}{'δ':>6s}{'msgs':>8s}{'diskR':>8s}"
          f"{'diskW':>8s}{'bytes':>10s}")
    for label in sorted(measured):
        key = MEASURED_TO_ANALYTIC.get(label)
        row = measured[label]
        suffix = f"  (analytic: {key})" if key else ""
        print(
            f"{label:18s}{row['latency_delta']:>6.0f}{row['messages']:>8.0f}"
            f"{row['disk_reads']:>8.0f}{row['disk_writes']:>8.0f}"
            f"{row['bytes']:>10.0f}{suffix}"
        )
    return 0


def _demo(args: argparse.Namespace) -> int:
    cluster = FabCluster(
        ClusterConfig(m=args.m, n=args.n, block_size=args.block_size)
    )
    register = cluster.register(0)
    stripe = [bytes([65 + i]) * args.block_size for i in range(args.m)]
    print(f"cluster: {cluster}")
    print("write-stripe:", register.write_stripe(stripe))
    print("read-stripe matches:", register.read_stripe() == stripe)
    victim = args.n
    cluster.crash(victim)
    print(f"crashed brick {victim}; read still matches:",
          register.read_stripe() == stripe)
    cluster.recover(victim)
    print(f"recovered brick {victim}; write:",
          register.write_stripe(list(reversed(stripe))))
    return 0


def _scrub(args: argparse.Namespace) -> int:
    if args.ops is not None:
        return _scrub_daemon(args)
    cluster = FabCluster(ClusterConfig(m=3, n=5, block_size=64))
    stripes = args.stripes
    for register_id in range(stripes):
        cluster.register(register_id).write_stripe(
            [bytes([register_id + 1]) * 64] * 3
        )
    cluster.crash(4)
    for register_id in range(stripes):
        cluster.register(register_id).write_stripe(
            [bytes([100 + register_id]) * 64] * 3
        )
    cluster.recover(4)
    scrubber = Scrubber(cluster)
    stale = scrubber.stale_registers(range(stripes))
    print(f"after brick 4 missed {stripes} writes: {len(stale)} stale registers")
    report = Rebuilder(cluster).rebuild(range(stripes))
    print(f"rebuild: repaired={report.repaired} current="
          f"{report.already_current} aborted={report.aborted}")
    print("stale after rebuild:",
          len(scrubber.stale_registers(range(stripes))))
    return 0


def _scrub_daemon(args: argparse.Namespace) -> int:
    import pathlib

    from .analysis.scrub import (
        render_report,
        render_sampling_report,
        run_sampling_sweep,
        run_scrub_experiment,
        to_json,
    )

    experiment = run_scrub_experiment(
        ops=args.ops,
        corrupt_rates=tuple(args.corrupt_rate),
        seed=args.seed,
        scrub_mode=args.mode,
    )
    report = render_report(experiment)
    sampling = None
    if args.mode == "sample":
        sampling = run_sampling_sweep(
            registers=args.sample_registers,
            sample_rates=tuple(args.sample_rates),
            trials=args.trials,
            seed=args.seed,
        )
        report += "\n" + render_sampling_report(sampling)
    print(report)
    if args.out:
        path = pathlib.Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report)
        print(f"report written to {path}")
    if args.json_out:
        path = pathlib.Path(args.json_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(to_json(experiment, sampling=sampling) + "\n")
        print(f"JSON artifact written to {path}")
    # Success = every corrupting run ended fully repaired and no client
    # read ever returned wrong data.
    healthy = all(
        run.clean_after and run.read_mismatches == 0
        for run in experiment.runs
    )
    return 0 if healthy else 1


def _pipeline(args: argparse.Namespace) -> int:
    from .analysis.pipeline import (
        crash_failover_run,
        render_report,
        sweep_crash_rate,
        sweep_inflight,
    )

    report = render_report(
        sweep_inflight(tuple(args.inflights), num_ops=args.ops),
        sweep_crash_rate(num_ops=args.ops),
        crash_failover_run(),
    )
    print(report)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report + "\n")
        print(f"\nwritten to {args.out}")
    return 0


def _simcore(args: argparse.Namespace) -> int:
    from .analysis.simcore import render_report, run_profile, to_json

    grid = []
    for pair in args.pairs:
        m_text, n_text = pair.split(",")
        grid.append((int(m_text), int(n_text), args.ops))
    results = run_profile(
        grid=grid,
        headline=None,
        paths=tuple(args.paths),
        registers=args.registers,
        block_size=args.block_size,
    )
    report = render_report(results)
    print(report)
    if args.json_out:
        with open(args.json_out, "w") as handle:
            handle.write(to_json(results) + "\n")
        print(f"JSON written to {args.json_out}")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"report written to {args.out}")
    return 0


def _erasure_bench(args: argparse.Namespace) -> int:
    import pathlib

    from .analysis.erasure_bench import (
        HEADLINE,
        headline_speedup,
        render_report,
        run_bench,
        to_json,
    )

    pairs = []
    for pair in args.pairs:
        m_text, n_text = pair.split(",")
        pairs.append((int(m_text), int(n_text)))
    results = run_bench(
        pairs=pairs,
        block_sizes=tuple(args.block_sizes),
        backends=tuple(args.backends),
        budget_mib=args.budget_mib,
    )
    report = render_report(results)
    print(report)
    json_path = pathlib.Path(args.json_out)
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(to_json(results) + "\n")
    print(f"JSON artifact written to {json_path}")
    if args.out:
        path = pathlib.Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report)
        print(f"report written to {path}")
    if args.min_speedup is not None:
        speedup = headline_speedup(results)
        if speedup is None:
            print(
                f"headline cell {HEADLINE} not measured for both table "
                "and masked backends; cannot check --min-speedup"
            )
            return 1
        ok = speedup >= args.min_speedup
        verdict = "OK" if ok else "FAIL"
        print(
            f"headline encode speedup (table/masked at "
            f"m={HEADLINE[0]}, n={HEADLINE[1]}, block={HEADLINE[2]}): "
            f"{speedup:.1f}x >= {args.min_speedup:g}x ... {verdict}"
        )
        return 0 if ok else 1
    return 0


def _placement(args: argparse.Namespace) -> int:
    import pathlib

    from .analysis.placement import (
        render_report,
        run_placement_bench,
        to_json,
    )

    result = run_placement_bench(
        groups_list=tuple(args.groups),
        group_size=args.group_size,
        m=args.m,
        spares=args.spares,
        registers=args.registers,
        block_size=args.block_size,
        seed=args.seed,
    )
    report = render_report(result)
    print(report)
    json_path = pathlib.Path(args.json_out)
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(to_json(result) + "\n")
    print(f"JSON artifact written to {json_path}")
    if args.out:
        path = pathlib.Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report)
        print(f"report written to {path}")
    if args.min_ratio is not None:
        ratio = result.min_fragment_ratio
        ok = ratio >= args.min_ratio
        verdict = "OK" if ok else "FAIL"
        print(
            f"minimum LRC rebuild advantage over RS across the sweep: "
            f"{ratio:.2f}x >= {args.min_ratio:g}x ... {verdict}"
        )
        return 0 if ok else 1
    return 0


def _campaign(args: argparse.Namespace) -> int:
    import pathlib

    from .analysis.campaign import render_report, run_suite, to_json
    from .campaign.engine import CampaignConfig, broken_config

    config = CampaignConfig(
        m=args.m,
        n=args.n,
        f=args.f,
        registers=args.registers,
        clients=args.clients,
        ops_per_client=args.ops,
        duration=args.duration,
        crash_weight=args.crash_weight,
        partition_weight=args.partition_weight,
        drop_weight=args.drop_weight,
        corrupt_weight=args.corrupt_weight,
        verify_checksums=not args.no_verify_checksums,
        scrub_enabled=args.scrub,
        scrub_mode=args.scrub_mode,
        max_clock_skew=args.max_skew,
    )
    if args.broken:
        config = broken_config(config)
    suite = run_suite(config, seeds=range(args.seeds))
    report = render_report(suite)
    print(report)
    json_path = pathlib.Path(args.json_out)
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(to_json(suite) + "\n")
    print(f"JSON artifact written to {json_path}")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"report written to {args.out}")
    if args.broken:
        # Broken mode succeeds when the harness caught the unsound
        # config and produced a small reproducer for every violation.
        caught = bool(suite.violating) and all(
            o.reproducer is not None and len(o.reproducer.events) <= 10
            for o in suite.violating
        )
        return 0 if caught else 1
    return 0 if suite.ok else 1


def _parse_partition(spec: Optional[str]):
    """Parse ``start:end:p1,p2`` into a partition window tuple."""
    if spec is None:
        return None
    parts = spec.split(":")
    if len(parts) != 3:
        raise SystemExit(
            f"--partition wants start_ms:end_ms:pid[,pid...], got {spec!r}"
        )
    try:
        start, end = float(parts[0]), float(parts[1])
        group = tuple(int(p) for p in parts[2].split(",") if p)
    except ValueError:
        raise SystemExit(
            f"--partition wants start_ms:end_ms:pid[,pid...], got {spec!r}"
        )
    if not group:
        raise SystemExit("--partition needs at least one pid in the group")
    return (start, end, group)


def _serve(args: argparse.Namespace) -> int:
    from .analysis.serve import run_serve

    result = run_serve(
        clients=args.clients,
        ops_per_client=args.ops,
        mode=args.mode,
        m=args.m,
        n=args.n,
        block_size=args.block_size,
        max_inflight=args.inflight,
        base_port=args.port,
        json_out=args.json_out,
        chaos=args.chaos,
        drop_rate=args.drop_rate,
        duplicate_rate=args.duplicate_rate,
        corrupt_rate=args.corrupt_rate,
        partition=_parse_partition(args.partition),
        chaos_seed=args.chaos_seed,
    )
    print(
        f"serve[{result['mode']}]: {result['clients']} clients x "
        f"{result['ops_per_client']} ops = {result['total_ops']} ops "
        f"in {result['wall_seconds']}s ({result['ops_per_sec']} ops/s)"
    )
    print(
        f"latency: p50={result['p50_ms']}ms p99={result['p99_ms']}ms; "
        f"failed sessions: {result['failed_sessions']}, "
        f"failed ops: {result['failed_ops']}"
    )
    chaos = result["chaos"]
    if chaos["enabled"]:
        print(
            f"chaos[seed={args.chaos_seed}]: "
            f"delivered={chaos['delivered']} dropped={chaos['dropped']} "
            f"partition_dropped={chaos['partition_dropped']} "
            f"duplicated={chaos['duplicated']} "
            f"corrupted={chaos['corrupted']}; "
            f"linearizable={chaos['linearizable']} "
            f"({chaos['blocks_checked']} blocks checked)"
        )
    print(f"JSON artifact written to {args.json_out}")
    ok = result["failed_sessions"] == 0 and chaos["linearizable"]
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts from the DSN'04 erasure-coded "
                    "virtual disks paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    figure2 = subparsers.add_parser("figure2", help="MTTDL vs capacity")
    figure2.add_argument(
        "--capacities", type=float, nargs="+",
        default=[1, 10, 100, 1000],
    )
    figure2.set_defaults(func=_figure2)

    figure3 = subparsers.add_parser("figure3", help="overhead vs MTTDL")
    figure3.add_argument("--capacity", type=float, default=256.0)
    figure3.set_defaults(func=_figure3)

    table1 = subparsers.add_parser("table1", help="protocol costs")
    table1.add_argument("--n", type=int, default=5)
    table1.add_argument("--m", type=int, default=3)
    table1.add_argument("--block-size", type=int, default=1024)
    table1.set_defaults(func=_table1)

    demo = subparsers.add_parser("demo", help="cluster walkthrough")
    demo.add_argument("--n", type=int, default=5)
    demo.add_argument("--m", type=int, default=3)
    demo.add_argument("--block-size", type=int, default=512)
    demo.set_defaults(func=_demo)

    scrub = subparsers.add_parser(
        "scrub",
        help="scrub/rebuild walkthrough, or (with --ops) the "
             "scrub-daemon corruption experiment",
    )
    scrub.add_argument("--stripes", type=int, default=6)
    scrub.add_argument(
        "--ops", type=int, default=None,
        help="run the scrub-daemon experiment with this many client ops",
    )
    scrub.add_argument(
        "--corrupt-rate", type=float, nargs="+", default=[0.02, 0.08],
        help="per-op corruption probabilities to sweep (daemon mode)",
    )
    scrub.add_argument("--seed", type=int, default=0)
    scrub.add_argument(
        "--mode", choices=("sweep", "sample"), default="sweep",
        help="daemon scheduler; 'sample' also runs the fleet-scale "
             "detection-latency-vs-sample-rate sweep",
    )
    scrub.add_argument(
        "--sample-registers", type=int, default=1000,
        help="fleet size for the sampling sweep (sample mode)",
    )
    scrub.add_argument(
        "--sample-rates", type=float, nargs="+",
        default=[0.05, 0.10, 0.25, 1.0],
        help="scan budgets, as fractions of the full sweep, to measure",
    )
    scrub.add_argument(
        "--trials", type=int, default=32,
        help="seeded trials per sample rate (sample mode)",
    )
    scrub.add_argument(
        "--out", type=str, default=None,
        help="also write the report to this file (daemon mode)",
    )
    scrub.add_argument(
        "--json", dest="json_out", type=str, default=None,
        help="write the machine-readable results to this file (daemon mode)",
    )
    scrub.set_defaults(func=_scrub)

    pipeline = subparsers.add_parser(
        "pipeline", help="pipelined session throughput sweeps"
    )
    pipeline.add_argument(
        "--inflights", type=int, nargs="+", default=[1, 4, 16, 64],
    )
    pipeline.add_argument("--ops", type=int, default=120)
    pipeline.add_argument(
        "--out", type=str, default=None,
        help="also write the report to this file",
    )
    pipeline.set_defaults(func=_pipeline)

    simcore = subparsers.add_parser(
        "simcore",
        help="simulator-core throughput profile (seed vs fast path)",
    )
    simcore.add_argument(
        "--pairs", type=str, nargs="+", default=["4,8"],
        help="m,n pairs to run, e.g. --pairs 2,4 4,8",
    )
    simcore.add_argument("--ops", type=int, default=1000)
    simcore.add_argument(
        "--paths", type=str, nargs="+", default=["seed", "fast"],
        choices=["seed", "fast"],
    )
    simcore.add_argument("--registers", type=int, default=50)
    simcore.add_argument("--block-size", type=int, default=64)
    simcore.add_argument(
        "--json", dest="json_out", type=str, default=None,
        help="write the machine-readable results to this file",
    )
    simcore.add_argument(
        "--out", type=str, default=None,
        help="also write the report to this file",
    )
    simcore.set_defaults(func=_simcore)

    erasure = subparsers.add_parser(
        "erasure-bench",
        help="GF(2^8) erasure-kernel throughput per backend "
             "(encode/decode/delta MiB/s)",
    )
    erasure.add_argument(
        "--pairs", type=str, nargs="+", default=["2,4", "4,8", "8,16"],
        help="m,n pairs to sweep, e.g. --pairs 2,4 4,8",
    )
    erasure.add_argument(
        "--block-sizes", type=int, nargs="+", default=[4096, 65536],
        help="stripe-unit sizes in bytes",
    )
    erasure.add_argument(
        "--backends", type=str, nargs="+",
        default=["masked", "table", "bytes"],
        help="kernel backends to compare (see repro.erasure.kernels)",
    )
    erasure.add_argument(
        "--budget-mib", type=float, default=8.0,
        help="approximate data volume per measurement in MiB",
    )
    erasure.add_argument(
        "--min-speedup", type=float, default=None,
        help="exit 1 unless table beats masked by this factor on encode "
             "at the headline cell (m=4, n=8, 64 KiB)",
    )
    erasure.add_argument(
        "--json", dest="json_out", type=str,
        default="benchmarks/out/BENCH_erasure.json",
        help="path for the machine-readable JSON artifact",
    )
    erasure.add_argument(
        "--out", type=str, default=None,
        help="also write the text report to this file",
    )
    erasure.set_defaults(func=_erasure_bench)

    placement = subparsers.add_parser(
        "placement",
        help="placement-group rebuild economics: LRC group-local vs "
             "Reed-Solomon global repair per failed brick",
    )
    placement.add_argument(
        "--groups", type=int, nargs="+", default=[2, 4, 8],
        help="placement-group counts to sweep",
    )
    placement.add_argument("--group-size", type=int, default=8)
    placement.add_argument("--m", type=int, default=4)
    placement.add_argument("--spares", type=int, default=1)
    placement.add_argument(
        "--registers", type=int, default=24,
        help="registers written across the fleet before the failure",
    )
    placement.add_argument("--block-size", type=int, default=64)
    placement.add_argument("--seed", type=int, default=0)
    placement.add_argument(
        "--min-ratio", type=float, default=None,
        help="exit 1 unless RS reads at least this many times more "
             "fragments than LRC at every sweep point",
    )
    placement.add_argument(
        "--json", dest="json_out", type=str,
        default="benchmarks/out/BENCH_placement.json",
        help="path for the machine-readable JSON artifact",
    )
    placement.add_argument(
        "--out", type=str, default=None,
        help="also write the text report to this file",
    )
    placement.set_defaults(func=_placement)

    campaign = subparsers.add_parser(
        "campaign",
        help="randomized fault campaign with online invariant checks",
    )
    campaign.add_argument(
        "--seeds", type=int, default=25,
        help="number of seeds to sweep (0..N-1)",
    )
    campaign.add_argument("--n", type=int, default=5)
    campaign.add_argument("--m", type=int, default=3)
    campaign.add_argument(
        "--f", type=int, default=None,
        help="tolerated faults; default floor((n-m)/2)",
    )
    campaign.add_argument("--registers", type=int, default=4)
    campaign.add_argument("--clients", type=int, default=3)
    campaign.add_argument(
        "--ops", type=int, default=30, help="operations per client"
    )
    campaign.add_argument("--duration", type=float, default=400.0)
    campaign.add_argument("--crash-weight", type=float, default=3.0)
    campaign.add_argument("--partition-weight", type=float, default=1.0)
    campaign.add_argument("--drop-weight", type=float, default=1.0)
    campaign.add_argument(
        "--corrupt-weight", type=float, default=0.0,
        help="weight of silent-corruption faults in the mix (0 disables)",
    )
    campaign.add_argument(
        "--no-verify-checksums", action="store_true",
        help="escape hatch: disable CRC verification on stable stores "
             "(the read-verification invariant then catches served rot)",
    )
    campaign.add_argument(
        "--scrub", action="store_true",
        help="run the background scrub-and-repair daemon during the "
             "campaign",
    )
    campaign.add_argument(
        "--scrub-mode", choices=("auto", "sweep", "sample"), default="auto",
        help="scrub scheduler: exhaustive sweep, confidence-driven "
             "sampling, or auto (sample at large register counts)",
    )
    campaign.add_argument(
        "--max-skew", type=float, default=0.0,
        help="max per-brick clock skew (time units)",
    )
    campaign.add_argument(
        "--broken", action="store_true",
        help="run the deliberately unsound n < 2f + m configuration; "
             "exit 0 iff the violation is caught and shrunk",
    )
    campaign.add_argument(
        "--json", dest="json_out", type=str,
        default="benchmarks/out/campaign.json",
        help="path for the machine-readable JSON artifact",
    )
    campaign.add_argument(
        "--out", type=str, default=None,
        help="also write the text report to this file",
    )
    campaign.set_defaults(func=_campaign)

    serve = subparsers.add_parser(
        "serve",
        help="host a cluster on the asyncio transport and load it with "
             "concurrent sessions",
    )
    serve.add_argument(
        "--clients", type=int, default=100,
        help="concurrent volume sessions (one stripe each)",
    )
    serve.add_argument(
        "--ops", type=int, default=4, help="operations per client"
    )
    serve.add_argument(
        "--mode", choices=("loopback", "tcp"), default="loopback",
        help="asyncio substrate: in-process loopback or TCP framing",
    )
    serve.add_argument("--m", type=int, default=3)
    serve.add_argument("--n", type=int, default=5)
    serve.add_argument("--block-size", type=int, default=64)
    serve.add_argument(
        "--inflight", type=int, default=4,
        help="max operations in flight per session",
    )
    serve.add_argument(
        "--port", type=int, default=7420,
        help="base TCP port (brick pid p listens on port + p - 1)",
    )
    serve.add_argument(
        "--json", dest="json_out", type=str,
        default="benchmarks/out/BENCH_serve.json",
        help="path for the machine-readable JSON artifact",
    )
    serve.add_argument(
        "--chaos", action="store_true",
        help="wrap the transport in seeded fault injection (any non-"
             "zero fault knob below implies this)",
    )
    serve.add_argument(
        "--drop-rate", type=float, default=0.0,
        help="per-message drop probability injected at the transport "
             "boundary (chaos mode)",
    )
    serve.add_argument(
        "--duplicate-rate", type=float, default=0.0,
        help="per-message duplication probability (chaos mode)",
    )
    serve.add_argument(
        "--corrupt-rate", type=float, default=0.0,
        help="per-message bit-flip probability; flips are CRC-detected "
             "and become counted drops (chaos mode)",
    )
    serve.add_argument(
        "--partition", type=str, default=None,
        help="timed partition start_ms:end_ms:pid[,pid...] cutting the "
             "pid group off for that window (chaos mode)",
    )
    serve.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed for every chaos decision (same seed = same faults)",
    )
    serve.set_defaults(func=_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
