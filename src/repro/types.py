"""Shared value types used across the repro package.

The paper works with three primitive notions that cut across every layer:

* **blocks** — fixed-size byte strings, the unit of storage;
* **status values** — success (``OK``) versus abort (``⊥``, rendered here
  as :data:`ABORT`);
* **process identifiers** — small integers ``1..n`` naming the bricks.

This module defines those notions once so that the erasure-coding layer,
the protocol layer, and the verification layer all agree on them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

#: Type alias for the unit of data storage (the paper's "block").
Block = bytes

#: Type alias for process identifiers.  Processes are numbered 1..n as in
#: the paper; process ``j`` stores block ``j`` of every stripe.
ProcessId = int


class _AbortType:
    """Singleton sentinel for the paper's abort value ``⊥``.

    Register operations that abort return :data:`ABORT` so callers can
    distinguish "operation aborted" from legitimate data (``None`` could
    be a legal block value for a never-written register, mirroring the
    paper's ``nil``).
    """

    _instance: Optional["_AbortType"] = None

    def __new__(cls) -> "_AbortType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ABORT"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):
        return (_AbortType, ())


#: The abort sentinel (the paper's ``⊥``).  Falsy, singleton, picklable.
ABORT = _AbortType()

#: The initial value of every register block (the paper's ``nil``).
NIL: Optional[Block] = None


class OpKind(enum.Enum):
    """Kinds of register operations, used by the history recorder."""

    READ_STRIPE = "read-stripe"
    WRITE_STRIPE = "write-stripe"
    READ_BLOCK = "read-block"
    WRITE_BLOCK = "write-block"


class OpStatus(enum.Enum):
    """Terminal status of a recorded operation."""

    OK = "ok"  # returned a value / OK
    ABORTED = "aborted"  # returned ⊥
    CRASHED = "crashed"  # coordinator crashed mid-operation (partial op)
    PENDING = "pending"  # still running when the history was closed


@dataclass(frozen=True)
class StripeConfig:
    """Static parameters of one erasure-coded stripe.

    Attributes:
        m: number of data blocks per stripe.
        n: total number of blocks (data + parity) per stripe.
        block_size: size of each block in bytes.
    """

    m: int
    n: int
    block_size: int

    def __post_init__(self) -> None:
        from .errors import ConfigurationError

        if self.m < 1:
            raise ConfigurationError(f"m must be >= 1, got {self.m}")
        if self.n < self.m:
            raise ConfigurationError(f"n must be >= m, got n={self.n} m={self.m}")
        if self.block_size < 1:
            raise ConfigurationError(
                f"block_size must be >= 1, got {self.block_size}"
            )

    @property
    def parity_count(self) -> int:
        """Number of parity blocks (the paper's ``k = n - m``)."""
        return self.n - self.m

    @property
    def fault_tolerance(self) -> int:
        """Maximum faulty processes ``f = floor((n - m) / 2)`` (Section 2.2)."""
        return (self.n - self.m) // 2

    @property
    def quorum_size(self) -> int:
        """Size of an m-quorum in the canonical construction: ``n - f``."""
        return self.n - self.fault_tolerance

    @property
    def stripe_size(self) -> int:
        """Total user-visible bytes per stripe (``m * block_size``)."""
        return self.m * self.block_size

    def data_processes(self) -> Tuple[ProcessId, ...]:
        """Process ids storing data blocks (``p_1 .. p_m``)."""
        return tuple(range(1, self.m + 1))

    def parity_processes(self) -> Tuple[ProcessId, ...]:
        """Process ids storing parity blocks (``p_{m+1} .. p_n``)."""
        return tuple(range(self.m + 1, self.n + 1))

    def all_processes(self) -> Tuple[ProcessId, ...]:
        """All process ids (``p_1 .. p_n``)."""
        return tuple(range(1, self.n + 1))


def validate_stripe(stripe: Sequence[Block], config: StripeConfig) -> None:
    """Check that ``stripe`` is a well-formed stripe value for ``config``.

    Raises:
        CodingError: if the stripe has the wrong arity or block sizes.
    """
    from .errors import CodingError

    if len(stripe) != config.m:
        raise CodingError(
            f"stripe must contain m={config.m} blocks, got {len(stripe)}"
        )
    for index, block in enumerate(stripe):
        if not isinstance(block, (bytes, bytearray)):
            raise CodingError(f"block {index} is not bytes: {type(block)!r}")
        if len(block) != config.block_size:
            raise CodingError(
                f"block {index} has size {len(block)}, expected "
                f"{config.block_size}"
            )
