"""A sharded fleet: placement groups of FAB clusters plus a spare pool.

:class:`ShardedCluster` composes one :class:`~repro.core.cluster.
FabCluster` per placement group.  Registers are routed to groups by the
placement hash, every group runs its own quorum system over its own
(deterministic, per-group-seeded) simulation substrate, and a pool of
hot spares stands by for promotion.  Because a register's stripe lives
wholly inside one group, the composition is safe by construction: no
protocol message, quorum intersection, or recovery ever spans groups.

Brick failure handling closes the paper's reliability loop
(Figures 2-3):

1. ``crash_brick`` — the brick's group loses one member; the group
   quorum masks it.
2. ``promote_spare`` — a spare assumes the failed brick's slot with a
   factory-fresh (blank) disk; the global id changes, the group-local
   process id does not.
3. ``rebuild_brick`` — group-local re-protection.  With an LRC group
   code the fragment path reads only the failed brick's *local parity
   group* (``local_group_size`` fragments per register, not ``m``), and
   falls back to the protocol rebuilder (full recovery write-back)
   whenever the fast path cannot prove itself safe: source fragments
   disagreeing on version, quarantined or missing state, or a
   non-reconstructible pattern.  The fallback re-uses
   :class:`~repro.core.rebuild.Rebuilder`, whose empty-brick audit
   (see ``ScrubReport.empty``) guarantees a blank replacement is never
   mistaken for redundant.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.cluster import ClusterConfig, FabCluster
from ..core.rebuild import Rebuilder, Scrubber
from ..core.register import StorageRegister
from ..erasure.lrc import LRCCode
from ..errors import CodingError, ConfigurationError, CorruptionDetected
from ..sim.node import StableStore
from .groups import PlacementMap

__all__ = ["ShardedConfig", "ShardedCluster", "BrickRebuildReport"]


@dataclass
class ShardedConfig:
    """Fleet-level configuration.

    Attributes:
        bricks: total fleet size including spares.
        groups: placement-group count; each group becomes one
            independent FAB cluster of ``(bricks - spares) / groups``
            bricks.
        spares: hot-spare pool size.
        m: data blocks per stripe inside each group (the group's
            cluster runs ``m``-of-``group_size``).
        block_size: stripe-unit size in bytes.
        code_kind: per-group erasure code (default ``"lrc"`` — the
            locality the layer exists for; any registered kind works).
        erasure_backend: GF(2^8) kernel backend.
        domains: failure domains for balanced placement.
        seed: master seed — placement, routing, and every group's
            cluster derive determinism from it.
        cluster: template for per-group cluster configuration (network,
            coordinator knobs, persistence, ...); ``m``/``n``/
            ``code_kind``/``seed`` are overridden per group.
    """

    bricks: int = 16
    groups: int = 4
    spares: int = 0
    m: int = 2
    block_size: int = 1024
    code_kind: str = "lrc"
    erasure_backend: str = "auto"
    domains: int = 1
    seed: int = 0
    cluster: ClusterConfig = field(default_factory=ClusterConfig)


@dataclass
class BrickRebuildReport:
    """Outcome of one brick's group-local rebuild."""

    brick: int
    group: int
    registers: int = 0
    local_repairs: int = 0
    protocol_repairs: int = 0
    already_current: int = 0
    aborted: int = 0
    fragments_read: int = 0
    bytes_read: int = 0

    @property
    def success(self) -> bool:
        return self.aborted == 0


class ShardedCluster:
    """Placement groups of FAB clusters with hot-spare promotion."""

    def __init__(self, config: Optional[ShardedConfig] = None) -> None:
        self.config = config or ShardedConfig()
        cfg = self.config
        self.placement = PlacementMap(
            cfg.bricks, cfg.groups, cfg.spares, seed=cfg.seed,
            domains=cfg.domains,
        )
        group_size = self.placement.group_size
        if cfg.m >= group_size:
            raise ConfigurationError(
                f"need m < group size, got m={cfg.m}, "
                f"group size={group_size}"
            )
        self.group_clusters: List[FabCluster] = []
        for gid in range(cfg.groups):
            group_config = replace(
                cfg.cluster,
                m=cfg.m,
                n=group_size,
                block_size=cfg.block_size,
                code_kind=cfg.code_kind,
                erasure_backend=cfg.erasure_backend,
                # Distinct per-group seeds, all derived from the master.
                seed=cfg.seed * 8191 + gid,
            )
            self.group_clusters.append(FabCluster(group_config))
        # Brick-to-slot mapping is mutable: promotion retires the failed
        # global id and seats the spare in its slot.
        self._slot_of: Dict[int, Tuple[int, int]] = {
            brick: self.placement.slot_of(brick)
            for group in self.placement.members
            for brick in group
        }
        self._brick_at: Dict[Tuple[int, int], int] = {
            slot: brick for brick, slot in self._slot_of.items()
        }
        self.spare_pool: List[int] = list(self.placement.spares)
        self.retired: List[int] = []

    # -- topology -------------------------------------------------------

    def slot_of(self, brick: int) -> Tuple[int, int]:
        """Current ``(group, local_pid)`` seat of a brick."""
        slot = self._slot_of.get(brick)
        if slot is None:
            raise ConfigurationError(
                f"brick {brick} holds no slot (spare or retired)"
            )
        return slot

    def brick_at(self, group: int, local_pid: int) -> int:
        """Global brick id currently seated at a slot."""
        return self._brick_at[(group, local_pid)]

    def cluster_of_group(self, group: int) -> FabCluster:
        return self.group_clusters[group]

    def cluster_of_brick(self, brick: int) -> FabCluster:
        return self.group_clusters[self.slot_of(brick)[0]]

    def live_bricks(self) -> List[int]:
        """Global ids of seated, currently-up bricks."""
        return sorted(
            brick
            for brick, (gid, lpid) in self._slot_of.items()
            if self.group_clusters[gid].nodes[lpid].is_up
        )

    # -- register routing -----------------------------------------------

    def register(self, register_id: int, route=None) -> StorageRegister:
        """A register handle, routed to its placement group.

        With no explicit ``route``, the coordinator is the group's first
        *live* brick — any brick can coordinate (paper Section 2), and a
        fleet client should not stall because the default one is down.
        """
        gid = self.placement.group_of_register(register_id)
        cluster = self.group_clusters[gid]
        if route is None:
            live = cluster.live_processes()
            route = live[0] if live else None
        return cluster.register(register_id, route=route)

    def register_ids(self) -> List[int]:
        """Every register with state anywhere in the fleet."""
        seen: set = set()
        for cluster in self.group_clusters:
            seen.update(cluster.register_ids())
        return sorted(seen)

    # -- failure handling -----------------------------------------------

    def crash_brick(self, brick: int) -> None:
        gid, lpid = self.slot_of(brick)
        self.group_clusters[gid].crash(lpid)

    def recover_brick(self, brick: int) -> None:
        gid, lpid = self.slot_of(brick)
        self.group_clusters[gid].recover(lpid)

    def promote_spare(self, failed_brick: int) -> int:
        """Seat a hot spare in a crashed brick's slot.

        The spare takes over the slot's group-local process id (its
        network identity inside the group) with a factory-fresh stable
        store — the moral equivalent of racking a new brick at the dead
        one's address.  The failed global id is retired.  Returns the
        spare's global id.  The new brick holds *nothing* until
        :meth:`rebuild_brick` re-protects the group's registers.
        """
        if not self.spare_pool:
            raise ConfigurationError("spare pool is empty")
        gid, lpid = self.slot_of(failed_brick)
        cluster = self.group_clusters[gid]
        node = cluster.nodes[lpid]
        if node.is_up:
            raise ConfigurationError(
                f"brick {failed_brick} is up; promotion replaces failed bricks"
            )
        spare = self.spare_pool.pop(0)
        node.stable = StableStore(
            mode=node.stable.mode,
            verify_checksums=node.stable.verify_checksums,
        )
        del self._slot_of[failed_brick]
        self._slot_of[spare] = (gid, lpid)
        self._brick_at[(gid, lpid)] = spare
        self.retired.append(failed_brick)
        cluster.recover(lpid)
        return spare

    # -- rebuild --------------------------------------------------------

    def rebuild_brick(
        self,
        brick: int,
        register_ids: Optional[Iterable[int]] = None,
        prefer_local: bool = True,
    ) -> BrickRebuildReport:
        """Re-protect one brick's registers, group-locally.

        Only the brick's placement group participates — the rest of the
        fleet neither reads nor writes a byte.  With an LRC group code
        and ``prefer_local``, each register is repaired by reading the
        failed block's local parity group (at most ``local_group_size``
        fragments); the protocol rebuilder handles everything the fast
        path cannot prove safe.

        The fragment fast path is an *operator* path, like scrubbing:
        it assumes no client writes race the repair (the protocol
        fallback is linearization-safe regardless).
        """
        gid, lpid = self.slot_of(brick)
        cluster = self.group_clusters[gid]
        if not cluster.nodes[lpid].is_up:
            cluster.recover(lpid)
        if register_ids is None:
            register_ids = cluster.register_ids()
        ids = sorted(set(register_ids))
        report = BrickRebuildReport(brick=brick, group=gid, registers=len(ids))
        rebuilder = Rebuilder(cluster, route=self._live_route(cluster, lpid))
        for register_id in ids:
            if prefer_local and self._rebuild_fragment_local(
                cluster, lpid, register_id, report
            ):
                report.local_repairs += 1
                continue
            outcome = "aborted"
            for _attempt in range(3):
                outcome = rebuilder.rebuild_register(register_id)
                if outcome != "aborted":
                    break
            if outcome == "repaired":
                report.protocol_repairs += 1
            elif outcome == "current":
                report.already_current += 1
            else:
                report.aborted += 1
        return report

    @staticmethod
    def _live_route(cluster: FabCluster, avoid: int) -> int:
        """A live coordinator pid, preferring bricks other than ``avoid``
        (the brick under repair should not coordinate its own rebuild)."""
        live = cluster.live_processes()
        for pid in live:
            if pid != avoid:
                return pid
        return live[0] if live else 1

    def _rebuild_fragment_local(
        self,
        cluster: FabCluster,
        lpid: int,
        register_id: int,
        report: BrickRebuildReport,
    ) -> bool:
        """Try the fragment-level local repair.  True on success.

        Safe only when the local sources prove a consistent picture:
        every source fragment carries the same newest version timestamp
        and the target accepts it under its ``ord-ts`` gate.  Any doubt
        returns False and the caller falls back to protocol recovery.
        """
        code = cluster.code
        target = cluster.replicas[lpid]
        try:
            if target.has_register(register_id):
                state = target.state(register_id)
                target_ts = state.log.max_ts()
            else:
                state = None
                target_ts = None
        except CorruptionDetected:
            return False  # quarantined: the protocol repair path owns it
        available = [
            pid
            for pid in cluster.live_processes()
            if pid != lpid and cluster.replicas[pid].has_register(register_id)
        ]
        try:
            if isinstance(code, LRCCode):
                sources = code.recovery_sources(lpid, available)
            else:
                if len(available) < code.m:
                    return False
                sources = sorted(available)[: code.m]
        except CodingError:
            return False
        fragments: Dict[int, bytes] = {}
        version = None
        for pid in sources:
            try:
                source_state = cluster.replicas[pid].state(register_id)
            except CorruptionDetected:
                return False
            ts, block = source_state.log.max_block()
            if source_state.log.max_ts() != ts or not isinstance(
                block, (bytes, bytearray)
            ):
                # A ⊥ tail or nil value: the group is mid-write or
                # empty; let the protocol sort it out.
                return False
            if version is None:
                version = ts
            elif ts != version:
                return False  # sources disagree: not quiesced
            fragments[pid] = bytes(block)
            report.fragments_read += 1
            report.bytes_read += len(block)
            cluster.metrics.count_disk_read()
        if version is None:
            return False
        if target_ts is not None and target_ts >= version:
            return False  # target is not behind; scrub/protocol decides
        if version < target.ord_ts_of(register_id):
            return False  # would violate the NVRAM ordering gate
        try:
            if isinstance(code, LRCCode):
                fragment = code.reconstruct(lpid, fragments)
            else:
                data = code.decode(fragments)
                if lpid <= code.m:
                    fragment = data[lpid - 1]
                else:
                    fragment = code.encode(data)[lpid - 1]
        except CodingError:
            return False
        if state is None:
            state = target.state(register_id)
        state.log.append(version, fragment)
        target.persist_append(register_id, state, version, fragment)
        cluster.metrics.count_disk_write()
        return True

    # -- diagnostics ----------------------------------------------------

    def scrub_brick(self, brick: int) -> List:
        """Scrub every register of a brick's group (operator audit)."""
        gid, _ = self.slot_of(brick)
        cluster = self.group_clusters[gid]
        return Scrubber(cluster).scrub(cluster.register_ids())

    def total_disk_reads(self) -> int:
        return sum(c.metrics.total_disk_reads for c in self.group_clusters)

    def total_disk_writes(self) -> int:
        return sum(c.metrics.total_disk_writes for c in self.group_clusters)

    def total_messages(self) -> int:
        return sum(c.metrics.total_messages for c in self.group_clusters)

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"ShardedCluster(bricks={cfg.bricks}, groups={cfg.groups}, "
            f"group_size={self.placement.group_size}, m={cfg.m}, "
            f"code={cfg.code_kind!r}, spares={len(self.spare_pool)})"
        )
