"""Fleet-scale placement: groups, sharding, and hot-spare rebuild.

ROADMAP open item 1: shard registers across placement groups (each an
independent m-quorum over a subset of bricks), run a local-
reconstruction code inside each group, and close the reliability loop
with hot-spare promotion and group-local rebuild.

* :class:`~repro.placement.groups.PlacementMap` — deterministic
  brick-to-group and register-to-group assignment (balanced, seeded,
  failure-domain aware).
* :class:`~repro.placement.sharded.ShardedCluster` — one FAB cluster
  per group, a spare pool, ``promote_spare``, and ``rebuild_brick``
  whose LRC fragment path reads only the failed brick's local parity
  group.
* :mod:`repro.placement.campaign` — the fault-campaign harness run
  over a sharded LRC fleet, proving the online invariants are
  placement-agnostic.
"""

from .campaign import (
    ShardedCampaignConfig,
    ShardedCampaignResult,
    project_schedule,
    run_sharded_campaign,
)
from .groups import PlacementMap
from .sharded import BrickRebuildReport, ShardedCluster, ShardedConfig

__all__ = [
    "PlacementMap",
    "ShardedCluster",
    "ShardedConfig",
    "BrickRebuildReport",
    "ShardedCampaignConfig",
    "ShardedCampaignResult",
    "project_schedule",
    "run_sharded_campaign",
]
