"""Placement groups: mapping bricks and registers onto group quorums.

One FAB cluster is one quorum system over ``n`` bricks — fine for a
rack, wrong for a fleet.  At fleet scale registers are *sharded*: the
bricks are partitioned into placement groups, each group runs its own
independent m-quorum, and every register lives wholly inside the group
its id hashes to.  A brick failure then concerns exactly one group —
rebuild traffic, quorum chatter, and blast radius are all group-local.

:class:`PlacementMap` is the pure, deterministic layout: given a fleet
size, a group count, a spare count, and a seed, it produces the same
brick-to-group assignment and the same register-to-group routing every
time.  Assignment follows the balanced-Dnode discipline of the VDATASIM
exemplar (SNIPPETS.md Snippet 1): bricks are ordered failure-domain-
major and each group takes a contiguous run of that order, so groups
end up the same size and each group's members cycle evenly through the
failure domains.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError

__all__ = ["PlacementMap"]


class PlacementMap:
    """Deterministic assignment of bricks to placement groups.

    Args:
        bricks: total fleet size, including spares (brick ids
            ``1..bricks``).
        groups: number of placement groups; ``bricks - spares`` must
            divide evenly into them.
        spares: bricks held back as a hot-spare pool (no group
            membership until promoted).
        seed: determinism anchor for both the brick shuffle and the
            register-routing hash.
        domains: failure domains; brick ``b`` belongs to domain
            ``(b - 1) % domains``.  Members of each group are spread as
            evenly as possible across domains (``domains=1`` disables
            the spreading).
    """

    def __init__(
        self,
        bricks: int,
        groups: int,
        spares: int = 0,
        seed: int = 0,
        domains: int = 1,
    ) -> None:
        if bricks < 1 or groups < 1:
            raise ConfigurationError(
                f"need bricks >= 1 and groups >= 1, got {bricks}, {groups}"
            )
        if spares < 0 or spares >= bricks:
            raise ConfigurationError(
                f"spares must be in 0..{bricks - 1}, got {spares}"
            )
        placed = bricks - spares
        if placed % groups:
            raise ConfigurationError(
                f"{placed} placed bricks do not divide into {groups} groups"
            )
        if domains < 1:
            raise ConfigurationError(f"need domains >= 1, got {domains}")
        self.bricks = bricks
        self.groups = groups
        self.seed = seed
        self.domains = domains
        self.group_size = placed // groups

        # Deterministic deal: shuffle once, order domain-major, then
        # give each group a *contiguous run* of that order.  The
        # domain-major sequence cycles through the failure domains, so a
        # contiguous run of ``group_size`` bricks covers the domains as
        # evenly as arithmetic allows.  (A round-robin deal would not:
        # when the group count divides the domain count, each group
        # would see the same domains over and over.)
        rng = random.Random(seed)
        shuffled = list(range(1, bricks + 1))
        rng.shuffle(shuffled)
        by_domain: List[List[int]] = [[] for _ in range(domains)]
        for brick in shuffled:
            by_domain[(brick - 1) % domains].append(brick)
        dealt: List[int] = []
        cursors = [0] * domains
        while len(dealt) < bricks:
            for domain in range(domains):
                if cursors[domain] < len(by_domain[domain]):
                    dealt.append(by_domain[domain][cursors[domain]])
                    cursors[domain] += 1
        self.members: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(dealt[gid * self.group_size:(gid + 1) * self.group_size]))
            for gid in range(groups)
        )
        self.spares: Tuple[int, ...] = tuple(sorted(dealt[placed:]))
        self._slot_of: Dict[int, Tuple[int, int]] = {}
        for gid, group in enumerate(self.members):
            for local_pid, brick in enumerate(group, start=1):
                self._slot_of[brick] = (gid, local_pid)

    # -- brick topology -------------------------------------------------

    def group_of_brick(self, brick: int) -> Optional[int]:
        """Group id of a brick, or ``None`` for spares."""
        self._check_brick(brick)
        slot = self._slot_of.get(brick)
        return slot[0] if slot is not None else None

    def slot_of(self, brick: int) -> Tuple[int, int]:
        """``(group, local_pid)`` of a placed brick (local pids are the
        1-based process ids inside the group's quorum)."""
        self._check_brick(brick)
        slot = self._slot_of.get(brick)
        if slot is None:
            raise ConfigurationError(f"brick {brick} is a spare (no slot)")
        return slot

    def brick_at(self, group: int, local_pid: int) -> int:
        """Global brick id occupying ``(group, local_pid)``."""
        if not 0 <= group < self.groups:
            raise ConfigurationError(
                f"group {group} out of range 0..{self.groups - 1}"
            )
        if not 1 <= local_pid <= self.group_size:
            raise ConfigurationError(
                f"local pid {local_pid} out of range 1..{self.group_size}"
            )
        return self.members[group][local_pid - 1]

    def domain_of(self, brick: int) -> int:
        """Failure domain of a brick."""
        self._check_brick(brick)
        return (brick - 1) % self.domains

    def _check_brick(self, brick: int) -> None:
        if not 1 <= brick <= self.bricks:
            raise ConfigurationError(
                f"brick {brick} out of range 1..{self.bricks}"
            )

    # -- register routing -----------------------------------------------

    def group_of_register(self, register_id: int) -> int:
        """The placement group a register's stripe lives in.

        A seeded CRC32 of the id — deterministic across processes and
        runs (unlike ``hash``), uniform enough to balance millions of
        registers over hundreds of groups.
        """
        digest = zlib.crc32(f"{self.seed}:{register_id}".encode("ascii"))
        return digest % self.groups

    def registers_of_group(self, register_ids, group: int) -> List[int]:
        """Filter a register-id collection down to one group's share."""
        return [
            register_id
            for register_id in register_ids
            if self.group_of_register(register_id) == group
        ]

    def __repr__(self) -> str:
        return (
            f"PlacementMap(bricks={self.bricks}, groups={self.groups}, "
            f"group_size={self.group_size}, spares={len(self.spares)}, "
            f"domains={self.domains}, seed={self.seed})"
        )
