"""Fault campaigns over a sharded, LRC-coded fleet.

The campaign engine (:mod:`repro.campaign.engine`) validates one FAB
cluster.  A placement-group fleet is a *composition* of such clusters,
and the composition argument — registers never span groups, so no
protocol message crosses a group boundary — means fleet-level validity
reduces to per-group validity **under a consistent fleet-level failure
pattern**.  This module makes that argument executable:

1. one fleet-level fault schedule is generated from the master seed,
   targeting *global* brick ids (so a scheduled crash is a physical
   event: the brick dies, whichever group it serves);
2. the schedule is *projected* onto each group — crash/recover and
   partition targets are filtered to the group's members and remapped
   to group-local process ids, network-weather windows (message-drop
   probability) apply fleet-wide;
3. each group runs the standard campaign over its own registers with
   the projected schedule and a group-derived seed, checking the full
   invariant suite (timestamp sanity, strict linearizability, read
   integrity);
4. the fleet result aggregates the per-group results; the fleet passes
   iff every group passes.

Because the fleet schedule caps concurrent crashes at one group's fault
tolerance, no projection can exceed any group's bound — the fleet
campaign proves the invariants are placement-agnostic, not that groups
survive over-budget damage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..campaign.engine import CampaignConfig, CampaignResult, run_campaign
from ..campaign.schedule import CampaignSchedule, FaultEvent, generate_schedule
from ..errors import ConfigurationError
from .groups import PlacementMap

__all__ = [
    "ShardedCampaignConfig",
    "ShardedCampaignResult",
    "project_schedule",
    "run_sharded_campaign",
]


@dataclass(frozen=True)
class ShardedCampaignConfig:
    """Knobs for one sharded-fleet campaign run.

    Attributes:
        bricks / groups / spares / domains: fleet shape (spares take no
            workload — they exist so the placement matches production
            layouts; promotion is exercised by the placement tests, not
            mid-campaign).
        m / block_size / code_kind / erasure_backend: per-group stripe
            geometry and code (default LRC — the layout this layer
            exists for).
        seed: master seed; the fleet schedule, per-group cluster seeds,
            and register routing all derive from it.
        registers: fleet-wide register count; ids are routed to groups
            by the placement hash, exactly as :class:`~repro.placement.
            sharded.ShardedCluster` routes them.
        clients_per_group / ops_per_client / write_fraction /
        block_fraction: workload shape inside each group.
        duration / drain / op_timeout: schedule horizon and settle time.
        crash_weight / partition_weight / drop_weight / drop_max: fleet
            fault mix, forwarded to the schedule generator.
    """

    bricks: int = 34
    groups: int = 4
    spares: int = 2
    domains: int = 1
    m: int = 4
    block_size: int = 32
    code_kind: str = "lrc"
    erasure_backend: str = "auto"
    seed: int = 0
    registers: int = 16
    clients_per_group: int = 2
    ops_per_client: int = 20
    write_fraction: float = 0.5
    block_fraction: float = 0.4
    duration: float = 300.0
    drain: float = 150.0
    op_timeout: float = 120.0
    crash_weight: float = 3.0
    partition_weight: float = 1.0
    drop_weight: float = 1.0
    drop_max: float = 0.2


@dataclass
class ShardedCampaignResult:
    """Aggregated outcome of one fleet campaign."""

    seed: int
    group_results: List[CampaignResult] = field(default_factory=list)
    schedule: CampaignSchedule = field(repr=False, default=None)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.group_results)

    @property
    def violations(self) -> List:
        return [
            violation
            for result in self.group_results
            for violation in result.violations
        ]

    @property
    def ops(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for result in self.group_results:
            for status, count in result.ops.items():
                totals[status] = totals.get(status, 0) + count
        return dict(sorted(totals.items()))

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "groups": [result.to_dict() for result in self.group_results],
            "ops": self.ops,
            "fleet_schedule_events": (
                len(self.schedule.events) if self.schedule else 0
            ),
        }


def project_schedule(
    fleet: CampaignSchedule, placement: PlacementMap, group: int
) -> CampaignSchedule:
    """Project a fleet-level schedule onto one placement group.

    Crash/recover/partition targets are global brick ids; events whose
    targets intersect the group's membership are kept with targets
    remapped to group-local process ids, the rest are dropped (a crash
    of another group's brick — or of an idle spare — is invisible
    here).  ``heal`` and drop-window events carry no targets and apply
    to every group: network weather is fleet-wide.
    """
    members = set(placement.members[group])
    local = {brick: placement.slot_of(brick)[1] for brick in members}
    events: List[FaultEvent] = []
    for event in fleet.sorted_events():
        if event.kind in ("crash", "recover", "partition"):
            kept = tuple(
                sorted(local[t] for t in event.targets if t in members)
            )
            if kept:
                events.append(
                    FaultEvent(time=event.time, kind=event.kind,
                               targets=kept, value=event.value)
                )
        elif event.kind in ("heal", "drop_start", "drop_stop"):
            events.append(event)
        # corrupt / torn_write target (brick, register) pairs whose
        # register ids are fleet-scoped; the fleet generator keeps
        # corruption disabled, so projection need not translate them.
    skews = {
        local[brick]: skew
        for brick, skew in fleet.clock_skews.items()
        if brick in members
    }
    return CampaignSchedule(events=events, clock_skews=skews, seed=fleet.seed)


def run_sharded_campaign(
    config: ShardedCampaignConfig,
) -> ShardedCampaignResult:
    """Run the campaign over every placement group; fully deterministic.

    One fleet schedule, ``config.groups`` projected campaigns, one
    aggregated verdict.  Raises :class:`ConfigurationError` for
    geometries where ``m`` does not fit the group size.
    """
    placement = PlacementMap(
        config.bricks, config.groups, config.spares,
        seed=config.seed, domains=config.domains,
    )
    group_size = placement.group_size
    if config.m >= group_size:
        raise ConfigurationError(
            f"need m < group size, got m={config.m}, group size={group_size}"
        )
    tolerance = (group_size - config.m) // 2
    fleet_schedule = generate_schedule(
        seed=config.seed,
        n=config.bricks,
        duration=config.duration,
        # The fleet never has more bricks down at once than one group
        # tolerates, so every projection stays within its group's bound.
        max_down=max(1, tolerance),
        crash_weight=config.crash_weight,
        partition_weight=config.partition_weight,
        drop_weight=config.drop_weight,
        drop_max=config.drop_max,
    )
    result = ShardedCampaignResult(seed=config.seed, schedule=fleet_schedule)
    for gid in range(config.groups):
        share = placement.registers_of_group(range(config.registers), gid)
        group_config = CampaignConfig(
            m=config.m,
            n=group_size,
            block_size=config.block_size,
            code_kind=config.code_kind,
            erasure_backend=config.erasure_backend,
            # Same derivation ShardedCluster uses for per-group seeds.
            seed=config.seed * 8191 + gid,
            registers=max(1, len(share)),
            clients=config.clients_per_group,
            ops_per_client=config.ops_per_client,
            write_fraction=config.write_fraction,
            block_fraction=config.block_fraction,
            duration=config.duration,
            drain=config.drain,
            op_timeout=config.op_timeout,
        )
        projected = project_schedule(fleet_schedule, placement, gid)
        result.group_results.append(run_campaign(group_config, projected))
    return result
