"""Structural-sharing value freezing for the copy-on-write stable store.

The seed implementation of :class:`~repro.sim.node.StableStore` deep-copied
every value on every ``store`` *and* ``load`` to guard against aliasing
(mutating an in-memory value must never retroactively change "disk").
That guard is correct but O(value) in Python-object churn on the hottest
path in the simulator: every replica log mutation persists the whole log.

This module provides the cheap equivalent:

* :func:`freeze` converts a value into an immutable *snapshot*.  Known
  immutable types (``bytes``, ``str``, numbers, :class:`Timestamp`,
  registered sentinels like the log's ``⊥``) are shared by reference —
  zero copies.  Containers are rebuilt once into immutable frozen forms
  whose elements are themselves frozen.  Unknown mutable types fall back
  to a pickle round-trip, preserving the old semantics.
* :func:`thaw` reconstructs a fresh, mutation-safe value from a snapshot.
  Because snapshot internals are immutable, a thawed container is a
  shallow rebuild — mutating it (or its thawed children) cannot reach
  the snapshot.

``freeze`` also returns an approximate persisted size and the number of
payload bytes that were *physically copied* (buffer duplication or
pickling), which the stable store aggregates into the ``size_bytes`` /
``bytes_copied`` counters used by the simcore benchmark.
"""

from __future__ import annotations

import pickle
import zlib
from typing import Any, Tuple

from ..timestamps import Timestamp

__all__ = [
    "freeze",
    "thaw",
    "estimate_size",
    "fingerprint",
    "flip_bit",
    "register_immutable",
]

#: Types shared by reference on freeze: immutable, and immutable all the
#: way down.  (Tuples/frozensets are handled structurally because they may
#: contain mutable elements.)
_ATOM_TYPES = {
    type(None): 4,
    bool: 4,
    int: 12,
    float: 16,
    complex: 24,
    str: None,  # sized by length
    bytes: None,  # sized by length
    Timestamp: 48,
}

#: Extra immutable leaf types registered by other layers (e.g. the
#: replica log registers its ⊥ sentinel).  Maps type -> size estimate.
_REGISTERED: dict = {}

_BYTES_OVERHEAD = 33  # approximate pickle overhead for a bytes object
_CONTAINER_OVERHEAD = 8


def register_immutable(tp: type, size: int = 8) -> None:
    """Declare ``tp`` instances immutable leaves for :func:`freeze`.

    Instances pass through freeze/thaw by reference (identity is
    preserved — required for sentinel values compared with ``is``).
    """
    _REGISTERED[tp] = size


class _FrozenTuple:
    """A tuple whose elements needed freezing."""

    __slots__ = ("items",)

    def __init__(self, items: tuple) -> None:
        self.items = items


class _FrozenList:
    """Snapshot of a ``list``: an immutable tuple of frozen elements."""

    __slots__ = ("items",)

    def __init__(self, items: tuple) -> None:
        self.items = items


class _FrozenDict:
    """Snapshot of a ``dict``: a tuple of (key, frozen-value) pairs."""

    __slots__ = ("items",)

    def __init__(self, items: tuple) -> None:
        self.items = items


class _FrozenSet:
    """Snapshot of a ``set`` of immutable elements."""

    __slots__ = ("items",)

    def __init__(self, items: frozenset) -> None:
        self.items = items


class _FrozenByteArray:
    """Snapshot of a ``bytearray`` (content copied once into bytes)."""

    __slots__ = ("data",)

    def __init__(self, data: bytes) -> None:
        self.data = data


class _FrozenPickle:
    """Fallback snapshot for unknown types: a pickle blob."""

    __slots__ = ("data",)

    def __init__(self, data: bytes) -> None:
        self.data = data


def _atom_size(value: Any, base: Any) -> int:
    if base is None:  # str / bytes: sized by content
        return len(value) + _BYTES_OVERHEAD
    return base


def freeze(value: Any) -> Tuple[Any, int, int]:
    """Snapshot ``value``; returns ``(frozen, size_estimate, bytes_copied)``.

    ``frozen`` shares immutable structure with ``value`` wherever
    possible; later mutation of ``value`` cannot affect it.
    """
    tp = type(value)
    base = _ATOM_TYPES.get(tp)
    if base is not None or tp in (str, bytes):
        return value, _atom_size(value, base), 0
    reg = _REGISTERED.get(tp)
    if reg is not None:
        return value, reg, 0
    if tp is tuple:
        frozen_items = []
        size = _CONTAINER_OVERHEAD
        copied = 0
        unchanged = True
        for item in value:
            frozen, item_size, item_copied = freeze(item)
            if frozen is not item:
                unchanged = False
            frozen_items.append(frozen)
            size += item_size
            copied += item_copied
        if unchanged:
            return value, size, copied
        return _FrozenTuple(tuple(frozen_items)), size, copied
    if tp is list:
        frozen_items = []
        size = _CONTAINER_OVERHEAD
        copied = 0
        for item in value:
            frozen, item_size, item_copied = freeze(item)
            frozen_items.append(frozen)
            size += item_size
            copied += item_copied
        return _FrozenList(tuple(frozen_items)), size, copied
    if tp is dict:
        pairs = []
        size = _CONTAINER_OVERHEAD
        copied = 0
        simple_keys = True
        for key, item in value.items():
            frozen_key, key_size, key_copied = freeze(key)
            if frozen_key is not key:
                # Keys must stay hashable-by-value; a mutable key means
                # the dict as a whole takes the pickle fallback.
                simple_keys = False
                break
            frozen_val, val_size, val_copied = freeze(item)
            pairs.append((frozen_key, frozen_val))
            size += key_size + val_size
            copied += key_copied + val_copied
        if simple_keys:
            return _FrozenDict(tuple(pairs)), size, copied
    if tp is bytearray:
        data = bytes(value)
        return _FrozenByteArray(data), len(data) + _BYTES_OVERHEAD, len(data)
    if tp in (set, frozenset):
        frozen_items = []
        size = _CONTAINER_OVERHEAD
        copied = 0
        all_hashable = True
        for item in value:
            frozen, item_size, item_copied = freeze(item)
            if frozen is not item:
                # A frozen wrapper is unhashable; fall back below.
                all_hashable = False
                break
            frozen_items.append(frozen)
            size += item_size
            copied += item_copied
        if all_hashable:
            snapshot = frozenset(frozen_items)
            if tp is frozenset:
                return snapshot, size, 0
            return _FrozenSet(snapshot), size, copied
    # Unknown (or unhashable-element) type: pickle round-trip fallback.
    data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return _FrozenPickle(data), len(data), len(data)


def thaw(frozen: Any) -> Any:
    """Rebuild a fresh value from a :func:`freeze` snapshot.

    The result is detached: mutating it can never reach the snapshot,
    because every shared object is immutable.
    """
    tp = type(frozen)
    if tp is _FrozenList:
        return [thaw(item) for item in frozen.items]
    if tp is _FrozenTuple:
        return tuple(thaw(item) for item in frozen.items)
    if tp is _FrozenDict:
        return {thaw(key): thaw(value) for key, value in frozen.items}
    if tp is _FrozenSet:
        return set(frozen.items)
    if tp is _FrozenByteArray:
        return bytearray(frozen.data)
    if tp is _FrozenPickle:
        return pickle.loads(frozen.data)
    if tp is tuple:
        thawed = [thaw(item) for item in frozen]
        if all(new is old for new, old in zip(thawed, frozen)):
            return frozen
        return tuple(thawed)
    return frozen


def _crc_feed(crc: int, frozen: Any) -> int:
    """Fold one frozen node (type tag + content) into a running CRC32."""
    tp = type(frozen)
    if frozen is None:
        return zlib.crc32(b"N", crc)
    if tp is bool:
        return zlib.crc32(b"T" if frozen else b"F", crc)
    if tp is int:
        return zlib.crc32(b"i" + repr(frozen).encode(), crc)
    if tp is float:
        return zlib.crc32(b"f" + repr(frozen).encode(), crc)
    if tp is complex:
        return zlib.crc32(b"c" + repr(frozen).encode(), crc)
    if tp is str:
        return zlib.crc32(b"s" + frozen.encode("utf-8", "surrogatepass"), crc)
    if tp is bytes:
        return zlib.crc32(b"b" + frozen, crc)
    if tp is Timestamp:
        data = repr(frozen).encode()
        return zlib.crc32(b"t" + data, crc)
    if tp is _FrozenTuple:
        crc = zlib.crc32(b"(", crc)
        for item in frozen.items:
            crc = _crc_feed(crc, item)
        return zlib.crc32(b")", crc)
    if tp is tuple:
        crc = zlib.crc32(b"(", crc)
        for item in frozen:
            crc = _crc_feed(crc, item)
        return zlib.crc32(b")", crc)
    if tp is _FrozenList:
        crc = zlib.crc32(b"[", crc)
        for item in frozen.items:
            crc = _crc_feed(crc, item)
        return zlib.crc32(b"]", crc)
    if tp is _FrozenDict:
        crc = zlib.crc32(b"{", crc)
        for key, value in frozen.items:
            crc = _crc_feed(crc, key)
            crc = _crc_feed(crc, value)
        return zlib.crc32(b"}", crc)
    if tp is _FrozenSet or tp is frozenset:
        items = frozen.items if tp is _FrozenSet else frozen
        # Sets are unordered; fold element CRCs order-independently.
        acc = 0
        for item in items:
            acc ^= _crc_feed(0, item)
        return zlib.crc32(b"#" + acc.to_bytes(4, "big"), crc)
    if tp is _FrozenByteArray:
        return zlib.crc32(b"B" + frozen.data, crc)
    if tp is _FrozenPickle:
        return zlib.crc32(b"P" + frozen.data, crc)
    if tp in _REGISTERED:
        # Registered sentinels (e.g. ⊥) are singletons: type identity
        # is their whole content.
        return zlib.crc32(b"R" + tp.__name__.encode(), crc)
    # Unknown immutable leaf admitted by freeze (should not happen).
    return zlib.crc32(b"?" + repr(frozen).encode(), crc)


def fingerprint(frozen: Any) -> int:
    """CRC32 fingerprint of a frozen snapshot's logical content.

    Deterministic across runs (no ``id()``/hash-seed dependence) and
    sensitive to any bit-level change in stored payload bytes — the
    checksum the stable store's corruption envelope is built on.
    """
    return _crc_feed(0, frozen)


def flip_bit(
    frozen: Any, seed: int, bytes_only: bool = False
) -> Tuple[Any, bool]:
    """Rebuild ``frozen`` with one bit flipped in one payload leaf.

    ``seed`` deterministically picks which ``bytes``/``str`` leaf and
    which bit.  Returns ``(mutated_snapshot, True)`` on success, or
    ``(frozen, False)`` when the snapshot holds no flippable payload
    (no bytes/str/pickle content anywhere; with ``bytes_only``, no
    byte-typed payload).  Used by fault injection to model a latent
    sector error: the envelope CRC is *not* updated, so the next
    verified read detects the damage.
    """
    leaves = []

    def collect(node: Any, path: Tuple[int, ...]) -> None:
        tp = type(node)
        if tp in (bytes, str) and len(node) > 0:
            leaves.append((path, node))
        elif tp in (_FrozenByteArray, _FrozenPickle) and len(node.data) > 0:
            leaves.append((path, node))
        elif tp is _FrozenTuple or tp is _FrozenList:
            for i, item in enumerate(node.items):
                collect(item, path + (i,))
        elif tp is tuple:
            for i, item in enumerate(node):
                collect(item, path + (i,))
        elif tp is _FrozenDict:
            for i, (_key, value) in enumerate(node.items):
                collect(value, path + (i,))

    collect(frozen, ())
    # Prefer byte payloads (data blocks — the realistic latent-sector
    # target) over str leaves like journal record tags: flipping a tag
    # makes the record *malformed*, which framing catches even without
    # checksums, whereas payload damage is truly silent.
    byte_leaves = [
        (path, leaf) for path, leaf in leaves if type(leaf) is not str
    ]
    if byte_leaves or bytes_only:
        leaves = byte_leaves
    if not leaves:
        return frozen, False
    path, leaf = leaves[seed % len(leaves)]

    def damage(node: Any) -> Any:
        tp = type(node)
        if tp is bytes:
            data = bytearray(node)
        elif tp is str:
            data = bytearray(node.encode("utf-8", "surrogatepass"))
        else:  # _FrozenByteArray / _FrozenPickle
            data = bytearray(node.data)
        bit = seed % (len(data) * 8)
        data[bit // 8] ^= 1 << (bit % 8)
        if tp is bytes:
            return bytes(data)
        if tp is str:
            # Decode damaged bytes leniently; the point is only that
            # the content (and hence the CRC) changed.
            return bytes(data).decode("utf-8", "replace")
        return tp(bytes(data))

    def rebuild(node: Any, at: Tuple[int, ...]) -> Any:
        if not at:
            return damage(node)
        index, rest = at[0], at[1:]
        tp = type(node)
        if tp is _FrozenTuple or tp is _FrozenList:
            items = list(node.items)
            items[index] = rebuild(items[index], rest)
            return tp(tuple(items))
        if tp is tuple:
            items = list(node)
            items[index] = rebuild(items[index], rest)
            return tuple(items)
        if tp is _FrozenDict:
            pairs = list(node.items)
            key, value = pairs[index]
            pairs[index] = (key, rebuild(value, rest))
            return _FrozenDict(tuple(pairs))
        raise TypeError(f"unexpected node on flip path: {tp!r}")

    return rebuild(frozen, path), True


def estimate_size(value: Any) -> int:
    """Approximate persisted size of ``value`` without copying it."""
    tp = type(value)
    base = _ATOM_TYPES.get(tp)
    if base is not None or tp in (str, bytes):
        return _atom_size(value, base)
    reg = _REGISTERED.get(tp)
    if reg is not None:
        return reg
    if tp in (tuple, list, set, frozenset):
        return _CONTAINER_OVERHEAD + sum(estimate_size(item) for item in value)
    if tp is dict:
        return _CONTAINER_OVERHEAD + sum(
            estimate_size(key) + estimate_size(item)
            for key, item in value.items()
        )
    if tp is bytearray:
        return len(value) + _BYTES_OVERHEAD
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64
