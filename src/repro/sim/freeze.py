"""Structural-sharing value freezing for the copy-on-write stable store.

The seed implementation of :class:`~repro.sim.node.StableStore` deep-copied
every value on every ``store`` *and* ``load`` to guard against aliasing
(mutating an in-memory value must never retroactively change "disk").
That guard is correct but O(value) in Python-object churn on the hottest
path in the simulator: every replica log mutation persists the whole log.

This module provides the cheap equivalent:

* :func:`freeze` converts a value into an immutable *snapshot*.  Known
  immutable types (``bytes``, ``str``, numbers, :class:`Timestamp`,
  registered sentinels like the log's ``⊥``) are shared by reference —
  zero copies.  Containers are rebuilt once into immutable frozen forms
  whose elements are themselves frozen.  Unknown mutable types fall back
  to a pickle round-trip, preserving the old semantics.
* :func:`thaw` reconstructs a fresh, mutation-safe value from a snapshot.
  Because snapshot internals are immutable, a thawed container is a
  shallow rebuild — mutating it (or its thawed children) cannot reach
  the snapshot.

``freeze`` also returns an approximate persisted size and the number of
payload bytes that were *physically copied* (buffer duplication or
pickling), which the stable store aggregates into the ``size_bytes`` /
``bytes_copied`` counters used by the simcore benchmark.
"""

from __future__ import annotations

import pickle
from typing import Any, Tuple

from ..timestamps import Timestamp

__all__ = [
    "freeze",
    "thaw",
    "estimate_size",
    "register_immutable",
]

#: Types shared by reference on freeze: immutable, and immutable all the
#: way down.  (Tuples/frozensets are handled structurally because they may
#: contain mutable elements.)
_ATOM_TYPES = {
    type(None): 4,
    bool: 4,
    int: 12,
    float: 16,
    complex: 24,
    str: None,  # sized by length
    bytes: None,  # sized by length
    Timestamp: 48,
}

#: Extra immutable leaf types registered by other layers (e.g. the
#: replica log registers its ⊥ sentinel).  Maps type -> size estimate.
_REGISTERED: dict = {}

_BYTES_OVERHEAD = 33  # approximate pickle overhead for a bytes object
_CONTAINER_OVERHEAD = 8


def register_immutable(tp: type, size: int = 8) -> None:
    """Declare ``tp`` instances immutable leaves for :func:`freeze`.

    Instances pass through freeze/thaw by reference (identity is
    preserved — required for sentinel values compared with ``is``).
    """
    _REGISTERED[tp] = size


class _FrozenTuple:
    """A tuple whose elements needed freezing."""

    __slots__ = ("items",)

    def __init__(self, items: tuple) -> None:
        self.items = items


class _FrozenList:
    """Snapshot of a ``list``: an immutable tuple of frozen elements."""

    __slots__ = ("items",)

    def __init__(self, items: tuple) -> None:
        self.items = items


class _FrozenDict:
    """Snapshot of a ``dict``: a tuple of (key, frozen-value) pairs."""

    __slots__ = ("items",)

    def __init__(self, items: tuple) -> None:
        self.items = items


class _FrozenSet:
    """Snapshot of a ``set`` of immutable elements."""

    __slots__ = ("items",)

    def __init__(self, items: frozenset) -> None:
        self.items = items


class _FrozenByteArray:
    """Snapshot of a ``bytearray`` (content copied once into bytes)."""

    __slots__ = ("data",)

    def __init__(self, data: bytes) -> None:
        self.data = data


class _FrozenPickle:
    """Fallback snapshot for unknown types: a pickle blob."""

    __slots__ = ("data",)

    def __init__(self, data: bytes) -> None:
        self.data = data


def _atom_size(value: Any, base: Any) -> int:
    if base is None:  # str / bytes: sized by content
        return len(value) + _BYTES_OVERHEAD
    return base


def freeze(value: Any) -> Tuple[Any, int, int]:
    """Snapshot ``value``; returns ``(frozen, size_estimate, bytes_copied)``.

    ``frozen`` shares immutable structure with ``value`` wherever
    possible; later mutation of ``value`` cannot affect it.
    """
    tp = type(value)
    base = _ATOM_TYPES.get(tp)
    if base is not None or tp in (str, bytes):
        return value, _atom_size(value, base), 0
    reg = _REGISTERED.get(tp)
    if reg is not None:
        return value, reg, 0
    if tp is tuple:
        frozen_items = []
        size = _CONTAINER_OVERHEAD
        copied = 0
        unchanged = True
        for item in value:
            frozen, item_size, item_copied = freeze(item)
            if frozen is not item:
                unchanged = False
            frozen_items.append(frozen)
            size += item_size
            copied += item_copied
        if unchanged:
            return value, size, copied
        return _FrozenTuple(tuple(frozen_items)), size, copied
    if tp is list:
        frozen_items = []
        size = _CONTAINER_OVERHEAD
        copied = 0
        for item in value:
            frozen, item_size, item_copied = freeze(item)
            frozen_items.append(frozen)
            size += item_size
            copied += item_copied
        return _FrozenList(tuple(frozen_items)), size, copied
    if tp is dict:
        pairs = []
        size = _CONTAINER_OVERHEAD
        copied = 0
        simple_keys = True
        for key, item in value.items():
            frozen_key, key_size, key_copied = freeze(key)
            if frozen_key is not key:
                # Keys must stay hashable-by-value; a mutable key means
                # the dict as a whole takes the pickle fallback.
                simple_keys = False
                break
            frozen_val, val_size, val_copied = freeze(item)
            pairs.append((frozen_key, frozen_val))
            size += key_size + val_size
            copied += key_copied + val_copied
        if simple_keys:
            return _FrozenDict(tuple(pairs)), size, copied
    if tp is bytearray:
        data = bytes(value)
        return _FrozenByteArray(data), len(data) + _BYTES_OVERHEAD, len(data)
    if tp in (set, frozenset):
        frozen_items = []
        size = _CONTAINER_OVERHEAD
        copied = 0
        all_hashable = True
        for item in value:
            frozen, item_size, item_copied = freeze(item)
            if frozen is not item:
                # A frozen wrapper is unhashable; fall back below.
                all_hashable = False
                break
            frozen_items.append(frozen)
            size += item_size
            copied += item_copied
        if all_hashable:
            snapshot = frozenset(frozen_items)
            if tp is frozenset:
                return snapshot, size, 0
            return _FrozenSet(snapshot), size, copied
    # Unknown (or unhashable-element) type: pickle round-trip fallback.
    data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return _FrozenPickle(data), len(data), len(data)


def thaw(frozen: Any) -> Any:
    """Rebuild a fresh value from a :func:`freeze` snapshot.

    The result is detached: mutating it can never reach the snapshot,
    because every shared object is immutable.
    """
    tp = type(frozen)
    if tp is _FrozenList:
        return [thaw(item) for item in frozen.items]
    if tp is _FrozenTuple:
        return tuple(thaw(item) for item in frozen.items)
    if tp is _FrozenDict:
        return {thaw(key): thaw(value) for key, value in frozen.items}
    if tp is _FrozenSet:
        return set(frozen.items)
    if tp is _FrozenByteArray:
        return bytearray(frozen.data)
    if tp is _FrozenPickle:
        return pickle.loads(frozen.data)
    if tp is tuple:
        thawed = [thaw(item) for item in frozen]
        if all(new is old for new, old in zip(thawed, frozen)):
            return frozen
        return tuple(thawed)
    return frozen


def estimate_size(value: Any) -> int:
    """Approximate persisted size of ``value`` without copying it."""
    tp = type(value)
    base = _ATOM_TYPES.get(tp)
    if base is not None or tp in (str, bytes):
        return _atom_size(value, base)
    reg = _REGISTERED.get(tp)
    if reg is not None:
        return reg
    if tp in (tuple, list, set, frozenset):
        return _CONTAINER_OVERHEAD + sum(estimate_size(item) for item in value)
    if tp is dict:
        return _CONTAINER_OVERHEAD + sum(
            estimate_size(key) + estimate_size(item)
            for key, item in value.items()
        )
    if tp is bytearray:
        return len(value) + _BYTES_OVERHEAD
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64
