"""Deterministic discrete-event simulation substrate.

The paper's model (Section 2) is an asynchronous message-passing system:
no bound on message delay or processing time, crash-recovery processes,
fair-loss channels that may drop and reorder messages.  This subpackage
implements exactly that model as a deterministic discrete-event
simulator, so protocol runs are reproducible from a seed and failure
schedules can be scripted precisely (e.g. "crash the coordinator after
its second Write message").

Layers:

* :mod:`repro.sim.kernel` — the event loop: processes as Python
  generators, timeouts, composite events, interrupts.
* :mod:`repro.sim.network` — fair-loss network with configurable delay
  distributions, drop/duplicate probabilities, and partitions.
* :mod:`repro.sim.node` — crash-recovery nodes with persistent stable
  storage and a disk model.
* :mod:`repro.sim.failures` — failure injectors (scheduled and random
  crash/recovery, message-count triggers).
* :mod:`repro.sim.monitor` — metric counters (messages, bytes, disk
  I/O, latency) backing the Table 1 measurements.
"""

from .kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from .monitor import Metrics, OpMetrics
from .network import Message, Network, NetworkConfig
from .node import Node, StableStore

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Network",
    "NetworkConfig",
    "Message",
    "Node",
    "StableStore",
    "Metrics",
    "OpMetrics",
]
