"""Metric counters for protocol measurement.

Table 1 of the paper reports, per operation type: latency (in units of
the one-way message delay δ), message count, disk reads, disk writes,
and network bandwidth.  :class:`Metrics` is the global sink the network
and node layers report into; :class:`OpMetrics` scopes counters to a
single register operation so benchmarks can attribute costs per
operation and per fast/slow path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["Metrics", "OpMetrics"]


@dataclass
class OpMetrics:
    """Counters for one register operation.

    Attributes:
        kind: operation label, e.g. ``"read-stripe"``.
        path: ``"fast"`` or ``"slow"``; set by the coordinator when the
            operation completes.
        messages: protocol messages sent on behalf of the operation
            (requests plus replies, as in Table 1's accounting).
        bytes_sent: total payload bytes moved over the network.
        disk_reads: replica log/block reads (timestamps live in NVRAM
            and are not counted, matching the paper's convention).
        disk_writes: replica log/block writes.
        round_trips: number of request-reply phases (latency is
            ``2 * round_trips`` in δ units).
        started_at / finished_at: simulated wall-clock bounds.
        aborted: True if the operation returned ⊥.
    """

    kind: str
    path: str = "fast"
    messages: int = 0
    bytes_sent: int = 0
    disk_reads: int = 0
    disk_writes: int = 0
    round_trips: int = 0
    started_at: float = 0.0
    finished_at: Optional[float] = None
    aborted: bool = False

    @property
    def latency(self) -> Optional[float]:
        """Simulated duration, if finished."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def latency_in_delta(self) -> int:
        """Latency in δ units (one-way hops): two per round trip."""
        return 2 * self.round_trips


class Metrics:
    """Global metric sink with an optional per-operation context.

    The network and node layers call :meth:`count_message`,
    :meth:`count_disk_read`, and :meth:`count_disk_write`; whatever
    operation context is current absorbs the counts in addition to the
    global totals.
    """

    def __init__(self) -> None:
        self.total_messages = 0
        self.total_bytes = 0
        self.total_disk_reads = 0
        self.total_disk_writes = 0
        self.dropped_messages = 0
        self.operations: List[OpMetrics] = []
        self._current: Optional[OpMetrics] = None

    # -- operation scoping ---------------------------------------------

    def begin_op(self, kind: str, now: float) -> OpMetrics:
        """Open a per-operation context; returns its counter object."""
        op = OpMetrics(kind=kind, started_at=now)
        self.operations.append(op)
        self._current = op
        return op

    def end_op(self, op: OpMetrics, now: float, aborted: bool = False) -> None:
        """Close an operation context."""
        op.finished_at = now
        op.aborted = aborted
        if self._current is op:
            self._current = None

    # -- counting hooks --------------------------------------------------

    def count_message(self, size: int) -> None:
        """Record one protocol message of ``size`` payload bytes."""
        self.total_messages += 1
        self.total_bytes += size
        if self._current is not None:
            self._current.messages += 1
            self._current.bytes_sent += size

    def count_drop(self) -> None:
        """Record a message dropped by the network."""
        self.dropped_messages += 1

    def count_disk_read(self, blocks: int = 1) -> None:
        """Record replica disk reads."""
        self.total_disk_reads += blocks
        if self._current is not None:
            self._current.disk_reads += blocks

    def count_disk_write(self, blocks: int = 1) -> None:
        """Record replica disk writes."""
        self.total_disk_writes += blocks
        if self._current is not None:
            self._current.disk_writes += blocks

    def count_round_trip(self) -> None:
        """Record one request-reply messaging phase."""
        if self._current is not None:
            self._current.round_trips += 1

    # -- reporting -------------------------------------------------------

    def by_kind_and_path(self) -> Dict[str, List[OpMetrics]]:
        """Group finished operations by ``"kind/path"`` label."""
        groups: Dict[str, List[OpMetrics]] = {}
        for op in self.operations:
            if op.finished_at is None:
                continue
            groups.setdefault(f"{op.kind}/{op.path}", []).append(op)
        return groups

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Mean counters per operation group — the measured Table 1 rows."""
        result: Dict[str, Dict[str, float]] = {}
        for label, ops in self.by_kind_and_path().items():
            count = len(ops)
            result[label] = {
                "count": count,
                "messages": sum(o.messages for o in ops) / count,
                "bytes": sum(o.bytes_sent for o in ops) / count,
                "disk_reads": sum(o.disk_reads for o in ops) / count,
                "disk_writes": sum(o.disk_writes for o in ops) / count,
                "latency_delta": sum(o.latency_in_delta for o in ops) / count,
                "abort_rate": sum(1 for o in ops if o.aborted) / count,
            }
        return result
