"""Metric counters for protocol measurement.

Table 1 of the paper reports, per operation type: latency (in units of
the one-way message delay δ), message count, disk reads, disk writes,
and network bandwidth.  :class:`Metrics` is the global sink the network
and node layers report into; :class:`OpMetrics` scopes counters to a
single register operation so benchmarks can attribute costs per
operation and per fast/slow path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["Metrics", "OpMetrics", "SessionStats"]


@dataclass
class OpMetrics:
    """Counters for one register operation.

    Attributes:
        kind: operation label, e.g. ``"read-stripe"``.
        path: ``"fast"`` or ``"slow"``; set by the coordinator when the
            operation completes.
        messages: protocol messages sent on behalf of the operation
            (requests plus replies, as in Table 1's accounting).
        bytes_sent: total payload bytes moved over the network.
        disk_reads: replica log/block reads (timestamps live in NVRAM
            and are not counted, matching the paper's convention).
        disk_writes: replica log/block writes.
        round_trips: number of request-reply phases (latency is
            ``2 * round_trips`` in δ units).
        started_at / finished_at: simulated wall-clock bounds.
        aborted: True if the operation returned ⊥.
    """

    kind: str
    path: str = "fast"
    messages: int = 0
    bytes_sent: int = 0
    disk_reads: int = 0
    disk_writes: int = 0
    round_trips: int = 0
    started_at: float = 0.0
    finished_at: Optional[float] = None
    aborted: bool = False

    @property
    def latency(self) -> Optional[float]:
        """Simulated duration, if finished."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def latency_in_delta(self) -> int:
        """Latency in δ units (one-way hops): two per round trip."""
        return 2 * self.round_trips


@dataclass
class SessionStats:
    """Counters for one :class:`~repro.core.session.VolumeSession`.

    The session engine reports here so benchmarks can attribute retry,
    failover, and concurrency behaviour per pipeline rather than only
    globally.

    Attributes:
        ops_submitted: logical operations accepted by the session
            (after write coalescing — a coalesced stripe write is one).
        ops_completed: operations finished with a client-visible value
            (including those that exhausted retries and returned ⊥).
        ops_failed: operations that finished with a hard error (e.g.
            coordinator crash with failover disabled).
        retries: abort-driven re-executions across all operations.
        aborts_exhausted: operations that surfaced ⊥ after the retry
            policy gave up.
        failovers: coordinator rotations (crash- or timeout-driven).
        transport_retries: re-routes forced by transport-level
            unreachability (a chosen coordinator the transport reported
            ``"down"``), as opposed to protocol aborts.
        timeouts: operations that exceeded their per-op deadline.
        coalesced_writes: block writes merged into wider stripe
            operations (each merge of k blocks counts k - 1).
        peak_inflight: maximum simultaneously-running operations.
        started_at / finished_at: simulated wall-clock bounds (the
            session stamps ``finished_at`` at each drain).
    """

    ops_submitted: int = 0
    ops_completed: int = 0
    ops_failed: int = 0
    retries: int = 0
    aborts_exhausted: int = 0
    failovers: int = 0
    transport_retries: int = 0
    timeouts: int = 0
    coalesced_writes: int = 0
    peak_inflight: int = 0
    started_at: float = 0.0
    finished_at: Optional[float] = None

    def note_inflight(self, count: int) -> None:
        """Record an observed concurrency level."""
        if count > self.peak_inflight:
            self.peak_inflight = count


class Metrics:
    """Global metric sink with an optional per-operation context.

    The network and node layers call :meth:`count_message`,
    :meth:`count_disk_read`, and :meth:`count_disk_write`; whatever
    operation context is current absorbs the counts in addition to the
    global totals.

    Counters are always on and O(1) per event; the *history* of
    per-operation records is what can grow without bound over long
    runs.  ``history_limit`` bounds it (keeping the most recent
    records) so 10k+-op benchmark runs keep metric memory flat; the
    scalar totals are unaffected.
    """

    def __init__(self, history_limit: Optional[int] = None) -> None:
        self.total_messages = 0
        self.total_bytes = 0
        self.total_disk_reads = 0
        self.total_disk_writes = 0
        self.dropped_messages = 0
        self.total_retransmissions = 0
        self.ops_started = 0
        self.ops_finished = 0
        #: Checksum-failed loads detected by replicas (one per register
        #: quarantined, not per retransmitted reply).
        self.checksum_failures = 0
        #: Reads that succeeded by routing around corrupt fragments.
        self.degraded_reads = 0
        #: Registers repaired by the scrub daemon's write-back.
        self.scrub_repairs = 0
        #: Register sweeps completed by the scrub daemon.
        self.scrub_scans = 0
        #: Corruptions first found by the scrubber (vs. by client I/O).
        self.scrub_detections = 0
        #: Sum of (repair time - injection/detection time) over scrub
        #: repairs, for mean time-to-repair reporting.
        self.scrub_repair_time = 0.0
        self.operations: "List[OpMetrics]" = (
            deque(maxlen=history_limit) if history_limit is not None else []
        )  # type: ignore[assignment]
        self.sessions: List[SessionStats] = []
        self._current: Optional[OpMetrics] = None

    # -- operation scoping ---------------------------------------------

    def begin_op(self, kind: str, now: float) -> OpMetrics:
        """Open a per-operation context; returns its counter object."""
        op = OpMetrics(kind=kind, started_at=now)
        self.ops_started += 1
        self.operations.append(op)
        self._current = op
        return op

    def end_op(self, op: OpMetrics, now: float, aborted: bool = False) -> None:
        """Close an operation context."""
        op.finished_at = now
        op.aborted = aborted
        self.ops_finished += 1
        if self._current is op:
            self._current = None

    # -- session scoping --------------------------------------------------

    def begin_session(self, now: float = 0.0) -> SessionStats:
        """Open a per-session counter block; returns it for direct updates."""
        stats = SessionStats(started_at=now)
        self.sessions.append(stats)
        return stats

    def session_summary(self) -> Dict[str, int]:
        """Aggregate counters over every session opened on this sink."""
        totals = {
            "sessions": len(self.sessions),
            "ops_submitted": 0,
            "ops_completed": 0,
            "ops_failed": 0,
            "retries": 0,
            "aborts_exhausted": 0,
            "failovers": 0,
            "transport_retries": 0,
            "timeouts": 0,
            "coalesced_writes": 0,
            "peak_inflight": 0,
        }
        for stats in self.sessions:
            totals["ops_submitted"] += stats.ops_submitted
            totals["ops_completed"] += stats.ops_completed
            totals["ops_failed"] += stats.ops_failed
            totals["retries"] += stats.retries
            totals["aborts_exhausted"] += stats.aborts_exhausted
            totals["failovers"] += stats.failovers
            totals["transport_retries"] += stats.transport_retries
            totals["timeouts"] += stats.timeouts
            totals["coalesced_writes"] += stats.coalesced_writes
            totals["peak_inflight"] = max(
                totals["peak_inflight"], stats.peak_inflight
            )
        return totals

    # -- counting hooks --------------------------------------------------

    def count_retransmission(self) -> None:
        """Record one quorum-phase retransmission round."""
        self.total_retransmissions += 1

    def count_message(self, size: int) -> None:
        """Record one protocol message of ``size`` payload bytes."""
        self.total_messages += 1
        self.total_bytes += size
        if self._current is not None:
            self._current.messages += 1
            self._current.bytes_sent += size

    def count_drop(self) -> None:
        """Record a message dropped by the network."""
        self.dropped_messages += 1

    def count_disk_read(self, blocks: int = 1) -> None:
        """Record replica disk reads."""
        self.total_disk_reads += blocks
        if self._current is not None:
            self._current.disk_reads += blocks

    def count_disk_write(self, blocks: int = 1) -> None:
        """Record replica disk writes."""
        self.total_disk_writes += blocks
        if self._current is not None:
            self._current.disk_writes += blocks

    def count_round_trip(self) -> None:
        """Record one request-reply messaging phase."""
        if self._current is not None:
            self._current.round_trips += 1

    def count_checksum_failure(self, count: int = 1) -> None:
        """Record detection of checksum-failed persistent state."""
        self.checksum_failures += count

    def count_degraded_read(self) -> None:
        """Record a read served from < n fragments due to corruption."""
        self.degraded_reads += 1

    def count_scrub_repair(self, elapsed: float = 0.0) -> None:
        """Record one scrub-daemon repair taking ``elapsed`` sim time."""
        self.scrub_repairs += 1
        self.scrub_repair_time += elapsed

    def count_scrub_scan(self) -> None:
        """Record one completed scrub verification of a register/brick."""
        self.scrub_scans += 1

    def count_scrub_detection(self) -> None:
        """Record a corruption first detected by the scrub daemon."""
        self.scrub_detections += 1

    @property
    def mean_time_to_repair(self) -> float:
        """Mean sim-time between detection and repair for scrub repairs."""
        if not self.scrub_repairs:
            return 0.0
        return self.scrub_repair_time / self.scrub_repairs

    # -- reporting -------------------------------------------------------

    def by_kind_and_path(self) -> Dict[str, List[OpMetrics]]:
        """Group finished operations by ``"kind/path"`` label."""
        groups: Dict[str, List[OpMetrics]] = {}
        for op in self.operations:
            if op.finished_at is None:
                continue
            groups.setdefault(f"{op.kind}/{op.path}", []).append(op)
        return groups

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Mean counters per operation group — the measured Table 1 rows."""
        result: Dict[str, Dict[str, float]] = {}
        for label, ops in self.by_kind_and_path().items():
            count = len(ops)
            result[label] = {
                "count": count,
                "messages": sum(o.messages for o in ops) / count,
                "bytes": sum(o.bytes_sent for o in ops) / count,
                "disk_reads": sum(o.disk_reads for o in ops) / count,
                "disk_writes": sum(o.disk_writes for o in ops) / count,
                "latency_delta": sum(o.latency_in_delta for o in ops) / count,
                "abort_rate": sum(1 for o in ops if o.aborted) / count,
            }
        return result
