"""Protocol message tracing.

A :class:`MessageTracer` taps a network and records every send and
delivery — time, endpoints, payload type, and fate (delivered, dropped)
— into a bounded ring buffer.  Invaluable when a protocol test fails:
``tracer.format()`` prints the message sequence chart of the failing
run, and filters slice it by register, process, or message type.

The tracer is an observer: it never alters delivery behaviour or
metrics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from ..types import ProcessId
from .network import Network

__all__ = ["TraceEntry", "MessageTracer"]


@dataclass(frozen=True)
class TraceEntry:
    """One traced network event."""

    time: float
    src: ProcessId
    dst: ProcessId
    payload_type: str
    register_id: Optional[int]
    request_id: Optional[int]
    size: int

    def __str__(self) -> str:
        target = (
            f" reg={self.register_id} req={self.request_id}"
            if self.register_id is not None
            else ""
        )
        return (
            f"t={self.time:9.2f}  {self.src:>3} -> {self.dst:<3} "
            f"{self.payload_type:<16}{target} ({self.size}B)"
        )


class MessageTracer:
    """Records sends flowing through a network.

    Args:
        network: the network to tap.
        capacity: ring-buffer size (oldest entries are evicted).
    """

    def __init__(self, network: Network, capacity: int = 10_000) -> None:
        self.entries: Deque[TraceEntry] = deque(maxlen=capacity)
        self._network = network
        network.add_send_observer(self._on_send)

    def _on_send(self, message) -> None:
        payload = message.payload
        self.entries.append(
            TraceEntry(
                time=self._network.env.now,
                src=message.src,
                dst=message.dst,
                payload_type=type(payload).__name__,
                register_id=getattr(payload, "register_id", None),
                request_id=getattr(payload, "request_id", None),
                size=message.size,
            )
        )

    def uninstall(self) -> None:
        """Stop tracing; the network's send path pays nothing again."""
        self._network.remove_send_observer(self._on_send)

    # -- queries -----------------------------------------------------------

    def filter(
        self,
        payload_type: Optional[str] = None,
        register_id: Optional[int] = None,
        endpoint: Optional[ProcessId] = None,
        predicate: Optional[Callable[[TraceEntry], bool]] = None,
    ) -> List[TraceEntry]:
        """Entries matching every given criterion."""
        result = []
        for entry in self.entries:
            if payload_type is not None and entry.payload_type != payload_type:
                continue
            if register_id is not None and entry.register_id != register_id:
                continue
            if endpoint is not None and endpoint not in (entry.src, entry.dst):
                continue
            if predicate is not None and not predicate(entry):
                continue
            result.append(entry)
        return result

    def count(self, payload_type: str) -> int:
        """Number of traced sends of one message type."""
        return len(self.filter(payload_type=payload_type))

    def format(self, limit: int = 100, **filter_kwargs) -> str:
        """A printable message sequence chart (last ``limit`` entries)."""
        entries = self.filter(**filter_kwargs)[-limit:]
        if not entries:
            return "(no traced messages)"
        return "\n".join(str(entry) for entry in entries)

    def clear(self) -> None:
        """Drop all recorded entries."""
        self.entries.clear()
