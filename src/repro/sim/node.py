"""Crash-recovery nodes with persistent storage.

A node models one brick: volatile state, a :class:`StableStore` that
survives crashes (the paper's ``store(var)`` primitive, Section 4.2),
and a deliver hook wired into the network.  Crashing a node drops its
volatile state, interrupts every in-flight coordinator process it owns
(producing partial operations), and silences its message handling until
recovery.
"""

from __future__ import annotations

import copy
import pickle
from typing import Any, Callable, Dict, Generator, List, Optional

from ..errors import StorageError
from ..types import ProcessId
from .kernel import Environment, Process
from .monitor import Metrics
from .network import Message, Network

__all__ = ["StableStore", "Node"]


class StableStore:
    """Per-node persistent key-value storage (the ``store`` primitive).

    Values are deep-copied on write so later in-memory mutation cannot
    retroactively change "disk" contents — the classic aliasing bug in
    storage simulators.  Disk I/O is *not* counted here; the replica
    layer counts logical block reads/writes per the paper's accounting
    (timestamps live in NVRAM and are free).
    """

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}

    def store(self, key: str, value: Any) -> None:
        """Atomically persist ``value`` under ``key``."""
        self._data[key] = copy.deepcopy(value)

    def load(self, key: str, default: Any = None) -> Any:
        """Recover the most recently stored value (deep copy)."""
        if key in self._data:
            return copy.deepcopy(self._data[key])
        return default

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def keys(self) -> List[str]:
        """All stored keys."""
        return list(self._data)

    def size_bytes(self) -> int:
        """Approximate persisted size (pickle length) — used by GC tests."""
        return sum(
            len(pickle.dumps(value)) for value in self._data.values()
        )


class Node:
    """A brick: endpoint + stable storage + crash/recovery lifecycle.

    Args:
        env: simulation environment.
        network: the network to register with.
        process_id: this node's id in ``1..n``.
        metrics: metric sink shared with the network.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        process_id: ProcessId,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.env = env
        self.network = network
        self.process_id = process_id
        self.metrics = metrics or network.metrics
        self.stable = StableStore()
        self._up = True
        self._handlers: Dict[type, Callable[[ProcessId, Any], None]] = {}
        self._owned_processes: List[Process] = []
        self._crash_count = 0
        self._recovery_hooks: List[Callable[[], None]] = []
        network.register(process_id, self._on_message)

    # -- lifecycle ---------------------------------------------------------

    @property
    def is_up(self) -> bool:
        """True while the node is running."""
        return self._up

    @property
    def crash_count(self) -> int:
        """Number of crashes suffered so far."""
        return self._crash_count

    def crash(self) -> None:
        """Crash the node: lose volatile state, kill owned processes.

        Idempotent while down.  Stable storage survives.
        """
        if not self._up:
            return
        self._up = False
        self._crash_count += 1
        self.network.set_down(self.process_id, True)
        owned, self._owned_processes = self._owned_processes, []
        for process in owned:
            process.interrupt("crash")

    def recover(self) -> None:
        """Restart the node; volatile state must be rebuilt by hooks."""
        if self._up:
            return
        self._up = True
        self.network.set_down(self.process_id, False)
        for hook in self._recovery_hooks:
            hook()

    def on_recovery(self, hook: Callable[[], None]) -> None:
        """Register a hook run after each recovery (state reload)."""
        self._recovery_hooks.append(hook)

    # -- messaging -----------------------------------------------------------

    def register_handler(
        self, payload_type: type, handler: Callable[[ProcessId, Any], None]
    ) -> None:
        """Dispatch arriving payloads of ``payload_type`` to ``handler``."""
        self._handlers[payload_type] = handler

    def send(self, dst: ProcessId, payload: Any, size: int = 0) -> None:
        """Send a message from this node (dropped if the node is down)."""
        if not self._up:
            return
        self.network.send(self.process_id, dst, payload, size)

    def _on_message(self, message: Message) -> None:
        if not self._up:
            return
        handler = self._handlers.get(type(message.payload))
        if handler is not None:
            handler(message.src, message.payload)

    # -- process ownership -----------------------------------------------------

    def spawn(self, generator: Generator) -> Process:
        """Run a coordinator coroutine owned by this node.

        If the node crashes, the process is interrupted — modelling a
        coordinator that dies mid-operation.
        """
        if not self._up:
            raise StorageError(
                f"node {self.process_id} is down; cannot spawn a process"
            )
        # Prune finished processes opportunistically before adding.
        self._owned_processes = [p for p in self._owned_processes if p.is_alive]
        process = self.env.process(generator)
        self._owned_processes.append(process)
        return process
