"""Crash-recovery nodes with persistent storage.

A node models one brick: volatile state, a :class:`StableStore` that
survives crashes (the paper's ``store(var)`` primitive, Section 4.2),
and a deliver hook wired into the network.  Crashing a node drops its
volatile state, interrupts every in-flight coordinator process it owns
(producing partial operations), and silences its message handling until
recovery.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional, Set

from ..errors import ConfigurationError, CorruptionDetected
from ..transport.base import Endpoint, Transport
from ..transport.sim import SimTransport
from ..types import ProcessId
from .freeze import estimate_size, fingerprint, flip_bit, freeze, thaw
from .kernel import Environment
from .monitor import Metrics
from .network import Network

__all__ = ["StableStore", "Node"]


class _JournalCell:
    """A journalled key: an append-only list of frozen delta records.

    ``crcs`` runs parallel to ``records``: the CRC32 envelope of each
    record at append time (``None`` for a torn tail, which carries no
    valid envelope by definition).
    """

    __slots__ = ("records", "crcs")

    def __init__(self) -> None:
        self.records: List[Any] = []
        self.crcs: List[Optional[int]] = []


class _TornRecord:
    """A half-written trailing journal record (torn write).

    Appended when a crash lands mid-append: the record was never
    acknowledged, its framing is incomplete, and recovery detects and
    truncates it by length/framing alone — no checksum needed.  Its
    payload is never thawed.
    """

    __slots__ = ()


_TORN = _TornRecord()


class StableStore:
    """Per-node persistent key-value storage (the ``store`` primitive).

    Values must not alias live memory: later in-memory mutation cannot
    retroactively change "disk" contents — the classic aliasing bug in
    storage simulators.  Two modes provide that guarantee:

    * ``"cow"`` (default): copy-on-write.  ``store`` freezes the value
      into an immutable structural-sharing snapshot (zero copies for
      ``bytes`` blocks, timestamps, and log-entry tuples; a pickle
      round-trip only for unknown mutable types) and ``load`` rebuilds a
      fresh value from the snapshot.
    * ``"deepcopy"``: the seed-era behaviour — ``copy.deepcopy`` on
      every store and load.  Kept as the baseline the simcore benchmark
      measures against.

    Journalled keys (:meth:`append` / :meth:`load_journal`) hold an
    append-only list of small delta records, letting the replica log
    persist O(1) per mutation instead of rewriting its full state.

    ``size_bytes`` is maintained incrementally on every mutation — the
    seed re-pickled the entire store per call, which made GC accounting
    itself O(store).  ``store_count`` / ``load_count`` / ``bytes_copied``
    expose the store's churn to the simcore benchmark: ``bytes_copied``
    counts payload bytes physically duplicated (buffer copies and pickle
    blobs), which the copy-on-write path drives to near zero.

    **Corruption envelope** (``"cow"`` mode only): every stored value
    and journal record carries a CRC32 fingerprint computed at write
    time.  Reads re-verify when ``verify_checksums`` is true (default):
    a mismatch quarantines the key and raises
    :class:`~repro.errors.CorruptionDetected` instead of thawing
    garbage.  A torn trailing journal record (:meth:`tear_journal`) is
    detected by framing and silently truncated at the next read or
    append — the paper's recovery path never sees it.  The
    ``verify_checksums=False`` escape hatch disables only the *read
    check* (envelopes are still written), modelling a store without
    end-to-end verification; injected corruption then flows to clients.

    Disk I/O is *not* counted here; the replica layer counts logical
    block reads/writes per the paper's accounting (timestamps live in
    NVRAM and are free).
    """

    __slots__ = (
        "mode",
        "verify_checksums",
        "_data",
        "_crcs",
        "_sizes",
        "_size_bytes",
        "store_count",
        "load_count",
        "bytes_copied",
        "checksum_failures",
        "torn_dropped",
        "quarantined",
    )

    def __init__(self, mode: str = "cow", verify_checksums: bool = True) -> None:
        if mode not in ("cow", "deepcopy"):
            raise ConfigurationError(
                f"unknown StableStore mode {mode!r}; want 'cow' or 'deepcopy'"
            )
        self.mode = mode
        self.verify_checksums = verify_checksums
        self._data: Dict[str, Any] = {}
        self._crcs: Dict[str, int] = {}
        self._sizes: Dict[str, int] = {}
        self._size_bytes = 0
        self.store_count = 0
        self.load_count = 0
        self.bytes_copied = 0
        self.checksum_failures = 0
        self.torn_dropped = 0
        self.quarantined: Set[str] = set()

    # -- bookkeeping -------------------------------------------------------

    def _account(self, key: str, size: int) -> None:
        self._size_bytes += size - self._sizes.get(key, 0)
        self._sizes[key] = size

    # -- the store primitive ----------------------------------------------

    def store(self, key: str, value: Any) -> None:
        """Atomically persist ``value`` under ``key`` (replacing it)."""
        self.store_count += 1
        self.quarantined.discard(key)  # overwrite repairs a bad cell
        if self.mode == "deepcopy":
            size = estimate_size(value)
            self._data[key] = copy.deepcopy(value)
            self._crcs.pop(key, None)
            self.bytes_copied += size
        else:
            frozen, size, copied = freeze(value)
            self._data[key] = frozen
            self._crcs[key] = fingerprint(frozen)
            self.bytes_copied += copied
        self._account(key, size)

    def load(self, key: str, default: Any = None) -> Any:
        """Recover the most recently stored value (detached from disk).

        Raises :class:`CorruptionDetected` if the stored envelope fails
        its checksum and ``verify_checksums`` is on.
        """
        if key not in self._data:
            return default
        self.load_count += 1
        stored = self._data[key]
        if type(stored) is _JournalCell:
            return self._read_journal(key, stored)
        if self.mode == "deepcopy":
            self.bytes_copied += self._sizes.get(key, 0)
            return copy.deepcopy(stored)
        if self.verify_checksums:
            crc = self._crcs.get(key)
            if crc is not None and fingerprint(stored) != crc:
                self.checksum_failures += 1
                self.quarantined.add(key)
                raise CorruptionDetected(
                    f"checksum mismatch loading key {key!r}", key=key
                )
        return thaw(stored)

    # -- journalled keys ---------------------------------------------------

    def append(self, key: str, record: Any) -> None:
        """Persist one delta record under a journalled ``key`` — O(record).

        The journal is an ordered list; :meth:`load_journal` returns all
        records since the last :meth:`reset_journal`.  Storing a plain
        value under the same key discards the journal.
        """
        self.store_count += 1
        self.quarantined.discard(key)
        cell = self._data.get(key)
        if type(cell) is not _JournalCell:
            cell = _JournalCell()
            self._data[key] = cell
            self._crcs.pop(key, None)
            self._account(key, 0)  # release any plain value it replaces
        if cell.records and type(cell.records[-1]) is _TornRecord:
            # A fresh append overwrites the torn tail on disk.
            cell.records.pop()
            cell.crcs.pop()
        frozen, size, copied = freeze(record)
        cell.records.append(frozen)
        cell.crcs.append(fingerprint(frozen) if self.mode == "cow" else None)
        self.bytes_copied += copied
        self._account(key, self._sizes.get(key, 0) + size)

    def load_journal(self, key: str) -> List[Any]:
        """All records appended under ``key`` (empty if none).

        A torn trailing record is truncated (counted in
        ``torn_dropped``), never returned.  With ``verify_checksums``
        on, any record failing its envelope quarantines the key and
        raises :class:`CorruptionDetected`.
        """
        cell = self._data.get(key)
        if type(cell) is not _JournalCell:
            return []
        self.load_count += 1
        return self._read_journal(key, cell)

    def _read_journal(self, key: str, cell: _JournalCell) -> List[Any]:
        if cell.records and type(cell.records[-1]) is _TornRecord:
            # Torn tail: framing is incomplete, so recovery truncates it
            # regardless of checksum verification.
            cell.records.pop()
            cell.crcs.pop()
            self.torn_dropped += 1
        if self.verify_checksums:
            for record, crc in zip(cell.records, cell.crcs):
                if crc is not None and fingerprint(record) != crc:
                    self.checksum_failures += 1
                    self.quarantined.add(key)
                    raise CorruptionDetected(
                        f"checksum mismatch in journal {key!r}", key=key
                    )
        return [thaw(record) for record in cell.records]

    def journal_len(self, key: str) -> int:
        """Number of records in the journal under ``key`` (0 if none)."""
        cell = self._data.get(key)
        if type(cell) is not _JournalCell:
            return 0
        return len(cell.records)

    def reset_journal(self, key: str, records: Any = ()) -> None:
        """Atomically replace the journal with ``records`` (compaction)."""
        self.quarantined.discard(key)
        cell = _JournalCell()
        self._data[key] = cell
        self._crcs.pop(key, None)
        self._account(key, 0)  # release the journal being replaced
        size = 0
        for record in records:
            self.store_count += 1
            frozen, record_size, copied = freeze(record)
            cell.records.append(frozen)
            cell.crcs.append(
                fingerprint(frozen) if self.mode == "cow" else None
            )
            self.bytes_copied += copied
            size += record_size
        self._account(key, size)

    # -- corruption: verification and fault injection ----------------------

    def verify(self, key: str) -> bool:
        """Check ``key``'s envelope without loading or raising.

        True for absent keys, unchecksummed (deepcopy-mode) cells, and
        clean cells; False exactly when a checksum mismatch exists.  A
        torn tail is not corruption (it self-truncates on read).  The
        scrubber's detection primitive: cheap, side-effect-free.
        """
        stored = self._data.get(key)
        if stored is None:
            return True
        if type(stored) is _JournalCell:
            records, crcs = stored.records, stored.crcs
            if records and type(records[-1]) is _TornRecord:
                records, crcs = records[:-1], crcs[:-1]
            return all(
                crc is None or fingerprint(record) == crc
                for record, crc in zip(records, crcs)
            )
        crc = self._crcs.get(key)
        return crc is None or fingerprint(stored) == crc

    def corrupt(self, key: str, seed: int = 0) -> bool:
        """Inject a silent bit flip into ``key``'s stored payload.

        Deterministically (by ``seed``) picks a payload leaf and flips
        one bit *without* updating the envelope, modelling a latent
        sector error.  Returns True if a bit was flipped (False when the
        key is absent or holds no flippable payload).
        """
        stored = self._data.get(key)
        if stored is None:
            return False
        if type(stored) is _JournalCell:
            real = [
                i
                for i, record in enumerate(stored.records)
                if type(record) is not _TornRecord
            ]
            if not real:
                return False
            # Only records with byte payloads (data blocks) are
            # flippable: damaging a record *tag* makes the journal
            # malformed — a framing error, not the silent rot this
            # models — and with verification disabled it would surface
            # as a replay exception instead of garbage data.  Newest
            # first, so the damage lands in the record reads actually
            # decode (detection doesn't care — the whole cell is
            # verified — but the escape-hatch demonstration does).
            for index in reversed(real):
                mutated, flipped = flip_bit(
                    stored.records[index], seed, bytes_only=True
                )
                if flipped:
                    stored.records[index] = mutated
                    return True
            return False
        mutated, flipped = flip_bit(stored, seed)
        if flipped:
            self._data[key] = mutated
        return flipped

    def tear_journal(self, key: str) -> bool:
        """Append a torn (half-written) record to ``key``'s journal.

        Models a crash landing mid-append: the record was never
        acknowledged and carries no valid framing, so the next read or
        append truncates it.  Returns True if a torn tail was placed.
        """
        cell = self._data.get(key)
        if type(cell) is not _JournalCell:
            return False
        if cell.records and type(cell.records[-1]) is _TornRecord:
            return False  # already torn
        cell.records.append(_TORN)
        cell.crcs.append(None)
        return True

    # -- inspection --------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def keys(self) -> List[str]:
        """All stored keys."""
        return list(self._data)

    def size_bytes(self) -> int:
        """Approximate persisted size, maintained incrementally."""
        return self._size_bytes

    def size_of(self, key: str) -> int:
        """Approximate persisted size of one key (0 if absent).

        The per-key share of :meth:`size_bytes` — what journal
        compaction policies consult to keep persisted bytes O(live
        state) instead of O(records since the last snapshot).
        """
        return self._sizes.get(key, 0)


class Node(Endpoint):
    """A brick: transport endpoint + stable storage + crash lifecycle.

    All messaging, timers, and process ownership come from
    :class:`~repro.transport.base.Endpoint`; this class adds the
    :class:`StableStore` that survives crashes.

    Two construction forms:

    * ``Node(transport=t, process_id=pid, ...)`` — the endpoint rides
      on any :class:`~repro.transport.base.Transport` (what
      :class:`~repro.core.cluster.FabCluster` uses).
    * ``Node(env, network, pid, ...)`` — the legacy sim form; a
      :class:`~repro.transport.sim.SimTransport` is wrapped around the
      given kernel/network pair.  Delegation is stateless, so per-node
      wrappers over a shared network behave identically to a shared
      transport.

    Args:
        env: simulation environment (legacy form).
        network: the network to register with (legacy form).
        process_id: this node's id in ``1..n``.
        metrics: metric sink; defaults to the transport's.
        store_mode: :class:`StableStore` mode (``"cow"`` or the seed's
            ``"deepcopy"``).
        verify_checksums: verify stable-store envelopes on read
            (default True; False is the corruption escape hatch).
        transport: substrate for the keyword form.
    """

    def __init__(
        self,
        env: Optional[Environment] = None,
        network: Optional[Network] = None,
        process_id: Optional[ProcessId] = None,
        metrics: Optional[Metrics] = None,
        store_mode: str = "cow",
        verify_checksums: bool = True,
        *,
        transport: Optional[Transport] = None,
    ) -> None:
        if transport is None:
            if env is None or network is None:
                raise ConfigurationError(
                    "Node needs either transport= or the legacy "
                    "(env, network) pair"
                )
            transport = SimTransport(env=env, network=network)
        elif env is not None or network is not None:
            raise ConfigurationError(
                "pass either transport= or (env, network), not both"
            )
        if process_id is None:
            raise ConfigurationError("Node requires a process_id")
        super().__init__(transport, process_id, metrics)
        self.stable = StableStore(
            mode=store_mode, verify_checksums=verify_checksums
        )
