"""Failure injection.

The protocol's headline claim is correctness "for all patterns of crash
failures and subsequent recoveries".  These injectors script such
patterns against a set of :class:`~repro.sim.node.Node` objects:

* :class:`ScheduledFailures` — crash/recover specific nodes at specific
  simulated times (deterministic scenarios like Figure 5);
* :class:`RandomFailures` — Poisson-ish random crash/recovery churn with
  a cap on concurrently-down nodes (keeping a live quorum available);
* :class:`MessageCountTrigger` — crash a node after it has sent a given
  number of messages, the precise way to cut a coordinator mid-protocol
  (e.g. "crash after the first Write reaches only 4 replicas").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..types import ProcessId
from .kernel import Environment
from .network import Network
from .node import Node

__all__ = [
    "FailureEvent",
    "ScheduledFailures",
    "RandomFailures",
    "MessageCountTrigger",
]


@dataclass(frozen=True)
class FailureEvent:
    """One scripted lifecycle change: crash or recover ``node`` at ``time``."""

    time: float
    process_id: ProcessId
    action: str  # "crash" | "recover"

    def __post_init__(self) -> None:
        if self.action not in ("crash", "recover"):
            raise ValueError(f"action must be crash|recover, got {self.action}")


class ScheduledFailures:
    """Apply a deterministic list of :class:`FailureEvent` at their times."""

    def __init__(
        self,
        env: Environment,
        nodes: Dict[ProcessId, Node],
        events: Sequence[FailureEvent],
    ) -> None:
        self.env = env
        self.nodes = nodes
        self.events = sorted(events, key=lambda e: e.time)
        self.applied: List[FailureEvent] = []
        for event in self.events:
            timer = env.timeout(max(0.0, event.time - env.now))
            timer._add_callback(lambda _t, e=event: self._apply(e))

    def _apply(self, event: FailureEvent) -> None:
        node = self.nodes.get(event.process_id)
        if node is None:
            return
        if event.action == "crash":
            node.crash()
        else:
            node.recover()
        self.applied.append(event)


class RandomFailures:
    """Random crash/recovery churn with bounded concurrent failures.

    Every ``check_interval`` time units, each up node crashes with
    probability ``crash_probability`` (unless ``max_down`` nodes are
    already down), and each down node recovers with probability
    ``recovery_probability``.

    Args:
        max_down: cap on simultaneously crashed nodes.  Set to the
            quorum system's ``f`` to guarantee liveness; set higher to
            stress safety under quorum loss.
        horizon: stop injecting after this simulated time.
    """

    def __init__(
        self,
        env: Environment,
        nodes: Dict[ProcessId, Node],
        max_down: int,
        crash_probability: float = 0.1,
        recovery_probability: float = 0.5,
        check_interval: float = 10.0,
        horizon: float = 1e9,
        seed: int = 0,
    ) -> None:
        self.env = env
        self.nodes = nodes
        self.max_down = max_down
        self.crash_probability = crash_probability
        self.recovery_probability = recovery_probability
        self.check_interval = check_interval
        self.horizon = horizon
        self.crashes_injected = 0
        self.recoveries_injected = 0
        self._rng = random.Random(seed)
        self._schedule_next()

    def _down_count(self) -> int:
        return sum(1 for node in self.nodes.values() if not node.is_up)

    def _schedule_next(self) -> None:
        if self.env.now >= self.horizon:
            return
        timer = self.env.timeout(self.check_interval)
        timer._add_callback(lambda _t: self._tick())

    def _tick(self) -> None:
        for node in self.nodes.values():
            if node.is_up:
                if (
                    self._down_count() < self.max_down
                    and self._rng.random() < self.crash_probability
                ):
                    node.crash()
                    self.crashes_injected += 1
            else:
                if self._rng.random() < self.recovery_probability:
                    node.recover()
                    self.recoveries_injected += 1
        self._schedule_next()


class MessageCountTrigger:
    """Crash a node after it sends its ``count``-th message.

    Wraps the network's send path, so the crash lands between two
    protocol messages — the exact mechanism for constructing partial
    writes ("coordinator crashed after updating 4 of 6 replicas").

    Args:
        network: the network whose ``send`` is instrumented.
        node: node to crash.
        count: crash immediately after this many messages from the node.
        payload_type: if given, count only payloads of this type.
    """

    def __init__(
        self,
        network: Network,
        node: Node,
        count: int,
        payload_type: Optional[type] = None,
    ) -> None:
        self.node = node
        self.count = count
        self.payload_type = payload_type
        self.fired = False
        self._seen = 0
        self._original_send = network.send
        network.send = self._instrumented_send  # type: ignore[assignment]
        self._network = network

    def _instrumented_send(self, src, dst, payload, size=0):
        if (
            not self.fired
            and src == self.node.process_id
            and (self.payload_type is None or isinstance(payload, self.payload_type))
        ):
            self._seen += 1
            if self._seen >= self.count:
                # Deliver this last message, then crash.
                self._original_send(src, dst, payload, size)
                self.fired = True
                self.node.crash()
                return
        self._original_send(src, dst, payload, size)

    def uninstall(self) -> None:
        """Restore the network's original send path."""
        self._network.send = self._original_send  # type: ignore[assignment]
