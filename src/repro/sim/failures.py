"""Failure injection.

The protocol's headline claim is correctness "for all patterns of crash
failures and subsequent recoveries".  These injectors script such
patterns against a set of :class:`~repro.sim.node.Node` objects:

* :class:`ScheduledFailures` — crash/recover specific nodes at specific
  simulated times (deterministic scenarios like Figure 5);
* :class:`RandomFailures` — Poisson-ish random crash/recovery churn with
  a cap on concurrently-down nodes (keeping a live quorum available);
* :class:`MessageCountTrigger` — crash a node after it has sent a given
  number of messages, the precise way to cut a coordinator mid-protocol
  (e.g. "crash after the first Write reaches only 4 replicas");
* :class:`CorruptionInjector` — deterministic at-rest damage to stable
  storage: silent bit flips in stored fragments (latent sector errors)
  and torn journal tails (a crash landing mid-append).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..types import ProcessId
from .kernel import Environment
from .network import Network
from .node import Node

__all__ = [
    "FailureEvent",
    "ScheduledFailures",
    "RandomFailures",
    "MessageCountTrigger",
    "CorruptionInjector",
]


@dataclass(frozen=True)
class FailureEvent:
    """One scripted lifecycle change: crash or recover ``node`` at ``time``."""

    time: float
    process_id: ProcessId
    action: str  # "crash" | "recover"

    def __post_init__(self) -> None:
        if self.action not in ("crash", "recover"):
            raise ValueError(f"action must be crash|recover, got {self.action}")


class ScheduledFailures:
    """Apply a deterministic list of :class:`FailureEvent` at their times."""

    def __init__(
        self,
        env: Environment,
        nodes: Dict[ProcessId, Node],
        events: Sequence[FailureEvent],
    ) -> None:
        self.env = env
        self.nodes = nodes
        self.events = sorted(events, key=lambda e: e.time)
        self.applied: List[FailureEvent] = []
        for event in self.events:
            timer = env.timeout(max(0.0, event.time - env.now))
            timer._add_callback(lambda _t, e=event: self._apply(e))

    def _apply(self, event: FailureEvent) -> None:
        node = self.nodes.get(event.process_id)
        if node is None:
            return
        if event.action == "crash":
            node.crash()
        else:
            node.recover()
        self.applied.append(event)


class RandomFailures:
    """Random crash/recovery churn with bounded concurrent failures.

    Every ``check_interval`` time units, each up node crashes with
    probability ``crash_probability`` (unless ``max_down`` nodes are
    already down), and each down node recovers with probability
    ``recovery_probability``.

    Reaching ``horizon`` (or calling :meth:`stop`) *drains* the
    injector: every node this injector crashed and which is still down
    is recovered, so a campaign never ends with nodes silently stuck
    down forever.  Nodes crashed by other actors are left alone.

    Args:
        max_down: cap on simultaneously crashed nodes.  Set to the
            quorum system's ``f`` to guarantee liveness; set higher to
            stress safety under quorum loss.
        horizon: stop injecting (and drain) after this simulated time.
    """

    def __init__(
        self,
        env: Environment,
        nodes: Dict[ProcessId, Node],
        max_down: int,
        crash_probability: float = 0.1,
        recovery_probability: float = 0.5,
        check_interval: float = 10.0,
        horizon: float = 1e9,
        seed: int = 0,
    ) -> None:
        self.env = env
        self.nodes = nodes
        self.max_down = max_down
        self.crash_probability = crash_probability
        self.recovery_probability = recovery_probability
        self.check_interval = check_interval
        self.horizon = horizon
        self.crashes_injected = 0
        self.recoveries_injected = 0
        self.stopped = False
        self._rng = random.Random(seed)
        #: Nodes this injector crashed and has not yet seen recover.
        self._down_by_us: set = set()
        self._schedule_next()

    def _down_count(self) -> int:
        return sum(1 for node in self.nodes.values() if not node.is_up)

    def _schedule_next(self) -> None:
        timer = self.env.timeout(self.check_interval)
        timer._add_callback(lambda _t: self._tick())

    def _tick(self) -> None:
        if self.stopped:
            return
        if self.env.now >= self.horizon:
            self.stop()
            return
        for pid, node in self.nodes.items():
            if node.is_up:
                # A node we crashed that someone else recovered is no
                # longer ours to drain.
                self._down_by_us.discard(pid)
                # Re-check the cap for *each* crash: crashes earlier in
                # this same sweep count against it, so one sweep can
                # never overshoot max_down.
                if (
                    self._down_count() < self.max_down
                    and self._rng.random() < self.crash_probability
                ):
                    node.crash()
                    self._down_by_us.add(pid)
                    self.crashes_injected += 1
            else:
                if self._rng.random() < self.recovery_probability:
                    node.recover()
                    self._down_by_us.discard(pid)
                    self.recoveries_injected += 1
        self._schedule_next()

    def stop(self) -> None:
        """Stop injecting and recover every node this injector downed.

        Idempotent.  Called automatically when the horizon passes; call
        it explicitly to end a campaign early.
        """
        if self.stopped:
            return
        self.stopped = True
        for pid in sorted(self._down_by_us):
            node = self.nodes.get(pid)
            if node is not None and not node.is_up:
                node.recover()
                self.recoveries_injected += 1
        self._down_by_us.clear()


class CorruptionInjector:
    """Inject silent at-rest corruption into node stable stores.

    Works directly on the :class:`~repro.sim.node.StableStore` layer —
    below checksum verification — so the damage is exactly what a
    latent sector error or torn write leaves behind.  All injection is
    deterministic: the same ``(pid, register, seed)`` always flips the
    same bit.

    Args:
        nodes: process id -> node map (a crashed node's store is still
            injectable; the damage surfaces at its next read).
        key_patterns: stable-store key templates tried in order for a
            register's persistent log (``{register}`` placeholder);
            the defaults match the replica layer's journal and full-log
            keys.
        on_corrupt: callback ``(pid, register_id)`` run after a
            successful bit flip — the campaign engine uses it to drop
            the replica's volatile mirror (so the damage is not masked
            by caching) and to inform the invariant monitor.
    """

    def __init__(
        self,
        nodes: Dict[ProcessId, Node],
        key_patterns: Sequence[str] = ("logj:{register}", "log:{register}"),
        on_corrupt: Optional[Callable[[ProcessId, int], None]] = None,
    ) -> None:
        self.nodes = nodes
        self.key_patterns = tuple(key_patterns)
        self.on_corrupt = on_corrupt
        self.corruptions_injected = 0
        self.torn_injected = 0

    def _keys(self, register_id: int) -> List[str]:
        return [p.format(register=register_id) for p in self.key_patterns]

    def corrupt(self, pid: ProcessId, register_id: int, seed: int = 0) -> bool:
        """Flip one bit in ``register_id``'s stored log on brick ``pid``.

        Returns True iff a bit was flipped (the register has persistent
        state on that brick with flippable payload).
        """
        node = self.nodes.get(pid)
        if node is None:
            return False
        for key in self._keys(register_id):
            if key in node.stable and node.stable.corrupt(key, seed):
                self.corruptions_injected += 1
                if self.on_corrupt is not None:
                    self.on_corrupt(pid, register_id)
                return True
        return False

    def tear(self, pid: ProcessId, register_id: int) -> bool:
        """Leave a torn (half-written) tail on the register's journal.

        Models a crash mid-append: the record was never acknowledged,
        and recovery truncates it by framing.  Returns True iff a torn
        tail was placed (the register has a journal on that brick).
        """
        node = self.nodes.get(pid)
        if node is None:
            return False
        for key in self._keys(register_id):
            if node.stable.tear_journal(key):
                self.torn_injected += 1
                return True
        return False


class _TriggerDispatch:
    """The single send-path wrapper shared by all triggers on a network.

    The seed implementation had every trigger capture ``network.send``
    at install time and chain-wrap it, so uninstalling triggers in any
    order other than strict reverse restored a stale wrapper — silently
    reviving a removed trigger or dropping a live one.  One dispatcher
    per network with an explicit trigger list makes install/uninstall
    order-independent, and lets the send path revert to the unwrapped
    original as soon as the last trigger is gone (no wrapper cost after
    ``fired``).
    """

    ATTR = "_message_count_dispatch"

    def __init__(self, network: Network) -> None:
        self.network = network
        self.original_send = network.send
        self.triggers: List["MessageCountTrigger"] = []
        network.send = self._send  # type: ignore[assignment]
        setattr(network, self.ATTR, self)

    @classmethod
    def acquire(cls, network: Network) -> "_TriggerDispatch":
        dispatch = getattr(network, cls.ATTR, None)
        if dispatch is None:
            dispatch = cls(network)
        return dispatch

    def add(self, trigger: "MessageCountTrigger") -> None:
        self.triggers.append(trigger)

    def remove(self, trigger: "MessageCountTrigger") -> None:
        try:
            self.triggers.remove(trigger)
        except ValueError:
            return
        if not self.triggers:
            # Last trigger gone: restore the unwrapped send path.
            self.network.send = self.original_send  # type: ignore[assignment]
            if getattr(self.network, self.ATTR, None) is self:
                delattr(self.network, self.ATTR)

    def _send(self, src, dst, payload, size=0):
        fired = None
        for trigger in list(self.triggers):
            if trigger._observe(src, payload):
                fired = trigger if fired is None else fired
                self.remove(trigger)
        # Deliver this last message, then crash — a trigger cuts the
        # sender *between* two protocol messages, not mid-message.
        self.original_send(src, dst, payload, size)
        if fired is not None:
            fired.node.crash()

    def __contains__(self, trigger: "MessageCountTrigger") -> bool:
        return trigger in self.triggers


class MessageCountTrigger:
    """Crash a node after it sends its ``count``-th message.

    Wraps the network's send path (via a per-network dispatcher shared
    by all concurrently installed triggers), so the crash lands between
    two protocol messages — the exact mechanism for constructing partial
    writes ("coordinator crashed after updating 4 of 6 replicas").

    Triggers may be stacked freely and uninstalled in any order; a fired
    trigger removes itself, and once no trigger remains the network's
    send path reverts to the original unwrapped method.

    Args:
        network: the network whose ``send`` is instrumented.
        node: node to crash.
        count: crash immediately after this many messages from the node.
        payload_type: if given, count only payloads of this type.
    """

    def __init__(
        self,
        network: Network,
        node: Node,
        count: int,
        payload_type: Optional[type] = None,
    ) -> None:
        self.node = node
        self.count = count
        self.payload_type = payload_type
        self.fired = False
        self._seen = 0
        self._network = network
        self._dispatch = _TriggerDispatch.acquire(network)
        self._dispatch.add(self)

    def _observe(self, src, payload) -> bool:
        """Count one send; True iff this send fires the trigger."""
        if (
            self.fired
            or src != self.node.process_id
            or (self.payload_type is not None
                and not isinstance(payload, self.payload_type))
        ):
            return False
        self._seen += 1
        if self._seen >= self.count:
            self.fired = True
            return True
        return False

    @property
    def installed(self) -> bool:
        """True while the trigger is armed on the network's send path."""
        return self in self._dispatch

    def uninstall(self) -> None:
        """Remove this trigger; safe in any order, idempotent."""
        self._dispatch.remove(self)
