"""A deterministic discrete-event simulation kernel.

Processes are Python generators that ``yield`` events; the environment
advances simulated time and resumes processes when the events they wait
on trigger.  The design follows the classic SimPy architecture but is
self-contained, deterministic (FIFO tie-breaking at equal timestamps),
and adds first-class process interruption — which we use to model
coordinator crashes in the middle of a protocol operation.

Example::

    env = Environment()

    def pinger():
        yield env.timeout(5)
        return "pong"

    proc = env.process(pinger())
    env.run()
    assert env.now == 5 and proc.value == "pong"
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

from ..errors import SimulationError

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
]

#: Sentinel distinguishing "never triggered" from "triggered with None".
_PENDING = object()


class Interrupt(Exception):
    """Thrown into a process when it is interrupted (e.g. its node crashed).

    Attributes:
        cause: arbitrary value describing why (e.g. ``"crash"``).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    Events are created untriggered; :meth:`succeed` or :meth:`fail`
    triggers them exactly once, after which waiting processes resume in
    the order they registered.

    Event records are ``__slots__``-based: the kernel allocates one per
    message delivery, timeout, and process step, so avoiding a
    ``__dict__`` per instance measurably cuts simulator overhead.
    """

    __slots__ = (
        "env",
        "callbacks",
        "_value",
        "_failed",
        "_processed",
        "_defused",
    )

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._failed = False
        self._processed = False
        #: Set when a failed event's exception was delivered to a waiter.
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has fired (its callbacks have been run).

        Note the distinction from merely *scheduled*: a
        :class:`Timeout` knows its value at construction but does not
        trigger until its due time arrives.
        """
        return self._processed

    @property
    def _scheduled(self) -> bool:
        """True once a value/exception has been attached (pre-trigger)."""
        return self._value is not _PENDING

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully."""
        return self.triggered and not self._failed

    @property
    def value(self) -> Any:
        """The event's value (or exception if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._scheduled:
            raise SimulationError("event already triggered")
        self._value = value
        self.env._queue_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters receive ``exception``."""
        if self._scheduled:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._value = exception
        self._failed = True
        self.env._queue_event(self)
        return self

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run on the next scheduling round.
            self.env._call_soon(lambda: callback(self))
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        env._schedule(self, delay)


class _ConditionEvent(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("_events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._pending = 0
        for event in self._events:
            self._pending += 1
            if event.triggered:
                self.env._call_soon(lambda e=event: self._on_child(e))
            else:
                event._add_callback(self._on_child)
        if not self._events:
            self.succeed([])

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_ConditionEvent):
    """Triggers when all child events have triggered.

    Succeeds with the list of child values; fails with the first child
    exception.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._scheduled:
            return
        if not event.ok:
            event._defused = True
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e.value for e in self._events])


class AnyOf(_ConditionEvent):
    """Triggers when any child event triggers.

    Succeeds with the (event, value) pair of the first child; fails if
    the first child to trigger failed.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._scheduled:
            return
        if not event.ok:
            event._defused = True
            self.fail(event.value)
            return
        self.succeed((event, event.value))


class Process(Event):
    """A running simulation process wrapping a generator.

    A process is itself an event that triggers when the generator
    returns (with the return value) or raises (failed).  Yielding a
    process therefore waits for its completion.
    """

    __slots__ = ("_generator", "_waiting_on", "_interrupt_pending")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        super().__init__(env)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"process target must be a generator, got {type(generator)!r}"
            )
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._interrupt_pending: Optional[Interrupt] = None
        # Kick off on the next scheduling round.
        start = Event(env)
        start._value = None
        env._schedule(start, 0)
        start._add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its next resume.

        Used to model crashes: a coordinator whose node fails stops
        mid-protocol, leaving a partial operation behind.  Interrupting
        a finished process is a no-op.
        """
        if self._scheduled:
            return
        interrupt = Interrupt(cause)
        if self._waiting_on is not None:
            waited = self._waiting_on
            self._waiting_on = None
            # Detach: the event may still trigger but must not resume us.
            if waited.callbacks is not None:
                try:
                    waited.callbacks.remove(self._resume)
                except ValueError:
                    pass
            self.env._call_soon(lambda: self._throw(interrupt))
        else:
            # Not yet waiting (e.g. just created): deliver at first resume.
            self._interrupt_pending = interrupt

    def _throw(self, interrupt: Interrupt) -> None:
        if self._scheduled:
            return
        try:
            target = self._generator.throw(interrupt)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # Process chose not to handle the interrupt: dies silently.
            if not self._scheduled:
                self._value = interrupt
                self._failed = True
                self._defused = True
                self.env._queue_event(self)
            return
        except BaseException as error:
            self.fail(error)
            return
        self._wait_on(target)

    def _resume(self, event: Optional[Event]) -> None:
        if self._scheduled:
            return
        if self._interrupt_pending is not None:
            interrupt = self._interrupt_pending
            self._interrupt_pending = None
            self._throw(interrupt)
            return
        self._waiting_on = None
        try:
            if event is None or event._value is _PENDING:
                target = self._generator.send(None)
            elif event._failed:
                event._defused = True
                target = self._generator.throw(event.value)
            else:
                target = self._generator.send(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as interrupt:
            if not self._scheduled:
                self._value = interrupt
                self._failed = True
                self._defused = True
                self.env._queue_event(self)
            return
        except BaseException as error:
            self.fail(error)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            self._generator.throw(
                SimulationError(f"process yielded non-event {target!r}")
            )
            return
        if self._interrupt_pending is not None:
            # The process was interrupted while it was *running* (e.g.
            # its node crashed inside one of its own sends).  Deliver
            # the interrupt now that it has yielded — the event it just
            # started waiting on may never fire (the node is dead), so
            # deferring to the next resume could leave a zombie.
            interrupt = self._interrupt_pending
            self._interrupt_pending = None
            self.env._call_soon(lambda: self._throw(interrupt))
            return
        self._waiting_on = target
        target._add_callback(self._resume)


class Environment:
    """The simulation environment: clock plus event queue.

    Time is a float in abstract units; the network layer interprets one
    unit as it pleases (the benchmarks use milliseconds).
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List = []  # heap of (time, seq, callback-ish)
        self._seq = 0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Kernel events processed so far — the simcore bench's events/sec."""
        return self._events_processed

    @property
    def events_scheduled(self) -> int:
        """Heap pushes so far.

        Every schedule is one O(log q) push, so this is the kernel's
        heap-traffic axis: the network's batched delivery sweeps show up
        here as fewer pushes per fan-out round (see
        ``NetworkConfig.delivery_sweeps``).
        """
        return self._seq

    # -- event constructors --------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event triggering ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a process from a generator; returns the Process event."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event: all children triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event: any child triggered."""
        return AnyOf(self, events)

    # -- scheduling internals ------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))
        self._seq += 1

    def _queue_event(self, event: Event) -> None:
        heapq.heappush(self._queue, (self._now, self._seq, event))
        self._seq += 1

    def _call_soon(self, func: Callable[[], None]) -> None:
        marker = Event(self)
        marker._value = None

        def runner(_event: Event) -> None:
            func()

        marker.callbacks = [runner]
        heapq.heappush(self._queue, (self._now, self._seq, marker))
        self._seq += 1

    # -- main loop ------------------------------------------------------

    def step(self) -> None:
        """Process one queued event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        time, _seq, event = heapq.heappop(self._queue)
        if time < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = time
        self._events_processed += 1
        event._processed = True
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(event)
        if event._failed and not event._defused and not isinstance(event, Process):
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``."""
        while self._queue:
            next_time = self._queue[0][0]
            if until is not None and next_time > until:
                self._now = until
                return
            self.step()
        if until is not None and until > self._now:
            self._now = until

    def run_until_complete(self, process: Process, limit: float = 1e12) -> Any:
        """Run until ``process`` finishes; return its value.

        Raises:
            SimulationError: if the queue drains or ``limit`` is reached
                before the process completes, or re-raises the process's
                failure exception.
        """
        while not process.triggered:
            if not self._queue:
                raise SimulationError("deadlock: process pending, queue empty")
            if self._queue[0][0] > limit:
                raise SimulationError(f"time limit {limit} exceeded")
            self.step()
        if process._failed:
            value = process.value
            if isinstance(value, BaseException):
                raise value
            raise SimulationError(f"process failed with {value!r}")
        return process.value
