"""A fair-loss asynchronous network (paper Section 2).

Channels may reorder or drop messages but never (undetectably) corrupt
them, and they are fair-lossy: a message retransmitted forever to a
correct process is delivered infinitely often.  We model this with
per-message independent drop probability, randomized latency (which
yields reordering), optional duplication, and explicit partitions.

Delivery calls the destination node's ``deliver`` hook; nodes that are
crashed simply lose the message, which is indistinguishable from a drop
— exactly the asynchrony the protocol must cope with.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set

from ..errors import ConfigurationError, SimulationError
from ..types import ProcessId
from .kernel import Environment, Event
from .monitor import Metrics

__all__ = ["NetworkConfig", "Message", "Network"]


@dataclass
class NetworkConfig:
    """Tunable network behaviour.

    Attributes:
        min_latency / max_latency: one-way delay bounds; each message
            draws uniformly from the range.  ``delta`` — the paper's
            maximum one-way delay — equals ``max_latency``.
        drop_probability: independent per-message loss probability.
        duplicate_probability: probability a delivered message is
            delivered twice.
        jitter_seed: seed for the network's private RNG, making runs
            reproducible.
        delivery_sweeps: batch all messages due at the same (time,
            destination) into one kernel heap entry (a *delivery
            sweep*) instead of one per message.  On quorum fan-in —
            n replies converging on a coordinator in the same tick —
            this collapses n heap pushes/pops into one.  Per-batch
            delivery order is the per-destination send order, so any
            run remains deterministic; ``False`` restores the seed's
            one-event-per-message scheduling.
    """

    min_latency: float = 1.0
    max_latency: float = 1.0
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    jitter_seed: int = 0
    delivery_sweeps: bool = True

    def __post_init__(self) -> None:
        if self.min_latency < 0 or self.max_latency < self.min_latency:
            raise ConfigurationError(
                f"need 0 <= min_latency <= max_latency, got "
                f"{self.min_latency}, {self.max_latency}"
            )
        if not 0.0 <= self.drop_probability < 1.0:
            raise ConfigurationError(
                f"drop_probability must be in [0, 1), got {self.drop_probability}"
            )
        if not 0.0 <= self.duplicate_probability <= 1.0:
            raise ConfigurationError(
                "duplicate_probability must be in [0, 1], got "
                f"{self.duplicate_probability}"
            )

    @property
    def delta(self) -> float:
        """The paper's δ: the maximum one-way messaging delay."""
        return self.max_latency


class Message:
    """A network message.

    ``__slots__``-based (one is allocated per send on the hot path).

    Attributes:
        src / dst: endpoint process ids.
        payload: arbitrary protocol payload (a messages.py dataclass).
        size: payload size in bytes for bandwidth accounting.
    """

    __slots__ = ("src", "dst", "payload", "size")

    def __init__(
        self, src: ProcessId, dst: ProcessId, payload: Any, size: int = 0
    ) -> None:
        self.src = src
        self.dst = dst
        self.payload = payload
        self.size = size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return (
            self.src == other.src
            and self.dst == other.dst
            and self.payload == other.payload
            and self.size == other.size
        )

    def __repr__(self) -> str:
        return (
            f"Message(src={self.src!r}, dst={self.dst!r}, "
            f"payload={self.payload!r}, size={self.size!r})"
        )


class _Delivery(Event):
    """A scheduled message delivery.

    Replaces the seed's per-message ``Timeout`` + closure pair with a
    single slotted event whose callback is the network's bound
    ``_on_delivery`` — one allocation and one heap push per message.
    Used when ``delivery_sweeps`` is off.
    """

    __slots__ = ("message",)

    def __init__(self, network: "Network", message: Message, delay: float) -> None:
        super().__init__(network.env)
        self.message = message
        self._value = None
        network.env._schedule(self, delay)
        self.callbacks.append(network._on_delivery)


class _DeliverySweep(Event):
    """All messages bound for one destination at one instant.

    One heap entry per (due-time, destination) batch: the first message
    creates and schedules the sweep, later same-key sends just append.
    On a quorum round's reply fan-in this turns n pushes + n pops into
    one of each, while keeping per-destination delivery order exactly
    the send order.
    """

    __slots__ = ("key", "messages")

    def __init__(
        self, network: "Network", key, delay: float
    ) -> None:
        super().__init__(network.env)
        self.key = key
        self.messages: List[Message] = []
        self._value = None
        network.env._schedule(self, delay)
        self.callbacks.append(network._on_sweep)


class Network:
    """Routes messages between registered endpoints with fair-loss semantics.

    Args:
        env: the simulation environment.
        config: network behaviour knobs.
        metrics: optional metric sink for message/bandwidth counting.
    """

    def __init__(
        self,
        env: Environment,
        config: Optional[NetworkConfig] = None,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.env = env
        self.config = config or NetworkConfig()
        self.metrics = metrics or Metrics()
        self._rng = random.Random(self.config.jitter_seed)
        #: Open (due-time, dst) sweep batches; entries leave on firing.
        self._sweeps: Dict[tuple, _DeliverySweep] = {}
        self._endpoints: Dict[ProcessId, Callable[[Message], None]] = {}
        self._partitions: Set[frozenset] = set()
        self._down: Set[ProcessId] = set()
        self._send_observers: List[Callable[[Message], None]] = []

    # -- observation -------------------------------------------------------

    def add_send_observer(self, observer: Callable[[Message], None]) -> None:
        """Attach a per-send observer (e.g. a message tracer).

        The default path pays nothing for observation: only when an
        observer is attached does the network construct per-message
        trace records.  Observers see every send attempt, including
        messages the network later drops.
        """
        self._send_observers.append(observer)

    def remove_send_observer(self, observer: Callable[[Message], None]) -> None:
        """Detach a previously attached observer (no-op if absent)."""
        try:
            self._send_observers.remove(observer)
        except ValueError:
            pass

    # -- membership ------------------------------------------------------

    def register(
        self, process_id: ProcessId, deliver: Callable[[Message], None]
    ) -> None:
        """Attach an endpoint; ``deliver`` is invoked per arriving message."""
        if process_id in self._endpoints:
            raise SimulationError(f"endpoint {process_id} already registered")
        self._endpoints[process_id] = deliver

    def unregister(self, process_id: ProcessId) -> None:
        """Detach an endpoint (messages to it are silently lost)."""
        self._endpoints.pop(process_id, None)

    # -- failure surface ---------------------------------------------------

    def set_down(self, process_id: ProcessId, down: bool) -> None:
        """Mark an endpoint crashed; messages to/from it are lost."""
        if down:
            self._down.add(process_id)
        else:
            self._down.discard(process_id)

    def partition(self, group_a: Set[ProcessId], group_b: Set[ProcessId]) -> None:
        """Install a bidirectional partition between two groups."""
        for a in group_a:
            for b in group_b:
                self._partitions.add(frozenset((a, b)))

    def heal_partition(
        self, group_a: Optional[Set[ProcessId]] = None,
        group_b: Optional[Set[ProcessId]] = None,
    ) -> None:
        """Remove partitions; with no arguments, heal everything."""
        if group_a is None or group_b is None:
            self._partitions.clear()
            return
        for a in group_a:
            for b in group_b:
                self._partitions.discard(frozenset((a, b)))

    def is_partitioned(self, a: ProcessId, b: ProcessId) -> bool:
        """True iff a partition separates ``a`` and ``b``."""
        return frozenset((a, b)) in self._partitions

    def set_drop_probability(self, probability: float) -> None:
        """Change the per-message loss probability mid-run (validated).

        Fault injectors use this for message-drop windows; assigning
        ``config.drop_probability`` directly would skip the config's
        range validation.
        """
        if not 0.0 <= probability < 1.0:
            raise ConfigurationError(
                f"drop_probability must be in [0, 1), got {probability}"
            )
        self.config.drop_probability = probability

    # -- sending -----------------------------------------------------------

    def send(
        self, src: ProcessId, dst: ProcessId, payload: Any, size: int = 0
    ) -> None:
        """Send one message (fire-and-forget, may be lost).

        Local delivery (``src == dst``) still goes through the event
        queue (with latency) so a coordinator talking to its own replica
        behaves like any other pair — the paper makes no locality
        assumption.
        """
        message = Message(src, dst, payload, size)
        if self._send_observers:
            for observer in self._send_observers:
                observer(message)
        self.metrics.count_message(size)
        if src in self._down or dst in self._down:
            self.metrics.count_drop()
            return
        if self.is_partitioned(src, dst):
            self.metrics.count_drop()
            return
        if (
            self.config.drop_probability > 0
            and self._rng.random() < self.config.drop_probability
        ):
            self.metrics.count_drop()
            return
        self._deliver_later(message)
        if (
            self.config.duplicate_probability > 0
            and self._rng.random() < self.config.duplicate_probability
        ):
            self._deliver_later(message)

    def _deliver_later(self, message: Message) -> None:
        latency = self._rng.uniform(
            self.config.min_latency, self.config.max_latency
        )
        if not self.config.delivery_sweeps:
            _Delivery(self, message, latency)
            return
        # The kernel schedules at now + delay with the same float
        # arithmetic, so messages sharing (due, dst) land in one sweep.
        key = (self.env.now + latency, message.dst)
        sweep = self._sweeps.get(key)
        if sweep is None:
            sweep = _DeliverySweep(self, key, latency)
            self._sweeps[key] = sweep
        sweep.messages.append(message)

    def _on_delivery(self, event: Event) -> None:
        self._deliver(event.message)

    def _on_sweep(self, event: Event) -> None:
        # Detach before delivering: a handler may send again with zero
        # latency, which must open a fresh sweep, not append to this
        # already-firing one.
        self._sweeps.pop(event.key, None)
        for message in event.messages:
            self._deliver(message)

    def _deliver(self, message: Message) -> None:
        # Re-check state at delivery time: the destination may have
        # crashed, or a partition may have appeared, while the message
        # was in flight.  A *source* crash after send does NOT retract
        # the message — a coordinator's writes sent just before it died
        # still land, which is precisely how partial writes arise
        # (paper Figure 5).
        if message.dst in self._down:
            self.metrics.count_drop()
            return
        if self.is_partitioned(message.src, message.dst):
            self.metrics.count_drop()
            return
        endpoint = self._endpoints.get(message.dst)
        if endpoint is None:
            self.metrics.count_drop()
            return
        endpoint(message)
