"""The background scrub-and-repair daemon.

Checksummed persistence (:mod:`repro.sim.node`) turns silent corruption
into *detectable* corruption, and the degraded-read path routes around
it — but only for data a client happens to read.  Latent damage in cold
registers would otherwise sit until enough fragments rot to defeat the
code.  The scrub daemon closes that gap: a rate-limited background
process that verifies stored envelope checksums brick by brick and
repairs any damage it finds by erasure-decoding the surviving fragments
and writing the stripe back (the
:class:`~repro.core.rebuild.Rebuilder` recovery-with-full-coverage
primitive, so the repaired brick ends up holding its fragment again).

Two scheduling modes (``ScrubConfig.mode``):

* ``"sweep"`` — the exhaustive scheduler: every (register, brick) pair
  in round-robin order, ``bricks_per_step`` pairs per wake-up.  Simple
  and airtight, but O(fleet) per cycle: right for small clusters.
* ``"sample"`` — the confidence-driven scheduler
  (:mod:`repro.scrub.sampler`): per wake-up it scans a *sample* of the
  pair space sized so corruption at the assumed rate is detected with
  the target confidence — a budget independent of fleet size.  A
  prioritized revisit queue re-scans dirty / quarantined /
  just-repaired registers ahead of cold ones, and an aging cursor
  guarantees every live pair is still visited within a bounded number
  of cycles.  All randomness derives from ``ScrubConfig.seed``, so
  fixed-seed campaigns stay deterministic with sampling enabled.

In both modes the register set is re-resolved from the cluster at every
wake-up: registers created after :meth:`ScrubDaemon.start` are scrubbed,
and registers that no longer exist stop consuming scan budget.  Repair
write-backs flow through a budgeted queue (``max_inflight_repairs``)
ordered by fragments-lost severity, so a detection burst cannot flood
the protocol with rebuild traffic.

Detection is an *offline* audit — it reads stable storage directly via
:meth:`StableStore.verify`, costing no protocol messages and never
perturbing timestamps.  Repair runs through the ordinary protocol, so
it is linearized like any client write and safe under concurrent I/O
(an abort just means a racing client write already re-protected the
data; the next scan retries).

All progress is reported through :class:`~repro.sim.monitor.Metrics`
(``scrub_scans`` / ``scrub_detections`` / ``scrub_repairs`` and the
repair-time accumulator behind ``mean_time_to_repair``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import ConfigurationError, CorruptionDetected, StorageError
from ..types import ABORT, ProcessId
from ..core.cluster import FabCluster
from ..core.rebuild import Rebuilder
from ..core.routing import DEFAULT_ROUTE, RouteOptions
from .sampler import PairSampler, RepairQueue, RevisitQueue, required_samples

__all__ = ["ScrubConfig", "ScrubDaemon"]

#: Revisit priority for a just-repaired register (re-verify the
#: write-back); detections enqueue at ``1.0 + fragments lost``, so
#: known-dirty registers always outrank post-repair re-checks.
_REVISIT_REPAIRED = 0.5


@dataclass
class ScrubConfig:
    """Scrub-daemon knobs.

    Attributes:
        mode: ``"sweep"`` (exhaustive round-robin) or ``"sample"``
            (confidence-driven sampling; see module docs).
        interval: simulated time between daemon wake-ups.  Together
            with the per-wake-up scan count this is the rate limit.
        bricks_per_step: (register, brick) pairs verified per wake-up
            in sweep mode.
        repair: issue repair write-backs for detected damage (False =
            detect-and-report only, an audit mode).
        route: where repair write-backs coordinate, with the same
            semantics as client I/O: a pinned coordinator is preferred
            while live; ``failover=False`` skips the repair entirely
            when the pinned brick is down (a later scan retries).
            The default unpinned route picks the first live brick.
        seed: sampling RNG seed (sample mode); fixed seeds reproduce
            identical scan sequences.
        target_confidence: per-wake-up probability of detecting
            corruption at ``assumed_corrupt_rate``, used to derive the
            sample-mode scan budget via
            :func:`~repro.scrub.sampler.required_samples`.
        assumed_corrupt_rate: assumed corrupt fraction of the
            (register, brick) pair space for the budget derivation.
        samples_per_tick: explicit sample-mode budget override (None =
            derive from the confidence target; the derived budget is
            clamped to the pair-space size, so tiny clusters degenerate
            into full sweeps).
        revisit_fraction: share of each sample-mode wake-up reserved
            for the prioritized revisit queue.
        aging_fraction: share of the remaining budget drawn round-robin
            from the aging cursor (the eventual-coverage guarantee).
        max_inflight_repairs: concurrent repair write-back budget.
        detected_limit: bound on retained first-detection marks (the
            MTTR accounting map); oldest marks are evicted beyond it.
    """

    mode: str = "sweep"
    interval: float = 20.0
    bricks_per_step: int = 2
    repair: bool = True
    route: Optional[RouteOptions] = None
    seed: int = 0
    target_confidence: float = 0.95
    assumed_corrupt_rate: float = 0.01
    samples_per_tick: Optional[int] = None
    revisit_fraction: float = 0.25
    aging_fraction: float = 0.25
    max_inflight_repairs: int = 4
    detected_limit: int = 4096

    def __post_init__(self) -> None:
        if self.mode not in ("sweep", "sample"):
            raise ConfigurationError(
                f"unknown scrub mode {self.mode!r}; want 'sweep' or 'sample'"
            )
        if not 0.0 <= self.revisit_fraction <= 1.0:
            raise ConfigurationError(
                f"revisit_fraction must be in [0, 1], got "
                f"{self.revisit_fraction}"
            )
        if self.detected_limit < 1:
            raise ConfigurationError(
                f"detected_limit must be >= 1, got {self.detected_limit}"
            )


class ScrubDaemon:
    """Rate-limited background verify-and-repair scheduler over a cluster.

    Args:
        cluster: the cluster to scrub (its metrics sink absorbs all
            scrub counters).
        registers: optional register-id filter.  ``None`` (recommended)
            scrubs every register the cluster holds, re-resolved at
            each wake-up; an explicit iterable restricts scanning to
            those ids (still intersected with what actually exists, so
            ids never written — or GC'd away — cost no scan budget).
        config: scheduling mode, rate limit, and repair policy.
        horizon: simulated time after which the daemon stops itself
            (None = run until :meth:`stop`).

    The daemon is driven by simulation timers: call :meth:`start` once
    and let the environment run.  :meth:`sweep_now` is the synchronous
    alternative for tools that want one full verification pass without
    waiting for timers.
    """

    def __init__(
        self,
        cluster: FabCluster,
        registers: Optional[Iterable[int]] = None,
        config: Optional[ScrubConfig] = None,
        horizon: Optional[float] = None,
    ) -> None:
        self.cluster = cluster
        self._register_filter: Optional[Set[int]] = (
            None if registers is None else set(registers)
        )
        self.config = config or ScrubConfig()
        self.horizon = horizon
        self.metrics = cluster.metrics
        self.running = False
        self.sweeps_completed = 0
        self.repairs_done = 0
        self.repair_aborts = 0
        #: (time, pid, register_id) for every scrub-detected corruption.
        self.detections: List[Tuple[float, int, int]] = []
        #: Sweep-mode work list: the pair snapshot being drained, and
        #: the drain position.  Re-snapshotted (from the *current*
        #: register set) every time it empties, so sweep-completion
        #: accounting survives register creation and deletion.
        self._sweep_pairs: List[Tuple[int, int]] = []
        self._sweep_pos = 0
        #: (pid, register_id) -> sim time the daemon first saw it dirty.
        #: Bounded by ``config.detected_limit``; marks clear when a
        #: repair lands *or a later scan verifies the pair clean* (a
        #: client write may repair it behind the daemon's back).
        self._detected_at: Dict[Tuple[int, int], float] = {}
        self._sampler = PairSampler(
            seed=self.config.seed, aging_fraction=self.config.aging_fraction
        )
        self._revisit = RevisitQueue()
        self._repairs = RepairQueue(
            max_inflight=self.config.max_inflight_repairs
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Begin the background scan (idempotent)."""
        if self.running:
            return
        self.running = True
        self._arm_timer()

    def stop(self) -> None:
        """Stop waking up; in-flight repairs finish on their own."""
        self.running = False

    def _arm_timer(self) -> None:
        self.cluster.transport.set_timer(self.config.interval, self._tick)

    def _tick(self) -> None:
        if not self.running:
            return
        if (
            self.horizon is not None
            and self.cluster.transport.now() >= self.horizon
        ):
            self.stop()
            return
        if self.config.mode == "sample":
            self._sample_step()
        else:
            for _ in range(self.config.bricks_per_step):
                self._scan_next()
        self._pump_repairs()
        self._arm_timer()

    # -- the register/pair universe -----------------------------------------

    @property
    def registers(self) -> List[int]:
        """The registers currently subject to scrubbing (sorted).

        Resolved live from the cluster — never a stale construction
        snapshot — intersected with the optional id filter.
        """
        ids = self.cluster.register_ids()
        if self._register_filter is not None:
            ids = [r for r in ids if r in self._register_filter]
        return ids

    def _live_pairs(self) -> List[Tuple[int, int]]:
        n = self.cluster.config.n
        return [
            (register_id, pid)
            for register_id in self.registers
            for pid in range(1, n + 1)
        ]

    # -- sweep-mode scanning -------------------------------------------------

    def _scan_next(self) -> None:
        """Verify the next (register, brick) pair in round-robin order."""
        if self._sweep_pos >= len(self._sweep_pairs):
            # Drained (or first run): count the completed pass and take
            # a fresh snapshot of the *current* pair space.
            if self._sweep_pairs:
                self.sweeps_completed += 1
            self._sweep_pairs = self._live_pairs()
            self._sweep_pos = 0
            if not self._sweep_pairs:
                return
        register_id, pid = self._sweep_pairs[self._sweep_pos]
        self._sweep_pos += 1
        self._scan_one(pid, register_id)

    # -- sample-mode scanning ------------------------------------------------

    def _sample_budget(self, total_pairs: int) -> int:
        if self.config.samples_per_tick is not None:
            return max(0, min(self.config.samples_per_tick, total_pairs))
        return required_samples(
            self.config.target_confidence,
            self.config.assumed_corrupt_rate,
            total_pairs,
        )

    def _sample_step(self) -> None:
        """One sampling wake-up: revisits first, then seeded draws."""
        pairs = self._live_pairs()
        if not pairs:
            return
        n = self.cluster.config.n
        budget = self._sample_budget(len(pairs))
        if budget <= 0:
            return
        # Priority revisits: dirty / quarantined / just-repaired
        # registers, highest severity first.  Each revisit re-verifies
        # the whole register (all n bricks) — damage severity is a
        # per-register property.  A register found still dirty
        # re-enqueues itself via the detection path, for the *next*
        # wake-up (popped ids are deduped within this one).
        revisit_budget = int(budget * self.config.revisit_fraction)
        popped: List[int] = []
        while revisit_budget >= n:
            register_id = self._revisit.pop()
            if register_id is None or register_id in popped:
                break
            popped.append(register_id)
            revisit_budget -= n
        live_registers = set(self.registers)
        scanned = 0
        for register_id in popped:
            if register_id not in live_registers:
                continue  # deleted since it was enqueued
            for pid in range(1, n + 1):
                self._scan_one(pid, register_id)
                scanned += 1
        for register_id, pid in self._sampler.draw(pairs, budget - scanned):
            self._scan_one(pid, register_id)

    # -- the scan primitive --------------------------------------------------

    def _scan_one(self, pid: ProcessId, register_id: int) -> None:
        node = self.cluster.nodes.get(pid)
        replica = self.cluster.replicas.get(pid)
        if node is None or not node.is_up:
            return
        self.metrics.count_scrub_scan()
        if register_id in replica.quarantined:
            # Client I/O found it first; our job is only the repair.
            self._mark_dirty(pid, register_id)
            self._offer_repair(register_id)
            return
        if self._verify_brick(node, replica, register_id):
            # Clean — possibly repaired by a client write since we last
            # marked it.  Clearing here is what keeps the mark map from
            # leaking in audit mode (repair=False never reaches
            # ``_repair_done``).
            self._detected_at.pop((pid, register_id), None)
            return
        # The scrubber found latent damage before any client read did.
        now = self.cluster.transport.now()
        self.metrics.count_scrub_detection()
        self.detections.append((now, pid, register_id))
        self._mark_dirty(pid, register_id)
        # Route the quarantine transition through the standard client
        # detection path (drop the mirror, let the load fail) so the
        # accounting matches a read-triggered detection exactly.
        replica.drop_mirror(register_id)
        try:
            replica.state(register_id)
        except CorruptionDetected:
            pass
        self._offer_repair(register_id)

    def _mark_dirty(self, pid: ProcessId, register_id: int) -> None:
        self._detected_at.setdefault(
            (pid, register_id), self.cluster.transport.now()
        )
        while len(self._detected_at) > self.config.detected_limit:
            # Evict the oldest mark (dict preserves insertion order) —
            # its repair, if any, just loses MTTR attribution.
            self._detected_at.pop(next(iter(self._detected_at)))
        if self.config.mode == "sample":
            self._revisit.push(
                register_id, 1.0 + self._fragments_lost(register_id)
            )

    def _fragments_lost(self, register_id: int) -> int:
        """Bricks whose copy of the register is known dirty."""
        quarantined = sum(
            1
            for replica in self.cluster.replicas.values()
            if register_id in replica.quarantined
        )
        marked = sum(
            1 for _pid, marked_id in self._detected_at if marked_id == register_id
        )
        return max(quarantined, marked)

    @staticmethod
    def _verify_brick(node, replica, register_id: int) -> bool:
        """True iff the register's persistent log on this brick is clean."""
        clean = True
        for key in (
            replica._journal_key(register_id),
            replica._log_key(register_id),
        ):
            if key in node.stable:
                clean = clean and node.stable.verify(key)
        return clean

    # -- repair --------------------------------------------------------------

    def _offer_repair(self, register_id: int) -> None:
        if not self.config.repair:
            return
        self._repairs.offer(register_id, self._fragments_lost(register_id))
        self._pump_repairs()

    def _pump_repairs(self) -> None:
        """Admit queued repairs up to the concurrency budget."""
        if not self.config.repair:
            return
        while True:
            register_id = self._repairs.next_ready()
            if register_id is None:
                return
            if not self._start_repair(register_id):
                # Could not start (no live coordinator, pinned route
                # down, crash race): release the slot and stand down —
                # the register stays dirty, so a later scan re-offers.
                self._repairs.finished(register_id)
                return

    def _start_repair(self, register_id: int) -> bool:
        live = self.cluster.live_processes()
        if not live:
            return False
        # Repairs follow the same routing policy as client I/O: honor a
        # pinned coordinator while it is live, and fail over (or, with
        # failover disabled, stand down until a later scan) when not.
        route = self.config.route or DEFAULT_ROUTE
        coordinator_pid = route.coordinator
        if coordinator_pid is None or coordinator_pid not in live:
            if coordinator_pid is not None and not route.failover:
                return False
            coordinator_pid = live[0]
        coordinator = self.cluster.coordinators[coordinator_pid]
        generator = Rebuilder._recover_everywhere(
            coordinator, register_id, self.cluster
        )
        try:
            process = self.cluster.nodes[coordinator_pid].spawn(generator)
        except StorageError:
            generator.close()
            return False
        process._add_callback(
            lambda event, r=register_id: self._repair_done(r, event)
        )
        return True

    def _repair_done(self, register_id: int, event) -> None:
        self._repairs.finished(register_id)
        if not event.ok or event.value is ABORT:
            # Lost a race (or the coordinator crashed): the quarantine
            # persists, so a later scan simply retries.
            self.repair_aborts += 1
            self._pump_repairs()
            return
        self.repairs_done += 1
        marks = [k for k in self._detected_at if k[1] == register_id]
        detected = min(
            (self._detected_at[k] for k in marks),
            default=self.cluster.transport.now(),
        )
        for key in marks:
            del self._detected_at[key]
        self.metrics.count_scrub_repair(
            self.cluster.transport.now() - detected
        )
        if self.config.mode == "sample":
            # Re-verify the write-back ahead of cold registers.
            self._revisit.push(register_id, _REVISIT_REPAIRED)
        self._pump_repairs()

    # -- synchronous use ------------------------------------------------------

    def sweep_now(self) -> int:
        """One full verification pass, right now; returns pairs scanned.

        Scans a fresh snapshot of the current pair space regardless of
        mode (the point of the synchronous form is *complete* coverage).
        Repairs found along the way are *scheduled* (they run through
        the protocol); advance the simulation to let them complete.
        """
        pairs = self._live_pairs()
        for register_id, pid in pairs:
            self._scan_one(pid, register_id)
        if pairs:
            self.sweeps_completed += 1
        # Restart any in-progress timer sweep from a fresh snapshot —
        # everything current was just covered.
        self._sweep_pairs = []
        self._sweep_pos = 0
        self._pump_repairs()
        return len(pairs)

    def summary(self) -> Dict[str, float]:
        """Daemon-local progress counters (metrics hold the totals)."""
        return {
            "mode": self.config.mode,
            "sweeps_completed": self.sweeps_completed,
            "detections": len(self.detections),
            "repairs_done": self.repairs_done,
            "repair_aborts": self.repair_aborts,
            "pending_repairs": self._repairs.inflight,
            "queued_repairs": self._repairs.queued,
            "revisit_queue": len(self._revisit),
            "tracked_marks": len(self._detected_at),
        }
