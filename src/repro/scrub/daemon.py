"""The background scrub-and-repair daemon.

Checksummed persistence (:mod:`repro.sim.node`) turns silent corruption
into *detectable* corruption, and the degraded-read path routes around
it — but only for data a client happens to read.  Latent damage in cold
registers would otherwise sit until enough fragments rot to defeat the
code.  The scrub daemon closes that gap: a rate-limited background
process that sweeps every (register, brick) pair, verifies the stored
envelope checksums brick by brick, and repairs any damage it finds by
erasure-decoding the surviving fragments and writing the stripe back
(the :class:`~repro.core.rebuild.Rebuilder` recovery-with-full-coverage
primitive, so the repaired brick ends up holding its fragment again).

Detection is an *offline* audit — it reads stable storage directly via
:meth:`StableStore.verify`, costing no protocol messages and never
perturbing timestamps.  Repair runs through the ordinary protocol, so
it is linearized like any client write and safe under concurrent I/O
(an abort just means a racing client write already re-protected the
data; the next sweep retries).

All progress is reported through :class:`~repro.sim.monitor.Metrics`
(``scrub_scans`` / ``scrub_detections`` / ``scrub_repairs`` and the
repair-time accumulator behind ``mean_time_to_repair``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import CorruptionDetected, StorageError
from ..types import ABORT, ProcessId
from ..core.cluster import FabCluster
from ..core.rebuild import Rebuilder
from ..core.routing import DEFAULT_ROUTE, RouteOptions

__all__ = ["ScrubConfig", "ScrubDaemon"]


@dataclass
class ScrubConfig:
    """Scrub-daemon knobs.

    Attributes:
        interval: simulated time between daemon wake-ups.  Together
            with ``bricks_per_step`` this is the rate limit: the daemon
            verifies at most ``bricks_per_step / interval`` (register,
            brick) pairs per unit of simulated time.
        bricks_per_step: (register, brick) pairs verified per wake-up.
        repair: issue repair write-backs for detected damage (False =
            detect-and-report only, an audit mode).
        route: where repair write-backs coordinate, with the same
            semantics as client I/O: a pinned coordinator is preferred
            while live; ``failover=False`` skips the repair entirely
            when the pinned brick is down (the next sweep retries).
            The default unpinned route picks the first live brick.
    """

    interval: float = 20.0
    bricks_per_step: int = 2
    repair: bool = True
    route: Optional[RouteOptions] = None


class ScrubDaemon:
    """Rate-limited background verify-and-repair sweep over a cluster.

    Args:
        cluster: the cluster to scrub (its metrics sink absorbs all
            scrub counters).
        registers: register ids the sweep covers, in sweep order.
        config: rate limit and repair policy.
        horizon: simulated time after which the daemon stops itself
            (None = run until :meth:`stop`).

    The daemon is driven by simulation timers: call :meth:`start` once
    and let the environment run.  :meth:`sweep_now` is the synchronous
    alternative for tools that want one full verification pass without
    waiting for timers.
    """

    def __init__(
        self,
        cluster: FabCluster,
        registers: Iterable[int],
        config: Optional[ScrubConfig] = None,
        horizon: Optional[float] = None,
    ) -> None:
        self.cluster = cluster
        self.registers = list(registers)
        self.config = config or ScrubConfig()
        self.horizon = horizon
        self.metrics = cluster.metrics
        self.running = False
        self.sweeps_completed = 0
        self.repairs_done = 0
        self.repair_aborts = 0
        #: (time, pid, register_id) for every scrub-detected corruption.
        self.detections: List[Tuple[float, int, int]] = []
        self._cursor = 0
        #: (pid, register_id) -> sim time the daemon first saw it dirty.
        self._detected_at: Dict[Tuple[int, int], float] = {}
        self._repair_inflight: Set[int] = set()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Begin the background sweep (idempotent)."""
        if self.running:
            return
        self.running = True
        self._arm_timer()

    def stop(self) -> None:
        """Stop waking up; in-flight repairs finish on their own."""
        self.running = False

    def _arm_timer(self) -> None:
        self.cluster.transport.set_timer(self.config.interval, self._tick)

    def _tick(self) -> None:
        if not self.running:
            return
        if (
            self.horizon is not None
            and self.cluster.transport.now() >= self.horizon
        ):
            self.stop()
            return
        for _ in range(self.config.bricks_per_step):
            self._scan_next()
        self._arm_timer()

    # -- scanning ------------------------------------------------------------

    def _pairs(self) -> int:
        return len(self.registers) * self.cluster.config.n

    def _scan_next(self) -> None:
        """Verify the next (register, brick) pair in round-robin order."""
        total = self._pairs()
        if total == 0:
            return
        index = self._cursor % total
        self._cursor += 1
        if self._cursor % total == 0:
            self.sweeps_completed += 1
        register_id = self.registers[index // self.cluster.config.n]
        pid = 1 + index % self.cluster.config.n
        self._scan_one(pid, register_id)

    def _scan_one(self, pid: ProcessId, register_id: int) -> None:
        node = self.cluster.nodes.get(pid)
        replica = self.cluster.replicas.get(pid)
        if node is None or not node.is_up:
            return
        self.metrics.count_scrub_scan()
        if register_id in replica.quarantined:
            # Client I/O found it first; our job is only the repair.
            self._detected_at.setdefault(
                (pid, register_id), self.cluster.transport.now()
            )
            self._schedule_repair(register_id)
            return
        if self._verify_brick(node, replica, register_id):
            return
        # The scrubber found latent damage before any client read did.
        now = self.cluster.transport.now()
        self.metrics.count_scrub_detection()
        self.detections.append((now, pid, register_id))
        self._detected_at.setdefault((pid, register_id), now)
        # Route the quarantine transition through the standard client
        # detection path (drop the mirror, let the load fail) so the
        # accounting matches a read-triggered detection exactly.
        replica.drop_mirror(register_id)
        try:
            replica.state(register_id)
        except CorruptionDetected:
            pass
        self._schedule_repair(register_id)

    @staticmethod
    def _verify_brick(node, replica, register_id: int) -> bool:
        """True iff the register's persistent log on this brick is clean."""
        clean = True
        for key in (
            replica._journal_key(register_id),
            replica._log_key(register_id),
        ):
            if key in node.stable:
                clean = clean and node.stable.verify(key)
        return clean

    # -- repair --------------------------------------------------------------

    def _schedule_repair(self, register_id: int) -> None:
        if not self.config.repair or register_id in self._repair_inflight:
            return
        live = self.cluster.live_processes()
        if not live:
            return
        # Repairs follow the same routing policy as client I/O: honor a
        # pinned coordinator while it is live, and fail over (or, with
        # failover disabled, stand down until the next sweep) when not.
        route = self.config.route or DEFAULT_ROUTE
        coordinator_pid = route.coordinator
        if coordinator_pid is None or coordinator_pid not in live:
            if coordinator_pid is not None and not route.failover:
                return
            coordinator_pid = live[0]
        coordinator = self.cluster.coordinators[coordinator_pid]
        generator = Rebuilder._recover_everywhere(
            coordinator, register_id, len(live)
        )
        try:
            process = self.cluster.nodes[coordinator_pid].spawn(generator)
        except StorageError:
            generator.close()
            return
        self._repair_inflight.add(register_id)
        process._add_callback(
            lambda event, r=register_id: self._repair_done(r, event)
        )

    def _repair_done(self, register_id: int, event) -> None:
        self._repair_inflight.discard(register_id)
        if not event.ok or event.value is ABORT:
            # Lost a race (or the coordinator crashed): the quarantine
            # persists, so the next sweep simply retries.
            self.repair_aborts += 1
            return
        self.repairs_done += 1
        marks = [k for k in self._detected_at if k[1] == register_id]
        detected = min(
            (self._detected_at[k] for k in marks),
            default=self.cluster.transport.now(),
        )
        for key in marks:
            del self._detected_at[key]
        self.metrics.count_scrub_repair(
            self.cluster.transport.now() - detected
        )

    # -- synchronous use ------------------------------------------------------

    def sweep_now(self) -> int:
        """One full verification pass, right now; returns pairs scanned.

        Repairs found along the way are *scheduled* (they run through
        the protocol); advance the simulation to let them complete.
        """
        total = self._pairs()
        for _ in range(total):
            self._scan_next()
        return total

    def summary(self) -> Dict[str, float]:
        """Daemon-local progress counters (metrics hold the totals)."""
        return {
            "sweeps_completed": self.sweeps_completed,
            "detections": len(self.detections),
            "repairs_done": self.repairs_done,
            "repair_aborts": self.repair_aborts,
            "pending_repairs": len(self._repair_inflight),
        }
