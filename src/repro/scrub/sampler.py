"""Confidence-driven sampling primitives for the scrub scheduler.

The exhaustive sweep verifies every (register, brick) pair per cycle —
O(fleet) work that is untenable at millions of registers.  The key
observation (borrowed from data-availability sampling) is that the
scrubber's real job is *detection*: if a fraction ``p`` of the pair
space is corrupt, a uniform random sample of ``s`` pairs misses every
corrupt pair with probability ``(1 - p)^s``, independent of fleet size.
Solving for a target detection confidence ``c`` gives

    s >= ln(1 - c) / ln(1 - p)

samples per cycle — a few hundred scans for 95% confidence at a 1%
corruption rate, whether the fleet holds a thousand pairs or a billion.
:func:`required_samples` is that formula; :func:`detection_confidence`
is its inverse (the confidence a given budget buys).

Three scheduling structures turn the math into a scrubber:

* :class:`PairSampler` — seeded uniform draws over the live pair list,
  with a persistent *aging cursor*: a fixed fraction of every draw is
  taken round-robin from the cursor, so every live pair is visited
  within ``ceil(pairs / aging_share)`` cycles even if the uniform draws
  never land on it.  Pure sampling alone has an unbounded worst case;
  the cursor bounds it.
* :class:`RevisitQueue` — a max-priority queue of registers that
  deserve attention before cold ones: known-dirty, quarantined, or
  just-repaired (to re-verify the write-back).  Severity-ordered with
  FIFO tie-breaking; stale entries are dropped lazily.
* :class:`RepairQueue` — a budgeted admission queue for repair
  write-backs: at most ``max_inflight`` concurrent repairs, admitted in
  fragments-lost severity order, so a burst of detections cannot flood
  the protocol with rebuild traffic.

Everything is deterministic given the seed: fixed-seed campaigns with
sampling enabled reproduce bit-identical scan sequences and counters.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import ConfigurationError

__all__ = [
    "required_samples",
    "detection_confidence",
    "PairSampler",
    "RevisitQueue",
    "RepairQueue",
]

#: A scan target: (register_id, process_id).
Pair = Tuple[int, int]


def required_samples(
    confidence: float, corrupt_rate: float, total_pairs: int
) -> int:
    """Samples per cycle for ``P(hit >= 1 corrupt pair) >= confidence``.

    Assumes a fraction ``corrupt_rate`` of the ``total_pairs`` pair
    space is corrupt and draws are uniform.  The result is clamped to
    ``[1, total_pairs]`` — when the confidence target needs more
    samples than pairs exist, sampling degenerates into the full sweep
    (which is exactly when the sweep is the better scheduler).
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"target confidence must be in (0, 1), got {confidence}"
        )
    if not 0.0 < corrupt_rate < 1.0:
        raise ConfigurationError(
            f"assumed corrupt rate must be in (0, 1), got {corrupt_rate}"
        )
    if total_pairs <= 0:
        return 0
    samples = math.ceil(math.log(1.0 - confidence) / math.log(1.0 - corrupt_rate))
    return max(1, min(int(samples), total_pairs))


def detection_confidence(samples: int, corrupt_rate: float) -> float:
    """Probability a cycle of ``samples`` uniform draws hits corruption.

    The forward form of :func:`required_samples`: with a fraction
    ``corrupt_rate`` of pairs corrupt, ``1 - (1 - p)^s``.
    """
    if samples <= 0 or corrupt_rate <= 0.0:
        return 0.0
    if corrupt_rate >= 1.0:
        return 1.0
    return 1.0 - (1.0 - corrupt_rate) ** samples


class PairSampler:
    """Seeded pair draws: uniform sampling plus an aging cursor.

    Args:
        seed: RNG seed; equal seeds reproduce identical draw sequences
            over identical pair lists (the campaign determinism
            property).
        aging_fraction: share of every draw taken round-robin from the
            persistent cursor instead of uniformly.  This is the
            eventual-coverage guarantee: with a stable pair list of
            ``P`` pairs and a per-cycle budget ``b``, every pair is
            visited within ``ceil(P / max(1, aging_fraction * b))``
            cycles, regardless of how the uniform draws fall.
    """

    def __init__(self, seed: int = 0, aging_fraction: float = 0.25) -> None:
        if not 0.0 <= aging_fraction <= 1.0:
            raise ConfigurationError(
                f"aging_fraction must be in [0, 1], got {aging_fraction}"
            )
        self.aging_fraction = aging_fraction
        self._rng = random.Random(seed)
        #: Lazily initialised to a seeded random phase on the first
        #: draw: a fixed start would make every sampler scan the same
        #: prefix first, correlating daemons fleet-wide.  The phase
        #: shifts, not weakens, the coverage bound.
        self._cursor: Optional[int] = None

    def draw(self, pairs: Sequence[Pair], count: int) -> List[Pair]:
        """Up to ``count`` distinct pairs to scan this cycle.

        ``pairs`` is the *current* live pair list (callers re-resolve it
        every cycle, so growth and deletion are picked up immediately);
        it should be in a stable order — sorted — for the cursor's
        coverage bound to hold.  The aging share comes first, then
        uniform draws without replacement; duplicates between the two
        shares are dropped rather than topped up, so ``count`` is an
        upper bound on scan cost.
        """
        total = len(pairs)
        if total == 0 or count <= 0:
            return []
        if self._cursor is None:
            self._cursor = self._rng.randrange(total)
        count = min(count, total)
        aging = min(count, max(1, int(count * self.aging_fraction))) \
            if self.aging_fraction > 0 else 0
        drawn: List[Pair] = []
        seen: Set[Pair] = set()
        for offset in range(aging):
            pair = pairs[(self._cursor + offset) % total]
            if pair not in seen:
                seen.add(pair)
                drawn.append(pair)
        self._cursor = (self._cursor + aging) % total
        uniform = count - aging
        if uniform > 0:
            for pair in self._rng.sample(list(pairs), min(uniform, total)):
                if pair not in seen:
                    seen.add(pair)
                    drawn.append(pair)
        return drawn


class RevisitQueue:
    """Max-priority queue of registers to re-scan ahead of cold ones.

    ``push`` keeps only the highest severity seen per register (a
    re-push with lower severity is a no-op); ``pop`` returns the
    highest-severity register, FIFO among equals, or ``None`` when
    empty.  Superseded heap entries are discarded lazily at pop time,
    so the structure stays O(live registers) plus a transient of stale
    entries bounded by the push count since the last drain.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int]] = []
        self._severity: Dict[int, float] = {}
        self._order = 0

    def push(self, register_id: int, severity: float = 1.0) -> None:
        current = self._severity.get(register_id)
        if current is not None and current >= severity:
            return
        self._severity[register_id] = severity
        self._order += 1
        heapq.heappush(self._heap, (-severity, self._order, register_id))

    def pop(self) -> Optional[int]:
        while self._heap:
            negative, _order, register_id = heapq.heappop(self._heap)
            if self._severity.get(register_id) == -negative:
                del self._severity[register_id]
                return register_id
        return None

    def __len__(self) -> int:
        return len(self._severity)

    def __contains__(self, register_id: int) -> bool:
        return register_id in self._severity


class RepairQueue:
    """Budgeted admission control for repair write-backs.

    Registers are offered with a *severity* (fragments lost — the
    number of bricks whose copy of the register is dirty); admission is
    severity-ordered so the stripes closest to unrecoverable repair
    first.  At most ``max_inflight`` repairs run concurrently; the rest
    wait queued.  Offering a register already queued or in flight only
    raises its queued severity.
    """

    def __init__(self, max_inflight: int = 4) -> None:
        if max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self.max_inflight = max_inflight
        self._queue = RevisitQueue()
        self._inflight: Set[int] = set()

    def offer(self, register_id: int, severity: float = 1.0) -> None:
        if register_id in self._inflight:
            return
        self._queue.push(register_id, severity)

    def next_ready(self) -> Optional[int]:
        """Admit the next repair, or ``None`` (empty or budget spent).

        The returned register is counted in flight immediately; the
        caller must eventually call :meth:`finished` (successful or
        not) to release the slot.
        """
        if len(self._inflight) >= self.max_inflight:
            return None
        register_id = self._queue.pop()
        if register_id is None:
            return None
        self._inflight.add(register_id)
        return register_id

    def finished(self, register_id: int) -> None:
        self._inflight.discard(register_id)

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    @property
    def queued(self) -> int:
        return len(self._queue)

    def __iter__(self) -> Iterator[int]:  # pragma: no cover - debug aid
        return iter(sorted(self._inflight))
