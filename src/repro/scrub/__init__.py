"""Background scrub-and-repair: auditing checksummed storage for rot.

:mod:`repro.scrub.daemon` holds the daemon (exhaustive-sweep and
confidence-driven sampling schedulers); :mod:`repro.scrub.sampler` the
sampling math and queues; :mod:`repro.analysis.scrub` runs the
detection-latency / repair-throughput experiments the scrub bench and
CLI report.
"""

from .daemon import ScrubConfig, ScrubDaemon
from .sampler import (
    PairSampler,
    RepairQueue,
    RevisitQueue,
    detection_confidence,
    required_samples,
)

__all__ = [
    "ScrubConfig",
    "ScrubDaemon",
    "PairSampler",
    "RepairQueue",
    "RevisitQueue",
    "detection_confidence",
    "required_samples",
]
