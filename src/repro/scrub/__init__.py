"""Background scrub-and-repair: sweeping checksummed storage for rot.

See :mod:`repro.scrub.daemon` for the daemon itself;
:mod:`repro.analysis.scrub` runs the detection-latency / repair
throughput experiments the scrub bench and CLI report.
"""

from .daemon import ScrubConfig, ScrubDaemon

__all__ = ["ScrubConfig", "ScrubDaemon"]
