"""System-level MTTDL models (Figure 2).

Three system designs, each laid out over ``N`` bricks sized to the
requested logical capacity:

* :class:`StripingSystem` — data striped with **no** cross-brick
  redundancy; one brick data-loss event loses system data.
* :class:`ReplicationSystem` — ``k``-way replication across bricks;
  data survives up to ``k - 1`` concurrent brick failures.
* :class:`ErasureCodedSystem` — ``m``-of-``n`` erasure coding; data
  survives ``n - m`` concurrent brick failures.
* :class:`LRCSystem` — local-reconstruction coding: ``m`` data bricks
  in ``L`` locally-parity-protected groups plus ``g`` global parities.
  Trades one parity's worth of tolerance against Reed-Solomon at equal
  overhead for group-local rebuild, which shortens the repair window
  (and the window is what MTTDL is most sensitive to).

**The placement model.**  A group-level Markov chain
(:func:`repro.reliability.markov.birth_death_mttdl`) gives the expected
time until ``t + 1`` bricks are concurrently down.  Whether that event
loses data depends on placement:

* ``placement="random"`` (the paper's "random data striping across
  bricks", our default): stripes live on random brick subsets, so a
  given set of ``t + 1`` failed bricks is fatal only if some stripe's
  brick set covers it.  With ``G`` independently placed segment groups
  of size ``n``, the fatal fraction is

      p = 1 - (1 - C(N - t - 1, n - t - 1) / C(N, n)) ** G

  and the system revisits the ``t + 1``-down state a geometric number
  of times (mean ``1 / p``) before hitting a fatal combination:
  ``MTTDL = MTTDL_markov(N) / p``.  This is the quantitative version of
  the paper's "MTTDL is roughly proportional to the number of
  combinations of brick failures that can lead to a data loss".

* ``placement="grouped"``: bricks are statically partitioned into
  redundancy groups; groups fail independently and the system MTTDL is
  the group MTTDL divided by the group count.

Placement needs a segment size: FAB distributes data in fixed-size
segment groups, so ``segment_gb`` controls how many distinct brick
subsets carry data.  The default (16 GB of logical data per group) is
the calibration under which the model reproduces the paper's Figure 3
anchor points — overhead 4.0 for replication/R0, ~3.2 for
replication/R5, 1.6 for EC(5,8)/R0 — at the one-million-year MTTDL
target; EXPERIMENTS.md reports the sensitivity to this choice.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, replace

from ..errors import ConfigurationError
from .components import HOURS_PER_YEAR, BrickParams
from .markov import birth_death_mttdl

__all__ = [
    "SystemModel",
    "StripingSystem",
    "ReplicationSystem",
    "ErasureCodedSystem",
    "LRCSystem",
]


@dataclass(frozen=True)
class SystemModel(abc.ABC):
    """Common frame: brick parameters + placement policy.

    Attributes:
        brick: the brick model (internal RAID level matters).
        placement: ``"random"`` or ``"grouped"`` (see module docstring).
        segment_gb: logical data per placement segment; smaller segments
            mean more distinct brick subsets carry data, increasing the
            fatal fraction under random placement.
    """

    brick: BrickParams = BrickParams()
    placement: str = "random"
    segment_gb: float = 16.0

    def __post_init__(self) -> None:
        if self.placement not in ("random", "grouped"):
            raise ConfigurationError(
                f"placement must be 'random' or 'grouped', got {self.placement!r}"
            )
        if self.segment_gb <= 0:
            raise ConfigurationError("segment_gb must be positive")

    # -- subclass responsibilities -------------------------------------

    @property
    @abc.abstractmethod
    def storage_overhead(self) -> float:
        """Raw/logical capacity ratio across bricks (excl. brick internals)."""

    @property
    @abc.abstractmethod
    def tolerated_failures(self) -> int:
        """Concurrent brick failures survived without data loss."""

    @property
    @abc.abstractmethod
    def group_size(self) -> int:
        """Bricks in one redundancy group."""

    @property
    @abc.abstractmethod
    def logical_gb_per_group(self) -> float:
        """Logical data carried by one placement segment group."""

    @property
    def repair_speedup(self) -> float:
        """Factor by which the layout shortens single-brick repair.

        The repair window scales with the bytes a rebuild must read;
        codes with repair locality (LRC) read a fraction of the stripe
        and finish proportionally sooner.  Default 1.0 (whole-stripe
        repair).
        """
        return 1.0

    # -- shared machinery -------------------------------------------------

    @property
    def total_overhead(self) -> float:
        """Raw/logical ratio including brick-internal RAID-5 parity."""
        return self.storage_overhead * self.brick.capacity_overhead

    def bricks_for(self, logical_capacity_tb: float) -> int:
        """Fleet size needed for the given logical capacity."""
        if logical_capacity_tb <= 0:
            raise ConfigurationError("capacity must be positive")
        raw_tb = logical_capacity_tb * self.storage_overhead
        return max(self.group_size, math.ceil(raw_tb / self.brick.capacity_tb))

    def segment_groups(self, logical_capacity_tb: float) -> int:
        """Number of placement segment groups for the given capacity."""
        return max(
            1, math.ceil(logical_capacity_tb * 1024.0 / self.logical_gb_per_group)
        )

    def fatal_fraction(self, logical_capacity_tb: float) -> float:
        """P(a random set of ``t+1`` concurrently-failed bricks is fatal).

        A failed set ``F`` (|F| = t+1) is fatal iff some segment group's
        brick set contains it.  Groups are placed independently and
        uniformly over ``C(N, n)`` brick subsets; of those,
        ``C(N - |F|, n - |F|)`` contain ``F``.
        """
        n_bricks = self.bricks_for(logical_capacity_tb)
        fatal_size = self.tolerated_failures + 1
        group = self.group_size
        if n_bricks <= group:
            return 1.0
        numerator = math.comb(n_bricks - fatal_size, group - fatal_size)
        denominator = math.comb(n_bricks, group)
        per_group = numerator / denominator
        groups = self.segment_groups(logical_capacity_tb)
        # 1 - (1 - q)^G computed stably for tiny q and huge G.
        return -math.expm1(groups * math.log1p(-per_group))

    def mttdl_hours(self, logical_capacity_tb: float) -> float:
        """System MTTDL in hours at the given logical capacity."""
        n_bricks = self.bricks_for(logical_capacity_tb)
        lam = self.brick.data_loss_rate
        mu = self.repair_speedup / self.brick.brick_repair_hours
        t = self.tolerated_failures
        if self.placement == "grouped" and self.group_size > 1:
            groups = max(1, math.ceil(n_bricks / self.group_size))
            group_mttdl = birth_death_mttdl(self.group_size, t, lam, mu)
            return group_mttdl / groups
        base = birth_death_mttdl(n_bricks, t, lam, mu)
        if t == 0:
            return base  # every brick carries data: always fatal
        p_fatal = self.fatal_fraction(logical_capacity_tb)
        if p_fatal <= 0.0:
            raise ConfigurationError("fatal fraction underflowed to zero")
        return base / p_fatal

    def mttdl_years(self, logical_capacity_tb: float) -> float:
        """System MTTDL in years."""
        return self.mttdl_hours(logical_capacity_tb) / HOURS_PER_YEAR

    def with_brick(self, brick: BrickParams) -> "SystemModel":
        """A copy of this model with different brick parameters."""
        return replace(self, brick=brick)


@dataclass(frozen=True)
class StripingSystem(SystemModel):
    """Striping over bricks with no cross-brick redundancy.

    Figure 2 draws this with "reliable R5 bricks": high-end arrays with
    internal RAID-5.  One brick data-loss event loses system data, so
    MTTDL falls as ``1 / N`` — "adequate only for small systems".
    """

    @property
    def storage_overhead(self) -> float:
        return 1.0

    @property
    def tolerated_failures(self) -> int:
        return 0

    @property
    def group_size(self) -> int:
        return 1

    @property
    def logical_gb_per_group(self) -> float:
        return self.segment_gb


@dataclass(frozen=True)
class ReplicationSystem(SystemModel):
    """k-way replication across bricks."""

    replicas: int = 4

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {self.replicas}")

    @property
    def storage_overhead(self) -> float:
        return float(self.replicas)

    @property
    def tolerated_failures(self) -> int:
        return self.replicas - 1

    @property
    def group_size(self) -> int:
        return self.replicas

    @property
    def logical_gb_per_group(self) -> float:
        # One replica group carries one segment of logical data.
        return self.segment_gb


@dataclass(frozen=True)
class ErasureCodedSystem(SystemModel):
    """m-of-n erasure coding across bricks."""

    m: int = 5
    n: int = 8

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 1 <= self.m <= self.n:
            raise ConfigurationError(f"need 1 <= m <= n, got m={self.m} n={self.n}")

    @property
    def storage_overhead(self) -> float:
        return self.n / self.m

    @property
    def tolerated_failures(self) -> int:
        return self.n - self.m

    @property
    def group_size(self) -> int:
        return self.n

    @property
    def logical_gb_per_group(self) -> float:
        # A stripe group of n bricks holds m segments of logical data.
        return self.m * self.segment_gb


@dataclass(frozen=True)
class LRCSystem(SystemModel):
    """Local-reconstruction coding across bricks.

    ``m`` data bricks are split into ``local_groups`` balanced groups,
    each with one XOR parity; ``global_parities`` Cauchy rows cover
    multi-failure patterns (:class:`repro.erasure.lrc.LRCCode` is the
    executable counterpart).  The model captures the LRC trade:

    * tolerance: any ``global_parities + 1`` concurrent failures (the
      standard LRC guarantee — one loss repairs locally, the rest lean
      on the globals), versus ``n - m`` for Reed-Solomon at the same
      overhead;
    * repair: a single failed brick is rebuilt from its local group —
      ``ceil(m / L)`` reads instead of ``m`` — so the repair rate
      scales up by :attr:`repair_speedup` and the window in which a
      second failure can compound shrinks by the same factor.
    """

    m: int = 4
    local_groups: int = 2
    global_parities: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.m < 1:
            raise ConfigurationError(f"m must be >= 1, got {self.m}")
        if not 1 <= self.local_groups <= self.m:
            raise ConfigurationError(
                f"need 1 <= local_groups <= m, got {self.local_groups}"
            )
        if self.global_parities < 0:
            raise ConfigurationError(
                f"global_parities must be >= 0, got {self.global_parities}"
            )

    @property
    def n(self) -> int:
        """Total bricks per stripe: data + local + global parities."""
        return self.m + self.local_groups + self.global_parities

    @property
    def storage_overhead(self) -> float:
        return self.n / self.m

    @property
    def tolerated_failures(self) -> int:
        return self.global_parities + 1

    @property
    def group_size(self) -> int:
        return self.n

    @property
    def logical_gb_per_group(self) -> float:
        return self.m * self.segment_gb

    @property
    def local_read_cost(self) -> int:
        """Fragments read to rebuild one lost brick (largest group)."""
        return math.ceil(self.m / self.local_groups)

    @property
    def repair_speedup(self) -> float:
        return self.m / self.local_read_cost
