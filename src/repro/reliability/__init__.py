"""Reliability and cost models (paper Section 1.2, Figures 2 and 3).

The paper motivates erasure coding with two analytic artifacts:

* **Figure 2** — mean time to data loss (MTTDL, years) versus logical
  capacity for five system designs: striping over reliable RAID-5
  bricks, 4-way replication over RAID-0 or RAID-5 bricks, and 5-of-8
  erasure coding over RAID-0 or RAID-5 bricks.
* **Figure 3** — storage overhead (raw / logical capacity) versus the
  MTTDL requirement for replication- and erasure-based systems, at a
  fixed 256 TB logical capacity.

We rebuild the models from first principles: component failure/repair
parameters extrapolated from commodity hardware (Asami's thesis [3] is
the paper's source; :mod:`repro.reliability.components` documents our
constants), brick-level data-loss rates for RAID-0 and RAID-5
internals, a birth-death Markov chain for group MTTDL
(:mod:`repro.reliability.markov`), and system-level composition for
striping / k-way replication / m-of-n erasure coding
(:mod:`repro.reliability.mttdl`).  :mod:`repro.reliability.overhead`
inverts the model for Figure 3: cheapest configuration meeting an
MTTDL target.
"""

from .components import BrickParams, DiskParams, brick_failure_rate
from .markov import birth_death_mttdl, closed_form_mttdl
from .mttdl import (
    ErasureCodedSystem,
    LRCSystem,
    ReplicationSystem,
    StripingSystem,
    SystemModel,
)
from .overhead import OverheadPoint, cheapest_erasure_code, cheapest_replication, overhead_curve

__all__ = [
    "DiskParams",
    "BrickParams",
    "brick_failure_rate",
    "birth_death_mttdl",
    "closed_form_mttdl",
    "SystemModel",
    "StripingSystem",
    "ReplicationSystem",
    "ErasureCodedSystem",
    "LRCSystem",
    "OverheadPoint",
    "cheapest_replication",
    "cheapest_erasure_code",
    "overhead_curve",
]
