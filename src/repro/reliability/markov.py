"""Birth-death Markov model for group MTTDL.

A redundancy group of ``g`` bricks tolerates ``t`` concurrent brick
failures; the ``t+1``-th concurrent failure loses data.  With per-brick
failure rate ``lam`` and parallel per-brick repair rate ``mu``, the
state (number of failed bricks) follows a birth-death chain:

* birth (failure) rate in state ``i``:  ``(g - i) * lam``
* death (repair) rate in state ``i``:   ``i * mu``
* state ``t + 1`` is absorbing (data loss).

:func:`birth_death_mttdl` computes the exact expected absorption time
from state 0 by solving the linear system; :func:`closed_form_mttdl`
gives the standard ``lam << mu`` approximation

    MTTDL ≈ mu^t / ( lam^(t+1) * g * (g-1) * ... * (g-t) )

used for cross-checking and for intuition (this is the "proportional to
the number of combinations of brick failures" statement in the paper's
Section 1.2).
"""

from __future__ import annotations

from ..errors import ConfigurationError

__all__ = ["birth_death_mttdl", "closed_form_mttdl"]


def birth_death_mttdl(g: int, t: int, lam: float, mu: float) -> float:
    """Exact expected time (hours) from all-up to ``t+1`` concurrent failures.

    Args:
        g: group size (bricks).
        t: tolerated concurrent failures (data lost at ``t+1``).
        lam: per-brick failure rate (per hour).
        mu: per-brick repair rate (per hour), repairs proceed in
            parallel (state ``i`` repairs at ``i * mu``).

    Returns:
        MTTDL in hours.
    """
    if g < 1 or t < 0 or t >= g:
        raise ConfigurationError(f"need 1 <= t+1 <= g, got g={g}, t={t}")
    if lam <= 0 or mu <= 0:
        raise ConfigurationError("rates must be positive")
    # Standard exact hitting-time formula for birth-death chains:
    #   E[T(0 -> t+1)] = sum_{j=0}^{t} sum_{i=0}^{j}
    #                      (1 / b_i) * prod_{k=i+1}^{j} (d_k / b_k)
    # with b_i = (g - i) lam and d_i = i mu.  All terms are positive, so
    # the computation is numerically stable — unlike a naive linear
    # solve, which catastrophically cancels when lam << mu and t >= 3.
    def birth(i: int) -> float:
        return (g - i) * lam

    def death(i: int) -> float:
        return i * mu

    total = 0.0
    for j in range(t + 1):
        inner = 0.0
        for i in range(j, -1, -1):
            term = 1.0 / birth(i)
            for k in range(i + 1, j + 1):
                term *= death(k) / birth(k)
            inner += term
        total += inner
    return total


def closed_form_mttdl(g: int, t: int, lam: float, mu: float) -> float:
    """The standard small-``lam/mu`` approximation of the same chain."""
    if g < 1 or t < 0 or t >= g:
        raise ConfigurationError(f"need 1 <= t+1 <= g, got g={g}, t={t}")
    combinations = 1.0
    for i in range(t + 1):
        combinations *= g - i
    # Repairs in states 1..t run at i*mu; the product of repair rates is
    # t! * mu^t, giving the familiar form.
    factorial = 1.0
    for i in range(1, t + 1):
        factorial *= i
    return (factorial * mu**t) / (combinations * lam ** (t + 1))
