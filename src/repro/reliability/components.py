"""Component reliability parameters.

The paper extrapolates brick and network reliability from the
component-level numbers in Asami's thesis [3].  We adopt
commodity-hardware constants of the same era and order of magnitude;
Figures 2-3 depend on ratios and exponents, not on the third
significant digit, so the reproduced *shapes* are insensitive to the
exact values (EXPERIMENTS.md reports sensitivity).

A brick is a small storage appliance: ``disks_per_brick`` commodity
drives plus shared electronics (controller, NIC, PSU — the
"enclosure").  Brick-level data loss depends on the internal redundancy:

* **RAID-0** — any disk failure loses the brick's data; the brick's
  data-loss rate is ``d * lambda_disk + lambda_enclosure``.
* **RAID-5** — a disk failure is repaired online (hot spare) in
  ``disk_repair_hours``; data is lost only when a second disk fails
  during the rebuild window, at the classic rate
  ``d * (d-1) * lambda_disk^2 * repair_time``, plus enclosure failures.

RAID-5 internals also shave capacity: one disk's worth of parity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["DiskParams", "BrickParams", "brick_failure_rate", "HOURS_PER_YEAR"]

#: Hours in a (Julian) year, for MTTDL unit conversion.
HOURS_PER_YEAR = 8766.0


@dataclass(frozen=True)
class DiskParams:
    """One commodity disk drive.

    Attributes:
        mttf_hours: mean time to failure (datasheet-class value; 500k
            hours was typical for 2004 commodity SATA).
        capacity_tb: usable capacity in TB.
        repair_hours: online rebuild time after a disk is replaced
            (RAID-5 internal repair window).
    """

    mttf_hours: float = 500_000.0
    capacity_tb: float = 0.25
    repair_hours: float = 24.0

    def __post_init__(self) -> None:
        if min(self.mttf_hours, self.capacity_tb, self.repair_hours) <= 0:
            raise ConfigurationError("disk parameters must be positive")

    @property
    def failure_rate(self) -> float:
        """Failures per hour."""
        return 1.0 / self.mttf_hours


@dataclass(frozen=True)
class BrickParams:
    """One storage brick.

    Attributes:
        disk: the member-disk parameters.
        disks_per_brick: drive count (d).
        enclosure_mttf_hours: MTTF of the shared electronics; its
            failure takes the whole brick down.
        brick_repair_hours: time to re-protect a dead brick's data by
            rebuilding it from the surviving bricks — the cross-brick
            repair window the system-level Markov model uses.  FAB
            rebuilds are *distributed* (every surviving brick
            contributes), so the window is hours, not days: a ~3 TB
            brick at a few hundred MB/s aggregate rebuild bandwidth
            recovers in roughly 6 hours.
        internal_raid: ``"r0"`` or ``"r5"``.
        reliable_array: model a high-end dual-controller array instead
            of a commodity brick (used for Figure 2's "striping over
            reliable R5 bricks" line): enclosure MTTF is boosted 10x.
    """

    disk: DiskParams = DiskParams()
    disks_per_brick: int = 12
    enclosure_mttf_hours: float = 750_000.0
    brick_repair_hours: float = 6.0
    internal_raid: str = "r0"
    reliable_array: bool = False

    def __post_init__(self) -> None:
        if self.internal_raid not in ("r0", "r5"):
            raise ConfigurationError(
                f"internal_raid must be 'r0' or 'r5', got {self.internal_raid!r}"
            )
        if self.disks_per_brick < 2:
            raise ConfigurationError("bricks need at least 2 disks")

    @property
    def capacity_tb(self) -> float:
        """Usable brick capacity (RAID-5 loses one disk to parity)."""
        usable_disks = (
            self.disks_per_brick - 1
            if self.internal_raid == "r5"
            else self.disks_per_brick
        )
        return usable_disks * self.disk.capacity_tb

    @property
    def capacity_overhead(self) -> float:
        """Raw/usable capacity ratio of the brick itself."""
        if self.internal_raid == "r5":
            return self.disks_per_brick / (self.disks_per_brick - 1)
        return 1.0

    @property
    def data_loss_rate(self) -> float:
        """Brick data-loss events per hour (loses the brick's data)."""
        return brick_failure_rate(self)

    @property
    def mttf_hours(self) -> float:
        """Mean time between brick data-loss events."""
        return 1.0 / self.data_loss_rate


def brick_failure_rate(brick: BrickParams) -> float:
    """Data-loss rate (per hour) of a single brick.

    RAID-0: any of d disks, or the enclosure.  RAID-5: double disk
    failure within the rebuild window, or the enclosure.
    """
    d = brick.disks_per_brick
    lam = brick.disk.failure_rate
    enclosure_mttf = brick.enclosure_mttf_hours * (
        10.0 if brick.reliable_array else 1.0
    )
    lam_enclosure = 1.0 / enclosure_mttf
    if brick.internal_raid == "r0":
        return d * lam + lam_enclosure
    # RAID-5: first failure at rate d*lam; data lost if any of the
    # remaining d-1 disks fails within the repair window.
    lam_double = d * lam * (d - 1) * lam * brick.disk.repair_hours
    return lam_double + lam_enclosure
