"""Storage-overhead-versus-MTTDL solver (Figure 3).

For a fixed logical capacity (256 TB in the paper), Figure 3 asks: how
much raw storage must each design buy to meet a given MTTDL
requirement?  Replication answers by adding whole copies; erasure
coding answers by adding parity bricks to the stripe (``m`` fixed at 5,
``n`` grows) — which is why its curve rises so much more slowly.

:func:`cheapest_replication` / :func:`cheapest_erasure_code` find the
minimal configuration meeting a target, and :func:`overhead_curve`
sweeps targets to regenerate the figure's series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import ConfigurationError
from .components import BrickParams
from .mttdl import ErasureCodedSystem, ReplicationSystem

__all__ = [
    "OverheadPoint",
    "cheapest_replication",
    "cheapest_erasure_code",
    "overhead_curve",
]


@dataclass(frozen=True)
class OverheadPoint:
    """One point on a Figure 3 curve."""

    required_mttdl_years: float
    overhead: float
    achieved_mttdl_years: float
    config: str


def cheapest_replication(
    target_mttdl_years: float,
    logical_capacity_tb: float,
    brick: BrickParams,
    placement: str = "random",
    max_replicas: int = 12,
    segment_gb: float = 16.0,
) -> Optional[OverheadPoint]:
    """Fewest replicas meeting the MTTDL target; None if unreachable."""
    for replicas in range(1, max_replicas + 1):
        system = ReplicationSystem(
            brick=brick, placement=placement, replicas=replicas,
            segment_gb=segment_gb,
        )
        achieved = system.mttdl_years(logical_capacity_tb)
        if achieved >= target_mttdl_years:
            return OverheadPoint(
                required_mttdl_years=target_mttdl_years,
                overhead=system.total_overhead,
                achieved_mttdl_years=achieved,
                config=f"{replicas}-way/{brick.internal_raid}",
            )
    return None


def cheapest_erasure_code(
    target_mttdl_years: float,
    logical_capacity_tb: float,
    brick: BrickParams,
    m: int = 5,
    placement: str = "random",
    max_n: int = 30,
    segment_gb: float = 16.0,
) -> Optional[OverheadPoint]:
    """Smallest ``n`` for EC(m, n) meeting the MTTDL target."""
    if m < 1:
        raise ConfigurationError(f"m must be >= 1, got {m}")
    for n in range(m, max_n + 1):
        system = ErasureCodedSystem(
            brick=brick, placement=placement, m=m, n=n, segment_gb=segment_gb
        )
        achieved = system.mttdl_years(logical_capacity_tb)
        if achieved >= target_mttdl_years:
            return OverheadPoint(
                required_mttdl_years=target_mttdl_years,
                overhead=system.total_overhead,
                achieved_mttdl_years=achieved,
                config=f"EC({m},{n})/{brick.internal_raid}",
            )
    return None


def overhead_curve(
    targets_years: Sequence[float],
    logical_capacity_tb: float,
    brick: BrickParams,
    scheme: str,
    m: int = 5,
    placement: str = "random",
    segment_gb: float = 16.0,
) -> List[OverheadPoint]:
    """One Figure 3 series: overhead at each MTTDL requirement.

    Args:
        scheme: ``"replication"`` or ``"erasure"``.
    """
    if scheme not in ("replication", "erasure"):
        raise ConfigurationError(
            f"scheme must be 'replication' or 'erasure', got {scheme!r}"
        )
    points: List[OverheadPoint] = []
    for target in targets_years:
        if scheme == "replication":
            point = cheapest_replication(
                target, logical_capacity_tb, brick, placement,
                segment_gb=segment_gb,
            )
        else:
            point = cheapest_erasure_code(
                target, logical_capacity_tb, brick, m, placement,
                segment_gb=segment_gb,
            )
        if point is not None:
            points.append(point)
    return points
