"""One-call construction facade for clusters, volumes, and sessions.

The layered construction — build a :class:`ClusterConfig`, wrap it in a
:class:`FabCluster`, then wrap that in a :class:`LogicalVolume` — is
the right factoring for ablations, but most callers just want a
working virtual disk.  This module collapses the three steps into one
call each and routes keyword knobs to wherever they belong
(:class:`ClusterConfig`, :class:`~repro.sim.network.NetworkConfig`, or
:class:`~repro.core.coordinator.CoordinatorConfig`) by field name::

    from repro import api

    volume = api.open_volume(m=3, n=5, blocks=48, drop_probability=0.02)
    volume.write(0, b"x" * 1024)
    assert volume.read(0) == b"x" * 1024

or, sharing one cluster between volumes::

    cluster = api.open_cluster(5, 8, block_size=512, gc_enabled=True)
    volume = api.open_volume(cluster, blocks=200)
    with volume.session(max_inflight=16) as session:
        session.submit_write_range(0, payloads)

Unknown knobs raise :class:`~repro.errors.ConfigurationError` with the
list of valid names, so typos fail loudly instead of being swallowed.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from .core.cluster import ClusterConfig, FabCluster
from .core.coordinator import CoordinatorConfig
from .core.routing import RouteOptions
from .core.volume import LogicalVolume
from .errors import ConfigurationError
from .sim.network import NetworkConfig

__all__ = ["open_cluster", "open_volume"]

_NETWORK_FIELDS = {field.name for field in dataclasses.fields(NetworkConfig)}
_COORDINATOR_FIELDS = {
    field.name for field in dataclasses.fields(CoordinatorConfig)
}
_CLUSTER_FIELDS = {
    field.name for field in dataclasses.fields(ClusterConfig)
} - {"m", "n", "network", "coordinator"}


def _split_knobs(knobs: dict):
    """Route flat keyword knobs to their config dataclasses."""
    cluster_kw, network_kw, coordinator_kw, unknown = {}, {}, {}, []
    for name, value in knobs.items():
        if name in _CLUSTER_FIELDS:
            cluster_kw[name] = value
        elif name in _NETWORK_FIELDS:
            network_kw[name] = value
        elif name in _COORDINATOR_FIELDS:
            coordinator_kw[name] = value
        else:
            unknown.append(name)
    if unknown:
        valid = sorted(_CLUSTER_FIELDS | _NETWORK_FIELDS | _COORDINATOR_FIELDS)
        raise ConfigurationError(
            f"unknown cluster knob(s) {unknown}; valid knobs: {valid}"
        )
    return cluster_kw, network_kw, coordinator_kw


def open_cluster(m: int = 3, n: int = 5, **knobs) -> FabCluster:
    """Build a running FAB cluster in one call.

    Args:
        m / n: erasure-code parameters (m data blocks, n bricks).
        **knobs: any field of :class:`ClusterConfig` (``block_size``,
            ``seed``, ``f``, ``code_kind``, ``erasure_backend``,
            ``clock_skews``, disk latencies, ``transport``),
            :class:`NetworkConfig` (``min_latency``, ``max_latency``,
            ``drop_probability``, ``delivery_sweeps``, ...), or
            :class:`CoordinatorConfig` (``gc_enabled``,
            ``op_timeout``, ``delta_updates``, ...), routed
            automatically.

    ``transport`` selects the substrate — ``"sim"`` (deterministic
    discrete-event kernel, default), ``"asyncio"`` (wall-clock loopback,
    drive it with the async session API or ``repro serve``), or
    ``"asyncio-tcp"`` (wall-clock over sockets).  This is the single
    public construction path: ``open_cluster(transport="sim")`` and
    ``open_cluster(transport="asyncio")`` build the same protocol stack
    on different substrates.

    The network's ``jitter_seed`` defaults to the cluster ``seed`` so a
    single knob makes the whole run reproducible (the network simulation
    knobs apply only to ``transport="sim"``).
    """
    cluster_kw, network_kw, coordinator_kw = _split_knobs(knobs)
    network_kw.setdefault("jitter_seed", cluster_kw.get("seed", 0))
    return FabCluster(ClusterConfig(
        m=m,
        n=n,
        network=NetworkConfig(**network_kw),
        coordinator=CoordinatorConfig(**coordinator_kw),
        **cluster_kw,
    ))


def open_volume(
    cluster: Optional[FabCluster] = None,
    *,
    blocks: Optional[int] = None,
    stripes: Optional[int] = None,
    m: int = 3,
    n: int = 5,
    base_register_id: int = 0,
    stripe_shuffle: bool = True,
    route: Optional[RouteOptions] = None,
    **knobs,
) -> LogicalVolume:
    """Open a virtual disk, building a cluster on the way if needed.

    Args:
        cluster: an existing cluster to carve the volume from; omit it
            to build one from ``m``/``n`` and the cluster ``**knobs``.
        blocks: minimum logical capacity in blocks; rounded up to whole
            stripes.  Mutually exclusive with ``stripes``.
        stripes: exact stripe count (one storage register each).
            Defaults to 16 stripes when neither is given.
        base_register_id / stripe_shuffle / route: forwarded to
            :class:`LogicalVolume`.
        **knobs: cluster construction knobs (only valid when
            ``cluster`` is omitted).

    Round-trips in three lines::

        volume = api.open_volume(m=3, n=5, blocks=48)
        volume.write(0, b"x" * volume.block_size)
        assert volume.read(0) == b"x" * volume.block_size
    """
    if cluster is None:
        cluster = open_cluster(m, n, **knobs)
    elif knobs:
        raise ConfigurationError(
            f"cluster knobs {sorted(knobs)} cannot be applied to an "
            "already-built cluster; pass them to open_cluster() instead"
        )
    if blocks is not None and stripes is not None:
        raise ConfigurationError("pass either blocks= or stripes=, not both")
    if stripes is None:
        if blocks is None:
            stripes = 16
        else:
            if blocks < 1:
                raise ConfigurationError(f"blocks must be >= 1, got {blocks}")
            stripes = -(-blocks // cluster.config.m)  # ceil division
    return LogicalVolume(
        cluster,
        num_stripes=stripes,
        base_register_id=base_register_id,
        stripe_shuffle=stripe_shuffle,
        route=route,
    )
