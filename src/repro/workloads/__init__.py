"""Synthetic workload generation.

The paper's abort-rate and fast-path claims (Section 3) are workload
claims: real block workloads almost never issue concurrent conflicting
accesses to the same data, so aborts are rare and the optimistic read
path dominates.  The authors checked real traces; we provide synthetic
generators with explicit dials for the properties that matter —
read/write mix, access skew (uniform / Zipf / sequential), and a
*conflict dial* that schedules deliberately overlapping operations —
plus a simple trace format and replayer.
"""

from .generators import (
    AccessPattern,
    ConflictSchedule,
    HotspotPattern,
    SequentialPattern,
    UniformPattern,
    WorkloadConfig,
    WorkloadGenerator,
    ZipfPattern,
)
from .traces import TraceOp, TraceReplayer, synthesize_trace

__all__ = [
    "AccessPattern",
    "UniformPattern",
    "ZipfPattern",
    "HotspotPattern",
    "SequentialPattern",
    "WorkloadConfig",
    "WorkloadGenerator",
    "ConflictSchedule",
    "TraceOp",
    "TraceReplayer",
    "synthesize_trace",
]
