"""Trace format and replay.

The paper validates its no-concurrent-conflicts assumption against real
I/O traces.  We cannot ship those, so :func:`synthesize_trace` produces
the closest synthetic equivalent — a timestamped block-level trace with
a configurable inter-arrival process and access pattern — and
:class:`TraceReplayer` runs any trace against a
:class:`~repro.core.volume.LogicalVolume`, reporting throughput and the
observed abort rate (which, per the paper, should be zero when the
trace has no overlapping conflicting accesses).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.volume import LogicalVolume
from ..errors import ConfigurationError
from ..types import ABORT
from .generators import AccessPattern, UniformPattern

__all__ = ["TraceOp", "TraceReplayer", "synthesize_trace"]


@dataclass(frozen=True)
class TraceOp:
    """One trace record: at ``time``, ``op`` block ``block``.

    ``tag`` uniquifies write payloads.
    """

    time: float
    op: str  # "read" | "write"
    block: int
    tag: int = 0

    def __post_init__(self) -> None:
        if self.op not in ("read", "write"):
            raise ConfigurationError(f"op must be read|write, got {self.op!r}")


def synthesize_trace(
    num_ops: int,
    num_blocks: int,
    read_fraction: float = 0.7,
    mean_interarrival: float = 10.0,
    pattern: Optional[AccessPattern] = None,
    seed: int = 0,
) -> List[TraceOp]:
    """A synthetic timestamped trace (exponential inter-arrivals)."""
    if num_ops < 0:
        raise ConfigurationError("num_ops must be >= 0")
    rng = random.Random(seed)
    pattern = pattern or UniformPattern()
    trace: List[TraceOp] = []
    now = 0.0
    for index in range(num_ops):
        now += rng.expovariate(1.0 / mean_interarrival)
        block = pattern.next_block(rng, num_blocks)
        if rng.random() < read_fraction:
            trace.append(TraceOp(time=now, op="read", block=block))
        else:
            trace.append(TraceOp(time=now, op="write", block=block, tag=index + 1))
    return trace


@dataclass
class ReplayStats:
    """Outcome of a trace replay."""

    operations: int = 0
    reads: int = 0
    writes: int = 0
    aborts: int = 0
    duration: float = 0.0
    by_block_writes: Dict[int, int] = field(default_factory=dict)

    @property
    def abort_rate(self) -> float:
        return self.aborts / self.operations if self.operations else 0.0

    @property
    def throughput(self) -> float:
        """Operations per simulated time unit."""
        return self.operations / self.duration if self.duration else 0.0


class TraceReplayer:
    """Replays a trace against a logical volume.

    Operations are issued sequentially from trace order (the replayer
    is a single client); the trace timestamps pace the issue times, so
    a dense trace stresses the cluster and a sparse one idles it.
    """

    def __init__(self, volume: LogicalVolume) -> None:
        self.volume = volume

    def _payload(self, op: TraceOp) -> bytes:
        body = f"trace-{op.tag}-{op.block}".encode()
        size = self.volume.block_size
        return (body * (size // len(body) + 1))[:size]

    def replay(self, trace: List[TraceOp]) -> ReplayStats:
        """Run the whole trace; returns aggregate statistics."""
        stats = ReplayStats()
        env = self.volume.cluster.env
        start = env.now
        for op in sorted(trace, key=lambda record: record.time):
            if env.now < start + op.time:
                env.run(until=start + op.time)
            stats.operations += 1
            if op.op == "read":
                stats.reads += 1
                result = self.volume.read(op.block)
            else:
                stats.writes += 1
                result = self.volume.write(op.block, self._payload(op))
                stats.by_block_writes[op.block] = (
                    stats.by_block_writes.get(op.block, 0) + 1
                )
            if result is ABORT:
                stats.aborts += 1
        stats.duration = env.now - start
        return stats
