"""Workload generators: access patterns, mixes, and conflict schedules."""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from ..errors import ConfigurationError

__all__ = [
    "AccessPattern",
    "UniformPattern",
    "ZipfPattern",
    "HotspotPattern",
    "SequentialPattern",
    "WorkloadConfig",
    "WorkloadGenerator",
    "ConflictSchedule",
]


class AccessPattern(abc.ABC):
    """Chooses which logical block each operation touches."""

    @abc.abstractmethod
    def next_block(self, rng: random.Random, num_blocks: int) -> int:
        """The next block index in ``0..num_blocks-1``."""


class UniformPattern(AccessPattern):
    """Uniformly random block choice — the conflict-minimizing pattern."""

    def next_block(self, rng: random.Random, num_blocks: int) -> int:
        return rng.randrange(num_blocks)


class ZipfPattern(AccessPattern):
    """Zipf-skewed choice: a hot set concentrates accesses.

    Args:
        exponent: skew parameter ``s`` (1.0 is classic Zipf; larger is
            hotter).  Popularity rank is a random permutation of blocks,
            fixed per pattern instance.
    """

    def __init__(self, exponent: float = 1.0, seed: int = 0) -> None:
        if exponent <= 0:
            raise ConfigurationError(f"exponent must be positive, got {exponent}")
        self.exponent = exponent
        self._perm_seed = seed
        self._weights: Optional[List[float]] = None
        self._perm: Optional[List[int]] = None
        self._size = 0

    def _prepare(self, num_blocks: int) -> None:
        if self._weights is not None and self._size == num_blocks:
            return
        self._size = num_blocks
        raw = [1.0 / (rank**self.exponent) for rank in range(1, num_blocks + 1)]
        total = sum(raw)
        self._weights = [w / total for w in raw]
        perm_rng = random.Random(self._perm_seed)
        self._perm = list(range(num_blocks))
        perm_rng.shuffle(self._perm)

    def next_block(self, rng: random.Random, num_blocks: int) -> int:
        self._prepare(num_blocks)
        return self._perm[
            rng.choices(range(num_blocks), weights=self._weights, k=1)[0]
        ]


class HotspotPattern(AccessPattern):
    """A fixed hot region absorbing most accesses (OLTP-style).

    Args:
        hot_fraction: fraction of the address space that is hot.
        hot_probability: probability an access lands in the hot region.
    """

    def __init__(self, hot_fraction: float = 0.1,
                 hot_probability: float = 0.9) -> None:
        if not 0.0 < hot_fraction <= 1.0:
            raise ConfigurationError(
                f"hot_fraction must be in (0, 1], got {hot_fraction}"
            )
        if not 0.0 <= hot_probability <= 1.0:
            raise ConfigurationError(
                f"hot_probability must be in [0, 1], got {hot_probability}"
            )
        self.hot_fraction = hot_fraction
        self.hot_probability = hot_probability

    def next_block(self, rng: random.Random, num_blocks: int) -> int:
        hot_size = max(1, int(num_blocks * self.hot_fraction))
        if rng.random() < self.hot_probability:
            return rng.randrange(hot_size)
        if hot_size >= num_blocks:
            return rng.randrange(num_blocks)
        return hot_size + rng.randrange(num_blocks - hot_size)


class SequentialPattern(AccessPattern):
    """Strictly sequential scan, wrapping around — streaming workloads."""

    def __init__(self, start: int = 0) -> None:
        self._next = start

    def next_block(self, rng: random.Random, num_blocks: int) -> int:
        block = self._next % num_blocks
        self._next += 1
        return block


@dataclass
class WorkloadConfig:
    """A block-workload recipe.

    Attributes:
        num_blocks: logical address space size.
        read_fraction: P(an operation is a read).
        pattern: the access pattern (defaults to uniform).
        seed: RNG seed.
    """

    num_blocks: int
    read_fraction: float = 0.7
    pattern: AccessPattern = field(default_factory=UniformPattern)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ConfigurationError("num_blocks must be >= 1")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError("read_fraction must be in [0, 1]")


class WorkloadGenerator:
    """Yields ``(op, block, payload_tag)`` tuples from a recipe.

    ``op`` is ``"read"`` or ``"write"``; ``payload_tag`` is a unique
    integer for writes (callers turn it into unique block contents,
    satisfying the checker's unique-value assumption) and ``None`` for
    reads.
    """

    def __init__(self, config: WorkloadConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self._write_counter = 0

    def __iter__(self) -> Iterator[Tuple[str, int, Optional[int]]]:
        while True:
            yield self.next_op()

    def next_op(self) -> Tuple[str, int, Optional[int]]:
        """Generate the next operation."""
        block = self.config.pattern.next_block(self._rng, self.config.num_blocks)
        if self._rng.random() < self.config.read_fraction:
            return ("read", block, None)
        self._write_counter += 1
        return ("write", block, self._write_counter)

    def ops(self, count: int) -> List[Tuple[str, int, Optional[int]]]:
        """A finite batch of operations."""
        return [self.next_op() for _ in range(count)]


@dataclass
class ConflictSchedule:
    """Deliberately overlapping operations for the abort-rate ablation.

    Generates rounds; in each round, ``writers`` distinct coordinators
    write the *same* register within a ``spread`` time window (launch
    times jittered inside it).  ``conflict_probability`` dials what
    fraction of rounds actually collide; non-colliding rounds place the
    writers on distinct registers.

    Attributes:
        num_registers: register pool size.
        writers: concurrent coordinators per round.
        spread: launch-time window width (simulated time units).
        conflict_probability: P(round targets a single shared register).
        seed: RNG seed.
    """

    num_registers: int
    writers: int = 2
    spread: float = 1.0
    conflict_probability: float = 1.0
    seed: int = 0

    def rounds(self, count: int) -> List[List[Tuple[int, float]]]:
        """``count`` rounds of ``(register_id, launch_offset)`` per writer."""
        rng = random.Random(self.seed)
        result: List[List[Tuple[int, float]]] = []
        for _ in range(count):
            collide = rng.random() < self.conflict_probability
            if collide:
                register = rng.randrange(self.num_registers)
                round_ops = [
                    (register, rng.uniform(0.0, self.spread))
                    for _ in range(self.writers)
                ]
            else:
                registers = rng.sample(
                    range(self.num_registers), min(self.writers, self.num_registers)
                )
                round_ops = [
                    (registers[i % len(registers)], rng.uniform(0.0, self.spread))
                    for i in range(self.writers)
                ]
            result.append(round_ops)
        return result
