"""Existence results for m-quorum systems (paper Appendix A).

Theorem 2 states that an m-quorum system over ``n`` processes tolerating
``f`` faults exists **iff** ``n >= 2f + m``.  These helpers compute the
bound in each direction and verify arbitrary quorum families against
Definition 1 — both used heavily by the test suite's exhaustive and
property-based checks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Tuple

from ..errors import ConfigurationError
from ..types import ProcessId

__all__ = [
    "mquorum_exists",
    "min_processes",
    "max_fault_tolerance",
    "canonical_f",
    "verify_quorum_system",
    "QuorumSystemReport",
]


def mquorum_exists(n: int, m: int, f: int) -> bool:
    """True iff an m-quorum system exists (Theorem 2: ``n >= 2f + m``)."""
    if n < 1 or m < 1 or f < 0:
        raise ConfigurationError(
            f"need n >= 1, m >= 1, f >= 0; got n={n}, m={m}, f={f}"
        )
    return n >= 2 * f + m


def min_processes(m: int, f: int) -> int:
    """Fewest processes supporting intersection ``m`` and ``f`` faults."""
    if m < 1 or f < 0:
        raise ConfigurationError(f"need m >= 1, f >= 0; got m={m}, f={f}")
    return 2 * f + m


def max_fault_tolerance(n: int, m: int) -> int:
    """Largest tolerable ``f`` for given ``n`` and ``m``: ``floor((n-m)/2)``."""
    if n < m:
        raise ConfigurationError(f"need n >= m, got n={n}, m={m}")
    return (n - m) // 2


#: Alias matching the paper's phrasing "we assume f = floor((n-m)/2)".
canonical_f = max_fault_tolerance


@dataclass
class QuorumSystemReport:
    """Outcome of verifying a quorum family against Definition 1."""

    consistent: bool
    available: bool
    violations: List[str] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        """True iff both CONSISTENCY and AVAILABILITY hold."""
        return self.consistent and self.available


def verify_quorum_system(
    n: int,
    m: int,
    f: int,
    quorums: Iterable[Iterable[ProcessId]],
    max_violations: int = 10,
) -> QuorumSystemReport:
    """Check a quorum family against Definition 1 by exhaustion.

    CONSISTENCY: every pair of quorums intersects in at least ``m``
    processes.  AVAILABILITY: for every ``f``-subset of the universe,
    some quorum avoids it.  Exponential in ``n``; intended for tests.

    Returns a :class:`QuorumSystemReport` describing up to
    ``max_violations`` concrete violations of each property.
    """
    family: List[FrozenSet[ProcessId]] = [frozenset(q) for q in quorums]
    report = QuorumSystemReport(consistent=True, available=True)

    def note(message: str) -> None:
        if len(report.violations) < max_violations:
            report.violations.append(message)

    for q1, q2 in itertools.combinations_with_replacement(family, 2):
        if len(q1 & q2) < m:
            report.consistent = False
            note(
                f"|{sorted(q1)} ∩ {sorted(q2)}| = {len(q1 & q2)} < m={m}"
            )

    universe: Tuple[ProcessId, ...] = tuple(range(1, n + 1))
    if f > 0:
        for faulty in itertools.combinations(universe, f):
            faulty_set = set(faulty)
            if not any(q.isdisjoint(faulty_set) for q in family):
                report.available = False
                note(f"no quorum avoids faulty set {sorted(faulty_set)}")
    return report
