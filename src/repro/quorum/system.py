"""m-quorum system constructions (Definition 1 of the paper).

Two implementations are provided:

* :class:`MajorityMQuorumSystem` — the canonical system from Lemma 3/4:
  every subset of size ``n - f`` is a quorum.  This is what the protocol
  uses in practice; membership tests are O(1).
* :class:`ExplicitQuorumSystem` — an arbitrary user-supplied family of
  quorums, validated against Definition 1.  Useful for tests and for
  experimenting with non-canonical systems (e.g. grid-like systems).
"""

from __future__ import annotations

import abc
import itertools
from typing import FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

from ..errors import ConfigurationError, QuorumError
from ..types import ProcessId

__all__ = ["MQuorumSystem", "MajorityMQuorumSystem", "ExplicitQuorumSystem"]


class MQuorumSystem(abc.ABC):
    """Abstract m-quorum system over processes ``1..n``."""

    def __init__(self, n: int, m: int) -> None:
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        if not 1 <= m <= n:
            raise ConfigurationError(f"m must be in 1..{n}, got {m}")
        self._n = n
        self._m = m

    @property
    def n(self) -> int:
        """Universe size."""
        return self._n

    @property
    def m(self) -> int:
        """Required pairwise quorum intersection."""
        return self._m

    @property
    def universe(self) -> Tuple[ProcessId, ...]:
        """The process universe ``(1, ..., n)``."""
        return tuple(range(1, self._n + 1))

    @abc.abstractmethod
    def is_quorum(self, processes: Iterable[ProcessId]) -> bool:
        """True iff the given set of processes contains a quorum."""

    @abc.abstractmethod
    def quorums(self) -> Iterator[FrozenSet[ProcessId]]:
        """Iterate over all (minimal) quorums.

        May be exponential in ``n``; intended for tests and small
        systems.
        """

    @abc.abstractmethod
    def min_quorum_size(self) -> int:
        """Size of the smallest quorum."""

    def find_live_quorum(
        self, live: Iterable[ProcessId]
    ) -> FrozenSet[ProcessId]:
        """Return a quorum contained in ``live``.

        Raises:
            QuorumError: if no quorum is fully live.
        """
        live_set = frozenset(live)
        if self.is_quorum(live_set):
            for quorum in self.quorums():
                if quorum <= live_set:
                    return quorum
        raise QuorumError(
            f"no quorum available among live processes {sorted(live_set)}"
        )


class MajorityMQuorumSystem(MQuorumSystem):
    """The canonical construction: quorums are all sets of size >= n - f.

    With ``f = floor((n - m) / 2)`` (the maximum tolerable by Theorem 2)
    this gives quorums of size ``n - f = ceil((n + m) / 2)``, and any two
    quorums intersect in at least ``2(n - f) - n >= m`` processes.

    Args:
        n: universe size.
        m: required intersection.
        f: fault tolerance; defaults to the maximum ``floor((n - m) / 2)``.
        enforce_bound: when False, skip the Theorem 2 ``f <= (n-m)/2``
            check and build the (unsound) system anyway.  Quorums of
            size ``n - f`` then intersect in fewer than ``m`` processes,
            so reads can miss committed writes — exactly the broken
            configuration the fault-campaign engine uses to validate
            that its invariant checks actually fire.  Never use outside
            deliberate negative testing.
    """

    def __init__(self, n: int, m: int, f: int | None = None,
                 enforce_bound: bool = True) -> None:
        super().__init__(n, m)
        max_f = (n - m) // 2
        if f is None:
            f = max_f
        if f < 0:
            raise ConfigurationError(f"f must be >= 0, got {f}")
        if f > max_f and enforce_bound:
            raise ConfigurationError(
                f"f={f} exceeds the Theorem 2 bound floor((n-m)/2)={max_f} "
                f"for n={n}, m={m}"
            )
        if f >= n:
            raise ConfigurationError(f"f must be < n={n}, got {f}")
        self._f = f

    @property
    def f(self) -> int:
        """Number of faulty processes tolerated."""
        return self._f

    @property
    def quorum_size(self) -> int:
        """Quorum cardinality ``n - f``."""
        return self._n - self._f

    def is_quorum(self, processes: Iterable[ProcessId]) -> bool:
        unique = {p for p in processes if 1 <= p <= self._n}
        return len(unique) >= self.quorum_size

    def quorums(self) -> Iterator[FrozenSet[ProcessId]]:
        for combo in itertools.combinations(self.universe, self.quorum_size):
            yield frozenset(combo)

    def min_quorum_size(self) -> int:
        return self.quorum_size

    def find_live_quorum(self, live: Iterable[ProcessId]) -> FrozenSet[ProcessId]:
        live_set = sorted({p for p in live if 1 <= p <= self._n})
        if len(live_set) < self.quorum_size:
            raise QuorumError(
                f"only {len(live_set)} live processes, quorum needs "
                f"{self.quorum_size}"
            )
        return frozenset(live_set[: self.quorum_size])

    def __repr__(self) -> str:
        return (
            f"MajorityMQuorumSystem(n={self._n}, m={self._m}, f={self._f}, "
            f"quorum_size={self.quorum_size})"
        )


class ExplicitQuorumSystem(MQuorumSystem):
    """An m-quorum system given by an explicit family of quorums.

    The constructor validates Definition 1: pairwise intersections of at
    least ``m``, and availability for every faulty set of size ``f``.

    Args:
        n: universe size.
        m: required intersection.
        quorums: the quorum family.
        f: faulty-set size to validate availability against; pass ``0``
            to skip the availability check.
    """

    def __init__(
        self,
        n: int,
        m: int,
        quorums: Sequence[Iterable[ProcessId]],
        f: int = 0,
    ) -> None:
        super().__init__(n, m)
        family: List[FrozenSet[ProcessId]] = []
        for quorum in quorums:
            qset = frozenset(quorum)
            for p in qset:
                if not 1 <= p <= n:
                    raise ConfigurationError(
                        f"quorum member {p} outside universe 1..{n}"
                    )
            family.append(qset)
        if not family:
            raise ConfigurationError("quorum family must be non-empty")
        self._family = family
        self._f = f
        self._validate()

    def _validate(self) -> None:
        for q1, q2 in itertools.combinations(self._family, 2):
            if len(q1 & q2) < self._m:
                raise ConfigurationError(
                    f"CONSISTENCY violated: |{sorted(q1)} ∩ {sorted(q2)}| "
                    f"< m={self._m}"
                )
        # Self-intersection: each quorum must itself have >= m members.
        for q in self._family:
            if len(q) < self._m:
                raise ConfigurationError(
                    f"quorum {sorted(q)} smaller than m={self._m}"
                )
        if self._f > 0:
            universe: Set[ProcessId] = set(self.universe)
            for faulty in itertools.combinations(universe, self._f):
                faulty_set = set(faulty)
                if not any(q.isdisjoint(faulty_set) for q in self._family):
                    raise ConfigurationError(
                        f"AVAILABILITY violated: no quorum avoids faulty set "
                        f"{sorted(faulty_set)}"
                    )

    @property
    def f(self) -> int:
        """Faulty-set size the family was validated against."""
        return self._f

    def is_quorum(self, processes: Iterable[ProcessId]) -> bool:
        pset = frozenset(processes)
        return any(q <= pset for q in self._family)

    def quorums(self) -> Iterator[FrozenSet[ProcessId]]:
        return iter(self._family)

    def min_quorum_size(self) -> int:
        return min(len(q) for q in self._family)

    def __repr__(self) -> str:
        return (
            f"ExplicitQuorumSystem(n={self._n}, m={self._m}, "
            f"|quorums|={len(self._family)})"
        )
