"""Quorum selection strategies.

The protocol's ``quorum()`` primitive (Section 2.2) only requires that
*some* m-quorum receives every message; which processes a coordinator
contacts first is a policy decision with performance consequences.  The
strategies here decide the initial target set and the order in which
additional processes are tried as replies time out.

* :class:`RandomQuorumStrategy` — pick uniformly at random; spreads load
  (used by the paper's ``fast-read-stripe``, line 6: "Pick m random
  processes").
* :class:`PreferredQuorumStrategy` — always prefer a fixed ordering;
  maximizes fast-path cache/log locality.
* :class:`ExcludeSuspectedStrategy` — wrap another strategy and demote
  (but never permanently exclude) processes that recently timed out.
  Failure *suspicion* only affects performance, never safety, matching
  the paper's "does not need to know which bricks are up or down".
"""

from __future__ import annotations

import abc
import random
from typing import Iterable, List, Optional, Sequence, Set

from ..types import ProcessId

__all__ = [
    "QuorumStrategy",
    "RandomQuorumStrategy",
    "PreferredQuorumStrategy",
    "ExcludeSuspectedStrategy",
]


class QuorumStrategy(abc.ABC):
    """Orders the universe for a coordinator to contact."""

    @abc.abstractmethod
    def order(self, universe: Sequence[ProcessId]) -> List[ProcessId]:
        """Return the universe ordered by contact preference."""

    def pick(self, universe: Sequence[ProcessId], count: int) -> List[ProcessId]:
        """First ``count`` processes in preference order."""
        return self.order(universe)[:count]


class RandomQuorumStrategy(QuorumStrategy):
    """Uniformly random ordering (load-spreading default).

    Args:
        rng: random source; pass a seeded :class:`random.Random` for
            reproducible simulations.
    """

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng or random.Random()

    def order(self, universe: Sequence[ProcessId]) -> List[ProcessId]:
        ordered = list(universe)
        self._rng.shuffle(ordered)
        return ordered


class PreferredQuorumStrategy(QuorumStrategy):
    """Fixed preference order, e.g. data processes before parity.

    Args:
        preference: process ids in preferred order; universe members not
            listed are appended in id order.
    """

    def __init__(self, preference: Iterable[ProcessId]) -> None:
        self._preference = list(preference)

    def order(self, universe: Sequence[ProcessId]) -> List[ProcessId]:
        present = set(universe)
        ordered = [p for p in self._preference if p in present]
        rest = sorted(present - set(ordered))
        return ordered + rest


class ExcludeSuspectedStrategy(QuorumStrategy):
    """Demote suspected processes to the back of the contact order.

    Suspicion is advisory: suspected processes are still contacted last,
    so a wrong suspicion costs latency but cannot block progress or
    violate safety.

    Args:
        inner: the strategy producing the base order.
    """

    def __init__(self, inner: QuorumStrategy) -> None:
        self._inner = inner
        self._suspected: Set[ProcessId] = set()

    def suspect(self, process: ProcessId) -> None:
        """Mark a process as suspected (e.g. after a reply timeout)."""
        self._suspected.add(process)

    def unsuspect(self, process: ProcessId) -> None:
        """Clear suspicion (e.g. after hearing from the process)."""
        self._suspected.discard(process)

    @property
    def suspected(self) -> Set[ProcessId]:
        """Currently suspected processes (a copy)."""
        return set(self._suspected)

    def order(self, universe: Sequence[ProcessId]) -> List[ProcessId]:
        base = self._inner.order(universe)
        healthy = [p for p in base if p not in self._suspected]
        demoted = [p for p in base if p in self._suspected]
        return healthy + demoted
