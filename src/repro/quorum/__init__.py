"""m-quorum systems (paper Section 2.2 and Appendix A).

An *m-quorum system* over a universe of ``n`` processes is a set of
quorums where any two quorums intersect in at least ``m`` processes, and
a quorum avoiding the faulty set exists for every faulty set of size
``f``.  Theorem 2 shows such a system exists iff ``n >= 2f + m``; the
canonical construction takes all subsets of size ``n - f``.

This subpackage provides the canonical construction
(:class:`~repro.quorum.system.MajorityMQuorumSystem`), explicit quorum
systems for verification, existence checks
(:mod:`repro.quorum.theorems`), and quorum *selection strategies* used
by coordinators to pick which processes to contact
(:mod:`repro.quorum.strategy`).
"""

from .strategy import (
    ExcludeSuspectedStrategy,
    PreferredQuorumStrategy,
    QuorumStrategy,
    RandomQuorumStrategy,
)
from .system import ExplicitQuorumSystem, MajorityMQuorumSystem, MQuorumSystem
from .theorems import (
    canonical_f,
    max_fault_tolerance,
    min_processes,
    mquorum_exists,
    verify_quorum_system,
)

__all__ = [
    "MQuorumSystem",
    "MajorityMQuorumSystem",
    "ExplicitQuorumSystem",
    "QuorumStrategy",
    "RandomQuorumStrategy",
    "PreferredQuorumStrategy",
    "ExcludeSuspectedStrategy",
    "mquorum_exists",
    "min_processes",
    "max_fault_tolerance",
    "canonical_f",
    "verify_quorum_system",
]
