"""Log garbage collection (paper Section 5.1).

For correctness it suffices that each process remember the most recent
timestamp-data pair that was part of a *complete* write.  After a
coordinator has updated a full quorum with timestamp ``ts`` it may,
asynchronously, tell all processes to discard log entries older than
``ts``.

The online path is built into the protocol: set
``CoordinatorConfig.gc_enabled`` and every successful ``store-stripe``
broadcasts a :class:`~repro.core.messages.GcReq`.  This module adds an
*offline* collector for inspection and batch trimming, plus log-size
statistics used by the GC benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..timestamps import Timestamp
from .replica import Replica

__all__ = ["LogStats", "GarbageCollector"]


@dataclass
class LogStats:
    """Aggregate log sizes across replicas for one register."""

    register_id: int
    entries_per_replica: Dict[int, int]

    @property
    def total_entries(self) -> int:
        return sum(self.entries_per_replica.values())

    @property
    def max_entries(self) -> int:
        return max(self.entries_per_replica.values(), default=0)


class GarbageCollector:
    """Offline log inspection and trimming across a set of replicas.

    Args:
        replicas: mapping process id → replica (as built by FabCluster).
    """

    def __init__(self, replicas: Dict[int, Replica]) -> None:
        self.replicas = replicas

    def stats(self, register_id: int) -> LogStats:
        """Current per-replica log sizes for ``register_id``."""
        return LogStats(
            register_id=register_id,
            entries_per_replica={
                pid: len(replica.state(register_id).log)
                for pid, replica in self.replicas.items()
            },
        )

    def trim(self, register_id: int, ts: Timestamp) -> Dict[int, int]:
        """Trim all replica logs below ``ts``; returns removals per replica.

        Only safe when ``ts`` is the timestamp of a complete write (one
        that reached a full quorum) — the caller asserts this, exactly
        as the protocol's coordinator does before broadcasting GC.
        """
        removed: Dict[int, int] = {}
        for pid, replica in self.replicas.items():
            state = replica.state(register_id)
            count = state.log.trim_below(ts)
            if count:
                # Route through the replica's persistence path so the
                # journal gets its trim record (and compaction hook)
                # exactly as the online GC notice would produce.
                replica.persist_trim(register_id, state, ts)
            removed[pid] = count
        return removed

    def high_water_mark(self, register_id: int) -> int:
        """Largest log (in entries) across replicas — the GC bench metric."""
        return self.stats(register_id).max_entries

    def registers_seen(self) -> List[int]:
        """All register ids with state on any replica."""
        seen = set()
        for replica in self.replicas.values():
            seen.update(replica._registers)
        return sorted(seen)
