"""Log garbage collection (paper Section 5.1).

For correctness it suffices that each process remember the most recent
timestamp-data pair that was part of a *complete* write.  After a
coordinator has updated a full quorum with timestamp ``ts`` it may,
asynchronously, tell all processes to discard log entries older than
``ts``.

The online path is built into the protocol: set
``CoordinatorConfig.gc_enabled`` and every successful ``store-stripe``
broadcasts a :class:`~repro.core.messages.GcReq`.  This module adds an
*offline* collector for inspection and batch trimming, plus log-size
statistics used by the GC benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import CorruptionDetected
from ..timestamps import Timestamp
from .replica import Replica

__all__ = ["LogStats", "TrimReport", "GarbageCollector"]


@dataclass
class LogStats:
    """Aggregate log sizes across replicas for one register."""

    register_id: int
    entries_per_replica: Dict[int, int]

    @property
    def total_entries(self) -> int:
        return sum(self.entries_per_replica.values())

    @property
    def max_entries(self) -> int:
        return max(self.entries_per_replica.values(), default=0)


@dataclass
class TrimReport:
    """Outcome of one offline :meth:`GarbageCollector.trim` pass.

    Attributes:
        removed: entries removed per *live* replica (by process id).
        skipped_down: replicas that were down and therefore untouched —
            their logs keep the stale entries until an online GC notice
            or a later offline pass reaches them after recovery.
        skipped_quarantined: replicas whose copy of the register failed
            checksum verification — compacting a corrupt log would
            destroy the very evidence the repair path (degraded read /
            scrub write-back) needs, so GC leaves it untouched.
    """

    register_id: int
    ts: Timestamp
    removed: Dict[int, int] = field(default_factory=dict)
    skipped_down: List[int] = field(default_factory=list)
    skipped_quarantined: List[int] = field(default_factory=list)

    @property
    def total_removed(self) -> int:
        return sum(self.removed.values())


class GarbageCollector:
    """Offline log inspection and trimming across a set of replicas.

    Args:
        replicas: mapping process id → replica (as built by FabCluster).
    """

    def __init__(self, replicas: Dict[int, Replica]) -> None:
        self.replicas = replicas

    def stats(self, register_id: int) -> LogStats:
        """Current per-replica log sizes for ``register_id``.

        Quarantined (checksum-failed) copies are omitted: their logs
        cannot be trusted enough to even count entries.
        """
        entries: Dict[int, int] = {}
        for pid, replica in self.replicas.items():
            try:
                entries[pid] = len(replica.state(register_id).log)
            except CorruptionDetected:
                continue
        return LogStats(register_id=register_id, entries_per_replica=entries)

    def trim(self, register_id: int, ts: Timestamp) -> TrimReport:
        """Trim live replica logs below ``ts``; reports per-replica removals.

        Only safe when ``ts`` is the timestamp of a complete write (one
        that reached a full quorum) — the caller asserts this, exactly
        as the protocol's coordinator does before broadcasting GC.

        Crashed replicas are *skipped* and reported, never mutated: a
        down brick cannot execute a trim, and reaching into its stable
        store from outside would violate the crash-recovery model (the
        online GC notice such a brick misses is simply a lost message).
        """
        report = TrimReport(register_id=register_id, ts=ts)
        for pid, replica in self.replicas.items():
            if not replica.node.is_up:
                report.skipped_down.append(pid)
                continue
            try:
                state = replica.state(register_id)
            except CorruptionDetected:
                report.skipped_quarantined.append(pid)
                continue
            count = state.log.trim_below(ts)
            if count:
                # Route through the replica's persistence path so the
                # journal gets its trim record (and compaction hook)
                # exactly as the online GC notice would produce.
                replica.persist_trim(register_id, state, ts)
            report.removed[pid] = count
        return report

    def high_water_mark(self, register_id: int) -> int:
        """Largest log (in entries) across replicas — the GC bench metric."""
        return self.stats(register_id).max_entries

    def registers_seen(self) -> List[int]:
        """All register ids with state on any replica."""
        seen = set()
        for replica in self.replicas.values():
            seen.update(replica.register_ids())
        return sorted(seen)
