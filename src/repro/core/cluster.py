"""FAB cluster assembly.

:class:`FabCluster` wires together everything a runnable system needs:
a simulation environment, a fair-loss network, ``n`` brick nodes each
hosting a replica *and* a coordinator (bricks serve as both storage
devices and I/O controllers — the paper's decentralized architecture),
plus timestamp sources and metrics.

Typical use::

    cluster = FabCluster(ClusterConfig(m=3, n=5, block_size=1024))
    register = cluster.register(0)               # stripe 0, any coordinator
    register.write_stripe([b"a" * 1024] * 3)
    assert register.read_stripe() == [b"a" * 1024] * 3

    cluster.node(2).crash()                       # kill a brick
    assert register.read_stripe() == [b"a" * 1024] * 3   # still readable
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..erasure.registry import make_code
from ..errors import ConfigurationError
from ..quorum.system import MajorityMQuorumSystem
from ..sim.monitor import Metrics
from ..sim.network import NetworkConfig
from ..sim.node import Node
from ..timestamps import TimestampSource
from ..transport import make_transport
from ..transport.base import Transport
from ..types import ProcessId
from .coordinator import Coordinator, CoordinatorConfig
from .gc import GarbageCollector
from .register import StorageRegister
from .replica import Replica
from .routing import RouteOptions, resolve_route

__all__ = ["ClusterConfig", "FabCluster"]


@dataclass
class ClusterConfig:
    """Static configuration for a FAB cluster.

    Attributes:
        m / n: erasure-code parameters (m data + n-m parity per stripe).
        block_size: stripe-unit size in bytes.
        f: tolerated faults; defaults to the maximum ``floor((n-m)/2)``.
        code_kind: erasure-code implementation (see
            :func:`repro.erasure.registry.make_code`).
        erasure_backend: GF(2^8) kernel for the coding hot path —
            ``"auto"`` (default: the table kernel when numpy is
            available, else the pure-``bytes`` kernel), ``"table"``,
            ``"masked"`` (the reference implementation), or
            ``"bytes"``.  All backends are byte-identical; see
            :mod:`repro.erasure.kernels`.
        network: network behaviour (latency, drops, ...).
        coordinator: protocol knobs (retransmission, grace, GC, ...).
        clock_skews: per-process clock skew in time units (index by
            process id); missing ids default to zero.  Used by the
            abort-rate ablation.
        disk_read_latency / disk_write_latency: simulated time per log
            block read/write at replicas (0 = the paper's free-disk
            cost model).
        store_mode: stable-store copy discipline — ``"cow"``
            (copy-on-write, default) or ``"deepcopy"`` (the seed
            baseline the simcore benchmark measures against).
        persistence: replica log persistence — ``"journal"`` (O(1)
            delta records per mutation, default) or ``"full"``
            (re-store the whole log per mutation, the seed baseline).
        verify_checksums: verify stable-store CRC envelopes on every
            read (default True).  ``False`` is the escape hatch that
            lets injected corruption thaw into garbage — only for
            demonstrating that the detector is load-bearing.
        metrics_history_limit: cap on retained per-operation metric
            records (None = unlimited); long benchmark runs set a limit
            so metric history stays O(1) in run length.
        transport: message/timer substrate — ``"sim"`` (deterministic
            discrete-event kernel, default), ``"asyncio"`` (wall-clock
            in-process loopback), or ``"asyncio-tcp"`` (wall-clock over
            real sockets).  The ``network`` simulation knobs apply only
            to ``"sim"``.
        seed: master seed; node-level randomness derives from it.
        allow_unsafe_f: permit ``f`` beyond the Theorem 2 bound
            ``floor((n - m) / 2)`` — builds a quorum system whose
            quorums intersect in fewer than ``m`` processes.  Only for
            negative testing (the fault campaign's broken-config mode).
    """

    m: int = 3
    n: int = 5
    block_size: int = 1024
    f: Optional[int] = None
    code_kind: str = "auto"
    erasure_backend: str = "auto"
    network: NetworkConfig = field(default_factory=NetworkConfig)
    coordinator: CoordinatorConfig = field(default_factory=CoordinatorConfig)
    clock_skews: Dict[int, float] = field(default_factory=dict)
    disk_read_latency: float = 0.0
    disk_write_latency: float = 0.0
    store_mode: str = "cow"
    persistence: str = "journal"
    transport: str = "sim"
    verify_checksums: bool = True
    metrics_history_limit: Optional[int] = None
    seed: int = 0
    allow_unsafe_f: bool = False


class FabCluster:
    """A federated array of ``n`` bricks running the storage register."""

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        transport: Optional[Transport] = None,
    ) -> None:
        self.config = config or ClusterConfig()
        cfg = self.config
        if cfg.n < cfg.m:
            raise ConfigurationError(f"need n >= m, got n={cfg.n}, m={cfg.m}")
        self.metrics = Metrics(history_limit=cfg.metrics_history_limit)
        if transport is None:
            if cfg.transport == "sim":
                transport = make_transport(
                    "sim", network_config=cfg.network, metrics=self.metrics
                )
            else:
                transport = make_transport(cfg.transport, metrics=self.metrics)
        if transport.metrics is None:
            # An externally built transport adopts the cluster's sink so
            # message counts land in the same place as op metrics.
            transport.metrics = self.metrics
        self.transport = transport
        self.env = transport.env
        self.network = getattr(transport, "network", None)
        self.code = make_code(
            cfg.m, cfg.n, cfg.code_kind, backend=cfg.erasure_backend
        )
        self.quorum_system = MajorityMQuorumSystem(
            cfg.n, cfg.m, cfg.f, enforce_bound=not cfg.allow_unsafe_f
        )
        self.nodes: Dict[ProcessId, Node] = {}
        self.replicas: Dict[ProcessId, Replica] = {}
        self.coordinators: Dict[ProcessId, Coordinator] = {}
        master = random.Random(cfg.seed)
        for pid in range(1, cfg.n + 1):
            node = Node(
                transport=self.transport,
                process_id=pid,
                metrics=self.metrics,
                store_mode=cfg.store_mode,
                verify_checksums=cfg.verify_checksums,
            )
            replica = Replica(
                node, self.code, pid,
                disk_read_latency=cfg.disk_read_latency,
                disk_write_latency=cfg.disk_write_latency,
                persistence=cfg.persistence,
            )
            ts_source = TimestampSource(
                pid,
                clock=self.transport.now,
                skew=cfg.clock_skews.get(pid, 0.0),
            )
            coordinator = Coordinator(
                node,
                self.code,
                self.quorum_system,
                ts_source,
                cfg.block_size,
                cfg.coordinator,
                rng=random.Random(master.randrange(2**31)),
            )
            self.nodes[pid] = node
            self.replicas[pid] = replica
            self.coordinators[pid] = coordinator
        self.gc = GarbageCollector(self.replicas)

    # -- accessors -----------------------------------------------------------

    def node(self, pid: ProcessId) -> Node:
        """Brick ``pid`` (1-based)."""
        return self.nodes[pid]

    def coordinator(self, pid: ProcessId) -> Coordinator:
        """The coordinator running on brick ``pid``."""
        return self.coordinators[pid]

    def register(
        self,
        register_id: int,
        route=None,
        *,
        coordinator_pid: Optional[ProcessId] = None,
    ) -> StorageRegister:
        """A register handle for stripe ``register_id``.

        Any brick can coordinate; pass ``route=RouteOptions(
        coordinator=...)`` (or a bare pid) to exercise multi-controller
        access to the same stripe.  Defaults to brick 1.  The keyword
        ``coordinator_pid=`` is deprecated.
        """
        resolved = resolve_route(
            route, coordinator_pid, default=RouteOptions(coordinator=1)
        )
        pid = resolved.coordinator if resolved.coordinator is not None else 1
        return StorageRegister(self.coordinators[pid], register_id)

    def register_ids(self) -> list:
        """Ids of every register with state anywhere in the cluster.

        The union of every replica's :meth:`~repro.core.replica.Replica.
        register_ids` (sorted) — volatile mirrors plus stable storage,
        so the answer is current even right after crashes or recoveries.
        Tools that scan "everything" (the scrub daemon, rebuilders)
        should resolve the register set through this accessor each pass
        instead of snapshotting it once at construction.
        """
        seen: set = set()
        for replica in self.replicas.values():
            seen.update(replica.register_ids())
        return sorted(seen)

    # -- convenience ----------------------------------------------------------

    def live_processes(self) -> list:
        """Ids of currently-up bricks."""
        return [pid for pid, node in self.nodes.items() if node.is_up]

    def reachable_processes(self) -> list:
        """Ids of up bricks the transport does not report ``"down"``.

        Degraded-mode routing input: with at most ``f`` bricks
        unreachable a quorum of ``n - f`` remains, so sessions that
        route around transport-down peers keep completing operations
        while the reconnect prober works the dead links.  May be empty
        even when :meth:`live_processes` is not (e.g. a full partition);
        callers must fall back rather than stall forever.
        """
        return [
            pid for pid, node in self.nodes.items()
            if node.is_up and self.transport.peer_state(pid) != "down"
        ]

    def crash(self, pid: ProcessId) -> None:
        """Crash brick ``pid``."""
        self.nodes[pid].crash()

    def recover(self, pid: ProcessId) -> None:
        """Recover brick ``pid``."""
        self.nodes[pid].recover()

    def run(self, until: Optional[float] = None) -> None:
        """Advance the substrate (synchronous transports only)."""
        self.transport.run(until)

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"FabCluster(m={cfg.m}, n={cfg.n}, f={self.quorum_system.f}, "
            f"code={type(self.code).__name__}, block={cfg.block_size}B)"
        )
