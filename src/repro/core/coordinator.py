"""Coordinator-side protocol (paper Algorithms 1 and 3).

Any brick can coordinate any operation.  A :class:`Coordinator` lives on
one :class:`~repro.sim.node.Node` and exposes the four register methods
— ``read_stripe``, ``write_stripe``, ``read_block``, ``write_block`` —
as simulation coroutines (generators).  Spawn them with
``node.spawn(...)`` so a node crash interrupts them mid-protocol,
producing exactly the partial operations the paper's recovery path must
handle.

The ``quorum()`` primitive of Section 2.2 is implemented by
:class:`QuorumRpc`: send a request to every process, collect replies,
retransmit periodically to non-responders (fair-loss channels make this
non-blocking), and complete once an m-quorum has replied.  A *prefer*
predicate lets callers wait a short grace period past quorum for the
specific replies the fast path needs (e.g. the ``targets`` of a read) —
without it, a fast path would spuriously fail whenever one of its
targets happened to reply just after the quorum filled.

Abort semantics follow the paper: conflicting concurrent operations or
stale timestamps make an operation return ⊥ (:data:`~repro.types.ABORT`),
which is always safe; callers may retry with a fresh timestamp.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ProtocolInvariantError
from ..erasure.interface import ErasureCode
from ..erasure.reed_solomon import ReedSolomonCode
from ..quorum.strategy import QuorumStrategy, RandomQuorumStrategy
from ..quorum.system import MajorityMQuorumSystem
from ..sim.monitor import Metrics
from ..sim.node import Node
from ..transport.base import Transport
from ..timestamps import HIGH_TS, LOW_TS, Timestamp, TimestampSource
from ..types import ABORT, Block, ProcessId
from .messages import (
    ALL,
    GcReq,
    ModifyReply,
    ModifyReq,
    OrderReadReply,
    OrderReadReq,
    OrderReply,
    OrderReq,
    ReadReply,
    ReadReq,
    WriteReply,
    WriteReq,
)

__all__ = ["Coordinator", "CoordinatorConfig", "QuorumRpc"]

#: Return value of successful writes (the paper's OK).
OK = "OK"


@dataclass
class CoordinatorConfig:
    """Coordinator behaviour knobs.

    Attributes:
        retransmit_interval: period between retransmissions to
            processes that have not replied (fair-loss handling).
        grace: extra time to wait after a quorum has replied for the
            fast path's preferred replies to arrive.  Measured in the
            same units as network latency; 2x the max one-way delay is
            a natural choice.
        op_timeout: overall cap on one quorum phase; ``None`` waits
            forever (the paper's model).  When set, an expired phase
            makes the operation abort instead of hanging — useful for
            experiments that permanently lose a quorum.
        observe_timestamps: adopt timestamps seen in replies into the
            local clock (reduces aborts under clock skew; never affects
            safety).
        delta_updates: ship a single coded delta to parity processes in
            Modify instead of old+new blocks (Section 5.2 optimization
            (b); requires a ReedSolomonCode).
        gc_enabled: send asynchronous garbage-collection notices after
            every complete write (Section 5.1).
        disable_fast_read: ablation switch — skip the optimistic
            one-round read and always run recovery.  Correct but
            expensive (6δ reads); quantifies what the fast path buys.
        unsafe_one_phase_writes: ablation switch — skip the Order phase
            of writes.  DELIBERATELY UNSAFE: partial writes become
            undetectable and strict linearizability fails (the Figure 5
            anomaly returns).  Exists so the checker can demonstrate
            *why* the paper's two-phase write is necessary; never use
            outside that experiment.
    """

    retransmit_interval: float = 8.0
    grace: float = 2.0
    op_timeout: Optional[float] = None
    observe_timestamps: bool = True
    delta_updates: bool = False
    gc_enabled: bool = False
    disable_fast_read: bool = False
    unsafe_one_phase_writes: bool = False


class _PendingCall:
    """Book-keeping for one in-flight quorum phase."""

    def __init__(
        self,
        transport: Transport,
        min_count: int,
        prefer: Optional[Callable[[Dict[ProcessId, object]], bool]],
        grace: float,
    ) -> None:
        self.transport = transport
        self.min_count = min_count
        self.prefer = prefer
        self.grace = grace
        self.replies: Dict[ProcessId, object] = {}
        self.complete = transport.event()
        self.finished = False
        self.expired = False
        self._grace_started = False

    def on_reply(self, src: ProcessId, reply: object) -> None:
        if self.finished or src in self.replies:
            return
        self.replies[src] = reply
        self._evaluate()

    def _evaluate(self) -> None:
        if self.finished:
            return
        if self.prefer is not None and self.prefer(self.replies):
            self._finish()
            return
        if len(self.replies) >= self.min_count:
            if self.prefer is None:
                self._finish()
            elif not self._grace_started:
                self._grace_started = True
                self.transport.set_timer(self.grace, self._finish)

    def _finish(self) -> None:
        if self.finished:
            return
        self.finished = True
        self.complete.succeed(dict(self.replies))

    def expire(self) -> None:
        """Give up on the phase (op_timeout).

        If a quorum never arrived, the phase is marked expired and the
        caller receives ``None`` — an expired sub-quorum phase must
        never be mistaken for a successful quorum round.
        """
        if not self.finished and len(self.replies) < self.min_count:
            self.expired = True
        self._finish()


class QuorumRpc:
    """The ``quorum(msg)`` primitive over fair-loss channels.

    Registers reply handlers on the owning node and routes replies to
    pending calls by ``request_id``.
    """

    _REPLY_TYPES = (ReadReply, OrderReply, OrderReadReply, WriteReply, ModifyReply)

    def __init__(
        self,
        node: Node,
        universe: Sequence[ProcessId],
        quorum_size: int,
        config: CoordinatorConfig,
    ) -> None:
        self.node = node
        self.transport = node.transport
        self.universe = list(universe)
        self.quorum_size = quorum_size
        self.config = config
        self._pending: Dict[int, _PendingCall] = {}
        self._next_request_id = 1
        for reply_type in self._REPLY_TYPES:
            node.register_handler(reply_type, self._on_reply)
        node.on_recovery(self._pending.clear)

    def next_request_id(self) -> int:
        """A fresh request id, unique within this coordinator."""
        request_id = self._next_request_id
        self._next_request_id += 1
        return request_id

    def _on_reply(self, src: ProcessId, reply) -> None:
        call = self._pending.get(reply.request_id)
        if call is not None:
            call.on_reply(src, reply)

    def call(
        self,
        make_request: Callable[[ProcessId, int], object],
        prefer: Optional[Callable[[Dict[ProcessId, object]], bool]] = None,
        min_count: Optional[int] = None,
    ):
        """Generator: run one quorum phase and return the reply map.

        Args:
            make_request: builds the per-destination request given
                ``(destination, request_id)`` — destinations may receive
                different payloads (e.g. their own Write block).
            prefer: early-completion predicate over the reply map.
            min_count: replies required to complete (defaults to the
                m-quorum size).

        Returns (via StopIteration): dict ``{process_id: reply}``.
        """
        request_id = self.next_request_id()
        needed = self.quorum_size if min_count is None else min_count
        call = _PendingCall(self.transport, needed, prefer, self.config.grace)
        self._pending[request_id] = call

        def transmit() -> None:
            for destination in self.universe:
                if destination in call.replies:
                    continue
                request = make_request(destination, request_id)
                self.node.send(destination, request, size=request.size)

        def retransmit_loop() -> None:
            # Stop when the phase finished, the call was abandoned (the
            # coordinator crashed and its pending table was cleared on
            # recovery), or the node is down — otherwise a crashed
            # coordinator would retransmit forever and the simulation
            # would never drain.
            if call.finished or self._pending.get(request_id) is not call:
                return
            if not self.node.is_up:
                return
            self.node.metrics.count_retransmission()
            transmit()
            self.transport.set_timer(
                self.config.retransmit_interval, retransmit_loop
            )

        transmit()
        self.transport.set_timer(self.config.retransmit_interval, retransmit_loop)
        if self.config.op_timeout is not None:
            self.transport.set_timer(self.config.op_timeout, call.expire)

        replies = yield call.complete
        del self._pending[request_id]
        self.node.metrics.count_round_trip()
        if call.expired:
            return None
        return replies


class Coordinator:
    """One brick acting as I/O coordinator (Algorithms 1 and 3).

    Args:
        node: hosting node (the coordinator dies with it).
        code: the stripe's erasure code.
        quorum_system: the m-quorum system over processes ``1..n``.
        ts_source: this process's ``newTS`` implementation.
        block_size: stripe unit size in bytes (used to materialize
            zero-filled blocks when block-writing a never-written
            stripe).
        config: behaviour knobs.
        rng: randomness for fast-read target selection (seed for
            reproducibility).
        strategy: quorum selection policy for fast-read targets;
            defaults to the paper's uniform-random choice.
    """

    def __init__(
        self,
        node: Node,
        code: ErasureCode,
        quorum_system: MajorityMQuorumSystem,
        ts_source: TimestampSource,
        block_size: int,
        config: Optional[CoordinatorConfig] = None,
        rng: Optional[random.Random] = None,
        strategy: Optional[QuorumStrategy] = None,
    ) -> None:
        self.node = node
        self.transport = node.transport
        self.code = code
        self.quorum_system = quorum_system
        self.ts_source = ts_source
        self.block_size = block_size
        self.config = config or CoordinatorConfig()
        self.metrics: Metrics = node.metrics
        self._rng = rng or random.Random()
        #: Policy choosing which bricks the fast read targets first.
        #: The paper's line 6 is "Pick m random processes"; other
        #: strategies (preferred order, suspicion-aware) trade load
        #: spreading for locality — see repro.quorum.strategy.
        self.strategy = strategy or RandomQuorumStrategy(self._rng)
        #: Whether the most recent _read_prev_stripe routed around
        #: corrupt fragments (read between the generator resumptions of
        #: one operation, so never racy across interleaved ops).
        self._last_prev_degraded = False
        self.rpc = QuorumRpc(
            node,
            universe=quorum_system.universe,
            quorum_size=quorum_system.quorum_size,
            config=self.config,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @property
    def m(self) -> int:
        return self.code.m

    @property
    def n(self) -> int:
        return self.code.n

    def _new_ts(self) -> Timestamp:
        return self.ts_source.new_ts()

    def _observe(self, ts: Optional[Timestamp]) -> None:
        if ts is not None and self.config.observe_timestamps:
            self.ts_source.observe(ts)

    def _decode_stripe(self, blocks: Dict[int, object]) -> Optional[List[Block]]:
        """Decode a stripe from replica blocks; None means the nil stripe."""
        values = {i: b for i, b in blocks.items() if isinstance(b, (bytes, bytearray))}
        if len(values) >= self.m:
            return self.code.decode({i: bytes(b) for i, b in values.items()})
        if all(b is None for b in blocks.values()) and len(blocks) >= self.m:
            return None  # nil: the register was never written
        return ABORT  # type: ignore[return-value]

    def _zero_stripe(self) -> List[Block]:
        return [bytes(self.block_size) for _ in range(self.m)]

    def _clean(self, replies: Dict[ProcessId, object]) -> Dict[ProcessId, object]:
        """Replies from replicas whose fragment passed its checksum.

        Corrupt-flagged replies are erasures (Konwar et al.,
        arXiv:1605.01748): they carry no usable block and no ordering
        certificate, so they are excluded from quorum conditions rather
        than counted as refusals.
        """
        return {
            i: reply
            for i, reply in replies.items()
            if not getattr(reply, "corrupt", False)
        }

    def _clean_quorum(self, replies: Dict[ProcessId, object]) -> bool:
        """Prefer predicate: a full quorum of non-corrupt replies."""
        return len(self._clean(replies)) >= self.quorum_system.quorum_size

    def _all_replied(self, replies: Dict[ProcessId, object]) -> bool:
        """Prefer predicate: every process replied (grace-bounded).

        Used to widen a read past the first quorum: combined with the
        default ``min_count`` the call returns once all ``n`` replicas
        answer, or a grace period after a quorum did — so crashed
        bricks cannot stall it.
        """
        return len(replies) >= len(self.quorum_system.universe)

    # ------------------------------------------------------------------
    # Algorithm 1 — stripe access
    # ------------------------------------------------------------------

    def read_stripe(self, register_id: int):
        """``read-stripe()``: returns the stripe (list of m blocks),
        ``None`` for a never-written stripe, or ABORT."""
        op = self.metrics.begin_op("read-stripe", self.transport.now())
        if self.config.disable_fast_read:
            op.path = "slow"
            value = yield from self._recover(register_id)
        else:
            value = yield from self._fast_read_stripe(register_id)
            if value is ABORT:
                op.path = "slow"
                value = yield from self._recover(register_id)
        self.metrics.end_op(op, self.transport.now(), aborted=value is ABORT)
        return value

    def _fast_read_stripe(self, register_id: int):
        """``fast-read-stripe()``: one round, no replica state change."""
        targets = self._pick_read_targets()

        def good(replies: Dict[ProcessId, ReadReply]) -> bool:
            if len(replies) < self.quorum_system.quorum_size:
                return False
            if not targets <= set(replies):
                return False
            return self._fast_read_condition(replies, targets)

        replies = yield from self.rpc.call(
            lambda dst, rid: ReadReq(
                register_id=register_id, request_id=rid, targets=targets
            ),
            prefer=good,
        )
        if replies is None:
            return ABORT
        for reply in replies.values():
            self._observe(reply.val_ts)
        if not self._fast_read_condition(replies, targets):
            return ABORT
        blocks = {i: replies[i].block for i in targets}
        stripe = self._decode_stripe(blocks)
        return stripe

    def _pick_read_targets(self) -> frozenset:
        """Pick ``m`` read targets whose blocks jointly decode.

        The paper's line 6 ("pick m random processes") is sound for MDS
        codes, where every ``m``-subset decodes.  Non-MDS codes (LRC)
        have rank-deficient ``m``-subsets — e.g. a local group's data
        plus its own parity — so redraw until the code accepts the set,
        falling back to the systematic data blocks, which always span.
        """
        universe = self.quorum_system.universe
        for _ in range(8):
            targets = frozenset(self.strategy.pick(universe, self.m))
            if self.code.is_decodable(targets):
                return targets
        return frozenset(range(1, self.m + 1))

    def _fast_read_condition(
        self, replies: Dict[ProcessId, ReadReply], targets: frozenset
    ) -> bool:
        if not targets <= set(replies):
            return False
        if not all(reply.status for reply in replies.values()):
            return False
        timestamps = {reply.val_ts for reply in replies.values()}
        return len(timestamps) == 1

    def write_stripe(self, register_id: int, stripe: Sequence[Block]):
        """``write-stripe(stripe)``: two-phase write; returns OK or ABORT."""
        op = self.metrics.begin_op("write-stripe", self.transport.now())
        ts = self._new_ts()
        if not self.config.unsafe_one_phase_writes:
            replies = yield from self.rpc.call(
                lambda dst, rid: OrderReq(
                    register_id=register_id, request_id=rid, ts=ts
                ),
                prefer=self._clean_quorum,
            )
            clean = self._clean(replies) if replies is not None else {}
            if (
                replies is None
                or len(clean) < self.quorum_system.quorum_size
                or not all(reply.status for reply in clean.values())
            ):
                if replies is not None:
                    for reply in replies.values():
                        self._observe(reply.max_seen)
                self.metrics.end_op(op, self.transport.now(), aborted=True)
                return ABORT
        result = yield from self._store_stripe(register_id, list(stripe), ts)
        self.metrics.end_op(op, self.transport.now(), aborted=result is ABORT)
        return result

    def _recover(self, register_id: int):
        """``recover()``: re-establish and write back the latest value.

        When the preceding read had to route around checksum-failed
        fragments, the successful recovery is a degraded read — and its
        write-back is precisely what repairs the quarantined replicas
        (they accept the fresh fragment via the repair-write path).
        """
        ts = self._new_ts()
        stripe = yield from self._read_prev_stripe(register_id, ts)
        if stripe is ABORT:
            return ABORT
        degraded = self._last_prev_degraded
        stored = yield from self._store_stripe(register_id, stripe, ts)
        if stored is OK:
            if degraded:
                self.metrics.count_degraded_read()
            return stripe
        return ABORT

    def _read_prev_stripe(self, register_id: int, ts: Timestamp):
        """``read-prev-stripe(ts)``: newest version with >= m blocks.

        Returns the stripe (list of blocks), ``None`` for nil, or ABORT.

        Corrupt-flagged replies (checksum-failed fragments) are treated
        as erasures: they never contribute blocks or ordering
        certificates, and the quorum conditions are evaluated over the
        clean replies only.  A read that succeeds despite corrupt
        fragments is a *degraded read* (counted); the caller's
        write-back then repairs the quarantined replicas.
        """
        max_ts = HIGH_TS
        degraded = False
        self._last_prev_degraded = False
        widen_next = False
        widened_at: Optional[Timestamp] = None
        # Fragments seen per version across rounds of this walk.  A
        # replica's fragment for a given (register, version) never
        # changes, so evidence from earlier rounds stays valid even
        # when a later (e.g. widened) round hears a different subset
        # of replicas.
        evidence: Dict[Timestamp, Dict[ProcessId, Optional[Block]]] = {}
        while True:
            current_max = max_ts
            prefer = self._clean_quorum
            if widen_next:
                widen_next = False
                prefer = self._all_replied
            replies = yield from self.rpc.call(
                lambda dst, rid: OrderReadReq(
                    register_id=register_id,
                    request_id=rid,
                    j=ALL,
                    max_ts=current_max,
                    ts=ts,
                ),
                prefer=prefer,
            )
            if replies is None:
                return ABORT
            clean = self._clean(replies)
            if len(clean) < self.quorum_system.quorum_size:
                return ABORT  # not enough verifiable fragments live
            if not all(reply.status for reply in clean.values()):
                for reply in clean.values():
                    self._observe(reply.lts)
                return ABORT
            degraded = degraded or len(clean) < len(replies)
            max_ts = max(reply.lts for reply in clean.values())
            blocks = {
                i: reply.block
                for i, reply in clean.items()
                if reply.lts == max_ts
            }
            if max_ts != LOW_TS:
                pool = evidence.setdefault(max_ts, {})
                pool.update(blocks)
                blocks = dict(pool)
            if len(blocks) >= self.m:
                if max_ts == LOW_TS:
                    self._last_prev_degraded = degraded
                    return None  # nil: never written
                value_blocks = {
                    i: b for i, b in blocks.items()
                    if isinstance(b, (bytes, bytearray))
                }
                if len(value_blocks) >= self.m:
                    if self.code.is_decodable(value_blocks):
                        self._last_prev_degraded = degraded
                        return self.code.decode(
                            {i: bytes(b) for i, b in value_blocks.items()}
                        )
                    # Non-MDS code: >= m blocks that do not span the
                    # stripe.  The version may still be *complete* —
                    # its spanning fragments can live at replicas
                    # outside this quorum, and once GC has trimmed
                    # everything below it, descending would walk off
                    # the log floor and fabricate a nil.  Re-read this
                    # level once, waiting to hear from every replica,
                    # before concluding the version is partial.
                    if widened_at != max_ts:
                        widened_at = max_ts
                        widen_next = True
                        max_ts = current_max
                        continue
                    # Still no spanning set with the whole universe
                    # heard: a genuinely partial write; keep looking
                    # below, like any other short version.
                elif all(b is None for b in blocks.values()):
                    self._last_prev_degraded = degraded
                    return None  # a complete nil write (recovery stored nil)
                else:
                    raise ProtocolInvariantError(
                        f"version {max_ts!r} mixes nil and value blocks: "
                        f"{sorted(blocks)}"
                    )

    def _store_stripe(self, register_id: int, stripe, ts: Timestamp,
                      min_count: Optional[int] = None, prefer=None):
        """``store-stripe(stripe, ts)``: write encoded blocks to a quorum.

        ``min_count`` widens the write-back beyond an m-quorum, and
        ``prefer`` is forwarded to the quorum call — the rebuilder uses
        the pair to push the value to every *currently* live brick
        while still terminating (quorum + grace) if a brick crashes
        mid-write-back.
        """
        if stripe is None:
            encoded: List[Optional[Block]] = [None] * self.n
        else:
            encoded = list(self.code.encode(list(stripe)))
        replies = yield from self.rpc.call(
            lambda dst, rid: WriteReq(
                register_id=register_id,
                request_id=rid,
                block=encoded[dst - 1],
                ts=ts,
            ),
            min_count=min_count,
            prefer=prefer,
        )
        if replies is not None and all(
            reply.status for reply in replies.values()
        ):
            if self.config.gc_enabled:
                self._send_gc(register_id, ts)
            return OK
        if replies is not None:
            for reply in replies.values():
                self._observe(reply.max_seen)
        return ABORT

    def _send_gc(self, register_id: int, ts: Timestamp) -> None:
        """Asynchronous GC notice to all processes (Section 5.1)."""
        request_id = self.rpc.next_request_id()
        for destination in self.quorum_system.universe:
            self.node.send(
                destination,
                GcReq(register_id=register_id, request_id=request_id, ts=ts),
                size=0,
            )

    # ------------------------------------------------------------------
    # Algorithm 3 — block access
    # ------------------------------------------------------------------

    def read_block(self, register_id: int, j: int):
        """``read-block(j)``: returns the block, None for nil, or ABORT."""
        op = self.metrics.begin_op("read-block", self.transport.now())
        targets = frozenset({j})

        def good(replies: Dict[ProcessId, ReadReply]) -> bool:
            if len(replies) < self.quorum_system.quorum_size:
                return False
            return self._fast_read_condition(replies, targets)

        replies = yield from self.rpc.call(
            lambda dst, rid: ReadReq(
                register_id=register_id, request_id=rid, targets=targets
            ),
            prefer=good,
        )
        if replies is None:
            self.metrics.end_op(op, self.transport.now(), aborted=True)
            return ABORT
        for reply in replies.values():
            self._observe(reply.val_ts)
        if self._fast_read_condition(replies, targets):
            self.metrics.end_op(op, self.transport.now(), aborted=False)
            return replies[j].block
        op.path = "slow"
        stripe = yield from self._recover(register_id)
        if stripe is ABORT:
            self.metrics.end_op(op, self.transport.now(), aborted=True)
            return ABORT
        self.metrics.end_op(op, self.transport.now(), aborted=False)
        if stripe is None:
            return None
        return stripe[j - 1]

    def write_block(self, register_id: int, j: int, block: Block):
        """``write-block(j, b)``: fast Modify path, else full recovery."""
        op = self.metrics.begin_op("write-block", self.transport.now())
        ts = self._new_ts()
        result, modify_sent = yield from self._fast_write_block(
            register_id, j, block, ts
        )
        if result is not OK:
            op.path = "slow"
            if modify_sent:
                # The Modify may have landed at a minority before the
                # fast path gave up (lossy links): those replicas' log
                # top is now ``ts``, so re-ordering at the same ts would
                # be rejected there forever.  Take a fresh timestamp so
                # the recovery write supersedes the incomplete version
                # instead of colliding with it.
                ts = self._new_ts()
            result = yield from self._slow_write_block(register_id, j, block, ts)
        self.metrics.end_op(op, self.transport.now(), aborted=result is not OK)
        return result

    def _fast_write_block(self, register_id: int, j: int, block: Block,
                          ts: Timestamp):
        """Optimistic incremental write; returns ``(result, modify_sent)``.

        ``modify_sent`` tells the caller whether a ``Modify(ts)`` hit
        the wire: once it has, ``ts`` may be logged at a minority of
        replicas and an aborting caller must not reuse it.
        """
        def got_j(replies: Dict[ProcessId, OrderReadReply]) -> bool:
            return (
                len(replies) >= self.quorum_system.quorum_size
                and j in replies
                and all(reply.status for reply in replies.values())
            )

        replies = yield from self.rpc.call(
            lambda dst, rid: OrderReadReq(
                register_id=register_id,
                request_id=rid,
                j=j,
                max_ts=HIGH_TS,
                ts=ts,
            ),
            prefer=got_j,
        )
        if replies is None:
            return ABORT, False
        statuses_ok = all(reply.status for reply in replies.values())
        if not statuses_ok or j not in replies:
            for reply in replies.values():
                self._observe(reply.lts)
            return ABORT, False
        old_block = replies[j].block
        ts_j = replies[j].lts
        if old_block is None:
            # p_j holds no base value (never-written register, or a
            # recovery stored nil): the incremental Modify path has
            # nothing to modify.  Abort *before* sending Modify so the
            # slow path can reuse this operation's timestamp cleanly.
            return ABORT, False

        use_delta = self.config.delta_updates and isinstance(
            self.code, ReedSolomonCode
        ) and old_block is not None
        delta = (
            self.code.encode_delta(j, old_block, block)  # type: ignore[attr-defined]
            if use_delta
            else None
        )

        def make_modify(dst: ProcessId, rid: int) -> ModifyReq:
            if use_delta:
                return ModifyReq(
                    register_id=register_id,
                    request_id=rid,
                    j=j,
                    old_block=None,
                    new_block=block if dst == j else None,
                    delta=delta,
                    ts_j=ts_j,
                    ts=ts,
                )
            return ModifyReq(
                register_id=register_id,
                request_id=rid,
                j=j,
                old_block=old_block,
                new_block=block,
                delta=None,
                ts_j=ts_j,
                ts=ts,
            )

        replies = yield from self.rpc.call(make_modify)
        if replies is not None and all(
            reply.status for reply in replies.values()
        ):
            return OK, True
        return ABORT, True

    # ------------------------------------------------------------------
    # Multi-block access (paper footnote 2: "the single-block methods
    # can easily be extended to access multiple blocks")
    # ------------------------------------------------------------------

    def read_blocks(self, register_id: int, js: Sequence[int]):
        """Read several blocks of one stripe in a single operation.

        Fast path: one Read round targeting every requested block (2δ,
        2n messages, ``len(js)`` disk reads).  On any inconsistency the
        recovery path reconstructs the whole stripe.  Returns a dict
        ``{j: block}`` (values ``None`` for a nil stripe) or ABORT.
        """
        op = self.metrics.begin_op("read-blocks", self.transport.now())
        targets = frozenset(js)

        def good(replies: Dict[ProcessId, ReadReply]) -> bool:
            if len(replies) < self.quorum_system.quorum_size:
                return False
            return self._fast_read_condition(replies, targets)

        replies = yield from self.rpc.call(
            lambda dst, rid: ReadReq(
                register_id=register_id, request_id=rid, targets=targets
            ),
            prefer=good,
        )
        if replies is not None:
            for reply in replies.values():
                self._observe(reply.val_ts)
            if self._fast_read_condition(replies, targets):
                self.metrics.end_op(op, self.transport.now(), aborted=False)
                return {j: replies[j].block for j in targets}
        op.path = "slow"
        stripe = yield from self._recover(register_id)
        if stripe is ABORT:
            self.metrics.end_op(op, self.transport.now(), aborted=True)
            return ABORT
        self.metrics.end_op(op, self.transport.now(), aborted=False)
        if stripe is None:
            return {j: None for j in targets}
        return {j: stripe[j - 1] for j in targets}

    def write_blocks(self, register_id: int, updates: Dict[int, Block]):
        """Write several blocks of one stripe atomically.

        One ``Order&Read(ALL)`` round both reserves the timestamp and
        returns every replica's current block; with a consistent newest
        version the coordinator decodes the stripe, overlays the
        updates, and stores the result — 4δ and 4n messages regardless
        of how many blocks change.  Inconsistent versions (a concurrent
        partial write) fall back to the recovery-based path with the
        same timestamp.  Returns OK or ABORT.
        """
        if not updates:
            return OK
        for j in updates:
            if not 1 <= j <= self.m:
                raise ProtocolInvariantError(
                    f"block index {j} outside 1..{self.m}"
                )
        op = self.metrics.begin_op("write-blocks", self.transport.now())
        ts = self._new_ts()
        replies = yield from self.rpc.call(
            lambda dst, rid: OrderReadReq(
                register_id=register_id,
                request_id=rid,
                j=ALL,
                max_ts=HIGH_TS,
                ts=ts,
            ),
            prefer=self._clean_quorum,
        )
        result = None
        clean = self._clean(replies) if replies is not None else {}
        if (
            replies is None
            or len(clean) < self.quorum_system.quorum_size
            or not all(reply.status for reply in clean.values())
        ):
            if replies is not None:
                for reply in clean.values():
                    self._observe(reply.lts)
            self.metrics.end_op(op, self.transport.now(), aborted=True)
            return ABORT
        newest = max(reply.lts for reply in clean.values())
        blocks = {
            i: reply.block for i, reply in clean.items()
            if reply.lts == newest
        }
        value_blocks = {
            i: b for i, b in blocks.items() if isinstance(b, (bytes, bytearray))
        }
        if len(value_blocks) >= self.m and self.code.is_decodable(value_blocks):
            stripe = self.code.decode(
                {i: bytes(b) for i, b in value_blocks.items()}
            )
        elif newest == LOW_TS or all(b is None for b in blocks.values()):
            if len(blocks) >= self.m:
                stripe = self._zero_stripe()
            else:
                stripe = None  # incomplete version: recover below
        else:
            stripe = None
        if stripe is None:
            op.path = "slow"
            stripe = yield from self._read_prev_stripe(register_id, ts)
            if stripe is ABORT:
                self.metrics.end_op(op, self.transport.now(), aborted=True)
                return ABORT
            if stripe is None:
                stripe = self._zero_stripe()
        stripe = list(stripe)
        for j, block in updates.items():
            stripe[j - 1] = block
        result = yield from self._store_stripe(register_id, stripe, ts)
        self.metrics.end_op(op, self.transport.now(), aborted=result is not OK)
        return result

    def _slow_write_block(self, register_id: int, j: int, block: Block,
                          ts: Timestamp):
        stripe = yield from self._read_prev_stripe(register_id, ts)
        if stripe is ABORT:
            return ABORT
        if stripe is None:
            stripe = self._zero_stripe()
        stripe = list(stripe)
        stripe[j - 1] = block
        result = yield from self._store_stripe(register_id, stripe, ts)
        return result
