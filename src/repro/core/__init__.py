"""The paper's primary contribution: the decentralized storage register.

One :class:`~repro.core.register.StorageRegister` emulates a strictly
linearizable read-write register over one erasure-coded stripe
(Algorithms 1-3 of the paper).  A :class:`~repro.core.cluster.FabCluster`
wires ``n`` brick replicas, a fair-loss network, and coordinators into a
runnable system, and :class:`~repro.core.volume.LogicalVolume` composes
many registers into a virtual disk.

Module map (paper section → module):

* Section 4.2 persistent structures → :mod:`repro.core.log`
* Algorithm 2 + Modify handler     → :mod:`repro.core.replica`
* Algorithms 1 and 3 (coordinator) → :mod:`repro.core.coordinator`
* message formats                  → :mod:`repro.core.messages`
* Section 5.1 garbage collection   → :mod:`repro.core.gc`
* FAB assembly                     → :mod:`repro.core.cluster`
* logical volumes                  → :mod:`repro.core.volume`
* routing / multipathing           → :mod:`repro.core.routing`
* pipelined session engine         → :mod:`repro.core.session`
"""

from .client import RetryingClient, RetryPolicy
from .cluster import ClusterConfig, FabCluster
from .coordinator import Coordinator
from .log import LogEntry, ReplicaLog
from .register import StorageRegister
from .replica import Replica
from .routing import RouteOptions
from .session import SessionOp, VolumeSession
from .volume import LogicalVolume

__all__ = [
    "FabCluster",
    "ClusterConfig",
    "RetryingClient",
    "RetryPolicy",
    "RouteOptions",
    "SessionOp",
    "StorageRegister",
    "VolumeSession",
    "Coordinator",
    "Replica",
    "ReplicaLog",
    "LogEntry",
    "LogicalVolume",
]
