"""Operation routing: which brick coordinates, and what happens if it dies.

FAB is fully decentralized — any brick can coordinate any operation
(paper Section 1.1), and a multipathed client whose coordinator crashes
simply reissues the request through another brick.  Historically every
volume operation took an ad-hoc ``coordinator_pid=`` keyword; the
:class:`RouteOptions` dataclass unifies that into a single ``route=``
parameter carrying both the pinned coordinator (if any) and whether
automatic failover is allowed.

The legacy ``coordinator_pid=`` keywords still work but emit
:class:`DeprecationWarning` via :func:`resolve_route`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Union

from ..errors import ConfigurationError
from ..types import ProcessId

__all__ = ["RouteOptions", "DEFAULT_ROUTE", "resolve_route"]


@dataclass(frozen=True)
class RouteOptions:
    """How one operation (or a whole volume/session) picks coordinators.

    Attributes:
        coordinator: preferred coordinating brick, or ``None`` to let
            the caller spread load (volumes fall back to their default
            brick; sessions rotate round-robin over live bricks).
        failover: reissue through another live brick when the
            coordinator crashes mid-operation (or an attempt times
            out).  With ``False`` a crash surfaces as
            :class:`~repro.errors.StorageError` instead — useful for
            experiments that want to observe the raw partial operation.
    """

    coordinator: Optional[ProcessId] = None
    failover: bool = True

    def pinned(self) -> bool:
        """True when a specific coordinator is requested."""
        return self.coordinator is not None


#: The default route: no pinned coordinator, failover enabled.
DEFAULT_ROUTE = RouteOptions()


def resolve_route(
    route: Union[RouteOptions, ProcessId, None] = None,
    coordinator_pid: Optional[ProcessId] = None,
    default: Optional[RouteOptions] = None,
    stacklevel: int = 3,
) -> RouteOptions:
    """Normalize the (route, legacy coordinator_pid) pair to RouteOptions.

    Accepts, in priority order:

    * ``route=RouteOptions(...)`` — the modern form, returned as-is;
    * ``route=<int>`` — shorthand for a pinned coordinator;
    * ``coordinator_pid=<int>`` — the deprecated keyword; converted to a
      pinned route and flagged with a :class:`DeprecationWarning`;
    * neither — ``default`` (or :data:`DEFAULT_ROUTE`).
    """
    if coordinator_pid is not None:
        if route is not None:
            raise ConfigurationError(
                "pass either route= or coordinator_pid=, not both"
            )
        warnings.warn(
            "coordinator_pid= is deprecated; use "
            "route=RouteOptions(coordinator=...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        return RouteOptions(coordinator=coordinator_pid)
    if route is None:
        return default if default is not None else DEFAULT_ROUTE
    if isinstance(route, RouteOptions):
        return route
    if isinstance(route, int):
        return RouteOptions(coordinator=route)
    raise ConfigurationError(
        f"route must be RouteOptions, a process id, or None; got {route!r}"
    )
