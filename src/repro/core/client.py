"""A retrying client for storage registers.

The protocol surfaces conflicts as aborts (the paper's ⊥) and leaves
retry policy to the caller — correctly so, since an aborted write may
or may not have taken effect and only the application knows whether
blind re-execution is acceptable (it is for idempotent block writes,
the overwhelmingly common storage case).

:class:`RetryingClient` packages the standard policy: retry aborted
operations a bounded number of times with simulated-time backoff.
Retrying a write is safe here because a write is idempotent at equal
value — re-running it can only move the register *to* the intended
value; strict linearizability guarantees the retries appear as a single
chain of atomic operations.  Reads are retried trivially.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from ..types import ABORT, Block
from .register import StorageRegister

__all__ = ["RetryPolicy", "RetryingClient"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff, jitter, and deadlines.

    Shared by :class:`RetryingClient` (synchronous, register-level) and
    :class:`~repro.core.session.VolumeSession` (pipelined, volume-level).
    The session additionally honours the timeout/failover knobs; the
    plain client uses only ``attempts``/``backoff``/``backoff_growth``.

    Attributes:
        attempts: total tries (first attempt included); must be >= 1.
        backoff: simulated time to wait between tries.  Backoff matters:
            conflicting coordinators that retry in lockstep re-collide,
            while even a small stagger lets one of them win.
        backoff_growth: multiplier applied to the backoff after each
            failed try (1.0 = constant).
        jitter: fraction of the current backoff added as deterministic
            jitter (drawn from the session's seeded RNG): the actual
            wait is uniform in ``[backoff, backoff * (1 + jitter)]``.
            Zero keeps the legacy fixed-backoff behaviour.
        deadline: cap on one operation's total simulated time across
            every retry and failover; exceeding it finishes the
            operation with status ``"timeout"``.  ``None`` = no cap.
        attempt_timeout: cap on a *single* attempt; an attempt that
            exceeds it is abandoned and the operation fails over to the
            next live brick (the abandoned attempt is harmless: either
            it never took effect, or it wrote the same value the retry
            writes).  ``None`` = wait for the attempt forever.
        max_failovers: bound on coordinator rotations per operation
            (crash- or timeout-driven) before giving up.
        transport_attempts: separate budget for *transport-level*
            unreachability: how many times one operation may be
            re-routed because the chosen coordinator's transport peer
            state is ``"down"`` (connection lost, reconnect probing in
            progress) before the operation gives up with ⊥.  Distinct
            from ``attempts`` because a flapping link can burn routing
            attempts far faster than protocol aborts and should not
            starve the abort-retry budget.
    """

    attempts: int = 3
    backoff: float = 5.0
    backoff_growth: float = 2.0
    jitter: float = 0.0
    deadline: Optional[float] = None
    attempt_timeout: Optional[float] = None
    max_failovers: int = 16
    transport_attempts: int = 8

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ConfigurationError(f"attempts must be >= 1, got {self.attempts}")
        if self.backoff < 0 or self.backoff_growth < 1.0:
            raise ConfigurationError(
                "need backoff >= 0 and backoff_growth >= 1"
            )
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {self.jitter}")
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError("deadline must be positive when set")
        if self.attempt_timeout is not None and self.attempt_timeout <= 0:
            raise ConfigurationError("attempt_timeout must be positive when set")
        if self.max_failovers < 0:
            raise ConfigurationError("max_failovers must be >= 0")
        if self.transport_attempts < 1:
            raise ConfigurationError(
                f"transport_attempts must be >= 1, got {self.transport_attempts}"
            )


class RetryingClient:
    """Abort-retrying façade over a :class:`StorageRegister`.

    All methods return the underlying result, or ABORT only after the
    policy's attempts are exhausted.  The ``stats`` dict counts retries
    for observability.
    """

    def __init__(
        self, register: StorageRegister, policy: Optional[RetryPolicy] = None
    ) -> None:
        self.register = register
        self.policy = policy or RetryPolicy()
        self.stats: Dict[str, int] = {"retries": 0, "exhausted": 0}

    def _run(self, operation):
        env = self.register.env
        delay = self.policy.backoff
        result = operation()
        for _attempt in range(self.policy.attempts - 1):
            if result is not ABORT:
                return result
            self.stats["retries"] += 1
            env.run(until=env.now + delay)
            delay *= self.policy.backoff_growth
            result = operation()
        if result is ABORT:
            self.stats["exhausted"] += 1
        return result

    # -- operations -----------------------------------------------------

    def read_stripe(self):
        """Read the stripe, retrying aborts per policy."""
        return self._run(self.register.read_stripe)

    def write_stripe(self, stripe: Sequence[Block]):
        """Write the stripe, retrying aborts per policy."""
        return self._run(lambda: self.register.write_stripe(stripe))

    def read_block(self, j: int):
        """Read one block, retrying aborts per policy."""
        return self._run(lambda: self.register.read_block(j))

    def write_block(self, j: int, block: Block):
        """Write one block, retrying aborts per policy."""
        return self._run(lambda: self.register.write_block(j, block))

    def read_blocks(self, js: Sequence[int]):
        """Multi-block read, retrying aborts per policy."""
        return self._run(lambda: self.register.read_blocks(js))

    def write_blocks(self, updates: Dict[int, Block]):
        """Atomic multi-block write, retrying aborts per policy."""
        return self._run(lambda: self.register.write_blocks(updates))
