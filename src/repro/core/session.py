"""Pipelined volume I/O with retry and coordinator failover.

The paper's cost model (Table 1) is per-operation, but FAB itself is a
throughput system: clients keep many block operations in flight at once
and any brick can coordinate any of them.  :class:`VolumeSession` is
that client — a pipelined I/O engine over one
:class:`~repro.core.volume.LogicalVolume` which

* keeps up to ``max_inflight`` operations running as simultaneous
  simulation processes (kernel ``AnyOf`` drives the completion pump);
* coalesces the block writes of one ``submit_write_range`` call that
  land in the same stripe into a single ``write-stripe`` (full stripe)
  or atomic ``write-blocks`` (partial stripe) operation — the paper's
  large-write fast path, applied automatically;
* wraps every operation in a :class:`~repro.core.client.RetryPolicy`:
  aborts (the paper's ⊥, always safe to retry with a fresh timestamp —
  Section 4) are retried with exponential backoff and deterministic
  jitter, a crashed or timed-out coordinator triggers failover to the
  next live brick, and an optional per-op deadline bounds the total
  wait;
* reports per-session concurrency/retry/abort/failover counters into
  :class:`~repro.sim.monitor.SessionStats`.

Operations are **submitted** (returning a :class:`SessionOp` future)
and run when the simulation advances; :meth:`VolumeSession.drain` runs
the event loop until every submitted operation has finished.  Several
sessions may be live on one cluster — draining any of them advances
them all, which is how multi-client pipelined histories are produced.

Typical use::

    volume = repro.api.open_volume(m=3, n=5, blocks=48)
    with volume.session(max_inflight=16) as session:
        for block in range(48):
            session.submit_write(block, payload(block))
    # drained on exit; session.stats has retries/failovers/peak_inflight
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import (
    ConfigurationError,
    CorruptionDetected,
    StorageError,
    TerminalTransportError,
)
from ..sim.kernel import Event, Interrupt, Process
from ..sim.monitor import SessionStats
from ..types import ABORT, Block, OpKind, OpStatus, ProcessId
from ..verify.history import OpRecord
from .client import RetryPolicy
from .routing import RouteOptions, resolve_route

__all__ = ["SessionOp", "VolumeSession", "DEFAULT_SESSION_RETRY"]

#: The session default: persistent enough to ride out abort storms and
#: brief quorum loss, with jitter so colliding pipelines de-synchronize.
DEFAULT_SESSION_RETRY = RetryPolicy(
    attempts=10, backoff=2.0, backoff_growth=1.5, jitter=0.5
)


class SessionOp:
    """One submitted operation: a future resolved when the op finishes.

    Attributes:
        kind: ``"read-block" | "read-blocks" | "write-block" |
            "write-blocks" | "write-stripe"`` (coalescing chooses the
            widest applicable kind).
        register_id: stripe register the operation addresses.
        blocks: logical block numbers covered, in submission order.
        units: matching 1-based in-stripe unit indices.
        payload: data being written (block, tuple of blocks, or None).
        status: ``"pending"`` then one of ``"ok" | "aborted" |
            "timeout" | "crashed" | "failed"``.
        value: client-visible result (bytes/list for reads, ``"OK"``
            for writes, :data:`~repro.types.ABORT` on exhausted
            retries/deadline).
        attempts / retries / failovers: per-op retry accounting.
        submitted_at / finished_at: simulated invocation/response times.
        coordinator: brick that served the final attempt.
    """

    __slots__ = (
        "kind", "register_id", "blocks", "units", "payload", "status",
        "value", "error", "attempts", "retries", "failovers",
        "submitted_at", "finished_at", "coordinator", "event",
    )

    def __init__(
        self,
        kind: str,
        register_id: int,
        blocks: Tuple[int, ...],
        units: Tuple[int, ...],
        payload,
        event: Event,
        submitted_at: float,
    ) -> None:
        self.kind = kind
        self.register_id = register_id
        self.blocks = blocks
        self.units = units
        self.payload = payload
        self.event = event
        self.submitted_at = submitted_at
        self.status = "pending"
        self.value = None
        self.error: Optional[BaseException] = None
        self.attempts = 0
        self.retries = 0
        self.failovers = 0
        self.finished_at: Optional[float] = None
        self.coordinator: Optional[ProcessId] = None

    @property
    def done(self) -> bool:
        """True once the operation has a terminal status."""
        return self.status != "pending"

    @property
    def ok(self) -> bool:
        """True if the operation completed with a usable value."""
        return self.status == "ok"

    @property
    def is_write(self) -> bool:
        return self.kind.startswith("write")

    @property
    def result(self):
        """The client-visible outcome.

        Reads return bytes (single block) or a list of bytes; writes
        return ``"OK"``.  Exhausted retries or a missed deadline return
        :data:`~repro.types.ABORT`.  A hard failure (coordinator crash
        with failover disabled, or an internal error) raises.
        """
        if not self.done:
            raise StorageError(
                f"operation {self.kind}@r{self.register_id} still pending; "
                "drain() the session first"
            )
        if self.status in ("crashed", "failed"):
            if isinstance(self.error, BaseException):
                raise StorageError(
                    f"{self.kind}@r{self.register_id} failed: {self.error!r}"
                ) from self.error
            raise StorageError(f"{self.kind}@r{self.register_id} failed")
        return self.value

    def __repr__(self) -> str:
        return (
            f"SessionOp({self.kind}, register={self.register_id}, "
            f"blocks={list(self.blocks)}, status={self.status})"
        )


class VolumeSession:
    """A pipelined, retrying, failing-over client of one logical volume.

    Args:
        volume: the :class:`~repro.core.volume.LogicalVolume` to drive.
        max_inflight: operations kept running concurrently (>= 1).
        retry: retry/backoff/deadline policy; defaults to
            :data:`DEFAULT_SESSION_RETRY`.
        route: coordinator routing.  With no pinned coordinator the
            session rotates round-robin over live bricks (spreading
            coordination load, as the paper's decentralized design
            intends); a pinned coordinator is preferred while alive.
        seed: jitter RNG seed; defaults to a value derived from the
            cluster seed, so identically-seeded runs are bit-identical.
    """

    def __init__(
        self,
        volume,
        max_inflight: int = 8,
        retry: Optional[RetryPolicy] = None,
        route: Optional[RouteOptions] = None,
        seed: Optional[int] = None,
    ) -> None:
        if max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self.volume = volume
        self.cluster = volume.cluster
        self.env = self.cluster.env
        self.transport = self.cluster.transport
        self.max_inflight = max_inflight
        self.retry = retry or DEFAULT_SESSION_RETRY
        self.route = resolve_route(route, default=RouteOptions())
        if seed is None:
            seed = (self.cluster.config.seed * 2654435761 + 0x5E5510) % 2**31
        self._rng = random.Random(seed)
        self.stats: SessionStats = self.cluster.metrics.begin_session(
            now=self.transport.now()
        )
        self.ops: List[SessionOp] = []
        self._queue: deque = deque()
        self._inflight: Dict[Process, SessionOp] = {}
        self._busy_registers: set = set()
        self._pump: Optional[Process] = None
        self._rr = 0

    # -- submission ----------------------------------------------------------

    def submit_read(self, logical_block: int) -> SessionOp:
        """Queue a one-block read; returns its :class:`SessionOp` future."""
        register_id, unit = self.volume.locate(logical_block)
        return self._enqueue(
            "read-block", register_id, (logical_block,), (unit,), None
        )

    def submit_write(self, logical_block: int, data: Block) -> SessionOp:
        """Queue a one-block write; returns its :class:`SessionOp` future."""
        self._check_block(data)
        register_id, unit = self.volume.locate(logical_block)
        return self._enqueue(
            "write-block", register_id, (logical_block,), (unit,), data
        )

    def submit_read_range(self, start_block: int, count: int) -> List[SessionOp]:
        """Queue reads of ``count`` consecutive blocks, coalesced per stripe."""
        groups = self._stripe_groups(
            range(start_block, start_block + count), payloads=None
        )
        ops = []
        for register_id, items in groups:
            blocks = tuple(block for block, _unit, _data in items)
            units = tuple(unit for _block, unit, _data in items)
            kind = "read-block" if len(items) == 1 else "read-blocks"
            ops.append(self._enqueue(kind, register_id, blocks, units, None))
        return ops

    def submit_write_range(
        self, start_block: int, data_blocks: Sequence[Block]
    ) -> List[SessionOp]:
        """Queue writes of consecutive blocks, coalesced per stripe.

        Blocks of the range that land in the same stripe become one
        operation: a full-stripe ``write-stripe`` when all ``m`` units
        are covered (Table 1's 4δ/4n large-write path), else an atomic
        ``write-blocks``.
        """
        for data in data_blocks:
            self._check_block(data)
        blocks = range(start_block, start_block + len(data_blocks))
        ops = []
        for register_id, items in self._stripe_groups(blocks, data_blocks):
            covered = tuple(block for block, _unit, _data in items)
            units = tuple(unit for _block, unit, _data in items)
            if len(items) > 1:
                self.stats.coalesced_writes += len(items) - 1
            if len(items) == self.volume.m:
                stripe = [None] * self.volume.m
                for _block, unit, data in items:
                    stripe[unit - 1] = data
                ops.append(self._enqueue(
                    "write-stripe", register_id, covered, units, tuple(stripe)
                ))
            elif len(items) == 1:
                ops.append(self._enqueue(
                    "write-block", register_id, covered, units, items[0][2]
                ))
            else:
                payload = tuple(data for _block, _unit, data in items)
                ops.append(self._enqueue(
                    "write-blocks", register_id, covered, units, payload
                ))
        return ops

    # -- draining ------------------------------------------------------------

    def drain(self) -> List[SessionOp]:
        """Run the simulation until every submitted operation finished.

        Returns this session's operations (completed ones included from
        earlier drains).  Other live sessions on the same cluster make
        progress too — their operations and this session's interleave
        in simulated time.
        """
        while self._pump is not None and not self._pump.triggered:
            self.transport.run_until_complete(self._pump)
        self.stats.finished_at = self.transport.now()
        return list(self.ops)

    async def drain_async(self) -> List[SessionOp]:
        """Await every submitted operation (any transport).

        The async twin of :meth:`drain`: on an
        :class:`~repro.transport.aio.AsyncioTransport` the pump runs in
        wall time and this coroutine suspends without blocking the
        event loop — thousands of sessions drain concurrently.  On a
        :class:`~repro.transport.sim.SimTransport` awaiting simply
        drives virtual time, so substrate-agnostic load drivers work on
        both.
        """
        while self._pump is not None and not self._pump.triggered:
            await self.transport.wait_for(self._pump)
        self.stats.finished_at = self.transport.now()
        return list(self.ops)

    def read(self, logical_block: int):
        """Synchronous pipelined read: submit, drain, return the value."""
        op = self.submit_read(logical_block)
        self.drain()
        return op.result

    def write(self, logical_block: int, data: Block):
        """Synchronous pipelined write: submit, drain, return the status."""
        op = self.submit_write(logical_block, data)
        self.drain()
        return op.result

    def __enter__(self) -> "VolumeSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.drain()

    # -- history -------------------------------------------------------------

    def history(self) -> List[OpRecord]:
        """Client-visible operation records for linearizability checking.

        Each multi-block operation expands to one record per covered
        unit (atomic within the operation's invocation/response
        window); full-stripe writes stay single ``WRITE_STRIPE``
        records.  Feed the per-register projection to the Appendix-B
        checkers — an operation's window spans all its retries, which
        is the correct client-visible granularity: retried attempts
        rewrite the same value, so a partial earlier attempt that
        recovery rolls forward is indistinguishable from the final one.
        """
        status_map = {
            "ok": OpStatus.OK,
            "aborted": OpStatus.ABORTED,
            "timeout": OpStatus.ABORTED,
            "crashed": OpStatus.CRASHED,
            "failed": OpStatus.CRASHED,
            "pending": OpStatus.PENDING,
        }
        ids = itertools.count(1)
        records: List[OpRecord] = []
        for op in self.ops:
            status = status_map[op.status]
            if op.kind == "write-stripe":
                records.append(OpRecord(
                    op_id=next(ids), kind=OpKind.WRITE_STRIPE,
                    block_index=None, value=list(op.payload),
                    t_inv=op.submitted_at, t_resp=op.finished_at,
                    status=status, coordinator=op.coordinator,
                    register_id=op.register_id,
                ))
                continue
            for position, unit in enumerate(op.units):
                if op.is_write:
                    kind = OpKind.WRITE_BLOCK
                    value = (
                        op.payload if op.kind == "write-block"
                        else op.payload[position]
                    )
                else:
                    kind = OpKind.READ_BLOCK
                    if op.status != "ok":
                        value = None
                    elif op.kind == "read-block":
                        value = op.value
                    else:
                        value = op.value[position]
                records.append(OpRecord(
                    op_id=next(ids), kind=kind, block_index=unit,
                    value=value, t_inv=op.submitted_at,
                    t_resp=op.finished_at, status=status,
                    coordinator=op.coordinator,
                    register_id=op.register_id,
                ))
        return records

    # -- internals -----------------------------------------------------------

    def _check_block(self, data: Block) -> None:
        if len(data) != self.volume.block_size:
            raise ConfigurationError(
                f"data must be exactly {self.volume.block_size} bytes, "
                f"got {len(data)}"
            )

    def _stripe_groups(self, blocks, payloads):
        """Group logical blocks by the stripe register they land in.

        Returns ``[(register_id, [(block, unit, data), ...]), ...]`` in
        first-touch order; ``data`` is None when ``payloads`` is None.
        """
        groups: Dict[int, List[Tuple[int, int, Optional[Block]]]] = {}
        order: List[int] = []
        for offset, block in enumerate(blocks):
            register_id, unit = self.volume.locate(block)
            data = payloads[offset] if payloads is not None else None
            if register_id not in groups:
                groups[register_id] = []
                order.append(register_id)
            groups[register_id].append((block, unit, data))
        return [(register_id, groups[register_id]) for register_id in order]

    def _enqueue(self, kind, register_id, blocks, units, payload) -> SessionOp:
        op = SessionOp(
            kind, register_id, blocks, units, payload,
            event=self.transport.event(), submitted_at=self.transport.now(),
        )
        self.ops.append(op)
        self._queue.append(op)
        self.stats.ops_submitted += 1
        if self._pump is None or self._pump.triggered:
            self._pump = self.transport.spawn(self._pump_loop())
        return op

    def _next_dispatchable(self) -> Optional[SessionOp]:
        """Pop the first queued op whose register has nothing in flight.

        The session never races its own operations on one stripe:
        dispatch is out-of-order across registers but in submission
        order per register, so a pipeline full of writes to the same
        block does not abort-storm itself — conflicts are left to
        genuinely concurrent clients.
        """
        for index, op in enumerate(self._queue):
            if op.register_id not in self._busy_registers:
                del self._queue[index]
                return op
        return None

    def _pump_loop(self):
        """Keep up to ``max_inflight`` operations running until drained."""
        while self._queue or self._inflight:
            while self._queue and len(self._inflight) < self.max_inflight:
                op = self._next_dispatchable()
                if op is None:
                    break
                self._busy_registers.add(op.register_id)
                self._inflight[self.transport.spawn(self._run_op(op))] = op
            self.stats.note_inflight(len(self._inflight))
            yield self.transport.any_of(list(self._inflight))
            for process in [p for p in self._inflight if p.triggered]:
                self._busy_registers.discard(self._inflight[process].register_id)
                del self._inflight[process]
        return None

    def _pick_coordinator(
        self, op: SessionOp, avoid: Optional[ProcessId] = None
    ) -> Optional[ProcessId]:
        """Choose the coordinating brick for the next attempt.

        Health-aware: prefers the pinned coordinator while it is alive,
        transport-reachable, and not the brick just failed away from;
        otherwise rotates round-robin over live bricks, preferring
        ``"up"`` peers over ``"suspect"`` ones and avoiding ``"down"``
        peers while any alternative exists.  With at most ``f`` bricks
        unreachable this always finds a quorum-capable route, so a
        killed TCP listener degrades throughput rather than stalling
        the session.  When *every* live brick is transport-down, one is
        returned anyway — the caller charges it against the policy's
        ``transport_attempts`` budget and backs off, which is what
        bounds the wait for the reconnect prober.  Returns ``None``
        only when no brick is up at all.
        """
        live = self.cluster.live_processes()
        if not live:
            return None
        state = self.transport.peer_state
        pinned = self.route.coordinator
        if (
            pinned is not None and pinned in live and pinned != avoid
            and state(pinned) != "down"
        ):
            return pinned
        if avoid in live and len(live) > 1:
            live = [pid for pid in live if pid != avoid]
        for wanted in (("up",), ("up", "suspect")):
            candidates = [pid for pid in live if state(pid) in wanted]
            if candidates:
                break
        else:
            candidates = live  # all transport-down: caller's budget decides
        pid = candidates[self._rr % len(candidates)]
        self._rr += 1
        return pid

    def _spawn_attempt(self, op: SessionOp, pid: ProcessId) -> Process:
        register = self.cluster.register(op.register_id, pid)
        if op.kind == "read-block":
            return register.read_block_async(op.units[0])
        if op.kind == "read-blocks":
            return register.read_blocks_async(list(op.units))
        if op.kind == "write-block":
            return register.write_block_async(op.units[0], op.payload)
        if op.kind == "write-blocks":
            return register.write_blocks_async(
                dict(zip(op.units, op.payload))
            )
        if op.kind == "write-stripe":
            return register.write_stripe_async(list(op.payload))
        raise ConfigurationError(f"unknown session op kind {op.kind!r}")

    def _run_op(self, op: SessionOp):
        """Drive one operation to completion: retry, back off, fail over."""
        policy = self.retry
        start = self.transport.now()
        delay = policy.backoff
        avoid: Optional[ProcessId] = None
        transport_used = 0
        try:
            while True:
                if self._past_deadline(start):
                    self._finalize_timeout(op)
                    return
                pid = self._pick_coordinator(op, avoid=avoid)
                avoid = None
                if pid is None:
                    # Every brick is down: wait for the failure injector
                    # (or the caller) to recover one, bounded by the
                    # deadline if the policy set one.
                    yield self.transport.timer(max(policy.backoff, 1.0))
                    continue
                if self.transport.peer_state(pid) == "down":
                    # The best available coordinator is transport-
                    # unreachable (every live brick is).  Charge the
                    # transport budget — separate from the abort budget,
                    # so a flapping link cannot starve protocol retries
                    # — back off, and let the reconnect prober work.
                    transport_used += 1
                    self.stats.transport_retries += 1
                    if transport_used >= policy.transport_attempts:
                        op.status = "timeout"
                        op.value = ABORT
                        op.error = StorageError(
                            f"{op.kind}@r{op.register_id}: no transport-"
                            f"reachable coordinator after {transport_used} "
                            "routing attempts"
                        )
                        self.stats.timeouts += 1
                        self._finish(op)
                        return
                    avoid = pid
                    yield self.transport.timer(max(policy.backoff, 1.0))
                    continue
                op.attempts += 1
                op.coordinator = pid
                attempt = self._spawn_attempt(op, pid)
                try:
                    if policy.attempt_timeout is not None:
                        timer = self.transport.timer(policy.attempt_timeout)
                        event, _value = yield self.transport.any_of([attempt, timer])
                        if event is timer and not attempt.triggered:
                            # Abandon the slow attempt (it stays
                            # harmless: linearizability makes a same-
                            # value rewrite safe) and fail over.
                            if not self._note_failover(op):
                                return
                            avoid = pid
                            continue
                        result = attempt.value
                    else:
                        result = yield attempt
                except Interrupt:
                    # Coordinator crashed mid-operation.
                    if not self._note_failover(op):
                        return
                    avoid = pid
                    continue
                except CorruptionDetected:
                    # The coordinator tripped over a quarantined local
                    # register.  Retryable in exactly the abort sense:
                    # a different coordinator — or a scrub repair in
                    # the meantime — can complete the operation.
                    if op.attempts >= policy.attempts:
                        op.status = "aborted"
                        op.value = ABORT
                        self.stats.aborts_exhausted += 1
                        self._finish(op)
                        return
                    op.retries += 1
                    self.stats.retries += 1
                    avoid = pid
                    wait = delay * (1.0 + policy.jitter * self._rng.random())
                    delay *= policy.backoff_growth
                    yield self.transport.timer(wait)
                    continue
                if result is not ABORT:
                    self._finalize_ok(op, result)
                    return
                # ⊥: safe to retry with a fresh timestamp (Section 4).
                if op.attempts >= policy.attempts:
                    op.status = "aborted"
                    op.value = ABORT
                    self.stats.aborts_exhausted += 1
                    self._finish(op)
                    return
                op.retries += 1
                self.stats.retries += 1
                wait = delay * (1.0 + policy.jitter * self._rng.random())
                delay *= policy.backoff_growth
                yield self.transport.timer(wait)
        except TerminalTransportError as error:
            # The substrate itself is gone (pump died / transport
            # stopped): no retry can succeed, so finalize immediately
            # instead of burning the backoff schedule.
            op.status = "failed"
            op.error = error
            self.stats.ops_failed += 1
            self._finish(op, completed=False)
        except Exception as error:  # defensive: never kill the pump
            op.status = "failed"
            op.error = error
            self.stats.ops_failed += 1
            self._finish(op, completed=False)

    def _past_deadline(self, start: float) -> bool:
        deadline = self.retry.deadline
        return deadline is not None and self.transport.now() - start >= deadline

    def _note_failover(self, op: SessionOp) -> bool:
        """Count a failover; finalize the op if the route/policy forbids it."""
        op.failovers += 1
        self.stats.failovers += 1
        if not self.route.failover:
            op.status = "crashed"
            op.error = StorageError(
                f"coordinator p{op.coordinator} crashed mid-{op.kind} "
                "and failover is disabled"
            )
            self.stats.ops_failed += 1
            self._finish(op, completed=False)
            return False
        if op.failovers > self.retry.max_failovers:
            op.status = "crashed"
            op.error = StorageError(
                f"{op.kind} failed over {op.failovers} times without "
                "completing"
            )
            self.stats.ops_failed += 1
            self._finish(op, completed=False)
            return False
        return True

    def _finalize_timeout(self, op: SessionOp) -> None:
        op.status = "timeout"
        op.value = ABORT
        self.stats.timeouts += 1
        self._finish(op)

    def _finalize_ok(self, op: SessionOp, result) -> None:
        op.status = "ok"
        if op.is_write:
            op.value = result  # "OK"
        elif op.kind == "read-block":
            op.value = self._materialize(result)
        else:  # read-blocks: order per-unit replies by submission order
            op.value = [
                self._materialize(result[unit]) for unit in op.units
            ]
        self._finish(op)

    def _materialize(self, block) -> Block:
        """nil blocks read as zeros — standard disk semantics."""
        if block is None:
            return bytes(self.volume.block_size)
        return bytes(block)

    def _finish(self, op: SessionOp, completed: bool = True) -> None:
        op.finished_at = self.transport.now()
        if completed:
            self.stats.ops_completed += 1
        op.event.succeed(op)

    def __repr__(self) -> str:
        return (
            f"VolumeSession(max_inflight={self.max_inflight}, "
            f"submitted={self.stats.ops_submitted}, "
            f"inflight={len(self._inflight)}, queued={len(self._queue)})"
        )
