"""Replica message handlers (paper Algorithm 2 + the Modify handler).

A :class:`Replica` runs on a :class:`~repro.sim.node.Node` and manages
the per-register persistent state (``ord-ts`` and the log) for every
register whose stripe places a block on this brick.  Handlers are
synchronous — Algorithm 2's handlers never block — and reply directly
over the network.

Persistence follows the paper's ``store(var)`` discipline: every
mutation of ``ord-ts`` or the log is pushed to the node's stable store
before the reply is sent; on recovery the replica reloads exactly those
values, so a crash between mutation and reply is equivalent to the
reply being lost in the network.

Retransmission handling: the coordinator's quorum primitive resends
requests until enough replies arrive (fair-loss channels).  A replica
keeps a small volatile cache of its last reply per ``(coordinator,
request_id)`` and resends it verbatim on duplicates, giving at-most-once
execution per request without changing the paper's handler logic.  The
cache is volatile: losing it on a crash can only cause a request to be
re-executed and refused (``status = false``), which at worst aborts the
operation — never a safety violation.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..errors import ConfigurationError, CorruptionDetected
from ..erasure.interface import ErasureCode
from ..sim.freeze import estimate_size
from ..sim.node import Node
from ..timestamps import LOW_TS, Timestamp
from ..types import ProcessId
from .log import (
    BOTTOM,
    ReplicaLog,
    append_record,
    replay_journal,
    snapshot_record,
    trim_record,
)
from .messages import (
    ALL,
    GcReq,
    ModifyReply,
    ModifyReq,
    OrderReadReply,
    OrderReadReq,
    OrderReply,
    OrderReq,
    ReadReply,
    ReadReq,
    WriteReply,
    WriteReq,
)

__all__ = ["Replica", "RegisterState"]

#: Bound on the per-coordinator duplicate-reply cache.
_REPLY_CACHE_LIMIT = 64

#: Compact a register's journal once it holds more than
#: ``max(_JOURNAL_MIN, _JOURNAL_FACTOR * len(log))`` records **or**
#: its persisted bytes exceed ``max(_JOURNAL_MIN_BYTES,
#: _JOURNAL_FACTOR * live-state bytes)``.  The record-count bound keeps
#: recovery replay O(log); the byte bound keeps the stable-storage
#: footprint O(live data) — delta records carry full payload blocks, so
#: a count-only policy let each register retain up to ``_JOURNAL_MIN``
#: stale blocks that GC had already dropped from the live log.
_JOURNAL_MIN = 32
_JOURNAL_FACTOR = 4
_JOURNAL_MIN_BYTES = 1024


class RegisterState:
    """Persistent per-register state on one replica: ``ord-ts`` + log."""

    def __init__(self, log: Optional[ReplicaLog] = None,
                 ord_ts: Timestamp = LOW_TS) -> None:
        self.log = log or ReplicaLog()
        self.ord_ts = ord_ts


class Replica:
    """The brick-side protocol endpoint for process ``p_i``.

    Args:
        node: the hosting simulation node.
        code: the stripe's erasure code (needed by the Modify handler to
            run ``modify_{j,i}`` locally).
        process_index: this process's 1-based index ``i`` — which block
            of each stripe it stores.
        disk_read_latency / disk_write_latency: simulated time per
            block read/write from the log.  The default (0) matches the
            paper's cost model, which counts disk operations but keeps
            latency in δ units; non-zero values let the latency
            benchmarks study disk-bound regimes (replies are delayed by
            the request's accumulated disk time).
        persistence: ``"journal"`` (default) persists O(1) delta
            records per log mutation and replays them on recovery, with
            compaction once the journal outgrows the live log;
            ``"full"`` re-stores the whole serialized log per mutation
            (the seed behaviour, kept as the benchmark baseline).  Both
            paths yield bit-for-bit identical recovered state.
    """

    def __init__(self, node: Node, code: ErasureCode, process_index: int,
                 disk_read_latency: float = 0.0,
                 disk_write_latency: float = 0.0,
                 persistence: str = "journal") -> None:
        if persistence not in ("journal", "full"):
            raise ConfigurationError(
                f"unknown persistence mode {persistence!r}; "
                "want 'journal' or 'full'"
            )
        self.node = node
        self.code = code
        self.i = process_index
        self.disk_read_latency = disk_read_latency
        self.disk_write_latency = disk_write_latency
        self.persistence = persistence
        self._busy = 0.0
        self._registers: Dict[int, RegisterState] = {}
        #: Registers whose persistent log failed its checksum on load.
        #: A quarantined register answers protocol requests with
        #: ``corrupt=True`` (its fragment is an erasure) until a repair
        #: write rebuilds it.  ``ord-ts`` lives in NVRAM and survives.
        self.quarantined: Set[int] = set()
        self._reply_cache: Dict[Tuple[ProcessId, int], object] = {}
        node.register_handler(ReadReq, self._on_read)
        node.register_handler(OrderReq, self._on_order)
        node.register_handler(OrderReadReq, self._on_order_read)
        node.register_handler(WriteReq, self._on_write)
        node.register_handler(ModifyReq, self._on_modify)
        node.register_handler(GcReq, self._on_gc)
        node.on_recovery(self._reload)

    # -- state access -------------------------------------------------------

    def state(self, register_id: int) -> RegisterState:
        """The (volatile mirror of) persistent state for one register.

        Raises :class:`CorruptionDetected` when the register's
        persistent log fails its checksum (and quarantines it).
        """
        if register_id in self.quarantined:
            raise CorruptionDetected(
                f"register {register_id} quarantined on replica {self.i}",
                key=self._journal_key(register_id),
                process_id=self.i,
            )
        found = self._registers.get(register_id)
        if found is None:
            try:
                found = self._load(register_id)
            except CorruptionDetected as err:
                self.quarantined.add(register_id)
                self.node.metrics.count_checksum_failure()
                err.process_id = self.i
                raise
            self._registers[register_id] = found
        return found

    def _handler_state(self, register_id: int) -> Optional[RegisterState]:
        """State for a message handler; None when quarantined (⊥)."""
        try:
            return self.state(register_id)
        except CorruptionDetected:
            return None

    def drop_mirror(self, register_id: int) -> None:
        """Forget the volatile mirror so the next access re-reads disk.

        Fault injectors call this after corrupting stable storage: the
        volatile mirror models a cache that would otherwise mask the
        damage indefinitely.
        """
        self._registers.pop(register_id, None)

    def has_register(self, register_id: int) -> bool:
        """Whether any state exists for the register on this replica.

        Unlike :meth:`state`, this never materializes a volatile mirror
        — important for the scrubber, which audits every replica for
        every register and must not fabricate empty ``RegisterState``
        entries on bricks that simply never held the fragment (e.g. a
        blank replacement brick).
        """
        if register_id in self._registers or register_id in self.quarantined:
            return True
        stable = self.node.stable
        return (
            self._log_key(register_id) in stable
            or self._journal_key(register_id) in stable
            or self._ord_key(register_id) in stable
        )

    def ord_ts_of(self, register_id: int) -> Timestamp:
        """The register's NVRAM ``ord-ts`` straight from stable storage.

        Available even for quarantined registers — ``ord-ts`` is never
        subject to log corruption.
        """
        return self.node.stable.load(self._ord_key(register_id), LOW_TS)

    def register_ids(self) -> list:
        """Ids of every register with state on this replica (sorted).

        Covers both the volatile mirror and registers whose state lives
        only in stable storage (e.g. after a crash dropped the mirror) —
        the public accessor tools like the garbage collector should use
        instead of reaching into ``_registers``.
        """
        seen = set(self._registers)
        for key in self.node.stable.keys():
            prefix, _, tail = key.partition(":")
            if prefix in ("log", "logj", "ordts") and tail.isdigit():
                seen.add(int(tail))
        return sorted(seen)

    def _log_key(self, register_id: int) -> str:
        return f"log:{register_id}"

    def _journal_key(self, register_id: int) -> str:
        return f"logj:{register_id}"

    def _ord_key(self, register_id: int) -> str:
        return f"ordts:{register_id}"

    def _load(self, register_id: int) -> RegisterState:
        stable = self.node.stable
        stored_ord = stable.load(self._ord_key(register_id), LOW_TS)
        log: Optional[ReplicaLog] = None
        if self.persistence == "journal":
            records = stable.load_journal(self._journal_key(register_id))
            if records:
                log = replay_journal(records)
        if log is None:
            stored_log = stable.load(self._log_key(register_id))
            log = (
                ReplicaLog.from_state(stored_log)
                if stored_log is not None
                else ReplicaLog()
            )
        return RegisterState(log=log, ord_ts=stored_ord)

    def _reload(self) -> None:
        """Recovery hook: drop volatile mirrors, reread stable storage."""
        self._registers.clear()
        self._reply_cache.clear()

    def _store_ord(self, register_id: int, state: RegisterState) -> None:
        # ord-ts lives in NVRAM per the paper's cost model: persisted,
        # but not counted as disk I/O.
        self.node.stable.store(self._ord_key(register_id), state.ord_ts)

    def _store_log(self, register_id: int, state: RegisterState) -> None:
        """Persist the full serialized log (the seed's only path)."""
        self.node.stable.store(self._log_key(register_id), state.log.to_state())

    def persist_append(self, register_id: int, state: RegisterState,
                       ts: Timestamp, block: object) -> None:
        """Persist one ``log.append(ts, block)`` that was just applied."""
        if self.persistence == "journal":
            self.node.stable.append(
                self._journal_key(register_id), append_record(ts, block)
            )
        else:
            self._store_log(register_id, state)

    def persist_trim(self, register_id: int, state: RegisterState,
                     ts: Timestamp) -> None:
        """Persist one ``log.trim_below(ts)`` that was just applied.

        On the journal path this is also the compaction hook: trims are
        when the journal outgrows the live log, so GC triggers a base
        snapshot that resets the journal to O(len(log)).
        """
        if self.persistence == "journal":
            key = self._journal_key(register_id)
            stable = self.node.stable
            stable.append(key, trim_record(ts))
            threshold = max(_JOURNAL_MIN, _JOURNAL_FACTOR * len(state.log))
            if (
                stable.journal_len(key) > threshold
                or self._journal_oversized(key, state)
            ):
                stable.reset_journal(key, (snapshot_record(state.log),))
        else:
            self._store_log(register_id, state)

    def _journal_oversized(self, key: str, state: RegisterState) -> bool:
        """True when the journal's bytes dwarf the live state it encodes.

        Appended delta records keep their full payload blocks even
        after GC has trimmed those entries from the live log, so record
        count alone does not bound the persisted footprint.  Measuring
        against a fresh snapshot's size (cheap: the live log is O(1)
        entries whenever trims are flowing) restores the GC guarantee
        that stable storage is O(live data).
        """
        journal_bytes = self.node.stable.size_of(key)
        if journal_bytes <= _JOURNAL_MIN_BYTES:
            return False
        live_bytes = estimate_size(snapshot_record(state.log))
        return journal_bytes > _JOURNAL_FACTOR * live_bytes

    # -- duplicate suppression -------------------------------------------------

    def _cached_reply(self, src: ProcessId, request_id: int):
        return self._reply_cache.get((src, request_id))

    def _remember_reply(self, src: ProcessId, request_id: int, reply) -> None:
        self._reply_cache[(src, request_id)] = reply
        if len(self._reply_cache) > _REPLY_CACHE_LIMIT * 4:
            # Drop the oldest half (dict preserves insertion order).
            for key in list(self._reply_cache)[: _REPLY_CACHE_LIMIT * 2]:
                del self._reply_cache[key]

    def _disk_read(self, blocks: int = 1) -> None:
        """Count a log block read and accrue its service time."""
        self.node.metrics.count_disk_read(blocks)
        self._busy += blocks * self.disk_read_latency

    def _disk_write(self, blocks: int = 1) -> None:
        """Count a log block write and accrue its service time."""
        self.node.metrics.count_disk_write(blocks)
        self._busy += blocks * self.disk_write_latency

    def _reply(self, src: ProcessId, request_id: int, reply) -> None:
        self._remember_reply(src, request_id, reply)
        delay, self._busy = self._busy, 0.0
        if delay > 0:
            self.node.transport.set_timer(
                delay, lambda: self.node.send(src, reply, size=reply.size)
            )
        else:
            self.node.send(src, reply, size=reply.size)

    def _resend_if_duplicate(self, src: ProcessId, request) -> bool:
        cached = self._cached_reply(src, request.request_id)
        if cached is None:
            return False
        self.node.send(src, cached, size=cached.size)
        return True

    # -- handlers (Algorithm 2) -------------------------------------------------

    def _on_read(self, src: ProcessId, req: ReadReq) -> None:
        """``[Read, targets]``: report val-ts; targets also return a block."""
        if self._resend_if_duplicate(src, req):
            return
        state = self._handler_state(req.register_id)
        if state is None:
            # Checksum-failed fragment: report ⊥ (an erasure), never data.
            self._reply(src, req.request_id, ReadReply(
                register_id=req.register_id,
                request_id=req.request_id,
                corrupt=True,
            ))
            return
        val_ts = state.log.max_ts()
        status = val_ts >= state.ord_ts
        block = None
        if status and self.i in req.targets:
            _ts, value = state.log.max_block()
            if isinstance(value, (bytes, bytearray)):
                self._disk_read()
                block = bytes(value)
            # A nil value (never-written register) costs no disk read
            # and is reported as a None block with status true.
        reply = ReadReply(
            register_id=req.register_id,
            request_id=req.request_id,
            status=status,
            val_ts=val_ts,
            block=block,
        )
        self._reply(src, req.request_id, reply)

    def _on_order(self, src: ProcessId, req: OrderReq) -> None:
        """``[Order, ts]``: reserve a place in the write order."""
        if self._resend_if_duplicate(src, req):
            return
        state = self._handler_state(req.register_id)
        if state is None:
            # Cannot certify ordering against a corrupt log (its max-ts
            # is unknown); refuse, flagged so the coordinator excludes
            # this replica from the quorum instead of aborting.
            self._reply(src, req.request_id, OrderReply(
                register_id=req.register_id,
                request_id=req.request_id,
                corrupt=True,
                max_seen=self.ord_ts_of(req.register_id),
            ))
            return
        status = req.ts > state.log.max_ts() and req.ts >= state.ord_ts
        if status:
            state.ord_ts = req.ts
            self._store_ord(req.register_id, state)
        reply = OrderReply(
            register_id=req.register_id,
            request_id=req.request_id,
            status=status,
            max_seen=max(state.ord_ts, state.log.max_ts()),
        )
        self._reply(src, req.request_id, reply)

    def _on_order_read(self, src: ProcessId, req: OrderReadReq) -> None:
        """``[Order&Read, j, max, ts]``: order ``ts``; return max-below block."""
        if self._resend_if_duplicate(src, req):
            return
        state = self._handler_state(req.register_id)
        if state is None:
            self._reply(src, req.request_id, OrderReadReply(
                register_id=req.register_id,
                request_id=req.request_id,
                corrupt=True,
            ))
            return
        status = req.ts > state.log.max_ts() and req.ts >= state.ord_ts
        lts: Timestamp = LOW_TS
        block = None
        if status:
            state.ord_ts = req.ts
            self._store_ord(req.register_id, state)
            if req.j == self.i or req.j == ALL:
                # The reported timestamp is the newest *version* this
                # replica reflects below the bound — ⊥ entries count,
                # because a ⊥ at time t certifies "my block is unchanged
                # at version t".  The block is the newest non-⊥ value.
                # Reporting the value's own (possibly older) timestamp
                # instead would make a committed fast block-write look
                # incomplete to any recovery quorum that misses p_j,
                # rolling back a committed operation.
                lts = state.log.max_ts_below(req.max_ts)
                _value_ts, value = state.log.max_below(req.max_ts)
                if isinstance(value, (bytes, bytearray)):
                    self._disk_read()
                    block = bytes(value)
        reply = OrderReadReply(
            register_id=req.register_id,
            request_id=req.request_id,
            status=status,
            lts=lts,
            block=block,
        )
        self._reply(src, req.request_id, reply)

    def _on_write(self, src: ProcessId, req: WriteReq) -> None:
        """``[Write, b_i, ts]``: append the new block to the log."""
        if self._resend_if_duplicate(src, req):
            return
        state = self._handler_state(req.register_id)
        if state is None:
            self._repair_write(src, req)
            return
        status = req.ts > state.log.max_ts() and req.ts >= state.ord_ts
        if status:
            state.log.append(req.ts, req.block)
            self.persist_append(req.register_id, state, req.ts, req.block)
            if req.block is not None:
                self._disk_write()
        reply = WriteReply(
            register_id=req.register_id,
            request_id=req.request_id,
            status=status,
            max_seen=max(state.ord_ts, state.log.max_ts()),
        )
        self._reply(src, req.request_id, reply)

    def _repair_write(self, src: ProcessId, req: WriteReq) -> None:
        """Accept a write to a quarantined register as its repair.

        The corrupt log cannot gate on ``max-ts``, but ``ord-ts``
        (NVRAM, uncorrupted) still orders the repair: any write at
        ``ts >= ord-ts`` carries a fragment at least as fresh as
        anything this replica could have certified, so replacing the
        whole log with it restores a consistent state.  Stale writes
        (``ts < ord-ts``) are refused as usual.  This is how both the
        recovery write-back of a degraded read and the scrub daemon's
        rebuild heal a brick in place.
        """
        ord_ts = self.ord_ts_of(req.register_id)
        status = req.ts >= ord_ts
        if status:
            log = ReplicaLog()
            log.append(req.ts, req.block)
            state = RegisterState(log=log, ord_ts=ord_ts)
            if self.persistence == "journal":
                self.node.stable.reset_journal(
                    self._journal_key(req.register_id),
                    (snapshot_record(log),),
                )
            else:
                self._store_log(req.register_id, state)
            if req.block is not None:
                self._disk_write()
            self._registers[req.register_id] = state
            self.quarantined.discard(req.register_id)
        reply = WriteReply(
            register_id=req.register_id,
            request_id=req.request_id,
            status=status,
            max_seen=max(ord_ts, req.ts) if status else ord_ts,
        )
        self._reply(src, req.request_id, reply)

    def _on_modify(self, src: ProcessId, req: ModifyReq) -> None:
        """``[Modify, j, b_j, b, ts_j, ts]``: block-write fast path.

        Accepts only if this replica's newest log timestamp is exactly
        ``ts_j`` (the version the coordinator read), guaranteeing the
        parity delta applies to the same base version everywhere.
        """
        if self._resend_if_duplicate(src, req):
            return
        state = self._handler_state(req.register_id)
        if state is None:
            # The incremental path needs a trusted base version; a
            # quarantined register has none.  Refuse — the coordinator's
            # slow path recovers and repairs via the Write handler.
            self._reply(src, req.request_id, ModifyReply(
                register_id=req.register_id,
                request_id=req.request_id,
                status=False,
            ))
            return
        status = req.ts_j == state.log.max_ts() and req.ts >= state.ord_ts
        if status:
            if self.i == req.j:
                block: object = req.new_block
            elif self.i > self.code.m:
                _ts, current = state.log.max_block()
                if isinstance(current, (bytes, bytearray)):
                    self._disk_read()
                    if req.delta is not None:
                        block = self.code.apply_delta(  # type: ignore[attr-defined]
                            req.j, self.i, req.delta, bytes(current)
                        )
                    else:
                        block = self.code.modify(
                            req.j, self.i, req.old_block, req.new_block,
                            bytes(current),
                        )
                else:
                    # No parity value yet (register never written): the
                    # fast path cannot produce a consistent parity block.
                    status = False
                    block = BOTTOM
            else:
                block = BOTTOM
        if status:
            state.log.append(req.ts, block)
            self.persist_append(req.register_id, state, req.ts, block)
            if isinstance(block, (bytes, bytearray)):
                self._disk_write()
        reply = ModifyReply(
            register_id=req.register_id, request_id=req.request_id, status=status
        )
        self._reply(src, req.request_id, reply)

    def _on_gc(self, src: ProcessId, req: GcReq) -> None:
        """Garbage-collection notice: trim log entries below ``ts``."""
        state = self._handler_state(req.register_id)
        if state is None:
            return  # never compact a quarantined register
        removed = state.log.trim_below(req.ts)
        if removed:
            self.persist_trim(req.register_id, state, req.ts)
