"""Protocol message formats (Algorithms 1-3).

Five request types flow coordinator → replica, each with a matching
reply:

====================  =============================================
Request               Paper form
====================  =============================================
:class:`ReadReq`      ``[Read, targets]``
:class:`OrderReq`     ``[Order, ts]``
:class:`OrderReadReq` ``[Order&Read, j, max, ts]`` (``j`` may be ALL)
:class:`WriteReq`     ``[Write, [b1..bn], ts]`` — we ship only the
                      destination's own block, the paper's stated
                      bandwidth optimization (Section 5.2 / Table 1
                      accounting of ``nB``)
:class:`ModifyReq`    ``[Modify, j, b_j, b, ts_j, ts]``
====================  =============================================

Every request carries ``register_id`` (which stripe) and ``request_id``
(for at-most-once retransmission handling); replies echo the
``request_id`` so the coordinator can match them.  ``size`` on each
class reports payload bytes for Table 1 bandwidth accounting: only
block-sized fields count, control fields are negligible next to ``B``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..timestamps import Timestamp
from ..types import Block

__all__ = [
    "ALL",
    "ReadReq",
    "ReadReply",
    "OrderReq",
    "OrderReply",
    "OrderReadReq",
    "OrderReadReply",
    "WriteReq",
    "WriteReply",
    "ModifyReq",
    "ModifyReply",
    "GcReq",
    "Request",
    "Reply",
]

#: Sentinel for ``j = ALL`` in Order&Read (read every process's block).
ALL = -1


@dataclass(frozen=True)
class _Base:
    register_id: int
    request_id: int

    @property
    def size(self) -> int:
        """Payload bytes for bandwidth accounting (blocks only)."""
        return 0


@dataclass(frozen=True)
class ReadReq(_Base):
    """``[Read, targets]`` — optimistic read; ``targets`` reply with blocks."""

    targets: frozenset = frozenset()


@dataclass(frozen=True)
class ReadReply(_Base):
    """``[Read-R, status, val-ts, b]``.

    ``corrupt=True`` flags a replica whose fragment failed its stored
    checksum: the coordinator must treat this reply's block as ⊥ (an
    erasure) — it carries no usable data and no valid timestamp.
    """

    status: bool = False
    val_ts: Optional[Timestamp] = None
    block: Optional[Block] = None
    corrupt: bool = False

    @property
    def size(self) -> int:
        return len(self.block) if self.block is not None else 0


@dataclass(frozen=True)
class OrderReq(_Base):
    """``[Order, ts]`` — phase one of a write: reserve the timestamp."""

    ts: Timestamp = None  # type: ignore[assignment]


@dataclass(frozen=True)
class OrderReply(_Base):
    """``[Order-R, status]``.

    ``max_seen`` reports the replica's highest known timestamp
    (max of ``ord-ts`` and ``max-ts(log)``).  The paper's reply carries
    only the status; exposing the timestamp lets a rejected coordinator
    advance its clock immediately instead of relying on repeated blind
    retries for the PROGRESS property — an abort-rate optimization with
    no safety impact (timestamps only gate ordering).

    ``corrupt=True`` flags a quarantined register: the replica cannot
    certify ordering against a corrupt log, and the coordinator must
    exclude it from the quorum rather than abort on its refusal.
    """

    status: bool = False
    max_seen: Optional[Timestamp] = None
    corrupt: bool = False


@dataclass(frozen=True)
class OrderReadReq(_Base):
    """``[Order&Read, j, max, ts]`` — order ``ts`` and read back a block.

    ``j`` is a 1-based process id or :data:`ALL`; ``max_ts`` bounds the
    timestamp of the block returned (``max-below(log, max)``).
    """

    j: int = ALL
    max_ts: Timestamp = None  # type: ignore[assignment]
    ts: Timestamp = None  # type: ignore[assignment]


@dataclass(frozen=True)
class OrderReadReply(_Base):
    """``[Order&Read-R, status, lts, b]``.

    ``corrupt=True`` marks a checksum-failed fragment; the recovery
    read treats it as an erasure (see :class:`ReadReply`).
    """

    status: bool = False
    lts: Optional[Timestamp] = None
    block: Optional[Block] = None
    corrupt: bool = False

    @property
    def size(self) -> int:
        return len(self.block) if self.block is not None else 0


@dataclass(frozen=True)
class WriteReq(_Base):
    """``[Write, ..., ts]`` carrying only the destination's block."""

    block: Optional[Block] = None
    ts: Timestamp = None  # type: ignore[assignment]

    @property
    def size(self) -> int:
        return len(self.block) if self.block is not None else 0


@dataclass(frozen=True)
class WriteReply(_Base):
    """``[Write-R, status]`` (+ ``max_seen``, as in :class:`OrderReply`)."""

    status: bool = False
    max_seen: Optional[Timestamp] = None


@dataclass(frozen=True)
class ModifyReq(_Base):
    """``[Modify, j, b_j, b, ts_j, ts]`` — block-write fast path.

    Carries the old value ``old_block`` of block ``j`` and the new value
    ``new_block`` so parity processes can apply ``modify_{j,i}``.  When
    the cluster enables delta shipping (Section 5.2 optimization (b)),
    ``old_block`` is ``None`` and ``delta`` carries the coded delta.
    """

    j: int = 0
    old_block: Optional[Block] = None
    new_block: Optional[Block] = None
    delta: Optional[Block] = None
    ts_j: Timestamp = None  # type: ignore[assignment]
    ts: Timestamp = None  # type: ignore[assignment]

    @property
    def size(self) -> int:
        total = 0
        for blob in (self.old_block, self.new_block, self.delta):
            if blob is not None:
                total += len(blob)
        return total


@dataclass(frozen=True)
class ModifyReply(_Base):
    """``[Modify-R, status]``."""

    status: bool = False


@dataclass(frozen=True)
class GcReq(_Base):
    """Garbage-collection notice (Section 5.1): trim entries below ``ts``."""

    ts: Timestamp = None  # type: ignore[assignment]


#: Union helper tuples for handler registration.
Request = (ReadReq, OrderReq, OrderReadReq, WriteReq, ModifyReq, GcReq)
Reply = (ReadReply, OrderReply, OrderReadReply, WriteReply, ModifyReply)
