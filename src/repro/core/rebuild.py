"""Brick scrubbing and rebuild.

The reliability model (Figures 2-3) assumes a failed brick's data is
re-protected within hours by a *distributed rebuild*: every surviving
brick contributes, and the replacement (or the recovered brick itself)
is brought back to full redundancy.  The protocol makes this trivially
safe — a rebuild is just a recovery (``read-prev-stripe`` +
``store-stripe``) per register, pushed to *all* live bricks instead of
a bare quorum — but the paper never spells out the machinery.  This
module provides it:

* :class:`Scrubber` — read-only audit: for each register, collect every
  replica's newest version and classify bricks as current, stale, or
  empty.  Used by operators (and tests) to see where redundancy stands.
* :class:`Rebuilder` — repair: re-run recovery for chosen registers with
  a full-coverage write-back, so every live brick (in particular a
  freshly recovered or replaced one) ends up holding its block of the
  latest value.

Both run through the ordinary protocol messages, so they are safe under
concurrent client I/O: a rebuild is linearized like any other write
(and aborts, harmlessly, if it races a newer client write).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..errors import CorruptionDetected
from ..timestamps import Timestamp
from ..types import ABORT, ProcessId
from .cluster import FabCluster
from .routing import RouteOptions, resolve_route

__all__ = ["ScrubReport", "Scrubber", "RebuildReport", "Rebuilder"]


@dataclass
class ScrubReport:
    """Redundancy audit for one register.

    Attributes:
        register_id: the audited stripe.
        newest_ts: highest version timestamp seen on any replica.
        current: bricks whose log reflects ``newest_ts``.
        stale: bricks holding only older versions.
        down: bricks that could not be audited (crashed).
        corrupt: up bricks whose persistent state failed checksum
            verification (quarantined) — their fragment is lost until a
            repair write-back replaces it.
        empty: up bricks holding *no* state for the register at all —
            typically a blank replacement brick (hot spare promoted
            after a crash).  An empty brick contributes nothing to
            redundancy, so it counts against :attr:`fully_redundant`
            whenever some other brick does hold the register.
    """

    register_id: int
    newest_ts: Optional[Timestamp] = None
    current: List[ProcessId] = field(default_factory=list)
    stale: List[ProcessId] = field(default_factory=list)
    down: List[ProcessId] = field(default_factory=list)
    corrupt: List[ProcessId] = field(default_factory=list)
    empty: List[ProcessId] = field(default_factory=list)

    @property
    def fully_redundant(self) -> bool:
        """True iff every up brick reflects the newest version.

        An up-but-empty brick breaks full redundancy when the register
        exists elsewhere: it should be holding its block and is not
        (the bug this guards against — a freshly promoted spare passing
        the audit and silently skipping re-protection).
        """
        if self.stale or self.corrupt:
            return False
        return not (self.empty and self.newest_ts is not None)

    @property
    def redundancy(self) -> int:
        """Bricks holding the newest version — the margin before data loss."""
        return len(self.current)


class Scrubber:
    """Read-only redundancy audit over a cluster's replicas.

    The scrubber inspects replica state directly (an operator tool, not
    a protocol participant), so it costs no protocol messages and never
    perturbs timestamps.
    """

    def __init__(self, cluster: FabCluster) -> None:
        self.cluster = cluster

    def scrub_register(self, register_id: int) -> ScrubReport:
        """Audit one register across all bricks."""
        report = ScrubReport(register_id=register_id)
        versions: Dict[ProcessId, Timestamp] = {}
        for pid, replica in self.cluster.replicas.items():
            node = self.cluster.nodes[pid]
            if not node.is_up:
                report.down.append(pid)
                continue
            if not replica.has_register(register_id):
                # No state at all (blank replacement brick): distinct
                # from stale, and checked *without* materializing a
                # phantom RegisterState on the replica.
                report.empty.append(pid)
                continue
            try:
                versions[pid] = replica.state(register_id).log.max_ts()
            except CorruptionDetected:
                report.corrupt.append(pid)
        if not versions:
            return report
        report.newest_ts = max(versions.values())
        for pid, version in sorted(versions.items()):
            if version == report.newest_ts:
                report.current.append(pid)
            else:
                report.stale.append(pid)
        return report

    def scrub(self, register_ids: Iterable[int]) -> List[ScrubReport]:
        """Audit a set of registers."""
        return [self.scrub_register(register_id) for register_id in register_ids]

    def stale_registers(self, register_ids: Iterable[int]) -> List[int]:
        """Registers where at least one up brick is stale."""
        return [
            report.register_id
            for report in self.scrub(register_ids)
            if not report.fully_redundant
        ]


@dataclass
class RebuildReport:
    """Outcome of a rebuild pass."""

    attempted: int = 0
    repaired: int = 0
    already_current: int = 0
    aborted: int = 0

    @property
    def success(self) -> bool:
        return self.aborted == 0


class Rebuilder:
    """Repairs redundancy by recovery-with-full-coverage.

    Args:
        cluster: the cluster to repair.
        route: where to coordinate rebuild operations —
            ``RouteOptions(coordinator=pid)`` or a bare pid; the brick
            must be up (pick any survivor).  Defaults to brick 1.  The
            keyword ``coordinator_pid=`` is deprecated.
    """

    def __init__(
        self,
        cluster: FabCluster,
        route=None,
        *,
        coordinator_pid: Optional[ProcessId] = None,
    ) -> None:
        self.cluster = cluster
        resolved = resolve_route(
            route, coordinator_pid, default=RouteOptions(coordinator=1)
        )
        self.route = resolved
        self.coordinator_pid = (
            resolved.coordinator if resolved.coordinator is not None else 1
        )
        self.scrubber = Scrubber(cluster)

    def rebuild_register(self, register_id: int) -> str:
        """Bring every up brick to the newest version of one register.

        Runs the coordinator's recovery (which re-reads the latest
        recoverable version and writes it back at a fresh timestamp)
        with the write-back required to reach *every live brick*, not
        just an m-quorum.  Returns ``"repaired"``, ``"current"`` (no
        work needed), or ``"aborted"`` (lost a race with a client
        write; safe to retry).
        """
        report = self.scrubber.scrub_register(register_id)
        if report.fully_redundant:
            return "current"
        coordinator = self.cluster.coordinators[self.coordinator_pid]
        process = self.cluster.nodes[self.coordinator_pid].spawn(
            self._recover_everywhere(coordinator, register_id, self.cluster)
        )
        result = self.cluster.transport.run_until_complete(process)
        return "aborted" if result is ABORT else "repaired"

    @staticmethod
    def _recover_everywhere(coordinator, register_id: int, cluster):
        """Recovery whose write-back reaches every live brick.

        Coverage is resolved *per reply*, not snapshotted up front: the
        write-back completes as soon as every currently-live brick has
        replied.  A brick crashing mid-rebuild shrinks the live set, so
        the preference predicate re-evaluates against the survivors —
        and even if the last reply never arrives, the quorum + grace
        fallback in the RPC layer terminates the phase.  (The old code
        froze ``len(live_processes())`` before spawning, so a
        mid-rebuild crash left the write-back waiting for a reply count
        that could never be reached.)
        """
        ts = coordinator._new_ts()
        stripe = yield from coordinator._read_prev_stripe(register_id, ts)
        if stripe is ABORT:
            return ABORT

        def covered(replies) -> bool:
            return set(cluster.live_processes()) <= set(replies)

        stored = yield from coordinator._store_stripe(
            register_id, stripe, ts, prefer=covered
        )
        return stored

    def rebuild(self, register_ids: Iterable[int],
                retries: int = 2) -> RebuildReport:
        """Rebuild a set of registers (e.g. everything a dead brick held).

        Races with client writes abort individual registers; those are
        retried up to ``retries`` times (the client write already
        re-protected the data at quorum, so a retry usually finds the
        register merely stale, not at risk).
        """
        report = RebuildReport()
        for register_id in register_ids:
            report.attempted += 1
            outcome = "aborted"
            for _attempt in range(retries + 1):
                outcome = self.rebuild_register(register_id)
                if outcome != "aborted":
                    break
            if outcome == "repaired":
                report.repaired += 1
            elif outcome == "current":
                report.already_current += 1
            else:
                report.aborted += 1
        return report

    def rebuild_brick(self, pid: ProcessId, register_ids: Iterable[int]):
        """Convenience: recover brick ``pid`` and repair its registers."""
        self.cluster.recover(pid)
        return self.rebuild(register_ids)
