"""The storage-register facade (paper Section 3).

A :class:`StorageRegister` binds a register id (one stripe) to a
coordinator and exposes the four operations both asynchronously (returning
simulation :class:`~repro.sim.kernel.Process` objects, for concurrent
histories) and synchronously (driving the event loop to completion, for
straight-line code and examples).

The synchronous helpers return exactly what the protocol returns:

* reads — the value, ``None`` for a never-written register (the paper's
  ``nil``), or :data:`~repro.types.ABORT`;
* writes — ``"OK"`` or :data:`~repro.types.ABORT`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..sim.kernel import Process
from ..types import Block
from .coordinator import Coordinator

__all__ = ["StorageRegister"]


class StorageRegister:
    """Read-write register over one erasure-coded stripe.

    Args:
        coordinator: the coordinator to issue operations through; use
            different coordinators (on different bricks) against the
            same ``register_id`` to exercise the fully decentralized
            multi-controller behaviour.
        register_id: which stripe this register instance addresses.
    """

    def __init__(self, coordinator: Coordinator, register_id: int) -> None:
        self.coordinator = coordinator
        self.register_id = register_id

    @property
    def env(self):
        return self.coordinator.node.env

    @property
    def transport(self):
        return self.coordinator.transport

    # -- asynchronous API (returns sim processes) ---------------------------

    def read_stripe_async(self) -> Process:
        """Start a ``read-stripe`` operation; returns its Process."""
        return self.coordinator.node.spawn(
            self.coordinator.read_stripe(self.register_id)
        )

    def write_stripe_async(self, stripe: Sequence[Block]) -> Process:
        """Start a ``write-stripe`` operation; returns its Process."""
        return self.coordinator.node.spawn(
            self.coordinator.write_stripe(self.register_id, stripe)
        )

    def read_block_async(self, j: int) -> Process:
        """Start a ``read-block(j)`` operation; returns its Process."""
        return self.coordinator.node.spawn(
            self.coordinator.read_block(self.register_id, j)
        )

    def write_block_async(self, j: int, block: Block) -> Process:
        """Start a ``write-block(j, b)`` operation; returns its Process."""
        return self.coordinator.node.spawn(
            self.coordinator.write_block(self.register_id, j, block)
        )

    def read_blocks_async(self, js) -> Process:
        """Start a multi-block read (footnote 2 extension)."""
        return self.coordinator.node.spawn(
            self.coordinator.read_blocks(self.register_id, js)
        )

    def write_blocks_async(self, updates) -> Process:
        """Start an atomic multi-block write (footnote 2 extension)."""
        return self.coordinator.node.spawn(
            self.coordinator.write_blocks(self.register_id, updates)
        )

    # -- synchronous API (drives the event loop) -----------------------------

    def read_stripe(self) -> Optional[List[Block]]:
        """Blocking ``read-stripe``; returns stripe, None (nil), or ABORT."""
        return self.transport.run_until_complete(self.read_stripe_async())

    def write_stripe(self, stripe: Sequence[Block]):
        """Blocking ``write-stripe``; returns "OK" or ABORT."""
        return self.transport.run_until_complete(self.write_stripe_async(stripe))

    def read_block(self, j: int):
        """Blocking ``read-block(j)``; returns block, None (nil), or ABORT."""
        return self.transport.run_until_complete(self.read_block_async(j))

    def write_block(self, j: int, block: Block):
        """Blocking ``write-block(j, b)``; returns "OK" or ABORT."""
        return self.transport.run_until_complete(self.write_block_async(j, block))

    def read_blocks(self, js):
        """Blocking multi-block read; returns ``{j: block}`` or ABORT."""
        return self.transport.run_until_complete(self.read_blocks_async(js))

    def write_blocks(self, updates):
        """Blocking atomic multi-block write; returns "OK" or ABORT."""
        return self.transport.run_until_complete(self.write_blocks_async(updates))

    def __repr__(self) -> str:
        return (
            f"StorageRegister(id={self.register_id}, "
            f"coordinator=p{self.coordinator.node.process_id})"
        )
