"""Logical volumes: a virtual disk over many storage registers.

FAB presents clients with logical volumes accessed like disks
(Section 1.1).  A :class:`LogicalVolume` maps a flat array of
fixed-size logical blocks onto stripes, runs one storage register per
stripe, and translates block reads/writes into the register's
stripe/block operations.

Layout follows the paper's anti-conflict advice (Section 3): "lay out
data so that consecutive blocks in a logical volume are mapped to
different stripes".  With ``stripe_shuffle=True`` (default) logical
block ``b`` maps to stripe ``b mod num_stripes``, unit ``b //
num_stripes`` — consecutive logical blocks land on consecutive stripes.
With it off, the mapping is the naive ``b // m`` grouping, which the
conflict ablation uses as its worst case.

Reads of never-written data return zeros, the standard disk semantics
(the register's ``nil`` materializes as a zero block here).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import ConfigurationError, StorageError
from ..sim.kernel import Interrupt
from ..types import ABORT, Block
from .cluster import FabCluster
from .register import StorageRegister

__all__ = ["LogicalVolume"]


class LogicalVolume:
    """A virtual disk of ``num_stripes * m`` logical blocks.

    Args:
        cluster: the FAB cluster storing the volume.
        num_stripes: stripes (registers) in the volume.
        base_register_id: register-id offset, letting several volumes
            share one cluster without colliding.
        coordinator_pid: default coordinator brick; per-call override
            supported on every operation.
        stripe_shuffle: map consecutive logical blocks to different
            stripes (reduces stripe-level conflicts).
    """

    def __init__(
        self,
        cluster: FabCluster,
        num_stripes: int,
        base_register_id: int = 0,
        coordinator_pid: int = 1,
        stripe_shuffle: bool = True,
    ) -> None:
        if num_stripes < 1:
            raise ConfigurationError(f"num_stripes must be >= 1, got {num_stripes}")
        self.cluster = cluster
        self.num_stripes = num_stripes
        self.base_register_id = base_register_id
        self.coordinator_pid = coordinator_pid
        self.stripe_shuffle = stripe_shuffle
        self.m = cluster.config.m
        self.block_size = cluster.config.block_size

    @property
    def num_blocks(self) -> int:
        """Total logical blocks in the volume."""
        return self.num_stripes * self.m

    @property
    def capacity_bytes(self) -> int:
        """Logical capacity in bytes."""
        return self.num_blocks * self.block_size

    # -- address translation ---------------------------------------------------

    def locate(self, logical_block: int) -> tuple:
        """Map a logical block to ``(register_id, unit_index)``.

        ``unit_index`` is the 1-based position within the stripe (the
        protocol's ``j``).
        """
        if not 0 <= logical_block < self.num_blocks:
            raise ConfigurationError(
                f"logical block {logical_block} out of range "
                f"0..{self.num_blocks - 1}"
            )
        if self.stripe_shuffle:
            stripe = logical_block % self.num_stripes
            unit = logical_block // self.num_stripes
        else:
            stripe = logical_block // self.m
            unit = logical_block % self.m
        return self.base_register_id + stripe, unit + 1

    def _register(self, register_id: int, coordinator_pid: Optional[int]) -> StorageRegister:
        pid = coordinator_pid if coordinator_pid is not None else self.coordinator_pid
        return self.cluster.register(register_id, pid)

    def _execute(self, register_id: int, coordinator_pid: Optional[int], run_op):
        """Run one register operation with coordinator failover.

        A client accessing a FAB volume is multipathed: if the brick
        coordinating its request dies mid-operation (surfacing here as
        an :class:`~repro.sim.kernel.Interrupt`), the client reissues
        the request through another brick.  Strict linearizability
        makes this retry safe: the dead coordinator's partial operation
        either took effect before the crash or never will.

        Args:
            run_op: callable ``(StorageRegister) -> result`` performing
                the blocking operation.
        """
        preferred = (
            coordinator_pid if coordinator_pid is not None
            else self.coordinator_pid
        )
        attempts = 0
        while attempts < self._MAX_FAILOVERS:
            attempts += 1
            live = self.cluster.live_processes()
            if not live:
                # Everyone is down; let the simulation advance so the
                # failure injector (or test) can recover bricks.
                self.cluster.env.run(until=self.cluster.env.now + 10.0)
                continue
            pid = preferred if preferred in live else live[0]
            register = self.cluster.register(register_id, pid)
            try:
                return run_op(register)
            except Interrupt:
                continue  # coordinator died mid-op: fail over
        raise StorageError(
            f"operation failed over {attempts} times without completing"
        )

    _MAX_FAILOVERS = 16

    # -- block I/O ------------------------------------------------------------

    def read(self, logical_block: int, coordinator_pid: Optional[int] = None):
        """Read one logical block; zeros if never written; ABORT on conflict.

        Fails over to another brick if the coordinator crashes mid-read.
        """
        register_id, unit = self.locate(logical_block)
        value = self._execute(
            register_id, coordinator_pid,
            lambda register: register.read_block(unit),
        )
        if value is ABORT:
            return ABORT
        if value is None:
            return bytes(self.block_size)
        return value

    def write(
        self, logical_block: int, data: Block, coordinator_pid: Optional[int] = None
    ):
        """Write one logical block; returns "OK" or ABORT.

        Fails over to another brick if the coordinator crashes mid-write.
        """
        if len(data) != self.block_size:
            raise ConfigurationError(
                f"data must be exactly {self.block_size} bytes, got {len(data)}"
            )
        register_id, unit = self.locate(logical_block)
        return self._execute(
            register_id, coordinator_pid,
            lambda register: register.write_block(unit, data),
        )

    # -- multi-block I/O ---------------------------------------------------------

    def read_range(
        self, start_block: int, count: int, coordinator_pid: Optional[int] = None
    ):
        """Read ``count`` consecutive logical blocks; ABORT aborts the batch."""
        blocks: List[Block] = []
        for offset in range(count):
            value = self.read(start_block + offset, coordinator_pid)
            if value is ABORT:
                return ABORT
            blocks.append(value)
        return blocks

    def write_range(
        self,
        start_block: int,
        data_blocks: Sequence[Block],
        coordinator_pid: Optional[int] = None,
    ):
        """Write consecutive logical blocks; stops and returns ABORT on conflict."""
        for offset, data in enumerate(data_blocks):
            result = self.write(start_block + offset, data, coordinator_pid)
            if result is ABORT:
                return ABORT
        return "OK"

    def write_stripe_aligned(
        self,
        stripe_index: int,
        stripe: Sequence[Block],
        coordinator_pid: Optional[int] = None,
    ):
        """Full-stripe write (the efficient path for large sequential I/O).

        Bypasses per-block read-modify-write: one ``write-stripe``
        updates ``m`` logical blocks at stripe cost (Table 1's stripe
        write: ``4δ``, ``4n`` messages) instead of ``m`` block writes.
        """
        if not 0 <= stripe_index < self.num_stripes:
            raise ConfigurationError(
                f"stripe {stripe_index} out of range 0..{self.num_stripes - 1}"
            )
        if len(stripe) != self.m:
            raise ConfigurationError(
                f"stripe must have m={self.m} blocks, got {len(stripe)}"
            )
        return self._execute(
            self.base_register_id + stripe_index,
            coordinator_pid,
            lambda register: register.write_stripe(list(stripe)),
        )

    def __repr__(self) -> str:
        return (
            f"LogicalVolume({self.num_blocks} blocks x {self.block_size}B = "
            f"{self.capacity_bytes} bytes over {self.num_stripes} stripes)"
        )
