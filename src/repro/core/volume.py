"""Logical volumes: a virtual disk over many storage registers.

FAB presents clients with logical volumes accessed like disks
(Section 1.1).  A :class:`LogicalVolume` maps a flat array of
fixed-size logical blocks onto stripes, runs one storage register per
stripe, and translates block reads/writes into the register's
stripe/block operations.

Layout follows the paper's anti-conflict advice (Section 3): "lay out
data so that consecutive blocks in a logical volume are mapped to
different stripes".  With ``stripe_shuffle=True`` (default) logical
block ``b`` maps to stripe ``b mod num_stripes``, unit ``b //
num_stripes`` — consecutive logical blocks land on consecutive stripes.
With it off, the mapping is the naive ``b // m`` grouping, which the
conflict ablation uses as its worst case.

Reads of never-written data return zeros, the standard disk semantics
(the register's ``nil`` materializes as a zero block here).

Coordinator selection takes a :class:`~repro.core.routing.RouteOptions`
via ``route=`` on every operation (the legacy ``coordinator_pid=``
keywords still work, with a :class:`DeprecationWarning`).  For
pipelined access, :meth:`LogicalVolume.session` opens a
:class:`~repro.core.session.VolumeSession` that keeps many operations
in flight with retry and failover built in.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from ..errors import ConfigurationError, StorageError
from ..sim.kernel import Interrupt
from ..types import ABORT, Block, ProcessId
from .cluster import FabCluster
from .routing import RouteOptions, resolve_route

__all__ = ["LogicalVolume"]

#: Either form an operation's ``route=`` accepts.
RouteLike = Union[RouteOptions, ProcessId, None]


class LogicalVolume:
    """A virtual disk of ``num_stripes * m`` logical blocks.

    Args:
        cluster: the FAB cluster storing the volume.
        num_stripes: stripes (registers) in the volume.
        base_register_id: register-id offset, letting several volumes
            share one cluster without colliding.
        coordinator_pid: default coordinator brick; per-call override
            supported on every operation via ``route=``.
        stripe_shuffle: map consecutive logical blocks to different
            stripes (reduces stripe-level conflicts).
        route: default :class:`RouteOptions` for operations that do not
            pass their own; supersedes ``coordinator_pid`` when given.
    """

    def __init__(
        self,
        cluster: FabCluster,
        num_stripes: int,
        base_register_id: int = 0,
        coordinator_pid: int = 1,
        stripe_shuffle: bool = True,
        route: Optional[RouteOptions] = None,
    ) -> None:
        if num_stripes < 1:
            raise ConfigurationError(f"num_stripes must be >= 1, got {num_stripes}")
        self.cluster = cluster
        self.num_stripes = num_stripes
        self.base_register_id = base_register_id
        if route is None:
            route = RouteOptions(coordinator=coordinator_pid)
        elif route.coordinator is None:
            route = RouteOptions(
                coordinator=coordinator_pid, failover=route.failover
            )
        self.route = route
        self.coordinator_pid = route.coordinator
        self.stripe_shuffle = stripe_shuffle
        self.m = cluster.config.m
        self.block_size = cluster.config.block_size

    @property
    def num_blocks(self) -> int:
        """Total logical blocks in the volume."""
        return self.num_stripes * self.m

    @property
    def capacity_bytes(self) -> int:
        """Logical capacity in bytes."""
        return self.num_blocks * self.block_size

    # -- pipelined access ------------------------------------------------------

    def session(self, max_inflight: int = 8, **kwargs):
        """Open a pipelined :class:`~repro.core.session.VolumeSession`.

        Keyword arguments (``retry=``, ``route=``, ``seed=``) are
        forwarded to the session constructor.
        """
        from .session import VolumeSession

        return VolumeSession(self, max_inflight=max_inflight, **kwargs)

    # -- address translation ---------------------------------------------------

    def locate(self, logical_block: int) -> tuple:
        """Map a logical block to ``(register_id, unit_index)``.

        ``unit_index`` is the 1-based position within the stripe (the
        protocol's ``j``).
        """
        if not 0 <= logical_block < self.num_blocks:
            raise ConfigurationError(
                f"logical block {logical_block} out of range "
                f"0..{self.num_blocks - 1}"
            )
        if self.stripe_shuffle:
            stripe = logical_block % self.num_stripes
            unit = logical_block // self.num_stripes
        else:
            stripe = logical_block // self.m
            unit = logical_block % self.m
        return self.base_register_id + stripe, unit + 1

    def _route(
        self, route: RouteLike, coordinator_pid: Optional[int]
    ) -> RouteOptions:
        return resolve_route(
            route, coordinator_pid, default=self.route, stacklevel=4
        )

    def _execute(self, register_id: int, route: RouteOptions, run_op):
        """Run one register operation under ``route``'s failover rules.

        A client accessing a FAB volume is multipathed: if the brick
        coordinating its request dies mid-operation (surfacing here as
        an :class:`~repro.sim.kernel.Interrupt`), the client reissues
        the request through another brick.  Strict linearizability
        makes this retry safe: the dead coordinator's partial operation
        either took effect before the crash or never will.

        With ``route.failover`` disabled the crash is surfaced as a
        :class:`~repro.errors.StorageError` instead.

        Args:
            run_op: callable ``(StorageRegister) -> result`` performing
                the blocking operation.
        """
        preferred = (
            route.coordinator if route.coordinator is not None
            else self.coordinator_pid
        )
        if not route.failover:
            register = self.cluster.register(register_id, preferred)
            try:
                return run_op(register)
            except Interrupt as interrupt:
                raise StorageError(
                    f"coordinator p{preferred} crashed mid-operation and "
                    "failover is disabled"
                ) from interrupt
        attempts = 0
        while attempts < self._MAX_FAILOVERS:
            attempts += 1
            live = self.cluster.live_processes()
            if not live:
                # Everyone is down; let the simulation advance so the
                # failure injector (or test) can recover bricks.
                self.cluster.transport.run(
                    until=self.cluster.transport.now() + 10.0
                )
                continue
            pid = preferred if preferred in live else live[0]
            register = self.cluster.register(register_id, pid)
            try:
                return run_op(register)
            except Interrupt:
                continue  # coordinator died mid-op: fail over
        raise StorageError(
            f"operation failed over {attempts} times without completing"
        )

    _MAX_FAILOVERS = 16

    # -- block I/O ------------------------------------------------------------

    def read(
        self,
        logical_block: int,
        route: RouteLike = None,
        *,
        coordinator_pid: Optional[int] = None,
    ):
        """Read one logical block; zeros if never written; ABORT on conflict.

        Fails over to another brick if the coordinator crashes mid-read
        (unless ``route.failover`` is off).
        """
        resolved = self._route(route, coordinator_pid)
        register_id, unit = self.locate(logical_block)
        value = self._execute(
            register_id, resolved,
            lambda register: register.read_block(unit),
        )
        if value is ABORT:
            return ABORT
        if value is None:
            return bytes(self.block_size)
        return value

    def write(
        self,
        logical_block: int,
        data: Block,
        route: RouteLike = None,
        *,
        coordinator_pid: Optional[int] = None,
    ):
        """Write one logical block; returns "OK" or ABORT.

        Fails over to another brick if the coordinator crashes mid-write
        (unless ``route.failover`` is off).
        """
        if len(data) != self.block_size:
            raise ConfigurationError(
                f"data must be exactly {self.block_size} bytes, got {len(data)}"
            )
        resolved = self._route(route, coordinator_pid)
        register_id, unit = self.locate(logical_block)
        return self._execute(
            register_id, resolved,
            lambda register: register.write_block(unit, data),
        )

    # -- multi-block I/O ---------------------------------------------------------

    def read_range(
        self,
        start_block: int,
        count: int,
        route: RouteLike = None,
        *,
        coordinator_pid: Optional[int] = None,
    ):
        """Read ``count`` consecutive logical blocks; ABORT aborts the batch."""
        resolved = self._route(route, coordinator_pid)
        blocks: List[Block] = []
        for offset in range(count):
            value = self.read(start_block + offset, resolved)
            if value is ABORT:
                return ABORT
            blocks.append(value)
        return blocks

    def write_range(
        self,
        start_block: int,
        data_blocks: Sequence[Block],
        route: RouteLike = None,
        *,
        coordinator_pid: Optional[int] = None,
    ):
        """Write consecutive logical blocks; stops and returns ABORT on conflict."""
        resolved = self._route(route, coordinator_pid)
        for offset, data in enumerate(data_blocks):
            result = self.write(start_block + offset, data, resolved)
            if result is ABORT:
                return ABORT
        return "OK"

    def write_stripe_aligned(
        self,
        stripe_index: int,
        stripe: Sequence[Block],
        route: RouteLike = None,
        *,
        coordinator_pid: Optional[int] = None,
    ):
        """Full-stripe write (the efficient path for large sequential I/O).

        Bypasses per-block read-modify-write: one ``write-stripe``
        updates ``m`` logical blocks at stripe cost (Table 1's stripe
        write: ``4δ``, ``4n`` messages) instead of ``m`` block writes.
        """
        if not 0 <= stripe_index < self.num_stripes:
            raise ConfigurationError(
                f"stripe {stripe_index} out of range 0..{self.num_stripes - 1}"
            )
        if len(stripe) != self.m:
            raise ConfigurationError(
                f"stripe must have m={self.m} blocks, got {len(stripe)}"
            )
        resolved = self._route(route, coordinator_pid)
        return self._execute(
            self.base_register_id + stripe_index,
            resolved,
            lambda register: register.write_stripe(list(stripe)),
        )

    def __repr__(self) -> str:
        return (
            f"LogicalVolume({self.num_blocks} blocks x {self.block_size}B = "
            f"{self.capacity_bytes} bytes over {self.num_stripes} stripes)"
        )
