"""Replica persistent state: the versioned log (paper Section 4.2).

Each replica stores, per register, a timestamp ``ord-ts`` and a log of
``[timestamp, block]`` pairs.  The log holds the history of updates the
replica has seen; ``⊥`` block entries record that a timestamp passed
through without the replica learning a block value (used by the Modify
handler for non-parity, non-target data processes).

Three query functions, exactly as defined in the paper:

* ``max_ts(log)`` — highest timestamp in the log;
* ``max_block(log)`` — the non-⊥ value with the highest timestamp;
* ``max_below(log, ts)`` — the non-⊥ value with the highest timestamp
  strictly smaller than ``ts``.

The initial log is ``{[LowTS, nil]}`` — note ``nil`` (no value ever
written) is distinct from ``⊥`` (no value recorded at this timestamp):
``max_block`` on a fresh log returns the ``nil`` entry, letting reads of
never-written registers succeed with ``nil``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ProtocolInvariantError
from ..timestamps import LOW_TS, Timestamp

__all__ = ["LogEntry", "ReplicaLog", "BOTTOM"]


class _BottomType:
    """Sentinel for ``⊥`` block entries (timestamp recorded, no value)."""

    _instance: Optional["_BottomType"] = None

    def __new__(cls) -> "_BottomType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __reduce__(self):
        return (_BottomType, ())


#: The ⊥ marker stored in timestamp-only log entries.
BOTTOM = _BottomType()


@dataclass(frozen=True)
class LogEntry:
    """One ``[timestamp, block]`` log pair.

    ``block`` is ``bytes``, ``None`` (the paper's ``nil`` initial
    value), or :data:`BOTTOM` (the paper's ``⊥`` timestamp-only entry).
    """

    ts: Timestamp
    block: object

    @property
    def has_value(self) -> bool:
        """True iff the entry records an actual value (incl. ``nil``)."""
        return self.block is not BOTTOM


class ReplicaLog:
    """The per-register log, kept sorted by timestamp.

    The log is an append-mostly structure; entries arrive in roughly
    timestamp order, so insertion uses ``bisect``.  All mutating methods
    return ``self`` is avoided — mutations are explicit, and the replica
    persists the log via its node's stable store after each change.
    """

    def __init__(self, entries: Optional[List[LogEntry]] = None) -> None:
        if entries is None:
            entries = [LogEntry(LOW_TS, None)]
        self._entries = sorted(entries, key=lambda e: e.ts)
        self._keys = [entry.ts for entry in self._entries]
        if not self._entries:
            raise ProtocolInvariantError("log may never be empty")

    # -- queries (the paper's three functions) ----------------------------

    def max_ts(self) -> Timestamp:
        """``max-ts(log)``: the highest timestamp present."""
        return self._entries[-1].ts

    def max_block(self) -> Tuple[Timestamp, object]:
        """``max-block(log)``: the non-⊥ value with the highest timestamp.

        Returns the ``(ts, block)`` pair.  At least the initial
        ``[LowTS, nil]`` entry always qualifies.
        """
        for entry in reversed(self._entries):
            if entry.has_value:
                return entry.ts, entry.block
        raise ProtocolInvariantError("log has no value entries (missing LowTS)")

    def max_below(self, ts: Timestamp) -> Tuple[Timestamp, object]:
        """``max-below(log, ts)``: highest-timestamped non-⊥ value < ``ts``.

        Returns ``(LowTS, None)`` when nothing qualifies (e.g. the GC
        trimmed everything below ``ts`` away, or ``ts`` is LowTS).
        """
        index = bisect.bisect_left(self._keys, ts)
        for position in range(index - 1, -1, -1):
            entry = self._entries[position]
            if entry.has_value:
                return entry.ts, entry.block
        return LOW_TS, None

    def max_ts_below(self, ts: Timestamp) -> Timestamp:
        """Highest timestamp of ANY entry (⊥ included) strictly below ``ts``.

        This is the *version* a replica's state reflects under the
        bound: a ⊥ entry at time t means "my block did not change at
        t", so the replica's current block value is valid for version
        t even though the value itself carries an older timestamp.
        Returns LowTS when nothing is below (the initial entry is at
        LowTS itself).
        """
        index = bisect.bisect_left(self._keys, ts)
        if index == 0:
            return LOW_TS
        return self._keys[index - 1]

    def contains_ts(self, ts: Timestamp) -> bool:
        """True iff an entry with exactly this timestamp exists."""
        index = bisect.bisect_left(self._keys, ts)
        return index < len(self._keys) and self._keys[index] == ts

    def entry_at(self, ts: Timestamp) -> Optional[LogEntry]:
        """The entry with exactly this timestamp, if present."""
        index = bisect.bisect_left(self._keys, ts)
        if index < len(self._keys) and self._keys[index] == ts:
            return self._entries[index]
        return None

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[LogEntry]:
        """A snapshot copy of all entries, ascending by timestamp."""
        return list(self._entries)

    # -- mutation ----------------------------------------------------------

    def append(self, ts: Timestamp, block: object) -> None:
        """Add ``{[ts, block]}`` to the log (the handler's ``log ∪ {...}``).

        Appending an entry whose timestamp already exists replaces it
        only if the old entry was ⊥ and the new one carries a value
        (set-union semantics: the pair is keyed by timestamp; a value
        entry subsumes a ⊥ placeholder for the same write).
        """
        index = bisect.bisect_left(self._keys, ts)
        if index < len(self._keys) and self._keys[index] == ts:
            existing = self._entries[index]
            if not existing.has_value and block is not BOTTOM:
                self._entries[index] = LogEntry(ts, block)
            return
        self._entries.insert(index, LogEntry(ts, block))
        self._keys.insert(index, ts)

    def trim_below(self, ts: Timestamp) -> int:
        """Garbage-collect entries with timestamps strictly below ``ts``.

        Keeps the entry at ``ts`` itself (the most recent complete
        write) if present; if no entry at or above ``ts`` holds a value,
        the newest value entry below is retained instead so ``max_block``
        remains correct.  Returns the number of entries removed.

        See Section 5.1: after a write completes at a full quorum with
        timestamp ``ts``, older data is no longer needed.
        """
        cut = bisect.bisect_left(self._keys, ts)
        if cut == 0:
            return 0
        # Guarantee a value entry survives.
        has_value_at_or_after = any(
            entry.has_value for entry in self._entries[cut:]
        )
        if not has_value_at_or_after:
            for position in range(cut - 1, -1, -1):
                if self._entries[position].has_value:
                    cut = position
                    break
            else:
                return 0
        if cut == 0:
            return 0
        removed = cut
        self._entries = self._entries[cut:]
        self._keys = self._keys[cut:]
        return removed

    # -- persistence helpers -------------------------------------------------

    def to_state(self) -> List[Tuple[Timestamp, object]]:
        """Serialize to a plain list for the stable store."""
        return [(entry.ts, entry.block) for entry in self._entries]

    @classmethod
    def from_state(cls, state: List[Tuple[Timestamp, object]]) -> "ReplicaLog":
        """Rebuild from :meth:`to_state` output."""
        return cls([LogEntry(ts, block) for ts, block in state])

    def __repr__(self) -> str:
        return f"ReplicaLog({len(self._entries)} entries, max_ts={self.max_ts()!r})"
