"""Replica persistent state: the versioned log (paper Section 4.2).

Each replica stores, per register, a timestamp ``ord-ts`` and a log of
``[timestamp, block]`` pairs.  The log holds the history of updates the
replica has seen; ``⊥`` block entries record that a timestamp passed
through without the replica learning a block value (used by the Modify
handler for non-parity, non-target data processes).

Three query functions, exactly as defined in the paper:

* ``max_ts(log)`` — highest timestamp in the log;
* ``max_block(log)`` — the non-⊥ value with the highest timestamp;
* ``max_below(log, ts)`` — the non-⊥ value with the highest timestamp
  strictly smaller than ``ts``.

The initial log is ``{[LowTS, nil]}`` — note ``nil`` (no value ever
written) is distinct from ``⊥`` (no value recorded at this timestamp):
``max_block`` on a fresh log returns the ``nil`` entry, letting reads of
never-written registers succeed with ``nil``.

Performance notes.  Besides the timestamp-sorted entry list, the log
maintains a parallel index of *value* entries (non-⊥), so ``max_block``
is O(1) and ``max_below`` is a pure bisection — the seed walked the
entry list backwards past every ⊥ placeholder.  For persistence, the
log also defines a journal representation (:func:`append_record` /
:func:`trim_record` / :func:`snapshot_record` + :func:`replay_journal`):
instead of re-serializing the full entry list on every mutation
(O(log-length) per write, O(writes²) per run), the replica appends O(1)
delta records and replays them on recovery.
"""

from __future__ import annotations

import bisect
from typing import Any, List, Optional, Tuple

from ..errors import ProtocolInvariantError
from ..sim.freeze import register_immutable
from ..timestamps import LOW_TS, Timestamp

__all__ = [
    "LogEntry",
    "ReplicaLog",
    "BOTTOM",
    "append_record",
    "trim_record",
    "snapshot_record",
    "replay_journal",
]


class _BottomType:
    """Sentinel for ``⊥`` block entries (timestamp recorded, no value)."""

    _instance: Optional["_BottomType"] = None

    def __new__(cls) -> "_BottomType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __reduce__(self):
        return (_BottomType, ())


#: The ⊥ marker stored in timestamp-only log entries.
BOTTOM = _BottomType()

# ⊥ is a stateless singleton: the copy-on-write stable store may share
# it by reference (identity must survive persistence — handlers compare
# with ``is``).
register_immutable(_BottomType)


class LogEntry:
    """One ``[timestamp, block]`` log pair.

    ``block`` is ``bytes``, ``None`` (the paper's ``nil`` initial
    value), or :data:`BOTTOM` (the paper's ``⊥`` timestamp-only entry).
    Entries are treated as immutable and are slotted — one exists per
    logged write, so per-instance ``__dict__`` overhead matters.
    """

    __slots__ = ("ts", "block")

    def __init__(self, ts: Timestamp, block: object) -> None:
        self.ts = ts
        self.block = block

    @property
    def has_value(self) -> bool:
        """True iff the entry records an actual value (incl. ``nil``)."""
        return self.block is not BOTTOM

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LogEntry):
            return NotImplemented
        return self.ts == other.ts and self.block == other.block

    def __hash__(self) -> int:
        return hash((self.ts, self.block))

    def __repr__(self) -> str:
        return f"LogEntry(ts={self.ts!r}, block={self.block!r})"


class ReplicaLog:
    """The per-register log, kept sorted by timestamp.

    The log is an append-mostly structure; entries arrive in roughly
    timestamp order, so insertion uses ``bisect``.  Mutations are
    explicit, and the replica persists each one via its node's stable
    store (journal records on the fast path).
    """

    def __init__(self, entries: Optional[List[LogEntry]] = None) -> None:
        if entries is None:
            entries = [LogEntry(LOW_TS, None)]
        self._entries = sorted(entries, key=lambda e: e.ts)
        self._keys = [entry.ts for entry in self._entries]
        if not self._entries:
            raise ProtocolInvariantError("log may never be empty")
        # Parallel index of value (non-⊥) entries, ascending by ts.
        self._value_keys: List[Timestamp] = []
        self._value_entries: List[LogEntry] = []
        for entry in self._entries:
            if entry.block is not BOTTOM:
                self._value_keys.append(entry.ts)
                self._value_entries.append(entry)

    # -- queries (the paper's three functions) ----------------------------

    def max_ts(self) -> Timestamp:
        """``max-ts(log)``: the highest timestamp present."""
        return self._keys[-1]

    def max_block(self) -> Tuple[Timestamp, object]:
        """``max-block(log)``: the non-⊥ value with the highest timestamp.

        Returns the ``(ts, block)`` pair.  At least the initial
        ``[LowTS, nil]`` entry always qualifies.  O(1) via the value
        index.
        """
        if not self._value_entries:
            raise ProtocolInvariantError("log has no value entries (missing LowTS)")
        newest = self._value_entries[-1]
        return newest.ts, newest.block

    def max_below(self, ts: Timestamp) -> Tuple[Timestamp, object]:
        """``max-below(log, ts)``: highest-timestamped non-⊥ value < ``ts``.

        Returns ``(LowTS, None)`` when nothing qualifies (e.g. the GC
        trimmed everything below ``ts`` away, or ``ts`` is LowTS).
        O(log n) — a bisection on the value index, with no scan past ⊥
        placeholders.
        """
        index = bisect.bisect_left(self._value_keys, ts)
        if index == 0:
            return LOW_TS, None
        entry = self._value_entries[index - 1]
        return entry.ts, entry.block

    def max_ts_below(self, ts: Timestamp) -> Timestamp:
        """Highest timestamp of ANY entry (⊥ included) strictly below ``ts``.

        This is the *version* a replica's state reflects under the
        bound: a ⊥ entry at time t means "my block did not change at
        t", so the replica's current block value is valid for version
        t even though the value itself carries an older timestamp.
        Returns LowTS when nothing is below (the initial entry is at
        LowTS itself).
        """
        index = bisect.bisect_left(self._keys, ts)
        if index == 0:
            return LOW_TS
        return self._keys[index - 1]

    def contains_ts(self, ts: Timestamp) -> bool:
        """True iff an entry with exactly this timestamp exists."""
        index = bisect.bisect_left(self._keys, ts)
        return index < len(self._keys) and self._keys[index] == ts

    def entry_at(self, ts: Timestamp) -> Optional[LogEntry]:
        """The entry with exactly this timestamp, if present."""
        index = bisect.bisect_left(self._keys, ts)
        if index < len(self._keys) and self._keys[index] == ts:
            return self._entries[index]
        return None

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[LogEntry]:
        """A snapshot copy of all entries, ascending by timestamp."""
        return list(self._entries)

    # -- mutation ----------------------------------------------------------

    def append(self, ts: Timestamp, block: object) -> None:
        """Add ``{[ts, block]}`` to the log (the handler's ``log ∪ {...}``).

        Appending an entry whose timestamp already exists replaces it
        only if the old entry was ⊥ and the new one carries a value
        (set-union semantics: the pair is keyed by timestamp; a value
        entry subsumes a ⊥ placeholder for the same write).
        """
        index = bisect.bisect_left(self._keys, ts)
        if index < len(self._keys) and self._keys[index] == ts:
            existing = self._entries[index]
            if existing.block is BOTTOM and block is not BOTTOM:
                entry = LogEntry(ts, block)
                self._entries[index] = entry
                value_index = bisect.bisect_left(self._value_keys, ts)
                self._value_keys.insert(value_index, ts)
                self._value_entries.insert(value_index, entry)
            return
        entry = LogEntry(ts, block)
        self._entries.insert(index, entry)
        self._keys.insert(index, ts)
        if block is not BOTTOM:
            value_index = bisect.bisect_left(self._value_keys, ts)
            self._value_keys.insert(value_index, ts)
            self._value_entries.insert(value_index, entry)

    def trim_below(self, ts: Timestamp) -> int:
        """Garbage-collect entries with timestamps strictly below ``ts``.

        Keeps the entry at ``ts`` itself (the most recent complete
        write) if present; if no entry at or above ``ts`` holds a value,
        the newest value entry below is retained instead so ``max_block``
        remains correct.  Returns the number of entries removed.

        See Section 5.1: after a write completes at a full quorum with
        timestamp ``ts``, older data is no longer needed.
        """
        cut = bisect.bisect_left(self._keys, ts)
        if cut == 0:
            return 0
        # Guarantee a value entry survives (timestamps are unique, so a
        # value entry survives the cut iff the newest value timestamp is
        # at or after the first kept key).
        survives = (
            cut < len(self._keys)
            and self._value_keys
            and self._value_keys[-1] >= self._keys[cut]
        )
        if not survives:
            if not self._value_keys:
                return 0
            cut = bisect.bisect_left(self._keys, self._value_keys[-1])
            if cut == 0:
                return 0
        removed = cut
        first_kept = self._keys[cut]
        value_cut = bisect.bisect_left(self._value_keys, first_kept)
        self._entries = self._entries[cut:]
        self._keys = self._keys[cut:]
        self._value_keys = self._value_keys[value_cut:]
        self._value_entries = self._value_entries[value_cut:]
        return removed

    # -- persistence helpers -------------------------------------------------

    def to_state(self) -> List[Tuple[Timestamp, object]]:
        """Serialize to a plain list for the stable store."""
        return [(entry.ts, entry.block) for entry in self._entries]

    @classmethod
    def from_state(cls, state: List[Tuple[Timestamp, object]]) -> "ReplicaLog":
        """Rebuild from :meth:`to_state` output."""
        return cls([LogEntry(ts, block) for ts, block in state])

    def __repr__(self) -> str:
        return f"ReplicaLog({len(self._entries)} entries, max_ts={self.max_ts()!r})"


# -- journal records ---------------------------------------------------------
#
# The journal-style stable representation: a list of O(1) delta records,
# each mirroring one ReplicaLog mutation.  Replay applies them in order,
# so recovery reconstructs exactly the log the mutations produced.
# Record tuples are (tag, ...); tags:

_APPEND = "a"
_TRIM = "t"
_SNAPSHOT = "s"


def append_record(ts: Timestamp, block: object) -> tuple:
    """Journal record for ``log.append(ts, block)``."""
    return (_APPEND, ts, block)


def trim_record(ts: Timestamp) -> tuple:
    """Journal record for ``log.trim_below(ts)``."""
    return (_TRIM, ts)


def snapshot_record(log: ReplicaLog) -> tuple:
    """A compaction base record holding the log's full state."""
    return (_SNAPSHOT, tuple(log.to_state()))


def _is_well_formed(record: Any) -> bool:
    """Structural check for one journal record (tag + arity)."""
    if not isinstance(record, tuple) or not record:
        return False
    tag = record[0]
    if tag == _SNAPSHOT or tag == _TRIM:
        return len(record) == 2
    if tag == _APPEND:
        return len(record) == 3
    return False


def replay_journal(records: List[Any]) -> ReplicaLog:
    """Rebuild a log by replaying journal ``records`` in order.

    A malformed *trailing* record is dropped rather than aborting the
    replay: the stable store already truncates framing-detected torn
    tails, and this is the second line of defense for a half-record
    that slipped through — it was never acknowledged, so dropping it is
    the correct recovery.  A malformed record anywhere else means real
    corruption and still raises.
    """
    log: Optional[ReplicaLog] = None
    last = len(records) - 1
    for index, record in enumerate(records):
        if not _is_well_formed(record):
            if index == last:
                break  # torn tail: unacknowledged, cleanly dropped
            raise ProtocolInvariantError(
                f"malformed journal record {record!r} at index {index}"
            )
        tag = record[0]
        if tag == _SNAPSHOT:
            log = ReplicaLog.from_state(list(record[1]))
        elif tag == _APPEND:
            if log is None:
                log = ReplicaLog()
            log.append(record[1], record[2])
        else:  # _TRIM
            if log is None:
                log = ReplicaLog()
            log.trim_below(record[1])
    return log if log is not None else ReplicaLog()
