"""Strict-linearizability checking via conforming total orders.

Appendix B (Definition 5 / Proposition 6) shows a history is strictly
linearizable if its observable values admit a *conforming total order*:
a total order containing every observable value, with ``nil`` first,
whose value order agrees with the operations' real-time order:

====  ==========================================  ================
 (2)  ``write(v) →H write(v')``                   ``v < v'``
 (3)  ``read(v) →H read(v')``                     ``v ≤ v'``
 (4)  ``write(v) →H read(v')``                    ``v ≤ v'``
 (5)  ``read(v) →H write(v')``                    ``v < v'``
====  ==========================================  ================

where ``op →H op'`` means op's return **or crash** event precedes op'
invocation — crashes count, which is precisely where strictness bites:
a write that crashed before a read was invoked must be ordered before
any value that read observes (rule 4 with the crashed write).

Under the unique-value assumption every observable value is written by
exactly one write, so for distinct values ``v ≤ v'`` collapses to
``v < v'``.  A conforming total order then exists iff the constraint
digraph over observable values is acyclic and contains no strict
self-loop.  The checker builds that graph and runs cycle detection,
reporting a concrete violating cycle when one exists.

Additional well-formedness checks: every read value must have been
written (or be nil), and nil precedes everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import VerificationError
from ..types import OpStatus
from .history import OpRecord

__all__ = [
    "CheckResult",
    "check_strict_linearizability",
    "check_strict_linearizability_or_raise",
]

#: Hashable stand-in for the nil value (None is a legal dict key, but an
#: explicit sentinel keeps intent clear in graph dumps).
_NIL_KEY = "<nil>"


def _value_key(value: object):
    """Hashable identity for a block value.

    All-zero blocks are identified with nil: a block-level write onto a
    never-written stripe materializes the stripe's other blocks as
    zeros (standard disk semantics — unwritten space reads as zeros),
    and the checker must not treat those as phantom values.  The
    unique-value assumption therefore extends to "writes use non-zero
    values", which the test harnesses guarantee by tagging payloads.
    """
    if value is None:
        return _NIL_KEY
    if isinstance(value, (bytes, bytearray)):
        data = bytes(value)
        if not any(data):
            return _NIL_KEY
        return data
    if isinstance(value, (list, tuple)):
        return tuple(_value_key(item) for item in value)
    return value


@dataclass
class CheckResult:
    """Outcome of a strict-linearizability check.

    Attributes:
        ok: True iff a conforming total order exists.
        violations: human-readable explanations (empty when ok).
        order: one conforming total order of value keys (when ok).
        n_ops: operations considered.
        n_values: observable values considered.
    """

    ok: bool
    violations: List[str] = field(default_factory=list)
    order: Optional[List[object]] = None
    n_ops: int = 0
    n_values: int = 0

    def __bool__(self) -> bool:
        return self.ok


def _happens_before(a: OpRecord, b: OpRecord) -> bool:
    """op →H op': a's return/crash event precedes b's invocation."""
    if a.t_resp is None or a.status is OpStatus.PENDING:
        return False  # infinite operation: no end event
    return a.t_resp < b.t_inv


def check_strict_linearizability(history: Sequence[OpRecord]) -> CheckResult:
    """Check a single-block history against Definition 5.

    Args:
        history: block-level operation records (see
            :meth:`repro.verify.history.HistoryRecorder.per_block_history`).
            Writes must use unique values.

    Returns:
        A :class:`CheckResult`; ``result.ok`` is the verdict.
    """
    violations: List[str] = []

    writes = [op for op in history if op.is_write]
    successful_reads = [
        op for op in history if op.is_read and op.status is OpStatus.OK
    ]
    committed_writes = [op for op in writes if op.status is OpStatus.OK]

    # Unique-value assumption.
    write_values: Dict[object, int] = {}
    for op in writes:
        key = _value_key(op.value)
        if key in write_values:
            violations.append(
                f"unique-value assumption violated: ops "
                f"{write_values[key]} and {op.op_id} both write {key!r}"
            )
        write_values[key] = op.op_id
    if _NIL_KEY in write_values:
        violations.append("nil must never be written (op writes nil)")

    # Observable = read values ∪ committed write values.
    observable: Set[object] = set()
    for op in successful_reads:
        observable.add(_value_key(op.value))
    for op in committed_writes:
        observable.add(_value_key(op.value))

    # Every read value must be written or nil.
    for op in successful_reads:
        key = _value_key(op.value)
        if key != _NIL_KEY and key not in write_values:
            violations.append(
                f"read op {op.op_id} returned value {key!r} that no write wrote"
            )

    if violations:
        return CheckResult(
            ok=False, violations=violations,
            n_ops=len(history), n_values=len(observable),
        )

    # Build the constraint graph over observable values.  Under unique
    # values all inter-value constraints are strict, so any cycle is a
    # violation.  Edges are labelled with their provenance for reports.
    edges: Dict[object, Dict[object, str]] = {key: {} for key in observable}

    def add_edge(src: object, dst: object, why: str) -> None:
        if src == dst:
            # A strict constraint v < v: immediate violation for rules
            # (2) and (5); rules (3) and (4) permit equality.
            if why.startswith("(2)") or why.startswith("(5)"):
                violations.append(f"strict self-constraint on {src!r}: {why}")
            return
        if src in edges and dst in edges and dst not in edges[src]:
            edges[src][dst] = why

    # nil is first (condition 1).
    if _NIL_KEY in observable:
        for key in observable:
            if key != _NIL_KEY:
                add_edge(_NIL_KEY, key, "(1) nil precedes every value")

    # Operations relevant to constraints: writes of observable values
    # (any status — a crashed write whose value was observed took
    # effect), and successful reads.
    relevant_writes = [
        op for op in writes if _value_key(op.value) in observable
    ]
    ops: List[Tuple[str, object, OpRecord]] = [
        ("write", _value_key(op.value), op) for op in relevant_writes
    ] + [("read", _value_key(op.value), op) for op in successful_reads]

    for kind_a, val_a, op_a in ops:
        for kind_b, val_b, op_b in ops:
            if op_a.op_id == op_b.op_id or not _happens_before(op_a, op_b):
                continue
            label = (
                f"op{op_a.op_id}({kind_a} {val_a!r}) →H "
                f"op{op_b.op_id}({kind_b} {val_b!r})"
            )
            if kind_a == "write" and kind_b == "write":
                add_edge(val_a, val_b, f"(2) {label}")
            elif kind_a == "read" and kind_b == "read":
                add_edge(val_a, val_b, f"(3) {label}")
            elif kind_a == "write" and kind_b == "read":
                add_edge(val_a, val_b, f"(4) {label}")
            else:
                add_edge(val_a, val_b, f"(5) {label}")

    if violations:
        return CheckResult(
            ok=False, violations=violations,
            n_ops=len(history), n_values=len(observable),
        )

    # Topological sort / cycle detection (iterative DFS).
    order = _topological_order(edges)
    if order is None:
        cycle = _find_cycle(edges)
        description = " -> ".join(repr(v) for v in cycle) if cycle else "?"
        reasons = []
        if cycle:
            for src, dst in zip(cycle, cycle[1:]):
                reasons.append(edges[src][dst])
        violations.append(
            f"no conforming total order: constraint cycle {description}"
            + (f" [{'; '.join(reasons)}]" if reasons else "")
        )
        return CheckResult(
            ok=False, violations=violations,
            n_ops=len(history), n_values=len(observable),
        )
    return CheckResult(
        ok=True, order=order, n_ops=len(history), n_values=len(observable)
    )


def check_strict_linearizability_or_raise(
    history: Sequence[OpRecord],
) -> CheckResult:
    """Like :func:`check_strict_linearizability` but raises on violation."""
    result = check_strict_linearizability(history)
    if not result.ok:
        raise VerificationError("; ".join(result.violations))
    return result


def _topological_order(
    edges: Dict[object, Dict[object, str]]
) -> Optional[List[object]]:
    """Kahn's algorithm; None if the graph has a cycle."""
    indegree: Dict[object, int] = {node: 0 for node in edges}
    for node, targets in edges.items():
        for target in targets:
            indegree[target] += 1
    ready = sorted(
        (node for node, degree in indegree.items() if degree == 0),
        key=repr,
    )
    order: List[object] = []
    while ready:
        node = ready.pop()
        order.append(node)
        for target in edges[node]:
            indegree[target] -= 1
            if indegree[target] == 0:
                ready.append(target)
    if len(order) != len(edges):
        return None
    return order


def _find_cycle(
    edges: Dict[object, Dict[object, str]]
) -> Optional[List[object]]:
    """Return one directed cycle as a node list (first == last)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[object, int] = {node: WHITE for node in edges}
    parent: Dict[object, object] = {}

    for start in edges:
        if color[start] != WHITE:
            continue
        stack: List[Tuple[object, object]] = [(start, iter(edges[start]))]
        color[start] = GRAY
        while stack:
            node, iterator = stack[-1]
            advanced = False
            for target in iterator:
                if color[target] == WHITE:
                    color[target] = GRAY
                    parent[target] = node
                    stack.append((target, iter(edges[target])))
                    advanced = True
                    break
                if color[target] == GRAY:
                    # Found a cycle: walk parents back to target.
                    cycle = [target, node]
                    walker = node
                    while walker != target:
                        walker = parent[walker]
                        cycle.append(walker)
                    cycle.reverse()
                    return cycle
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None
